"""QoS admission control: bounded tick latency without starving priority 0.

The control plane's claim: when a tick's batch exceeds the latency
budget, :class:`~repro.serving.controller.AdmissionPolicy` keeps tick
latency within budget by deferring overflow frames -- and because intake
is priority-then-arrival ordered, the highest-priority class never waits.
This benchmark drives the same interleaved GTSRB workload through three
controlled runs:

* an *unbounded baseline* (policy-free controller) -- measures what every
  tick costs when everything is admitted, and whose per-frame cost sets
  the budget below;
* an *admission-controlled* run with a frame budget of half the streams
  and a latency budget derived from the baseline's median per-frame cost
  (with headroom for per-tick fixed costs and timer noise) -- gates that
  p95 tick latency stays within the budget, that priority-0 streams see
  **zero** deferrals while lower classes absorb all of them, and that the
  admitted outcomes are a bitwise-identical prefix of the baseline's
  per-stream outcome sequences;
* a *bounded-queue overflow* run (tiny per-stream queues) -- gates that
  the loud ``admission_overflow`` statistic actually fires when backlog
  exceeds the bound;
* an *observability overhead* run -- the same policy-free workload with
  a metrics registry + tracer attached vs. without; gates that the
  instrumented median tick stays within ``OBSERVABILITY_OVERHEAD_MAX``
  of the uninstrumented one (the disabled path is the exact
  pre-observability loop, so this bounds what opting in costs) and that
  attaching observability changes **zero** outcomes.

Everything lands in ``BENCH_controller.json`` /
``BENCH_controller_observability.json`` with the exact policy
configuration next to the usual transport/shards/host-core context, so
QoS numbers stay comparable across PRs and machines.
"""

import numpy as np
import pytest

from repro.serving import (
    AdmissionPolicy,
    MetricsRegistry,
    ServingController,
    StreamingEngine,
    build_stream_workload,
)
from repro.serving.observability import parse_prometheus

N_STREAMS = 256
N_TICKS = 30
PRIORITY_CLASSES = 4
FRAME_BUDGET = N_STREAMS // 2
#: Headroom over the expected admitted-tick cost (budget_frames x median
#: per-frame cost) granted to per-tick fixed costs and scheduler noise.
BUDGET_HEADROOM = 1.5
#: Instrumented-over-plain median tick latency bound.  Publication is a
#: few dict lookups and counter increments per tick plus two wall-clock
#: reads per phase span; 1.5x leaves room for timer noise on a busy
#: runner while still catching an accidentally hot publication path.
OBSERVABILITY_OVERHEAD_MAX = 1.5


@pytest.fixture(scope="module")
def workload(study_data):
    rng = np.random.default_rng(20260)
    return build_stream_workload(
        study_data.feature_model,
        N_STREAMS,
        N_TICKS,
        rng,
        priority_classes=PRIORITY_CLASSES,
    )


def _make_engine(study_data):
    return StreamingEngine(
        ddm=study_data.ddm,
        stateless_qim=study_data.stateless_qim,
        timeseries_qim=study_data.ta_qim,
        layout=study_data.layout,
    )


def _prefix_of(controlled: dict, baseline: dict) -> bool:
    return all(
        outcomes == baseline[stream_id][: len(outcomes)]
        for stream_id, outcomes in controlled.items()
    )


def test_admission_keeps_p95_within_budget(
    study_data, workload, write_bench_json, usable_cores
):
    # Both runs measure tick latency on the process CPU clock, not the
    # wall clock: the p95 gate compares work done per tick, and on an
    # oversubscribed CI runner a single scheduler preemption inside one
    # tick's step_batch would blow a wall-clock p95 through any budget
    # derived from the (equally noisy) baseline.  CPU time is what the
    # frame budget actually bounds; the wall-clock QoS behavior is
    # covered by the deterministic scripted-clock controller tests.
    import time

    # Unbounded baseline: every frame admitted every tick.
    baseline_controller = ServingController(
        _make_engine(study_data), clock=time.process_time
    )
    baseline_results = baseline_controller.run(workload.ticks)
    baseline_latencies = [
        t.latency_seconds for t in baseline_controller.telemetry
    ]
    per_frame_median = float(np.median(baseline_latencies)) / N_STREAMS
    latency_budget = BUDGET_HEADROOM * per_frame_median * FRAME_BUDGET

    # Admission-controlled run.  The static frame budget makes the
    # admission schedule deterministic (the dynamic latency-driven bound
    # would couple it to timer noise: one cold-cache tick inflating the
    # per-frame EWMA could momentarily starve priority 0 and flake the
    # zero-deferral gate); the derived latency budget is what the p95
    # gate below is judged against.
    policy = AdmissionPolicy(
        max_frames_per_tick=FRAME_BUDGET,
        max_deferred_per_stream=N_TICKS + 1,  # no drops in this run
    )
    controller = ServingController(
        _make_engine(study_data), admission=policy, clock=time.process_time
    )
    admitted_results = controller.run(workload.ticks)
    latencies = [t.latency_seconds for t in controller.telemetry]

    p95_baseline = float(np.percentile(baseline_latencies, 95))
    p95_admitted = float(np.percentile(latencies, 95))
    stats = controller.stats

    write_bench_json(
        "controller",
        {
            "streams": N_STREAMS,
            "ticks": N_TICKS,
            "priority_classes": PRIORITY_CLASSES,
            "latency_clock": "process_time",
            "policy": {
                "latency_budget_seconds": latency_budget,
                "max_frames_per_tick": FRAME_BUDGET,
                "max_deferred_per_stream": policy.max_deferred_per_stream,
                "priority_field": policy.priority_field,
            },
            "baseline_p50_tick_seconds": float(np.median(baseline_latencies)),
            "baseline_p95_tick_seconds": p95_baseline,
            "admitted_p95_tick_seconds": p95_admitted,
            "frames_submitted": stats.frames_submitted,
            "frames_admitted": stats.frames_admitted,
            "frames_deferred": stats.frames_deferred,
            "admission_overflow": stats.admission_overflow,
            "deferred_by_priority": {
                str(k): v for k, v in stats.deferred_by_priority.items()
            },
            "deferred_backlog": controller.backlog,
        },
        transport="single",
        shards=1,
    )

    # The baseline really was unbounded: it steps twice the frames per
    # tick that the budget allows, so the budget is binding.
    assert stats.frames_deferred > 0, "admission never deferred a frame"
    assert stats.admission_overflow == 0

    # Gate 1: p95 tick latency within the latency budget.
    assert p95_admitted <= latency_budget, (
        f"admitted p95 tick latency {p95_admitted * 1e3:.2f}ms exceeds the "
        f"budget {latency_budget * 1e3:.2f}ms"
    )

    # Gate 2: the highest-priority class is never deferred; every
    # deferral lands on classes 1+ (priority-then-arrival intake).
    assert stats.deferred_by_priority.get(0, 0) == 0, (
        "priority-0 streams must see zero deferrals, got "
        f"{stats.deferred_by_priority}"
    )
    assert sum(stats.deferred_by_priority.values()) == stats.frames_deferred

    # Gate 3: scheduling changed, results did not -- every admitted
    # outcome sequence is a bitwise prefix of the unbounded baseline's.
    assert _prefix_of(admitted_results, baseline_results), (
        "admitted outcomes diverge from the unbounded baseline"
    )
    # Priority-0 streams were fully served, not just 'not deferred'.
    for stream_id, results in baseline_results.items():
        if stream_id % PRIORITY_CLASSES == 0:
            assert admitted_results[stream_id] == results


def test_observability_overhead_is_bounded(
    study_data, workload, write_bench_json
):
    # Plain policy-free run: the exact pre-observability tick loop.
    plain = ServingController(_make_engine(study_data))
    plain_results = plain.run(workload.ticks)
    disabled = [t.latency_seconds for t in plain.telemetry]

    # Same run with a registry attached (which also auto-attaches a
    # wall-clock tracer, so phase spans are measured too -- the full
    # opt-in cost, not just counter publication).
    registry = MetricsRegistry()
    observed_controller = ServingController(
        _make_engine(study_data), metrics=registry
    )
    observed_results = observed_controller.run(workload.ticks)
    observed = [t.latency_seconds for t in observed_controller.telemetry]

    median_disabled = float(np.median(disabled))
    median_observed = float(np.median(observed))
    overhead = median_observed / median_disabled

    # The artifact carries the live registry snapshot: the same counter
    # families a production scrape of this run would have shown.
    write_bench_json(
        "controller_observability",
        {
            "streams": N_STREAMS,
            "ticks": N_TICKS,
            "median_disabled_tick_seconds": median_disabled,
            "median_observed_tick_seconds": median_observed,
            "overhead_ratio": overhead,
            "overhead_max": OBSERVABILITY_OVERHEAD_MAX,
        },
        transport="single",
        shards=1,
        metrics_snapshot=registry.snapshot(),
    )

    # Gate 1: observability never changes outcomes, only measures them.
    assert observed_results == plain_results, (
        "attaching metrics/tracing changed the served results"
    )
    # Gate 2: the scrape of the instrumented run parses strictly and
    # agrees with the controller's own counters.
    families = parse_prometheus(registry.render_prometheus())
    ticks_scraped = families["repro_controller_ticks_total"]["samples"][
        ("repro_controller_ticks_total", ())
    ]
    assert ticks_scraped == observed_controller.stats.ticks == N_TICKS
    # Gate 3: the instrumented median tick stays within the bound.
    assert median_observed <= OBSERVABILITY_OVERHEAD_MAX * median_disabled, (
        f"observability overhead {overhead:.2f}x exceeds the "
        f"{OBSERVABILITY_OVERHEAD_MAX}x bound "
        f"({median_observed * 1e3:.3f}ms vs {median_disabled * 1e3:.3f}ms)"
    )


def test_bounded_queue_overflow_is_loud(study_data, workload):
    policy = AdmissionPolicy(
        max_frames_per_tick=N_STREAMS // 4,
        max_deferred_per_stream=2,
    )
    controller = ServingController(_make_engine(study_data), admission=policy)
    controller.run(workload.ticks)
    stats = controller.stats
    assert stats.admission_overflow > 0, (
        "a 2-deep queue under 4x oversubmission must overflow"
    )
    assert stats.dropped_by_priority.get(0, 0) == 0, (
        "overflow drops must never hit the highest priority class"
    )
    per_stream_backlog = max(
        len(q) for q in controller._queues.values()
    )
    assert per_stream_backlog <= 2, "queue bound was not enforced"
