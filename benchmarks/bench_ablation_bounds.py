"""Ablation: guarantee-bound families for the quality impact model.

The paper fixes Clopper-Pearson bounds at 99.9 % confidence.  This bench
recalibrates the taQIM with each implemented bound family (Clopper-Pearson,
Wilson, Jeffreys, Hoeffding) and compares the Brier score and the minimum
guaranteeable uncertainty: tighter bounds buy lower guaranteed minima at
the price of weaker coverage semantics.
"""

from repro.core.quality_impact import BOUND_FUNCTIONS, QualityImpactModel
from repro.core.timeseries_wrapper import stack_traces
from repro.evaluation.metrics import pool_traces
from repro.stats.brier import brier_score


def test_bound_family_ablation(benchmark, study_data, write_output):
    config = study_data.config
    X_train, y_train = stack_traces(study_data.train_traces)
    X_cal, y_cal = stack_traces(study_data.calibration_traces)
    pooled = pool_traces(study_data.test_traces)

    def sweep():
        rows = {}
        for bound in sorted(BOUND_FUNCTIONS):
            qim = QualityImpactModel(
                max_depth=config.tree_max_depth,
                min_calibration_samples=config.min_calibration_samples,
                confidence=config.confidence,
                bound=bound,
            )
            qim.fit(X_train, y_train).calibrate(X_cal, y_cal)
            u = qim.estimate_uncertainty(pooled.features)
            rows[bound] = {
                "brier": brier_score(u, pooled.fused_wrong),
                "min_u": qim.min_guaranteed_uncertainty,
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["ABLATION - GUARANTEE BOUND FAMILIES (taQIM, confidence 0.999)"]
    lines.append(f"{'bound':<18} {'Brier':>8} {'min guaranteed u':>18}")
    for bound, row in sorted(rows.items(), key=lambda kv: kv[1]["brier"]):
        lines.append(f"{bound:<18} {row['brier']:>8.4f} {row['min_u']:>18.4f}")
    write_output("ablation_bounds.txt", "\n".join(lines) + "\n")

    # Hoeffding is distribution-free and must be the loosest bound.
    assert rows["hoeffding"]["min_u"] >= rows["clopper_pearson"]["min_u"]
    assert rows["hoeffding"]["brier"] >= rows["clopper_pearson"]["brier"] - 1e-9
    # Wilson and Jeffreys are approximations at least as tight as CP here.
    assert rows["wilson"]["min_u"] <= rows["hoeffding"]["min_u"]
    assert rows["jeffreys"]["min_u"] <= rows["hoeffding"]["min_u"]
