"""Fig. 5: distribution of predicted uncertainty, stateless UW vs taUW + IF.

Regenerates the paper's Fig. 5 panels: the histogram of dependable
uncertainty estimates and the share of cases that receive the lowest
guaranteeable uncertainty, for the stateless wrapper and the
timeseries-aware wrapper.  Benchmarks the taUW inference pass that produces
the bottom panel.
"""

from repro.evaluation.metrics import pool_traces
from repro.evaluation.reporting import render_fig5


def test_fig5_uncertainty_distribution(benchmark, study_data, study_results, write_output):
    pooled = pool_traces(study_data.test_traces)
    u_ta = benchmark(study_data.ta_qim.estimate_uncertainty, pooled.features)

    write_output("fig5_uncertainty_distribution.txt", render_fig5(study_results))

    stateless = study_results.distributions["stateless"]
    ta = study_results.distributions["taUW"]

    # The taUW guarantees a smaller minimum uncertainty than the stateless
    # wrapper ("the amount of uncertainty that needs to be tolerated is
    # reduced by more than half" in the paper).
    assert ta.min_guaranteed < stateless.min_guaranteed
    # More cases reach the lowest guaranteed uncertainty with the taUW.
    assert ta.share_at_min > stateless.share_at_min
    # The benchmark's inference output matches the summarised distribution.
    assert u_ta.shape[0] == ta.uncertainties.shape[0]
