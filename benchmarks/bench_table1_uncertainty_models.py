"""Table I: Brier score and Murphy components for all six approaches.

Regenerates the paper's Table I (stateless UW, IF + no UF, IF + naive UF,
IF + worst-case UF, IF + opportune UF, IF + taUW) and benchmarks the full
evaluation pass over the prepared study data.
"""

from repro.evaluation import evaluate_study
from repro.evaluation.reporting import render_table1
from repro.evaluation.study import (
    APPROACH_IF_NO_UF,
    APPROACH_NAIVE,
    APPROACH_OPPORTUNE,
    APPROACH_STATELESS,
    APPROACH_TAUW,
    APPROACH_WORST_CASE,
)


def test_table1_uncertainty_models(benchmark, study_data, write_output):
    results = benchmark.pedantic(
        evaluate_study, args=(study_data,), rounds=3, iterations=1
    )

    write_output("table1_uncertainty_models.txt", render_table1(results))

    brier = {a.name: a.decomposition.brier for a in results.approaches}
    overconf = {a.name: a.decomposition.overconfidence for a in results.approaches}
    unspec = {a.name: a.decomposition.unspecificity for a in results.approaches}

    # Paper's headline: the taUW wins the Brier score overall.
    assert brier[APPROACH_TAUW] == min(brier.values())
    # ... and has the lowest unspecificity of the fused approaches.
    fused = [
        APPROACH_IF_NO_UF,
        APPROACH_NAIVE,
        APPROACH_WORST_CASE,
        APPROACH_OPPORTUNE,
        APPROACH_TAUW,
    ]
    assert unspec[APPROACH_TAUW] == min(unspec[name] for name in fused)
    # Naive fusion is by far the most overconfident (independence violated).
    assert overconf[APPROACH_NAIVE] == max(overconf.values())
    assert overconf[APPROACH_NAIVE] > 10 * overconf[APPROACH_TAUW] or (
        overconf[APPROACH_TAUW] == 0.0
    )
    # Worst-case fusion stays on the conservative side.
    assert overconf[APPROACH_WORST_CASE] <= overconf[APPROACH_NAIVE]
    # Information fusion alone already improves on the stateless wrapper.
    assert brier[APPROACH_IF_NO_UF] < brier[APPROACH_STATELESS]
