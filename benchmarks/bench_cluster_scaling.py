"""Cluster scaling: sharded serving vs shard count, on every transport.

The sharded cluster's claim is threefold.  *Correctness*: partitioning
1024 concurrent streams across shard workers by consistent hashing and
merging each tick in input order is bitwise-identical to one
single-process ``StreamingEngine`` -- asserted here unconditionally, for
every transport (inproc, pipe, shm rings, TCP loopback) at every shard
count.
*Scaling*: because a tick's per-stream work is embarrassingly parallel,
4 pipe shards should deliver >= 2x the frames/sec of 1 shard at 1024+
streams.  *Overlap*: the parent encodes shard k+1's payload while shard k
is already computing, so fan-out serialization is no longer a serial
prefix of the tick -- the overlap window is measured and asserted > 0,
and recorded in ``BENCH_cluster.json`` so the perf trajectory stays
comparable across PRs.

The scaling gate is hardware-gated: it measures real multi-core
parallelism, so it only asserts when the machine grants this process at
least 4 usable cores (CI runners do; a 1-core sandbox physically cannot
run 4 workers concurrently).  The measurement itself always runs and is
recorded either way, with the gate's status spelled out.  The in-proc
transport doubles as the single-shard no-regression check: one inproc
shard is the single-process engine plus pure dispatch overhead, so its
throughput must stay within a small factor of the plain engine's.
"""

import statistics
import time

import numpy as np
import pytest

from repro.core.monitor import UncertaintyMonitor
from repro.serving import (
    SLO,
    ServingController,
    ShardedEngine,
    SLOTracker,
    StreamingEngine,
    TcpTransport,
    TickTracer,
    build_stream_workload,
    launch_local_workers,
    replay_results,
    stop_local_workers,
)

N_STREAMS = 1024
N_TICKS = 6
SHARD_COUNTS = (1, 2, 4)
TRANSPORTS = ("inproc", "pipe", "shm", "tcp")
MIN_SPEEDUP_4_VS_1 = 2.0
MIN_CORES_FOR_GATE = 4
# PR-7 fan-out encode cost on pipe x 4, per tick, before the buffer-pool
# codec landed (BENCH_cluster.json at ee5bc6e: 0.112246 s over 6 ticks).
# The pooled encode-into path must at least halve it -- this is the
# tentpole's perf acceptance gate, and unlike the scaling gate it holds
# on any core count (it measures parent-side encode work, not
# parallelism).
BASELINE_ENCODE_SECONDS_PER_TICK = 0.11224608399970748 / 6
MAX_ENCODE_RELATIVE_TO_BASELINE = 0.5
# One inproc shard = the single engine + dispatch; anything below this
# would mean the transport layer regressed the single-shard fast path.
MIN_INPROC_1SHARD_RELATIVE = 0.5
# With 4 evenly loaded shards, a sizable share of the parent's encode
# CPU lands after the first shard's payload is already in flight (every
# later shard's build + send).  A serial build-everything-then-send
# design scores near 0 here (only the later send syscalls count), so
# this floor is what actually enforces the overlap claim.
MIN_OVERLAP_FRACTION_OF_ENCODE = 0.3
# Distributed tracing (trace contexts on requests, piggybacked worker
# telemetry on replies, per-tick timeline assembly) must stay cheap:
# the traced median tick within this factor of the untraced one.
TRACING_OVERHEAD_MAX = 1.5
# The SLO the traced bench run declares: generous enough that a healthy
# run records verdicts without manufacturing breaches.
BENCH_SLO_BUDGET_SECONDS = 5.0
# Pipelining gate: with one shard's round trips slowed by an emulated
# send-anchored RTT, a window-2 run overlaps the latency (tick t+1 is on
# the wire while tick t's delayed reply is pending) and converges on
# DELAY/2 per tick where lockstep pays the full DELAY.  The ideal
# speedup is 2x; 1.5x tolerates parent-side serial work (admission,
# merge, encode) up to DELAY/2 per tick -- an order of magnitude above
# what this workload measures -- so the gate holds on a loaded runner.
MIN_PIPELINE_SPEEDUP = 1.5
PIPELINE_DELAY_SECONDS = 0.2
PIPELINE_WINDOW = 2


@pytest.fixture(scope="module")
def workload(study_data):
    rng = np.random.default_rng(20240)
    return build_stream_workload(study_data.feature_model, N_STREAMS, N_TICKS, rng)


@pytest.fixture(scope="module")
def engine_factory(study_data):
    def factory():
        return StreamingEngine(
            ddm=study_data.ddm,
            stateless_qim=study_data.stateless_qim,
            timeseries_qim=study_data.ta_qim,
            layout=study_data.layout,
            monitor_factory=lambda: UncertaintyMonitor(threshold=0.35),
        )

    return factory


def _cluster_run(engine_factory, transport_name, n_shards, workload, addresses):
    """One timed replay on the given transport; returns results + stats."""
    transport = (
        TcpTransport(addresses) if transport_name == "tcp" else transport_name
    )
    with ShardedEngine(engine_factory, n_shards, transport=transport) as cluster:
        start = time.perf_counter()
        results = replay_results(cluster, workload)
        seconds = time.perf_counter() - start
        fanout = cluster.fanout_stats()
    return results, seconds, fanout


def _controlled_pipe_run(engine_factory, workload, *, traced):
    """One controller-driven 2-shard pipe replay, plain or fully traced
    (distributed tracing + an SLO tracker).  Returns per-stream results,
    per-tick latencies, fan-out stats, and the SLO tracker (None plain)."""
    tracer = TickTracer() if traced else None
    slo = (
        SLOTracker([SLO("p99_latency", BENCH_SLO_BUDGET_SECONDS)])
        if traced
        else None
    )
    with ShardedEngine(engine_factory, 2) as cluster:
        controller = ServingController(cluster, tracer=tracer, slo=slo)
        per_stream = controller.run(workload.ticks)
        latencies = [t.latency_seconds for t in controller.telemetry]
        fanout = cluster.fanout_stats()
    return per_stream, latencies, fanout, slo


def test_cluster_equivalence_and_scaling(
    study_data, engine_factory, workload, write_output, write_bench_json, usable_cores
):
    start = time.perf_counter()
    single_results = replay_results(engine_factory(), workload)
    single_seconds = time.perf_counter() - start

    addresses, worker_processes = launch_local_workers(
        engine_factory, max(SHARD_COUNTS)
    )
    seconds = {}
    fanouts = {}
    try:
        for transport_name in TRANSPORTS:
            for n_shards in SHARD_COUNTS:
                results, elapsed, fanout = _cluster_run(
                    engine_factory, transport_name, n_shards, workload, addresses
                )
                seconds[transport_name, n_shards] = elapsed
                fanouts[transport_name, n_shards] = fanout
                assert results == single_results, (
                    f"{n_shards}-shard {transport_name} cluster results "
                    "diverge from the single-process engine (outcomes, "
                    "uncertainties, or verdicts)"
                )
    finally:
        stop_local_workers(worker_processes)

    # One traced 2-shard pipe run: the worker-side phase breakdown and
    # the SLO verdicts ride along in BENCH_cluster.json so the
    # distributed-tracing view of the same workload stays comparable
    # across PRs (the overhead gate lives in its own test below).
    _, traced_latencies, traced_fanout, slo = _controlled_pipe_run(
        engine_factory, workload, traced=True
    )

    scaling = seconds["pipe", 1] / seconds["pipe", 4]
    inproc_relative = single_seconds / seconds["inproc", 1]
    overlap = fanouts["pipe", 4]
    cores = usable_cores
    gate_active = cores >= MIN_CORES_FOR_GATE

    lines = [
        f"CLUSTER SCALING ({N_STREAMS} streams x {N_TICKS} ticks, "
        f"{workload.n_frames} frames, monitors on)",
        f"usable cores:          {cores}",
        f"single-process:        {workload.n_frames / single_seconds:,.0f} frames/s",
    ]
    for transport_name in TRANSPORTS:
        for n_shards in SHARD_COUNTS:
            fps = workload.n_frames / seconds[transport_name, n_shards]
            lines.append(
                f"{transport_name:>6} x {n_shards} shard(s):   {fps:>10,.0f} frames/s"
            )
    encode_per_tick = overlap["encode_seconds"] / overlap["ticks"]
    pool_pipe4 = overlap.get("pool", {})
    shm_fanout = fanouts["shm", 4]
    lines += [
        f"pipe 4 vs 1 shard:     {scaling:.2f}x",
        f"inproc 1-shard vs single-process: {inproc_relative:.2f}x",
        f"pipe-4 fan-out encode: {overlap['encode_seconds'] * 1e3:.1f} ms total, "
        f"{overlap['overlap_seconds'] * 1e3:.1f} ms overlapped with compute",
        f"pipe-4 encode/tick:    {encode_per_tick * 1e3:.2f} ms "
        f"(PR-7 baseline {BASELINE_ENCODE_SECONDS_PER_TICK * 1e3:.2f} ms, "
        f"gate <= {MAX_ENCODE_RELATIVE_TO_BASELINE:.1f}x)",
        f"pipe-4 codec pool:     {pool_pipe4.get('hits', 0)} hits / "
        f"{pool_pipe4.get('misses', 0)} misses, "
        f"{pool_pipe4.get('bytes_copied', 0) / max(overlap['ticks'], 1) / 1e3:.0f} "
        "kB copied/tick",
        f"shm-4 codec pool:      "
        f"{shm_fanout.get('pool', {}).get('bytes_copied', 0) / N_TICKS / 1e3:.0f} "
        "kB copied/tick (scatter-copied straight into ring slots)",
        "outputs identical:     True (all transports, all shard counts)",
        f"scaling gate (>= {MIN_SPEEDUP_4_VS_1}x): "
        + ("ASSERTED" if gate_active else f"RECORDED ONLY ({cores} core(s))"),
    ]
    write_output("cluster_scaling.txt", "\n".join(lines) + "\n")

    write_bench_json(
        "cluster",
        {
            "streams": N_STREAMS,
            "ticks": N_TICKS,
            "frames": workload.n_frames,
            "single_process_seconds": single_seconds,
            "single_process_frames_per_sec": workload.n_frames / single_seconds,
            "seconds": {
                f"{t}x{n}": seconds[t, n] for t in TRANSPORTS for n in SHARD_COUNTS
            },
            "frames_per_sec": {
                f"{t}x{n}": workload.n_frames / seconds[t, n]
                for t in TRANSPORTS
                for n in SHARD_COUNTS
            },
            "fanout": {
                f"{t}x{n}": fanouts[t, n] for t in TRANSPORTS for n in SHARD_COUNTS
            },
            "speedup_pipe_4_vs_1": scaling,
            "inproc_1shard_vs_single_process": inproc_relative,
            "outputs_identical": True,
            "scaling_gate_min": MIN_SPEEDUP_4_VS_1,
            "scaling_gate_asserted": gate_active,
            "codec_pool": {
                "pipe_encode_seconds_per_tick": encode_per_tick,
                "baseline_encode_seconds_per_tick": (
                    BASELINE_ENCODE_SECONDS_PER_TICK
                ),
                "encode_gate_max_relative": MAX_ENCODE_RELATIVE_TO_BASELINE,
                "pipe4": pool_pipe4,
                "shm4": shm_fanout.get("pool", {}),
            },
            "tracing": {
                "tick_latency_seconds": traced_latencies,
                "worker_phase_seconds": {
                    str(shard): phases
                    for shard, phases in traced_fanout[
                        "worker_phase_seconds"
                    ].items()
                },
                "slo": slo.as_dict(),
            },
        },
        transport=list(TRANSPORTS),
        shards=list(SHARD_COUNTS),
    )

    # Fan-out encode/compute overlap: with 4 busy shards, the encode
    # CPU spent after the first shard's payload is in flight (i.e. while
    # shard 0 is already computing) must be a substantial fraction of
    # the total encode cost.  A serial build-all-then-send-all
    # regression would collapse this to just the later send syscalls
    # and fail the floor.  This holds on 1 core too -- it measures
    # pipelining of parent encode vs worker compute, not parallel cores.
    assert overlap["ticks"] == N_TICKS
    overlap_fraction = overlap["overlap_seconds"] / overlap["encode_seconds"]
    assert overlap_fraction >= MIN_OVERLAP_FRACTION_OF_ENCODE, (
        f"only {overlap_fraction:.0%} of fan-out encode ran while workers "
        f"were computing (floor {MIN_OVERLAP_FRACTION_OF_ENCODE:.0%}); "
        "parent serialization has regressed toward a serial prefix"
    )

    # Tentpole perf gate: the pooled encode-into codec (no per-segment
    # tobytes, no b"".join, tick-wide payload stacking) must at least
    # halve the PR-7 per-tick fan-out encode cost on pipe x 4.
    assert encode_per_tick <= (
        MAX_ENCODE_RELATIVE_TO_BASELINE * BASELINE_ENCODE_SECONDS_PER_TICK
    ), (
        f"pipe-4 fan-out encode is {encode_per_tick * 1e3:.2f} ms/tick; the "
        f"pooled codec must stay <= {MAX_ENCODE_RELATIVE_TO_BASELINE:.1f}x "
        f"of the PR-7 baseline "
        f"({BASELINE_ENCODE_SECONDS_PER_TICK * 1e3:.2f} ms/tick)"
    )

    # Single-shard no-regression: one inproc shard is the plain engine
    # plus dispatch; the transport refactor must not tax that fast path.
    assert inproc_relative >= MIN_INPROC_1SHARD_RELATIVE, (
        f"1-shard inproc cluster fell to {inproc_relative:.2f}x of the "
        f"single-process engine (floor {MIN_INPROC_1SHARD_RELATIVE}x)"
    )

    if gate_active:
        assert scaling >= MIN_SPEEDUP_4_VS_1, (
            f"4 pipe shards must be >= {MIN_SPEEDUP_4_VS_1}x over 1 shard at "
            f"{N_STREAMS} streams on {cores} cores, measured {scaling:.2f}x"
        )
    else:
        pytest.skip(
            f"scaling gate needs >= {MIN_CORES_FOR_GATE} usable cores, have "
            f"{cores}; equivalence asserted, scaling recorded "
            f"({scaling:.2f}x) in BENCH_cluster.json"
        )


def test_tracing_overhead_is_bounded(
    study_data, engine_factory, workload, write_bench_json
):
    """Distributed tracing must be free in outcomes and cheap in time.

    The same 2-shard pipe workload runs once plain and once fully traced
    (trace contexts on every fan-out request, piggybacked worker
    telemetry, per-tick SLO evaluation).  The traced run must produce
    bit-identical results -- the side channel rides reserved meta keys
    that are stripped before command decoding, so it cannot perturb a
    single payload byte -- and its median tick latency must stay within
    ``TRACING_OVERHEAD_MAX`` of the plain run's.
    """
    plain_stream, plain_latencies, plain_fanout, _ = _controlled_pipe_run(
        engine_factory, workload, traced=False
    )
    traced_stream, traced_latencies, traced_fanout, slo = _controlled_pipe_run(
        engine_factory, workload, traced=True
    )

    assert traced_stream == plain_stream, (
        "tracing changed results: the trace/telemetry side channel must "
        "be invisible to payload handling"
    )
    # The untraced run must not even collect worker telemetry -- the key
    # is omitted entirely, never published as an empty breakdown.
    assert "worker_phase_seconds" not in plain_fanout
    phases = traced_fanout["worker_phase_seconds"]
    assert set(phases) == {0, 1}
    assert all(shard["step"] > 0.0 for shard in phases.values())
    assert slo.ticks == N_TICKS

    plain_median = statistics.median(plain_latencies)
    traced_median = statistics.median(traced_latencies)
    overhead = traced_median / plain_median

    write_bench_json(
        "cluster_tracing",
        {
            "streams": N_STREAMS,
            "ticks": N_TICKS,
            "plain_median_tick_seconds": plain_median,
            "traced_median_tick_seconds": traced_median,
            "tracing_overhead": overhead,
            "tracing_overhead_max": TRACING_OVERHEAD_MAX,
            "outputs_identical": True,
            "worker_phase_seconds": {
                str(shard): shard_phases
                for shard, shard_phases in phases.items()
            },
            "slo": slo.as_dict(),
        },
        transport="pipe",
        shards=2,
    )

    assert overhead <= TRACING_OVERHEAD_MAX, (
        f"traced median tick is {overhead:.2f}x the plain one "
        f"(cap {TRACING_OVERHEAD_MAX}x); the tracing side channel has "
        "become a tax on the serving loop"
    )


def test_snapshot_restore_roundtrip_overhead(
    study_data, engine_factory, workload, tmp_path, write_bench_json
):
    """Snapshot + save + load + restore cost at 1024 streams, and the
    restored cluster's bitwise fidelity on the following ticks -- across
    a transport change (pipe snapshot -> TCP cluster)."""
    with ShardedEngine(engine_factory, 2) as cluster:  # pipe (default)
        warm = workload.ticks[: N_TICKS // 2]
        rest = workload.ticks[N_TICKS // 2 :]
        controller = ServingController(cluster)  # the shared tick driver
        controller.run(warm)

        start = time.perf_counter()
        snapshot = controller.snapshot()
        capture_seconds = time.perf_counter() - start
        start = time.perf_counter()
        snapshot.save(tmp_path / "bench_snap")
        save_seconds = time.perf_counter() - start

        baseline = controller.run(rest)

    from repro.serving import RegistrySnapshot

    start = time.perf_counter()
    loaded = RegistrySnapshot.load(tmp_path / "bench_snap")
    load_seconds = time.perf_counter() - start
    addresses, worker_processes = launch_local_workers(engine_factory, 4)
    try:
        # Different topology AND different transport than the source.
        with ShardedEngine(
            engine_factory, 4, transport=TcpTransport(addresses)
        ) as cluster2:
            controller2 = ServingController(cluster2)
            start = time.perf_counter()
            controller2.restore(loaded)
            restore_seconds = time.perf_counter() - start
            resumed = controller2.run(rest)
    finally:
        stop_local_workers(worker_processes)

    assert resumed == baseline, (
        "restore-then-step must be bitwise-identical to the uninterrupted "
        "run, even across a pipe -> TCP transport change"
    )
    write_bench_json(
        "cluster_snapshot",
        {
            "streams": snapshot.n_streams,
            "capture_seconds": capture_seconds,
            "save_seconds": save_seconds,
            "load_seconds": load_seconds,
            "restore_seconds": restore_seconds,
        },
        transport="pipe->tcp",
        shards="2->4",
    )


def test_pipelined_window_overlaps_slow_shard(
    study_data, engine_factory, workload, write_bench_json
):
    """Windowed ticks must actually buy throughput under shard latency.

    One of two pipe shards answers every step request a send-anchored
    ``PIPELINE_DELAY_SECONDS`` late (the chaos harness's "delay" mode:
    the reply becomes readable DELAY after the request went out, like a
    slow network hop).  A lockstep controller pays the full delay every
    tick; a window-2 controller has tick t+1's shard payloads on the
    wire while tick t's delayed reply is still pending, so two ticks
    complete per delay period.  Gates: windowed throughput >=
    ``MIN_PIPELINE_SPEEDUP`` x lockstep, bitwise-identical per-stream
    results, and the in-flight depth fills the window but never exceeds
    it -- asserted from the cluster's own fan-out stats, the
    controller's stats, and the metrics registry's depth gauge.
    """
    import pathlib
    import sys

    # The chaos harness lives with the serving tests, which the bench
    # conftest does not put on sys.path; borrow it for the delay mode.
    chaos_dir = pathlib.Path(__file__).resolve().parents[1] / "tests" / "serving"
    sys.path.insert(0, str(chaos_dir))
    try:
        from chaos import ChaosFault, ChaosTransport
    finally:
        sys.path.remove(str(chaos_dir))

    from repro.serving import MetricsRegistry
    from repro.serving.observability import parse_prometheus

    def delayed_run(window):
        transport = ChaosTransport(
            "pipe",
            [
                ChaosFault(
                    1,
                    "step",
                    index=0,
                    mode="delay",
                    seconds=PIPELINE_DELAY_SECONDS,
                    count=N_TICKS,
                )
            ],
        )
        registry = MetricsRegistry()
        with ShardedEngine(
            engine_factory, 2, transport=transport, inflight_window=window
        ) as cluster:
            controller = ServingController(cluster, metrics=registry)
            start = time.perf_counter()
            per_stream = controller.run(workload.ticks)
            seconds = time.perf_counter() - start
            inflight = cluster.fanout_stats()["inflight"]
        assert not transport.pending_faults, "the delay fault never fired"
        return per_stream, seconds, inflight, controller.stats, registry

    lockstep_results, lockstep_seconds, lockstep_inflight, _, _ = delayed_run(1)
    (
        windowed_results,
        windowed_seconds,
        windowed_inflight,
        windowed_stats,
        registry,
    ) = delayed_run(PIPELINE_WINDOW)
    speedup = lockstep_seconds / windowed_seconds

    write_bench_json(
        "cluster_pipeline",
        {
            "streams": N_STREAMS,
            "ticks": N_TICKS,
            "delay_seconds": PIPELINE_DELAY_SECONDS,
            "window": PIPELINE_WINDOW,
            "lockstep_seconds": lockstep_seconds,
            "windowed_seconds": windowed_seconds,
            "speedup": speedup,
            "speedup_gate_min": MIN_PIPELINE_SPEEDUP,
            "lockstep_inflight": lockstep_inflight,
            "windowed_inflight": windowed_inflight,
            "max_inflight_depth": windowed_stats.max_inflight_depth,
            "backpressure_throttles": windowed_stats.backpressure_throttles,
            "outputs_identical": windowed_results == lockstep_results,
        },
        transport="pipe",
        shards=2,
    )

    # Pipelining reorders wire traffic, never results: the windowed run
    # is bitwise-identical to lockstep under the same delayed shard.
    assert windowed_results == lockstep_results, (
        "windowed run diverged from lockstep under a delayed shard"
    )

    # The window filled (real pipelining happened) and was never
    # exceeded -- from the engine's own high-water mark, the
    # controller's stats, and the published depth gauge.
    assert lockstep_inflight["window"] == 1
    assert lockstep_inflight["max_depth"] == 0, (
        "lockstep must route through step_batch, not the windowed path"
    )
    assert windowed_inflight["window"] == PIPELINE_WINDOW
    assert windowed_inflight["max_depth"] == PIPELINE_WINDOW
    assert windowed_stats.max_inflight_depth == PIPELINE_WINDOW
    families = parse_prometheus(registry.render_prometheus())
    depth_gauge = families["repro_cluster_inflight_depth"]["samples"][
        ("repro_cluster_inflight_depth", ())
    ]
    assert 0 <= depth_gauge < PIPELINE_WINDOW  # drained by the last tick

    # The throughput gate itself: latency hiding, not luck.  Holds on
    # one core -- the overlapped resource is emulated wire latency.
    assert speedup >= MIN_PIPELINE_SPEEDUP, (
        f"window-{PIPELINE_WINDOW} run is only {speedup:.2f}x lockstep "
        f"under a {PIPELINE_DELAY_SECONDS * 1e3:.0f}ms-slow shard "
        f"(gate >= {MIN_PIPELINE_SPEEDUP}x); the in-flight window is "
        "not overlapping the round trip"
    )
