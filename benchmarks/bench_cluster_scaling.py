"""Cluster scaling: sharded multi-process serving vs shard count.

The sharded cluster's claim is twofold.  *Correctness*: partitioning 1024
concurrent streams across worker processes by consistent hashing and
merging each tick in input order is bitwise-identical to one
single-process ``StreamingEngine`` -- asserted here unconditionally, for
every shard count.  *Scaling*: because a tick's per-stream work is
embarrassingly parallel, 4 shards should deliver >= 2x the frames/sec of
1 shard at 1024+ streams.

The scaling gate is hardware-gated: it measures real multi-core
parallelism, so it only asserts when the machine grants this process at
least 4 usable cores (CI runners do; a 1-core sandbox physically cannot
run 4 workers concurrently).  The measurement itself always runs and is
recorded in ``BENCH_cluster.json`` either way, with the gate's status
spelled out, so the perf trajectory stays comparable across PRs.
"""

import time

import numpy as np
import pytest

from repro.core.monitor import UncertaintyMonitor
from repro.serving import ShardedEngine, StreamingEngine, build_stream_workload

N_STREAMS = 1024
N_TICKS = 6
SHARD_COUNTS = (1, 2, 4)
MIN_SPEEDUP_4_VS_1 = 2.0
MIN_CORES_FOR_GATE = 4


@pytest.fixture(scope="module")
def workload(study_data):
    rng = np.random.default_rng(20240)
    return build_stream_workload(study_data.feature_model, N_STREAMS, N_TICKS, rng)


@pytest.fixture(scope="module")
def engine_factory(study_data):
    def factory():
        return StreamingEngine(
            ddm=study_data.ddm,
            stateless_qim=study_data.stateless_qim,
            timeseries_qim=study_data.ta_qim,
            layout=study_data.layout,
            monitor_factory=lambda: UncertaintyMonitor(threshold=0.35),
        )

    return factory


def _replay(engine, workload):
    """Run the workload, returning per-stream result lists (incl. verdicts)."""
    per_stream = {}
    for frames in workload.ticks:
        for result in engine.step_batch(frames):
            per_stream.setdefault(result.stream_id, []).append(result)
    return per_stream


def test_cluster_equivalence_and_scaling(
    study_data, engine_factory, workload, write_output, write_bench_json, usable_cores
):
    start = time.perf_counter()
    single_results = _replay(engine_factory(), workload)
    single_seconds = time.perf_counter() - start

    shard_seconds = {}
    for n_shards in SHARD_COUNTS:
        with ShardedEngine(engine_factory, n_shards) as cluster:
            start = time.perf_counter()
            cluster_results = _replay(cluster, workload)
            shard_seconds[n_shards] = time.perf_counter() - start
        assert cluster_results == single_results, (
            f"{n_shards}-shard cluster results diverge from the "
            "single-process engine (outcomes, uncertainties, or verdicts)"
        )

    scaling = shard_seconds[1] / shard_seconds[4]
    cores = usable_cores
    gate_active = cores >= MIN_CORES_FOR_GATE

    lines = [
        f"CLUSTER SCALING ({N_STREAMS} streams x {N_TICKS} ticks, "
        f"{workload.n_frames} frames, monitors on)",
        f"usable cores:          {cores}",
        f"single-process:        {workload.n_frames / single_seconds:,.0f} frames/s",
    ]
    for n_shards in SHARD_COUNTS:
        lines.append(
            f"{n_shards} shard(s):            "
            f"{workload.n_frames / shard_seconds[n_shards]:,.0f} frames/s"
        )
    lines.append(f"4-shard vs 1-shard:    {scaling:.2f}x")
    lines.append(f"outputs identical:     True (all shard counts)")
    lines.append(
        f"scaling gate (>= {MIN_SPEEDUP_4_VS_1}x): "
        + ("ASSERTED" if gate_active else f"RECORDED ONLY ({cores} core(s))")
    )
    write_output("cluster_scaling.txt", "\n".join(lines) + "\n")

    write_bench_json(
        "cluster",
        {
            "streams": N_STREAMS,
            "ticks": N_TICKS,
            "frames": workload.n_frames,
            "single_process_seconds": single_seconds,
            "single_process_frames_per_sec": workload.n_frames / single_seconds,
            "shard_seconds": {str(n): shard_seconds[n] for n in SHARD_COUNTS},
            "shard_frames_per_sec": {
                str(n): workload.n_frames / shard_seconds[n] for n in SHARD_COUNTS
            },
            "speedup_4_shards_vs_1": scaling,
            "outputs_identical": True,
            "scaling_gate_min": MIN_SPEEDUP_4_VS_1,
            "scaling_gate_asserted": gate_active,
        },
    )

    if gate_active:
        assert scaling >= MIN_SPEEDUP_4_VS_1, (
            f"4 shards must be >= {MIN_SPEEDUP_4_VS_1}x over 1 shard at "
            f"{N_STREAMS} streams on {cores} cores, measured {scaling:.2f}x"
        )
    else:
        pytest.skip(
            f"scaling gate needs >= {MIN_CORES_FOR_GATE} usable cores, have "
            f"{cores}; equivalence asserted, scaling recorded "
            f"({scaling:.2f}x) in BENCH_cluster.json"
        )


def test_snapshot_restore_roundtrip_overhead(
    study_data, engine_factory, workload, tmp_path, write_bench_json
):
    """Snapshot + save + load + restore cost at 1024 streams, and the
    restored cluster's bitwise fidelity on the following ticks."""
    with ShardedEngine(engine_factory, 2) as cluster:
        warm = workload.ticks[: N_TICKS // 2]
        rest = workload.ticks[N_TICKS // 2 :]
        for frames in warm:
            cluster.step_batch(frames)

        start = time.perf_counter()
        snapshot = cluster.snapshot()
        capture_seconds = time.perf_counter() - start
        start = time.perf_counter()
        snapshot.save(tmp_path / "bench_snap")
        save_seconds = time.perf_counter() - start

        baseline = [cluster.step_batch(frames) for frames in rest]

    from repro.serving import RegistrySnapshot

    start = time.perf_counter()
    loaded = RegistrySnapshot.load(tmp_path / "bench_snap")
    load_seconds = time.perf_counter() - start
    with ShardedEngine(engine_factory, 4) as cluster2:  # different topology
        start = time.perf_counter()
        cluster2.restore(loaded)
        restore_seconds = time.perf_counter() - start
        resumed = [cluster2.step_batch(frames) for frames in rest]

    assert resumed == baseline, (
        "restore-then-step must be bitwise-identical to the uninterrupted run"
    )
    write_bench_json(
        "cluster_snapshot",
        {
            "streams": snapshot.n_streams,
            "capture_seconds": capture_seconds,
            "save_seconds": save_seconds,
            "load_seconds": load_seconds,
            "restore_seconds": restore_seconds,
        },
    )
