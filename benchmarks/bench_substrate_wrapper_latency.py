"""Runtime latency of the online taUW step.

The wrapper is meant for runtime verification inside a perception loop, so
its per-frame overhead matters: one `step` covers DDM inference, the
stateless QIM lookup, buffer update, information fusion, taQF computation,
and the taQIM lookup.
"""

import numpy as np
import pytest

from repro.core.timeseries_wrapper import TimeseriesAwareUncertaintyWrapper


@pytest.fixture(scope="module")
def online_wrapper(study_data):
    rng = np.random.default_rng(11)
    wrapper = TimeseriesAwareUncertaintyWrapper(
        ddm=study_data.ddm,
        stateless_qim=study_data.stateless_qim,
        timeseries_qim=study_data.ta_qim,
        layout=study_data.layout,
    )
    dim = study_data.feature_model.config.dim
    frames = rng.normal(size=(10, dim))
    frames /= np.linalg.norm(frames, axis=1, keepdims=True)
    quality = rng.uniform(0.0, 0.4, size=(10, len(study_data.layout.stateless_names)))
    return wrapper, frames, quality


def test_online_step_latency(benchmark, online_wrapper):
    wrapper, frames, quality = online_wrapper

    state = {"t": 0}

    def one_step():
        t = state["t"]
        result = wrapper.step(frames[t], quality[t], new_series=(t == 0))
        state["t"] = (t + 1) % len(frames)
        return result

    result = benchmark(one_step)
    assert 0.0 <= result.fused_uncertainty <= 1.0


def test_series_replay_latency(benchmark, online_wrapper):
    wrapper, frames, quality = online_wrapper

    def replay_series():
        wrapper.reset()
        last = None
        for t in range(len(frames)):
            last = wrapper.step(frames[t], quality[t])
        return last

    result = benchmark(replay_series)
    assert result.timestep == len(frames) - 1
