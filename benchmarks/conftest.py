"""Shared fixtures for the benchmark harness.

The expensive study pipeline (data generation, DDM training, wrapper
calibration) runs once per session; every bench file reuses the prepared
:class:`repro.evaluation.StudyData` and writes its regenerated table/figure
to ``benchmarks/output/``.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time

import pytest

from repro.evaluation import StudyConfig, evaluate_study, prepare_study_data

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def _usable_cores() -> int:
    """CPU cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="session")
def usable_cores() -> int:
    """The affinity-aware core count, shared with the BENCH_*.json context."""
    return _usable_cores()


@pytest.fixture(scope="session")
def study_data():
    """The default-scale study pipeline, prepared once."""
    return prepare_study_data(StudyConfig())


@pytest.fixture(scope="session")
def study_results(study_data):
    """Evaluated Table I / Fig. 4-6 results on the prepared data."""
    return evaluate_study(study_data)


@pytest.fixture(scope="session")
def write_output():
    """Writer that persists a rendered table/figure and echoes it."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> None:
        path = OUTPUT_DIR / name
        path.write_text(text)
        print(f"\n--- {name} ---\n{text}")

    return _write


@pytest.fixture(scope="session")
def write_bench_json():
    """Writer for machine-readable ``BENCH_<name>.json`` artifacts.

    Every perf benchmark emits one of these so the throughput trajectory
    is comparable across PRs and machines: the metrics land under a
    ``metrics`` key next to enough environment context to interpret them
    -- python version, host core count (total and affinity-aware), plus
    the serving topology (``transport`` and ``shards``) the numbers were
    measured on, so a pipe-on-1-core figure is never confused with a
    tcp-on-16-core one.
    """
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _write(
        name: str,
        metrics: dict,
        *,
        transport=None,
        shards=None,
    ) -> pathlib.Path:
        payload = {
            "benchmark": name,
            "unix_time": time.time(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "usable_cores": _usable_cores(),
            "transport": transport,
            "shards": shards,
            "metrics": metrics,
        }
        path = OUTPUT_DIR / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2))
        print(f"\nwrote {path}")
        return path

    return _write
