"""Shared fixtures for the benchmark harness.

The expensive study pipeline (data generation, DDM training, wrapper
calibration) runs once per session; every bench file reuses the prepared
:class:`repro.evaluation.StudyData` and writes its regenerated table/figure
to ``benchmarks/output/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.evaluation import StudyConfig, evaluate_study, prepare_study_data

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def study_data():
    """The default-scale study pipeline, prepared once."""
    return prepare_study_data(StudyConfig())


@pytest.fixture(scope="session")
def study_results(study_data):
    """Evaluated Table I / Fig. 4-6 results on the prepared data."""
    return evaluate_study(study_data)


@pytest.fixture(scope="session")
def write_output():
    """Writer that persists a rendered table/figure and echoes it."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> None:
        path = OUTPUT_DIR / name
        path.write_text(text)
        print(f"\n--- {name} ---\n{text}")

    return _write
