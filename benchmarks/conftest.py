"""Shared fixtures for the benchmark harness.

The expensive study pipeline (data generation, DDM training, wrapper
calibration) runs once per session; every bench file reuses the prepared
:class:`repro.evaluation.StudyData` and writes its regenerated table/figure
to ``benchmarks/output/``.
"""

from __future__ import annotations

import json
import pathlib

import pytest

import _emit
from repro.evaluation import StudyConfig, evaluate_study, prepare_study_data

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def usable_cores() -> int:
    """The affinity-aware core count, shared with the BENCH_*.json context."""
    return _emit.usable_cores()


@pytest.fixture(scope="session")
def study_data():
    """The default-scale study pipeline, prepared once."""
    return prepare_study_data(StudyConfig())


@pytest.fixture(scope="session")
def study_results(study_data):
    """Evaluated Table I / Fig. 4-6 results on the prepared data."""
    return evaluate_study(study_data)


@pytest.fixture(scope="session")
def write_output():
    """Writer that persists a rendered table/figure and echoes it."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> None:
        path = OUTPUT_DIR / name
        path.write_text(text)
        print(f"\n--- {name} ---\n{text}")

    return _write


@pytest.fixture(scope="session")
def write_bench_json():
    """Writer for machine-readable ``BENCH_<name>.json`` artifacts.

    The payload shape is :func:`_emit.bench_envelope` -- schema version,
    git SHA, host cores, timestamp, topology, the benchmark's metrics,
    and (optionally) a live metrics-registry snapshot -- so every
    benchmark in this directory emits the same envelope and downstream
    tooling parses one format.
    """
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _write(
        name: str,
        metrics: dict,
        *,
        transport=None,
        shards=None,
        metrics_snapshot=None,
    ) -> pathlib.Path:
        payload = _emit.bench_envelope(
            name,
            metrics,
            transport=transport,
            shards=shards,
            metrics_snapshot=metrics_snapshot,
        )
        path = OUTPUT_DIR / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2))
        print(f"\nwrote {path}")
        return path

    return _write
