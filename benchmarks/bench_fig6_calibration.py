"""Fig. 6: calibration plot of the uncertainty-fusion approaches.

Regenerates the quantile calibration curves (predicted certainty vs
observed correctness in 10 % steps) for the naive, worst-case, opportune,
and taUW models, and benchmarks the curve construction.
"""

import numpy as np

from repro.evaluation.reporting import render_fig6
from repro.evaluation.study import (
    APPROACH_NAIVE,
    APPROACH_OPPORTUNE,
    APPROACH_TAUW,
    APPROACH_WORST_CASE,
)

PLOTTED = (APPROACH_NAIVE, APPROACH_WORST_CASE, APPROACH_OPPORTUNE, APPROACH_TAUW)


def _mean_signed_gap(curve) -> float:
    """Count-weighted mean of (predicted - observed) certainty."""
    weights = curve.counts / curve.counts.sum()
    return float(np.sum(weights * (curve.predicted - curve.observed)))


def test_fig6_calibration_curves(benchmark, study_results, write_output):
    def build_curves():
        return {
            name: study_results.approach(name).calibration_curve(n_bins=10)
            for name in PLOTTED
        }

    curves = benchmark(build_curves)
    write_output("fig6_calibration.txt", render_fig6(curves))

    gaps = {name: _mean_signed_gap(curve) for name, curve in curves.items()}

    # Naive fusion sits below the diagonal (overconfident): predicted
    # certainty exceeds observed correctness on average.
    assert gaps[APPROACH_NAIVE] > 0.0
    # Worst-case fusion is the most conservative of the four models.
    assert gaps[APPROACH_WORST_CASE] == min(gaps.values())
    # The naive model is the most overconfident of the four.
    assert gaps[APPROACH_NAIVE] == max(gaps.values())
    # taUW stays close to the diagonal (well calibrated).
    assert abs(gaps[APPROACH_TAUW]) < abs(gaps[APPROACH_NAIVE])
    # taUW offers the widest range of certainty values (finest resolution).
    spreads = {
        name: curve.predicted.max() - curve.predicted.min()
        for name, curve in curves.items()
    }
    assert spreads[APPROACH_TAUW] >= max(
        spreads[APPROACH_OPPORTUNE], spreads[APPROACH_WORST_CASE]
    ) - 1e-9
