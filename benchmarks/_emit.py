"""The shared ``BENCH_*.json`` envelope: one schema for every benchmark.

Every perf benchmark in this directory emits a machine-readable artifact
so the throughput trajectory is comparable across PRs and machines.
Before this module each emitter assembled its own dict; this helper
pins the envelope once:

* ``schema_version`` -- bumped when the envelope shape changes, so a
  dashboard reading a directory of artifacts from different PRs knows
  what it is looking at;
* provenance -- the repo's git SHA (when available), wall-clock
  timestamp, python version, and host core counts (total and
  affinity-aware: CI runners routinely pin benchmarks to a subset);
* topology -- the serving ``transport`` and ``shards`` the numbers were
  measured on, so a pipe-on-1-core figure is never confused with a
  tcp-on-16-core one;
* ``metrics`` -- the benchmark's own numbers, untouched;
* ``metrics_snapshot`` -- optionally, a full
  :meth:`~repro.serving.observability.metrics.MetricsRegistry.snapshot`
  of the run's live registry, so the artifact carries the same counter
  families a production scrape would show.
"""

from __future__ import annotations

import os
import platform
import subprocess
import time

#: Version of the BENCH_*.json envelope written by :func:`bench_envelope`.
BENCH_SCHEMA_VERSION = 1


def git_sha() -> str | None:
    """The repo's HEAD commit, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def usable_cores() -> int:
    """CPU cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def bench_envelope(
    name: str,
    metrics: dict,
    *,
    transport=None,
    shards=None,
    metrics_snapshot=None,
) -> dict:
    """Assemble the canonical ``BENCH_<name>.json`` payload."""
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "benchmark": name,
        "git_sha": git_sha(),
        "unix_time": time.time(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "usable_cores": usable_cores(),
        "transport": transport,
        "shards": shards,
        "metrics": metrics,
        "metrics_snapshot": metrics_snapshot,
    }
