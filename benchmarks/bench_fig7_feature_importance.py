"""Fig. 7: feature-importance study over the four taQFs.

Retrains and recalibrates the taQIM for every subset of
{ratio, length, size, certainty} (16 runs including the stateless-only
baseline) and reports the Brier score per subset; benchmarks the sweep.
"""

from repro.evaluation.importance import feature_importance_study
from repro.evaluation.reporting import render_fig7


def test_fig7_feature_importance(benchmark, study_data, write_output):
    rows = benchmark.pedantic(
        feature_importance_study, args=(study_data,), rounds=1, iterations=1
    )
    write_output("fig7_feature_importance.txt", render_fig7(rows))

    by_subset = {row.subset: row.brier for row in rows}
    baseline = by_subset[()]
    singles = {
        name: by_subset[(name,)] for name in ("ratio", "length", "size", "certainty")
    }

    # Paper: ratio and certainty are the strongest single factors; length
    # is never the best factor on its own.
    assert min(singles, key=singles.get) in ("ratio", "certainty")
    assert singles["length"] >= singles[min(singles, key=singles.get)]
    # Paper: in combination with one other feature, length helps (or at
    # least does not hurt) relative to that feature alone.
    assert by_subset[("ratio", "length")] <= singles["ratio"] + 1e-3
    # Paper: the optimum is already reached with two factors (redundancy);
    # the full set must not be materially better than the best pair.
    pairs = [b for s, b in by_subset.items() if len(s) == 2]
    full = by_subset[("ratio", "length", "size", "certainty")]
    assert min(pairs) <= full + 1e-3
    # Using taQFs helps: the best subset beats the stateless baseline.
    assert min(by_subset.values()) < baseline
