"""Durability cost: background snapshots off the hot path, O(dead-shard) recovery.

The durability claim has three halves, each gated here:

* *Non-blocking*: with ``snapshot_mode="bg"`` + incremental deltas, a
  snapshot-cadence tick pays only the consistent in-memory capture; the
  serialization and disk I/O ride a background writer thread.  Gate:
  steady-state tick p99 with background snapshots every other tick stays
  within ``P99_BUDGET`` x the snapshot-free p99 at 10k streams.  (The
  one-off *base* capture lands in the warm-up window and is reported
  separately as ``base_capture_tick_seconds`` -- steady state in
  incremental mode is delta captures, but we do not hide the base cost.)
  Each configuration runs ``REPEATS`` times, interleaved, and the
  per-tick minimum across repeats is what the percentiles see: a shared
  box's scheduling spikes land on random ticks of random runs, while
  the capture cost this gate measures is systematic -- the minimum
  keeps the signal and sheds the noise, identically for both sides.
  Both configurations also run with the cyclic GC paused: capture
  allocations otherwise trip CPython gen-2 sweeps whose ~0.5s pauses
  land on deterministic ticks and swamp the durability cost under
  measurement; the pauses are an allocator artifact shared by the
  synchronous path (latency-sensitive deployments pause/collect the
  GC off-tick for the same reason), not durability work.

* *Equivalent*: composing the store's base + delta chain back through
  ``load_snapshot`` is bitwise-identical to a full synchronous
  whole-registry snapshot of an uninterrupted reference engine at the
  same tick, and the instrumented run's outputs equal the snapshot-free
  run's outputs.

* *O(dead-shard) recovery*: when one shard worker dies mid-step, a
  shard-local recovery revives and replays *only* the dead shard.  The
  proof is counting, not timing: a tap transport counts every request
  per (shard, command) -- survivors must see exactly one step request
  per tick and zero restores, while the victim sees one restore and the
  replayed/salvaged extra steps.  A ``shard_local=False`` contrast run
  on the same kill point records the full-restore recovery cost.

Artifacts: ``BENCH_durability.json`` (hot-path + restore equivalence)
and ``BENCH_durability_recovery.json`` (recovery counting + timings).
"""

import gc
from collections import deque

import numpy as np
import pytest

from repro.core.monitor import UncertaintyMonitor
from repro.exceptions import ClusterWorkerError
from repro.serving import (
    FailoverPolicy,
    ServingController,
    ShardedEngine,
    StreamingEngine,
    build_stream_workload,
    load_snapshot,
)
from repro.serving.transport import Transport, WorkerEndpoint, resolve_transport

# -- non-blocking gate ------------------------------------------------------
#: The ISSUE scale: enough streams that a capture is real work (a full
#: capture here costs ~75% of a tick, so a synchronous whole-registry
#: snapshot on the tick path would blow the budget immediately).
LAT_STREAMS = 10_000
LAT_TICKS = 32
#: Ticks excluded from both runs' percentiles: interpreter/cache warm-up
#: plus the one-off base capture (its cost is still reported).
WARMUP_TICKS = 4
#: Wide enough that one compressed delta write finishes within the
#: cadence interval -- the writer must keep up, not accumulate backlog
#: (``snapshots_dropped == 0`` is asserted, so a sustained overrun
#: fails loudly rather than silently shedding durability).
SNAPSHOT_EVERY = 4
#: Deltas per base, larger than the cadence count: steady state of this
#: run is pure delta captures after the single warm-up base.
SNAPSHOT_DELTAS = 64
#: Interleaved repeats per configuration; percentiles see the per-tick
#: minimum across repeats (noise suppression, see module docstring).
REPEATS = 2
#: The ISSUE gate: snapshot-tick p99 <= 1.5x the snapshot-free p99.
P99_BUDGET = 1.5

# -- recovery gate ----------------------------------------------------------
REC_STREAMS = 2_048
REC_TICKS = 12
REC_SHARDS = 4
JOURNAL_DEPTH = 4
#: Kill the victim's step request #6 on the recv phase: the request went
#: out, the reply never arrives -- the survivors' replies from the same
#: fan-out are salvageable, which is what makes shard-local repair legal.
KILL_STEP_INDEX = 6
VICTIM = 2


def _engine_factory(study_data):
    """Monitored engines: the paper's serving configuration, where a
    per-stream step (DDM + QIM + drift monitor) is real work and the
    consistent capture is a small fraction of it."""

    def factory():
        return StreamingEngine(
            ddm=study_data.ddm,
            stateless_qim=study_data.stateless_qim,
            timeseries_qim=study_data.ta_qim,
            layout=study_data.layout,
            max_buffer_length=4,
            monitor_factory=lambda: UncertaintyMonitor(
                threshold=0.35, reentry_threshold=0.25, risk_budget=3.0
            ),
        )

    return factory


def _assert_snapshots_identical(actual, expected, context):
    """Bitwise equality of two snapshots, ignoring controller telemetry.

    The controller block embeds wall-clock EWMAs that legitimately
    differ between two correct runs; everything else -- stream set,
    buffers, monitors, statistics, tick -- must match exactly.
    """
    actual_meta, actual_arrays = actual.to_wire()
    expected_meta, expected_arrays = expected.to_wire()
    actual_meta = dict(actual_meta)
    expected_meta = dict(expected_meta)
    actual_meta.pop("controller", None)
    expected_meta.pop("controller", None)
    assert actual_meta == expected_meta, f"{context}: snapshot meta diverged"
    assert set(actual_arrays) == set(expected_arrays), context
    for key, array in actual_arrays.items():
        other = expected_arrays[key]
        assert array.dtype == other.dtype, f"{context}: {key} dtype"
        assert np.array_equal(array, other), f"{context}: {key} bytes"


def _run_latency(study_data, workload, store_dir=None):
    """One single-process controller run; bg incremental if store_dir.

    The cyclic GC is paused for the measured loop (see module
    docstring) and re-enabled -- with a full collect -- afterwards.
    """
    kwargs = {}
    if store_dir is not None:
        kwargs = dict(
            snapshot_every=SNAPSHOT_EVERY,
            snapshot_dir=store_dir,
            snapshot_mode="bg",
            snapshot_deltas=SNAPSHOT_DELTAS,
        )
    controller = ServingController(_engine_factory(study_data)(), **kwargs)
    gc.disable()
    try:
        results = controller.run(workload.ticks)
    finally:
        gc.enable()
        gc.collect()
    latencies = [t.latency_seconds for t in controller.telemetry]
    controller.close()  # drains the writer: every accepted write lands
    return results, latencies, controller


def test_background_snapshots_stay_off_the_hot_path(
    study_data, write_bench_json, tmp_path
):
    rng = np.random.default_rng(20262)
    workload = build_stream_workload(
        study_data.feature_model, LAT_STREAMS, LAT_TICKS, rng
    )

    # Ground truth: the plain engine loop, and the synchronous
    # whole-registry snapshot at the final tick.
    reference_engine = _engine_factory(study_data)()
    reference: dict = {}
    for frames in workload.ticks:
        for result in reference_engine.step_batch(frames):
            reference.setdefault(result.stream_id, []).append(result)
    reference_snapshot = reference_engine.snapshot()

    # Interleaved repeats: free/bg/free/bg, so slow-box drift hits both
    # configurations alike.  The bg runs write real base+delta stores.
    free_runs, bg_runs, stores = [], [], []
    last_bg = None
    for repeat in range(REPEATS):
        results, latencies, _ = _run_latency(study_data, workload)
        assert results == reference, "snapshot-free run diverged"
        free_runs.append(latencies)
        store_dir = tmp_path / f"store{repeat}"
        results, latencies, controller = _run_latency(
            study_data, workload, store_dir=store_dir
        )
        assert results == reference, "background snapshots changed outputs"
        assert controller.stats.snapshots_dropped == 0, "writer overran"
        bg_runs.append(latencies)
        stores.append(store_dir)
        last_bg = controller

    written = list(last_bg.snapshots_written)
    bases = [s for s in written if "base_" in s]
    deltas = [s for s in written if "delta_" in s]
    assert len(bases) == 1 and len(deltas) == LAT_TICKS // SNAPSHOT_EVERY - 1

    free_min = np.minimum.reduce(free_runs)[WARMUP_TICKS:]
    bg_min = np.minimum.reduce(bg_runs)[WARMUP_TICKS:]
    free_p99 = float(np.percentile(free_min, 99))
    bg_p99 = float(np.percentile(bg_min, 99))
    base_tick_seconds = float(
        min(run[SNAPSHOT_EVERY - 1] for run in bg_runs)
    )

    # Restore-equivalence gate: every repeat's manifest chain composes
    # back to the exact registry the synchronous whole-registry
    # snapshot holds at the same tick.
    for store_dir in stores:
        restored = load_snapshot(store_dir)
        assert restored.tick == LAT_TICKS
        _assert_snapshots_identical(
            restored, reference_snapshot, "store restore vs sync snapshot"
        )

    write_bench_json(
        "durability",
        {
            "streams": LAT_STREAMS,
            "ticks": LAT_TICKS,
            "warmup_ticks": WARMUP_TICKS,
            "repeats": REPEATS,
            "snapshot_every": SNAPSHOT_EVERY,
            "snapshot_deltas": SNAPSHOT_DELTAS,
            "snapshot_free_p50_tick_seconds": float(np.median(free_min)),
            "snapshot_free_p99_tick_seconds": free_p99,
            "bg_snapshot_p50_tick_seconds": float(np.median(bg_min)),
            "bg_snapshot_p99_tick_seconds": bg_p99,
            "p99_ratio": bg_p99 / free_p99,
            "p99_budget": P99_BUDGET,
            "base_capture_tick_seconds": base_tick_seconds,
            "bases_written": len(bases),
            "deltas_written": len(deltas),
            "gc_disabled": True,  # see module docstring
            "free_min_ticks_seconds": [round(float(x), 4) for x in free_min],
            "bg_min_ticks_seconds": [round(float(x), 4) for x in bg_min],
            "snapshots_dropped": 0,  # asserted per repeat above
            "outputs_identical": True,  # asserted per run above
            "restore_bitwise_identical": True,  # asserted above
        },
        transport=None,
        shards=None,
    )

    assert bg_p99 <= P99_BUDGET * free_p99, (
        f"background-snapshot p99 {bg_p99 * 1e3:.1f}ms exceeds "
        f"{P99_BUDGET}x the snapshot-free p99 {free_p99 * 1e3:.1f}ms"
    )


# ---------------------------------------------------------------------------
# Recovery: a counting tap transport proving O(dead-shard)
# ---------------------------------------------------------------------------

class _TapEndpoint(WorkerEndpoint):
    """Endpoint proxy: counts requests; kills one step on its recv."""

    def __init__(self, transport, inner):
        # No super().__init__: `alive` is a property here, derived from
        # the inner endpoint plus our own kill verdict.
        self.shard = inner.shard
        self._transport = transport
        self._inner = inner
        self._dead = False
        self._kill_on_recv: deque = deque()

    @property
    def alive(self):
        return not self._dead and self._inner.alive

    @property
    def trace_context(self):
        return self._inner.trace_context

    @trace_context.setter
    def trace_context(self, value):
        self._inner.trace_context = value

    @property
    def tick_tag(self):
        return self._inner.tick_tag

    @tick_tag.setter
    def tick_tag(self, value):
        self._inner.tick_tag = value

    @property
    def last_telemetry(self):
        return self._inner.last_telemetry

    @property
    def last_reply_tick(self):
        return self._inner.last_reply_tick

    def _before_send(self, command):
        if self._dead:
            raise ClusterWorkerError(
                f"shard {self.shard} worker is gone", shard=self.shard
            )
        self._kill_on_recv.append(self._transport._count(self.shard, command))

    def prepare(self, command, payload=None):
        return (command, self._inner.prepare(command, payload))

    def send_prepared(self, token):
        command, inner_token = token
        self._before_send(command)
        self._inner.send_prepared(inner_token)

    def send(self, command, payload=None):
        self._before_send(command)
        self._inner.send(command, payload)

    def recv(self):
        kill = self._kill_on_recv.popleft() if self._kill_on_recv else False
        if kill:
            # The worker dies after the request went out: SIGKILL the
            # child, never read the reply.  The same fan-out's survivor
            # replies are intact, so the controller may repair
            # shard-locally.
            self._inner.process.kill()
            self._inner.process.join(5.0)
            self._dead = True
            return ("error", "ClusterWorkerError", "bench: worker killed")
        return self._inner.recv()

    def set_timeout(self, timeout):
        self._inner.set_timeout(timeout)

    def shutdown(self, timeout=5.0):
        self._dead = True
        self._inner.shutdown(timeout)


class _TapTransport(Transport):
    """Pipe transport wrapper counting every request per (shard, command).

    Respawned endpoints (failover) are wrapped again with the shared
    counters, so the counts span worker generations -- exactly what the
    O(dead-shard) assertion needs.
    """

    def __init__(self, kill_shard=None, kill_step_index=None):
        self._inner = resolve_transport("pipe")
        self.counts: dict = {}
        self._kill_shard = kill_shard
        self._kill_step_index = kill_step_index
        self.name = self._inner.name
        self.requires_wire_ids = self._inner.requires_wire_ids
        self.handshake_timeout = self._inner.handshake_timeout
        self.workers_self_configured = self._inner.workers_self_configured

    def _count(self, shard, command):
        key = (shard, command)
        index = self.counts.get(key, 0)
        self.counts[key] = index + 1
        return (
            command == "step"
            and shard == self._kill_shard
            and index == self._kill_step_index
        )

    def connect(self, shard, engine_factory):
        return _TapEndpoint(self, self._inner.connect(shard, engine_factory))

    def max_shards(self):
        return self._inner.max_shards()


@pytest.fixture(scope="module")
def recovery_workload(study_data):
    rng = np.random.default_rng(20263)
    return build_stream_workload(
        study_data.feature_model, REC_STREAMS, REC_TICKS, rng
    )


def _run_killed(study_data, workload, shard_local):
    factory = _engine_factory(study_data)
    transport = _TapTransport(kill_shard=VICTIM, kill_step_index=KILL_STEP_INDEX)
    with ShardedEngine(factory, REC_SHARDS, transport=transport) as cluster:
        controller = ServingController(
            cluster,
            failover=FailoverPolicy(
                max_failovers=2,
                journal_depth=JOURNAL_DEPTH,
                shard_local=shard_local,
            ),
        )
        results = controller.run(workload.ticks)
        stats = controller.stats
        recovery = [t for t in controller.telemetry if t.failovers]
    assert len(recovery) == 1
    return results, stats, recovery[0], transport.counts


def test_shard_local_recovery_touches_only_the_dead_shard(
    study_data, recovery_workload, write_bench_json, usable_cores
):
    factory = _engine_factory(study_data)
    baseline_engine = factory()
    baseline: dict = {}
    for frames in recovery_workload.ticks:
        for result in baseline_engine.step_batch(frames):
            baseline.setdefault(result.stream_id, []).append(result)

    local_results, local_stats, local_record, counts = _run_killed(
        study_data, recovery_workload, shard_local=True
    )
    full_results, full_stats, full_record, full_counts = _run_killed(
        study_data, recovery_workload, shard_local=False
    )

    # Gate 1: exactness on both recovery paths.
    assert local_results == baseline, "shard-local recovery diverged"
    assert full_results == baseline, "full recovery diverged"
    assert local_stats.failovers == 1 and local_stats.shards_respawned == 1
    assert local_stats.shard_recoveries == 1
    assert full_stats.shard_recoveries == 0

    # Gate 2: O(dead-shard) -- survivors saw exactly one step request
    # per tick and no restore; only the victim was restored and stepped
    # extra times (journal replay + the salvaged tick).
    survivors = [s for s in range(REC_SHARDS) if s != VICTIM]
    for shard in survivors:
        assert counts[(shard, "step")] == REC_TICKS, (
            f"survivor shard {shard} was re-stepped during recovery"
        )
        assert (shard, "restore") not in counts, (
            f"survivor shard {shard} was restored during recovery"
        )
    assert counts[(VICTIM, "restore")] == 1
    assert counts[(VICTIM, "step")] > REC_TICKS
    # The contrast run restored every shard -- that is the O(cluster)
    # cost shard-local recovery removes.
    assert all((s, "restore") in full_counts for s in range(REC_SHARDS))

    write_bench_json(
        "durability_recovery",
        {
            "streams": REC_STREAMS,
            "ticks": REC_TICKS,
            "journal_depth": JOURNAL_DEPTH,
            "kill_step_index": KILL_STEP_INDEX,
            "victim_shard": VICTIM,
            "replay_depth": local_record.replay_depth,
            "shard_local_recovery_seconds": local_record.recovery_seconds,
            "full_recovery_seconds": full_record.recovery_seconds,
            "recovery_speedup": (
                full_record.recovery_seconds / local_record.recovery_seconds
                if local_record.recovery_seconds
                else None
            ),
            "survivor_step_requests": {
                str(s): counts[(s, "step")] for s in survivors
            },
            "victim_step_requests": counts[(VICTIM, "step")],
            "survivors_restored": 0,
            "outputs_identical": local_results == baseline,
        },
        transport="pipe",
        shards=REC_SHARDS,
    )
