"""Fig. 4: misclassification rate over timesteps, isolated vs fused.

Regenerates the paper's Fig. 4 series (and its headline numbers: DDM
misclassification on the length-10 test windows, fused average, fused rate
at the final step) and benchmarks the per-timestep aggregation.
"""

from repro.evaluation.metrics import misclassification_by_timestep
from repro.evaluation.reporting import render_fig4


def test_fig4_misclassification_over_timesteps(benchmark, study_data, write_output):
    result = benchmark(misclassification_by_timestep, study_data.test_traces)

    write_output("fig4_misclassification.txt", render_fig4(result))

    # Shape checks against the paper's qualitative findings:
    # fused and isolated coincide on the first two steps ...
    assert result.fused[0] == result.isolated[0]
    assert result.fused[1] == result.isolated[1]
    # ... information fusion wins from step 3 on ...
    assert result.fused_mean < result.isolated_mean
    # ... and keeps improving towards the end of the series.
    assert result.fused[-1] <= result.fused[2]
    # The DDM's error level sits in the paper's regime (7.89 % there).
    assert 0.02 < result.isolated_mean < 0.20
