"""Failover cost: recovery latency and replay depth under a worker kill.

The failover claim has two halves -- *exactness* (a recovered run is
bitwise-identical to an uninterrupted one) and *boundedness* (recovery
costs a handful of ticks, not a cold start).  This benchmark measures
both on a pipe cluster serving the standard interleaved GTSRB workload:

* a *steady* failover-enabled run (no faults) -- per-tick latency p50/p95
  and the checkpoint overhead of the tick journal;
* a *kill* run -- one shard worker SIGKILLed mid-run; the controller
  respawns it, restores the recovery checkpoint, replays the journal,
  and retries.  Gates: the final per-stream results equal the
  uninterrupted single-process run bitwise, exactly one failover was
  needed, the replay depth matches the journal geometry, and the
  recovery stall stays under ``RECOVERY_BUDGET_TICKS`` x the steady p95
  tick latency (recovery does a respawn + full restore + replay, so its
  natural cost is a few tick-equivalents).

Everything lands in ``BENCH_failover.json`` next to the usual
transport/shards/host-core context.
"""

import numpy as np
import pytest

from repro.serving import (
    FailoverPolicy,
    MetricsRegistry,
    ServingController,
    ShardedEngine,
    StreamingEngine,
    build_stream_workload,
)

#: Large enough that a tick is real work: recovery carries a fixed
#: respawn cost (~one fork + handshake), which a toy tick size would
#: unfairly compare against.
N_STREAMS = 512
N_TICKS = 24
N_SHARDS = 2
JOURNAL_DEPTH = 4
#: Kill before this tick; with journal_depth=4 the checkpoints advance
#: after ticks 3/7/11, so the journal holds ticks 12-13 -> replay depth 2.
KILL_TICK = 14
VICTIM = 1
#: Recovery budget in steady-state p95 tick latencies (the ISSUE gate).
RECOVERY_BUDGET_TICKS = 5


@pytest.fixture(scope="module")
def workload(study_data):
    rng = np.random.default_rng(20261)
    return build_stream_workload(
        study_data.feature_model, N_STREAMS, N_TICKS, rng
    )


def _engine_factory(study_data):
    def factory():
        return StreamingEngine(
            ddm=study_data.ddm,
            stateless_qim=study_data.stateless_qim,
            timeseries_qim=study_data.ta_qim,
            layout=study_data.layout,
        )

    return factory


def _policy():
    return FailoverPolicy(max_failovers=2, journal_depth=JOURNAL_DEPTH)


def test_failover_recovery_is_exact_and_bounded(
    study_data, workload, write_bench_json, usable_cores
):
    factory = _engine_factory(study_data)

    # Uninterrupted single-process baseline: the bitwise reference.
    baseline_engine = factory()
    baseline: dict = {}
    for frames in workload.ticks:
        for result in baseline_engine.step_batch(frames):
            baseline.setdefault(result.stream_id, []).append(result)

    # Steady failover-enabled cluster run: no faults, measures the tick
    # cost including journal upkeep and checkpoint captures.
    with ShardedEngine(factory, N_SHARDS, transport="pipe") as cluster:
        controller = ServingController(cluster, failover=_policy())
        steady = controller.run(workload.ticks)
        steady_latencies = [t.latency_seconds for t in controller.telemetry]
        assert controller.stats.failovers == 0
    assert steady == baseline, "steady failover-enabled run diverged"
    steady_p50 = float(np.median(steady_latencies))
    steady_p95 = float(np.percentile(steady_latencies, 95))

    # Kill run: SIGKILL one worker between ticks; the next fan-out sees
    # the death and the controller recovers.  A metrics registry rides
    # along so the artifact carries the failover counter families a
    # production scrape of this incident would have shown.
    registry = MetricsRegistry()
    with ShardedEngine(factory, N_SHARDS, transport="pipe") as cluster:
        controller = ServingController(
            cluster, failover=_policy(), metrics=registry
        )
        killed: dict = {}
        for t, frames in enumerate(workload.ticks):
            if t == KILL_TICK:
                victim = cluster._workers[VICTIM].process
                victim.kill()
                victim.join(5.0)
            for result in controller.tick(frames):
                killed.setdefault(result.stream_id, []).append(result)
        stats = controller.stats
        recovery_records = [t for t in controller.telemetry if t.failovers]

    assert len(recovery_records) == 1
    record = recovery_records[0]
    recovery_seconds = record.recovery_seconds
    replay_depth = record.replay_depth
    recovery_budget = RECOVERY_BUDGET_TICKS * steady_p95

    write_bench_json(
        "failover",
        {
            "streams": N_STREAMS,
            "ticks": N_TICKS,
            "journal_depth": JOURNAL_DEPTH,
            "kill_tick": KILL_TICK,
            "steady_p50_tick_seconds": steady_p50,
            "steady_p95_tick_seconds": steady_p95,
            "failovers": stats.failovers,
            "shards_respawned": stats.shards_respawned,
            "replay_depth": replay_depth,
            "recovery_seconds": recovery_seconds,
            "recovery_budget_seconds": recovery_budget,
            "recovery_ticks_equivalent": (
                recovery_seconds / steady_p50 if steady_p50 else None
            ),
            "outputs_identical": killed == baseline,
        },
        transport="pipe",
        shards=N_SHARDS,
        metrics_snapshot=registry.snapshot(),
    )

    # Gate 1: exactness -- the kill is invisible in the results.
    assert killed == baseline, "recovered run diverged from the baseline"
    assert stats.failovers == 1
    assert stats.shards_respawned == 1

    # Gate 2: the replay depth matches the journal geometry (checkpoint
    # after tick 11, kill before tick 14 -> ticks 12-13 replayed).
    assert replay_depth == KILL_TICK % JOURNAL_DEPTH == 2

    # Gate 3: boundedness -- recovery (respawn + restore + replay +
    # retry) stays within the budget of steady-state p95 ticks.
    assert recovery_seconds < recovery_budget, (
        f"recovery took {recovery_seconds * 1e3:.1f}ms, over the budget of "
        f"{RECOVERY_BUDGET_TICKS} x p95 = {recovery_budget * 1e3:.1f}ms "
        f"(steady p95 {steady_p95 * 1e3:.1f}ms)"
    )
