"""Substrate performance: CART fitting and leaf lookup.

The quality impact model's cost is dominated by growing the CART tree on
the (large) training table and by `apply` at inference time.  These benches
track both so regressions in the from-scratch tree show up.
"""

import numpy as np
import pytest

from repro.trees.cart import DecisionTreeClassifier
from repro.trees.pruning import prune_to_min_samples


@pytest.fixture(scope="module")
def tree_data():
    rng = np.random.default_rng(5)
    n = 60_000
    X = rng.uniform(size=(n, 12))
    p_fail = 0.03 + 0.4 * (X[:, 0] > 0.8) + 0.3 * (X[:, 3] < 0.1)
    y = (rng.uniform(size=n) < np.clip(p_fail, 0, 1)).astype(int)
    return X, y


def test_tree_fit_throughput(benchmark, tree_data):
    X, y = tree_data

    tree = benchmark.pedantic(
        lambda: DecisionTreeClassifier(max_depth=8).fit(X, y),
        rounds=3,
        iterations=1,
    )
    assert tree.get_depth() <= 8
    assert tree.get_n_leaves() > 4


def test_tree_apply_throughput(benchmark, tree_data):
    X, y = tree_data
    tree = DecisionTreeClassifier(max_depth=8).fit(X, y)

    leaves = benchmark(tree.apply, X)
    assert leaves.shape == (len(X),)


def test_tree_prune_throughput(benchmark, tree_data):
    X, y = tree_data
    tree = DecisionTreeClassifier(max_depth=8).fit(X, y)

    pruned = benchmark(prune_to_min_samples, tree, X, 200)
    assert pruned.get_n_leaves() <= tree.get_n_leaves()
