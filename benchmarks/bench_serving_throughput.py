"""Serving throughput: batched engine vs naive per-stream step loop.

The streaming engine's claim is that taUW uncertainty machinery stays
practical at fleet scale: one tick of 256 concurrent object streams runs as
one batched DDM inference + one vectorized fusion/taQF/taQIM pass instead of
256 sequential wrapper ``step`` calls.  This benchmark measures both paths
on the same interleaved GTSRB situation workload and asserts the engine's
advantage (>= 3x frames/sec at 256 streams) together with bitwise-identical
outcomes -- speed without changing a single result.

The identity assert relies on the engine's documented precondition that
``ddm.predict`` is row-independent: the MLP's batched ``X @ W`` must agree
bitwise with its per-row evaluation (true for every numpy build tested; a
BLAS that routes GEMM and GEMV through different accumulation orders could
flip an argmax on a near-tied logit pair and fail this gate spuriously).
"""

import time

import numpy as np
import pytest

from repro.core.timeseries_wrapper import TimeseriesAwareUncertaintyWrapper
from repro.serving import (
    StreamingEngine,
    build_stream_workload,
    replay_engine,
    replay_naive,
)

N_STREAMS = 256
N_TICKS = 12


@pytest.fixture(scope="module")
def workload(study_data):
    rng = np.random.default_rng(2024)
    return build_stream_workload(study_data.feature_model, N_STREAMS, N_TICKS, rng)


def _make_engine(study_data):
    return StreamingEngine(
        ddm=study_data.ddm,
        stateless_qim=study_data.stateless_qim,
        timeseries_qim=study_data.ta_qim,
        layout=study_data.layout,
    )


def _make_wrapper(study_data):
    return TimeseriesAwareUncertaintyWrapper(
        ddm=study_data.ddm,
        stateless_qim=study_data.stateless_qim,
        timeseries_qim=study_data.ta_qim,
        layout=study_data.layout,
    )


def test_engine_throughput(benchmark, study_data, workload):
    def run():
        return replay_engine(_make_engine(study_data), workload)

    outcomes = benchmark(run)
    assert len(outcomes) == N_STREAMS
    benchmark.extra_info["frames_per_round"] = workload.n_frames


def test_naive_throughput(benchmark, study_data, workload):
    def run():
        return replay_naive(lambda: _make_wrapper(study_data), workload)

    outcomes = benchmark(run)
    assert len(outcomes) == N_STREAMS
    benchmark.extra_info["frames_per_round"] = workload.n_frames


def test_speedup_and_equivalence_at_256_streams(
    study_data, workload, write_output, write_bench_json
):
    start = time.perf_counter()
    engine_outcomes = replay_engine(_make_engine(study_data), workload)
    engine_seconds = time.perf_counter() - start

    start = time.perf_counter()
    naive_outcomes = replay_naive(lambda: _make_wrapper(study_data), workload)
    naive_seconds = time.perf_counter() - start

    speedup = naive_seconds / engine_seconds
    engine_fps = workload.n_frames / engine_seconds
    naive_fps = workload.n_frames / naive_seconds
    identical = engine_outcomes == naive_outcomes

    write_output(
        "serving_throughput.txt",
        "SERVING THROUGHPUT (256 concurrent GTSRB situation streams)\n"
        f"frames:               {workload.n_frames}\n"
        f"engine  frames/sec:   {engine_fps:,.0f}\n"
        f"naive   frames/sec:   {naive_fps:,.0f}\n"
        f"speedup:              {speedup:.1f}x\n"
        f"outputs identical:    {identical}\n",
    )
    write_bench_json(
        "serving",
        {
            "streams": N_STREAMS,
            "ticks": N_TICKS,
            "frames": workload.n_frames,
            "engine_seconds": engine_seconds,
            "engine_frames_per_sec": engine_fps,
            "naive_seconds": naive_seconds,
            "naive_frames_per_sec": naive_fps,
            "speedup": speedup,
            "outputs_identical": identical,
        },
        transport="single",
        shards=1,
    )

    assert identical, "engine outcomes must be bitwise identical to step replay"
    assert speedup >= 3.0, (
        f"StreamingEngine.step_batch must be >= 3x the naive loop at "
        f"{N_STREAMS} streams, measured {speedup:.2f}x"
    )
