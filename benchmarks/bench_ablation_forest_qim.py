"""Ablation: transparent tree QIM vs. random-forest probability model.

The paper argues for a single decision tree because domain experts can
review it, and notes stronger models would cost that transparency.  This
bench quantifies the trade: a bagged-CART forest scored by its raw failure
probabilities (no guarantees, no reviewable structure) against the
calibrated tree's dependable bounds, both predicting failures of the fused
outcome.
"""

from repro.core.timeseries_wrapper import stack_traces
from repro.evaluation.metrics import pool_traces
from repro.stats.brier import murphy_decomposition
from repro.trees.forest import RandomForestClassifier


def test_forest_vs_calibrated_tree(benchmark, study_data, write_output):
    X_train, y_train = stack_traces(study_data.train_traces)
    pooled = pool_traces(study_data.test_traces)
    X_test, y_test = pooled.features, pooled.fused_wrong

    def run():
        forest = RandomForestClassifier(
            n_estimators=10, max_depth=8, max_features=6, seed=1
        )
        forest.fit(X_train, y_train)
        failure_col = list(forest.classes_).index(1)
        return forest.predict_proba(X_test)[:, failure_col]

    u_forest = benchmark.pedantic(run, rounds=1, iterations=1)
    u_tree = study_data.ta_qim.estimate_uncertainty(X_test)

    d_forest = murphy_decomposition(u_forest, y_test)
    d_tree = murphy_decomposition(u_tree, y_test)

    lines = [
        "ABLATION - CALIBRATED TREE vs RANDOM FOREST (fused-outcome failures)",
        f"{'model':<28} {'Brier':>8} {'Unreliability':>14} {'Overconfidence':>15}",
        f"{'taQIM (guaranteed bounds)':<28} {d_tree.brier:>8.4f} "
        f"{d_tree.unreliability:>14.5f} {d_tree.overconfidence:>15.1e}",
        f"{'random forest (raw proba)':<28} {d_forest.brier:>8.4f} "
        f"{d_forest.unreliability:>14.5f} {d_forest.overconfidence:>15.1e}",
        "",
        "The forest may edge out the tree on raw Brier, but it offers no",
        "statistical guarantee and no reviewable structure; the calibrated",
        "tree stays dependable (near-zero overconfidence).",
    ]
    write_output("ablation_forest_qim.txt", "\n".join(lines) + "\n")

    # The guaranteed tree must remain the dependable option.
    assert d_tree.overconfidence <= d_forest.overconfidence + 1e-9
    # And the forest should not be wildly better -- the quality factors,
    # not the model class, carry the signal.
    assert d_forest.brier > 0.5 * d_tree.brier
