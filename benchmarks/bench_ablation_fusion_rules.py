"""Ablation: information-fusion rules beyond the paper's majority vote.

The paper motivates majority voting as a simple transparent combiner and
cites the classifier-combination literature for alternatives.  This bench
compares the fused misclassification rate of majority voting against
certainty-weighted voting, exponential-decay voting, and the no-fusion
baseline on the same test traces.
"""

import numpy as np

from repro.fusion.dempster import DempsterShaferFusion
from repro.fusion.information import (
    ExponentialDecayVote,
    LatestOutcome,
    MajorityVote,
    WeightedMajorityVote,
)

RULES = {
    "latest (no fusion)": LatestOutcome(),
    "majority (paper)": MajorityVote(),
    "certainty-weighted": WeightedMajorityVote(),
    "decay 0.9": ExponentialDecayVote(decay=0.9),
    "dempster-shafer": DempsterShaferFusion(),
}


def _fused_error_rate(rule, traces) -> float:
    wrong = 0
    total = 0
    for trace in traces:
        certainties = (1.0 - trace.uncertainties).tolist()
        fused = rule.fuse_prefixes(trace.outcomes.tolist(), certainties)
        wrong += sum(1 for f in fused if f != trace.truth)
        total += len(fused)
    return wrong / total


def test_fusion_rule_ablation(benchmark, study_data, write_output):
    traces = study_data.test_traces

    def sweep():
        return {name: _fused_error_rate(rule, traces) for name, rule in RULES.items()}

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["ABLATION - INFORMATION FUSION RULES (fused misclassification rate)"]
    for name, rate in sorted(rates.items(), key=lambda kv: kv[1]):
        lines.append(f"{name:<24} {rate:.4f}")
    write_output("ablation_fusion_rules.txt", "\n".join(lines) + "\n")

    # Every genuine fusion rule must beat the no-fusion baseline.
    baseline = rates["latest (no fusion)"]
    for name, rate in rates.items():
        if name != "latest (no fusion)":
            assert rate < baseline, f"{name} did not improve on no fusion"
    # Certainty weighting should not be materially worse than plain
    # majority voting (the literature reports no overall best rule).
    assert rates["certainty-weighted"] < baseline
    assert abs(rates["certainty-weighted"] - rates["majority (paper)"]) < 0.05
