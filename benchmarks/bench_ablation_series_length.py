"""Ablation: effect of the evaluation series length (paper RQ1 discussion).

"Even after ten images, the improvement in accuracy does not appear to
reach saturation.  Thus, with longer timeseries, an even better result
could be achieved."  This bench re-runs the study with evaluation windows
of length 5, 10, and 15 and checks that the fused misclassification rate
keeps dropping with longer windows while the isolated rate stays flat.
"""

from dataclasses import replace

from repro.evaluation import StudyConfig, evaluate_study, prepare_study_data

LENGTHS = (5, 10, 15)


def test_series_length_ablation(benchmark, write_output):
    base = StudyConfig(n_series=150, eval_settings_per_series=5)

    def sweep():
        rows = {}
        for length in LENGTHS:
            config = replace(base, subsample_length=length)
            results = evaluate_study(prepare_study_data(config))
            m = results.misclassification
            rows[length] = {
                "isolated_mean": m.isolated_mean,
                "fused_mean": m.fused_mean,
                "fused_final": m.fused_final,
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["ABLATION - EVALUATION SERIES LENGTH (misclassification rates)"]
    lines.append(f"{'length':>6} {'isolated mean':>14} {'fused mean':>11} {'fused final':>12}")
    for length in LENGTHS:
        r = rows[length]
        lines.append(
            f"{length:>6} {r['isolated_mean']:>14.4f} "
            f"{r['fused_mean']:>11.4f} {r['fused_final']:>12.4f}"
        )
    write_output("ablation_series_length.txt", "\n".join(lines) + "\n")

    # Fusion always helps, at every window length.
    for length in LENGTHS:
        assert rows[length]["fused_mean"] < rows[length]["isolated_mean"]
    # Longer windows keep improving the final fused rate (no saturation up
    # to 15 frames), the paper's RQ1 discussion point.
    assert rows[15]["fused_final"] <= rows[5]["fused_final"]
    # The isolated rate is not systematically improved by longer windows
    # (it only reflects per-frame difficulty, not fusion).
    assert abs(rows[15]["isolated_mean"] - rows[5]["isolated_mean"]) < 0.05
