"""Full reproduction study: regenerate every table and figure of the paper.

Runs the complete evaluation pipeline at the default (laptop) scale and
prints Fig. 4 (misclassification over timesteps), Table I (Brier score and
components for all six uncertainty models), Fig. 5 (uncertainty
distributions), Fig. 6 (calibration curves), and Fig. 7 (taQF feature
importance).

Run:  python examples/traffic_sign_study.py [--paper-scale]

--paper-scale uses the paper's dataset sizes (1307 series, 28 settings per
evaluation series); expect several minutes.
"""

import argparse
import time

from repro.evaluation import (
    StudyConfig,
    evaluate_study,
    feature_importance_study,
    prepare_study_data,
    render_fig6,
    render_fig7,
    render_study_summary,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's dataset sizes (slower)",
    )
    parser.add_argument(
        "--skip-importance",
        action="store_true",
        help="skip the Fig. 7 sweep (16 tree fits)",
    )
    args = parser.parse_args()

    config = StudyConfig.paper_scale() if args.paper_scale else StudyConfig()
    print(
        f"Running study: {config.n_series} series, "
        f"{config.eval_settings_per_series} settings per evaluation series"
    )

    start = time.time()
    data = prepare_study_data(config)
    print(f"Pipeline prepared in {time.time() - start:.1f}s\n")

    results = evaluate_study(data)
    print(render_study_summary(results))
    print(render_fig6(results.calibration_curves()))

    if not args.skip_importance:
        print("Running feature-importance sweep (16 taQIM fits)...")
        rows = feature_importance_study(data)
        print(render_fig7(rows))

    print(f"Total runtime: {time.time() - start:.1f}s")


if __name__ == "__main__":
    main()
