"""Runtime monitoring: taUW + Kalman tracking inside a perception loop.

Demonstrates the architecture of the paper's Fig. 2 end to end, the way a
cyber-physical system would deploy it:

* a stream of detections arrives from *multiple consecutive traffic signs*
  (the vehicle passes one sign after another);
* a Kalman-filter tracker decides when the detections switch to a new
  physical sign and signals the wrapper to clear its timeseries buffer;
* the taUW fuses outcomes per sign and emits dependable uncertainties;
* a simplex-style monitor compares the uncertainty against a safety
  threshold and decides ACCEPT (use the perception result) or FALLBACK
  (degrade to a safe behaviour).

Run:  python examples/runtime_monitoring.py
"""

import numpy as np

from repro.core import TimeseriesAwareUncertaintyWrapper, UncertaintyMonitor
from repro.datasets import GTSRBLikeGenerator, subsample_dataset
from repro.evaluation import StudyConfig, prepare_study_data
from repro.tracking import SignTracker

ACCEPT_THRESHOLD = 0.05  # tolerate at most 5 % failure probability
REENTRY_THRESHOLD = 0.03  # hysteresis: stricter re-entry after a fallback


def main() -> None:
    print("Preparing wrapper stack (default scale, ~15 s)...")
    data = prepare_study_data(StudyConfig())
    wrapper = TimeseriesAwareUncertaintyWrapper(
        ddm=data.ddm,
        stateless_qim=data.stateless_qim,
        timeseries_qim=data.ta_qim,
        layout=data.layout,
    )

    # A drive past three different signs: three series back to back.
    rng = np.random.default_rng(99)
    generator = GTSRBLikeGenerator()
    base = generator.generate_base(3, rng)
    drive = subsample_dataset(
        generator.augment_with_situations(base, 1, rng), 10, rng
    )
    # Separate the signs laterally so the tracker can tell them apart.
    for i, series in enumerate(drive):
        series.positions[:, 1] += 40.0 * i

    tracker = SignTracker(
        dt=generator.geometry.frame_interval_s, process_noise=3.0
    )
    monitor = UncertaintyMonitor(
        threshold=ACCEPT_THRESHOLD, reentry_threshold=REENTRY_THRESHOLD
    )

    print(f"Streaming {sum(s.n_frames for s in drive)} detections "
          f"from {len(drive)} signs (accept u <= {ACCEPT_THRESHOLD}, "
          f"re-entry u <= {REENTRY_THRESHOLD})\n")
    header = (
        f"{'frame':>5} {'track':>5} {'new?':>5} {'truth':>5} "
        f"{'fused':>5} {'u_fused':>8} {'decision':>9}"
    )
    print(header)
    print("-" * len(header))

    frame_no = 0
    correct_accepts = 0
    for series in drive:
        embeddings = data.feature_model.embed_series(series, rng)
        for t in range(series.n_frames):
            event = tracker.update(series.positions[t])
            result = wrapper.step(
                embeddings[t], series.sensed[t], new_series=event.new_series
            )
            verdict = monitor.judge(result.fused_uncertainty)
            if verdict.accepted:
                correct_accepts += result.fused_outcome == series.class_id
            print(
                f"{frame_no:>5} {event.track_id:>5} "
                f"{'yes' if event.new_series else '':>5} {series.class_id:>5} "
                f"{result.fused_outcome:>5} {result.fused_uncertainty:>8.4f} "
                f"{verdict.decision.value.upper():>9}"
            )
            frame_no += 1

    stats = monitor.statistics
    print(
        f"\nAccepted {stats.accepted}/{stats.steps} frames "
        f"({stats.acceptance_rate:.0%}); accepted outcomes correct: "
        f"{correct_accepts}/{stats.accepted}; expected accepted failures "
        f"<= {stats.expected_accepted_failures:.2f}"
    )
    print(
        "Frames whose timeseries evidence is still ambiguous run under "
        "FALLBACK; once agreement accumulates the wrapper certifies the "
        "low-uncertainty leaf and the monitor ACCEPTs.  The tracker's "
        "new-series signal keeps evidence from leaking across signs."
    )


if __name__ == "__main__":
    main()
