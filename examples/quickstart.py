"""Quickstart: wrap a black-box classifier with a timeseries-aware
uncertainty wrapper in ~60 lines.

This script builds the full stack on a small synthetic traffic-sign
workload -- data generation, DDM training, wrapper calibration -- and then
streams one test series through the *online* taUW, printing the fused
outcome and its dependable uncertainty per frame.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import TimeseriesAwareUncertaintyWrapper
from repro.evaluation import StudyConfig, prepare_study_data


def main() -> None:
    # prepare_study_data runs the whole pipeline of the paper's Fig. 3:
    # generate GTSRB-like series, train the DDM, fit + calibrate both
    # quality impact models.  smoke_scale keeps it to a few seconds.
    print("Preparing study data (generation, DDM training, calibration)...")
    data = prepare_study_data(StudyConfig.smoke_scale())
    print(f"DDM test accuracy: {data.ddm_accuracy_test:.1%}")
    print(
        "Stateless wrapper: "
        f"{data.stateless_qim.n_leaves} leaves, "
        f"min guaranteed u = {data.stateless_qim.min_guaranteed_uncertainty:.4f}"
    )
    print(
        "Timeseries-aware wrapper: "
        f"{data.ta_qim.n_leaves} leaves, "
        f"min guaranteed u = {data.ta_qim.min_guaranteed_uncertainty:.4f}"
    )

    # Assemble the online wrapper from the calibrated pieces.
    wrapper = TimeseriesAwareUncertaintyWrapper(
        ddm=data.ddm,
        stateless_qim=data.stateless_qim,
        timeseries_qim=data.ta_qim,
        layout=data.layout,
    )

    # Stream one frame at a time, as a perception loop would.  We re-embed
    # a fresh test series so the wrapper sees genuinely unseen inputs.
    rng = np.random.default_rng(2024)
    from repro.datasets import GTSRBLikeGenerator, subsample_dataset

    generator = GTSRBLikeGenerator()
    base = generator.generate_base(1, rng)
    series = subsample_dataset(
        generator.augment_with_situations(base, 1, rng), 10, rng
    )[0]
    frames = data.feature_model.embed_series(series, rng)

    print(f"\nStreaming series of sign class {series.class_id!r}:")
    header = f"{'t':>2} {'isolated':>9} {'u_i':>7} {'fused':>6} {'u_fused':>8}"
    print(header)
    print("-" * len(header))
    wrapper.reset()
    for t in range(series.n_frames):
        result = wrapper.step(frames[t], series.sensed[t])
        print(
            f"{t + 1:>2} {result.isolated_outcome:>9} "
            f"{result.isolated_uncertainty:>7.4f} "
            f"{result.fused_outcome:>6} {result.fused_uncertainty:>8.4f}"
        )

    print(
        "\nThe fused outcome stabilises on the majority class while the "
        "dependable uncertainty tightens as agreeing evidence accumulates."
    )


if __name__ == "__main__":
    main()
