"""Dataset workflow: generate, persist, reload, and inspect timeseries data.

Shows the data substrate on its own: generate a GTSRB-like dataset with
situation-based quality deficits, look at what the situations produced,
save everything to ``.npz``, and reload it for downstream use -- the
workflow for anyone who wants to reuse one dataset draw across experiments
(or swap in their own data behind the same interfaces).

Run:  python examples/dataset_workflow.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.datasets import (
    DEFICIT_NAMES,
    GTSRB_CLASSES,
    GTSRBLikeGenerator,
    load_dataset_npz,
    save_dataset_npz,
    subsample_dataset,
)


def main() -> None:
    rng = np.random.default_rng(123)
    generator = GTSRBLikeGenerator()

    print("Generating 50 base series and augmenting with 2 situations each...")
    base = generator.generate_base(50, rng, min_per_class=1)
    dataset = generator.augment_with_situations(base, 2, rng)
    print(
        f"  {len(dataset)} series, {dataset.n_frames_total} frames, "
        f"{np.count_nonzero(dataset.class_counts())} of 43 classes present"
    )

    # Most common classes in this draw (GTSRB's frequency skew).
    counts = dataset.class_counts()
    top = np.argsort(counts)[::-1][:5]
    print("\nMost frequent classes in the draw:")
    for class_id in top:
        print(f"  {GTSRB_CLASSES[class_id].name:<35} {counts[class_id]:>3} series")

    # What did the situations do to the inputs?
    deficits = np.vstack([s.deficits for s in dataset])
    print("\nMean deficit intensity over all frames:")
    for i, name in enumerate(DEFICIT_NAMES):
        bar = "#" * int(round(40 * deficits[:, i].mean()))
        print(f"  {name:<22} {deficits[:, i].mean():.3f} {bar}")

    # One concrete situation.
    example = dataset[0]
    setting = example.situation
    print(
        f"\nSeries 0: class {GTSRB_CLASSES[example.class_id].name!r}, "
        f"month {setting.month}, {setting.hour:04.1f}h, "
        f"{setting.location.road_type} road at "
        f"({setting.location.latitude:.2f}, {setting.location.longitude:.2f}), "
        f"rain {setting.weather.rain_mm_h:.1f} mm/h, "
        f"light {setting.weather.light_level:.2f}"
    )

    # Persist and reload.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "gtsrb_like.npz"
        save_dataset_npz(dataset, path)
        size_kb = path.stat().st_size / 1024
        reloaded = load_dataset_npz(path)
        print(
            f"\nSaved to {path.name} ({size_kb:.0f} KiB) and reloaded: "
            f"{len(reloaded)} series intact"
        )
        windows = subsample_dataset(reloaded, 10, rng)
        print(
            f"Length-10 evaluation windows ready: {windows.n_frames_total} frames"
        )


if __name__ == "__main__":
    main()
