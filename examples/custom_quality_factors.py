"""Extending the wrapper: custom quality factors and a scope model.

The wrapper framework is use-case agnostic: the quality impact model
consumes whatever quality-factor columns you define, and the scope
compliance model guards against leaving the target application scope (TAS).
This example shows both extension points on the stateless wrapper:

1. a custom quality-factor layout that adds an *embedding self-confidence*
   signal (max softmax probability of the wrapped classifier) to the sensed
   deficits -- a common, cheap extra QF;
2. a scope model combining hard GPS boundary checks (Germany) with a
   kNN-similarity check on the quality factors, and what happens when the
   vehicle "drives" outside the TAS.

Run:  python examples/custom_quality_factors.py
"""

import numpy as np

from repro.core import (
    BoundaryCheck,
    QualityImpactModel,
    ScopeComplianceModel,
    SimilarityScope,
    UncertaintyWrapper,
)
from repro.datasets import GERMANY_BBOX, GTSRBLikeGenerator, subsample_dataset
from repro.evaluation import StudyConfig, prepare_study_data
from repro.stats import brier_score


def quality_with_confidence(ddm, embeddings, sensed) -> np.ndarray:
    """Custom QF table: sensed deficits + the DDM's own max-softmax."""
    max_proba = ddm.predict_proba(embeddings).max(axis=1, keepdims=True)
    return np.hstack([sensed, max_proba])


def main() -> None:
    print("Preparing base study data...")
    data = prepare_study_data(StudyConfig.smoke_scale())
    rng = np.random.default_rng(7)
    generator = GTSRBLikeGenerator()

    # Fresh frame tables for fitting the custom wrapper.
    def frame_table(n_series, seed_offset):
        local = np.random.default_rng(1000 + seed_offset)
        base = generator.generate_base(n_series, local, min_per_class=1)
        ds = subsample_dataset(
            generator.augment_with_situations(base, 2, local), 10, local
        )
        X, y, _ = data.feature_model.embed_dataset(ds, local)
        sensed = np.vstack([s.sensed for s in ds])
        return X, y, sensed

    X_train, y_train, sensed_train = frame_table(80, 1)
    X_cal, y_cal, sensed_cal = frame_table(80, 2)
    X_test, y_test, sensed_test = frame_table(80, 3)

    # ------------------------------------------------------------------
    # 1. Custom quality factors
    # ------------------------------------------------------------------
    q_train = quality_with_confidence(data.ddm, X_train, sensed_train)
    q_cal = quality_with_confidence(data.ddm, X_cal, sensed_cal)
    q_test = quality_with_confidence(data.ddm, X_test, sensed_test)

    plain = UncertaintyWrapper(
        data.ddm, QualityImpactModel(min_calibration_samples=60)
    )
    plain.fit(X_train, sensed_train, y_train)
    plain.calibrate(X_cal, sensed_cal, y_cal)

    extended = UncertaintyWrapper(
        data.ddm, QualityImpactModel(min_calibration_samples=60)
    )
    extended.fit(X_train, q_train, y_train)
    extended.calibrate(X_cal, q_cal, y_cal)

    wrong = (data.ddm.predict(X_test) != y_test).astype(int)
    _, u_plain = plain.apply_batch(X_test, sensed_test)
    _, u_extended = extended.apply_batch(X_test, q_test)
    print("\nCustom quality factor (max softmax) effect on the Brier score:")
    print(f"  sensed deficits only : {brier_score(u_plain, wrong):.4f}")
    print(f"  + model confidence   : {brier_score(u_extended, wrong):.4f}")

    # ------------------------------------------------------------------
    # 2. Scope compliance
    # ------------------------------------------------------------------
    lat_min, lat_max, lon_min, lon_max = GERMANY_BBOX
    similarity = SimilarityScope(k=10, quantile=0.99).fit(q_cal, rng)
    scope = ScopeComplianceModel(
        checks=[
            BoundaryCheck("latitude", lat_min, lat_max),
            BoundaryCheck("longitude", lon_min, lon_max),
        ],
        similarity=similarity,
        similarity_factors=tuple(
            f"qf_{i}" for i in range(q_cal.shape[1])
        ),
    )
    guarded = UncertaintyWrapper(
        data.ddm,
        extended.quality_impact_model,
        scope_model=scope,
    )

    def scope_factors(latitude, longitude, quality_row):
        factors = {"latitude": latitude, "longitude": longitude}
        factors.update({f"qf_{i}": v for i, v in enumerate(quality_row)})
        return factors

    inside = guarded.apply(
        X_test[0], q_test[0], scope_factors(49.49, 8.47, q_test[0])
    )
    outside = guarded.apply(
        X_test[0], q_test[0], scope_factors(40.71, -74.01, q_test[0])
    )
    print("\nScope compliance (paper Fig. 1's (a) vs (b) inputs):")
    print(
        f"  Mannheim  (49.49, 8.47): u = {inside.uncertainty:.4f} "
        f"(scope component {inside.scope_incompliance:.2f})"
    )
    print(
        f"  New York (40.71, -74.01): u = {outside.uncertainty:.4f} "
        f"(scope component {outside.scope_incompliance:.2f})"
    )
    print(
        "\nOutside the TAS the wrapper pins uncertainty to 1.0 regardless "
        "of input quality -- the runtime monitor must fall back."
    )


if __name__ == "__main__":
    main()
