"""Tests for binomial proportion confidence bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as sps

from repro.exceptions import ValidationError
from repro.stats.binomial import (
    clopper_pearson_interval,
    clopper_pearson_lower,
    clopper_pearson_upper,
    hoeffding_upper,
    jeffreys_upper,
    required_samples_for_bound,
    wilson_upper,
    zero_failure_bound,
)


class TestClopperPearsonUpper:
    def test_matches_beta_quantile(self):
        # Textbook identity: upper bound is the Beta(k+1, n-k) quantile.
        expected = sps.beta.ppf(0.999, 6, 95)
        assert clopper_pearson_upper(5, 100, 0.999) == pytest.approx(expected)

    def test_zero_failures_closed_form(self):
        # For k = 0 the bound is 1 - (1 - confidence)^(1/n).
        n, conf = 959, 0.999
        expected = 1.0 - (1.0 - conf) ** (1.0 / n)
        assert clopper_pearson_upper(0, n, conf) == pytest.approx(expected)

    def test_papers_minimum_uncertainty(self):
        # The paper's Fig. 5 reports a lowest guaranteed u of 0.0072 at
        # 99.9 % confidence; this corresponds to a zero-failure leaf with
        # roughly 959 calibration samples.
        assert clopper_pearson_upper(0, 959, 0.999) == pytest.approx(0.0072, abs=2e-4)

    def test_all_failures_is_one(self):
        assert clopper_pearson_upper(10, 10) == 1.0

    def test_scalar_in_scalar_out(self):
        assert isinstance(clopper_pearson_upper(1, 10), float)

    def test_array_input(self):
        result = clopper_pearson_upper([0, 1, 2], 100)
        assert result.shape == (3,)
        assert np.all(np.diff(result) > 0)

    def test_broadcasting(self):
        result = clopper_pearson_upper([[0], [5]], [100, 200])
        assert result.shape == (2, 2)

    def test_monotone_in_failures(self):
        bounds = clopper_pearson_upper(np.arange(0, 51), 100)
        assert np.all(np.diff(bounds) > 0)

    def test_decreasing_in_trials_at_zero_failures(self):
        bounds = clopper_pearson_upper(0, np.array([10, 100, 1000, 10000]))
        assert np.all(np.diff(bounds) < 0)

    def test_higher_confidence_gives_larger_bound(self):
        assert clopper_pearson_upper(3, 100, 0.999) > clopper_pearson_upper(
            3, 100, 0.95
        )

    def test_bound_above_point_estimate(self):
        assert clopper_pearson_upper(20, 100, 0.999) > 0.2

    @pytest.mark.parametrize(
        "k,n", [(-1, 10), (11, 10), (0, 0), (0, -5)]
    )
    def test_invalid_counts_rejected(self, k, n):
        with pytest.raises(ValidationError):
            clopper_pearson_upper(k, n)

    @pytest.mark.parametrize("conf", [0.0, 1.0, -0.1, 1.5])
    def test_invalid_confidence_rejected(self, conf):
        with pytest.raises(ValidationError):
            clopper_pearson_upper(1, 10, conf)

    @given(
        k=st.integers(min_value=0, max_value=50),
        n=st.integers(min_value=51, max_value=5000),
    )
    @settings(max_examples=50, deadline=None)
    def test_bound_in_unit_interval(self, k, n):
        u = clopper_pearson_upper(k, n, 0.999)
        assert 0.0 < u <= 1.0


class TestClopperPearsonLower:
    def test_zero_failures_is_zero(self):
        assert clopper_pearson_lower(0, 100) == 0.0

    def test_below_point_estimate(self):
        assert clopper_pearson_lower(20, 100, 0.999) < 0.2

    def test_matches_beta_quantile(self):
        expected = sps.beta.ppf(0.001, 5, 96)
        assert clopper_pearson_lower(5, 100, 0.999) == pytest.approx(expected)

    @given(
        k=st.integers(min_value=0, max_value=100),
        n=st.integers(min_value=100, max_value=2000),
    )
    @settings(max_examples=50, deadline=None)
    def test_lower_never_exceeds_upper(self, k, n):
        assert clopper_pearson_lower(k, n) <= clopper_pearson_upper(k, n)


class TestInterval:
    def test_contains_point_estimate(self):
        lower, upper = clopper_pearson_interval(30, 100, 0.99)
        assert lower < 0.3 < upper

    def test_wider_than_one_sided(self):
        lower, upper = clopper_pearson_interval(30, 100, 0.99)
        assert upper > clopper_pearson_upper(30, 100, 0.99)


class TestAlternativeBounds:
    def test_wilson_less_conservative_than_cp_at_moderate_rates(self):
        # Away from the extreme tails Wilson sits inside Clopper-Pearson.
        assert wilson_upper(20, 500, 0.95) < clopper_pearson_upper(20, 500, 0.95)

    def test_jeffreys_between_wilson_and_hoeffding(self):
        j = jeffreys_upper(5, 500, 0.999)
        h = hoeffding_upper(5, 500, 0.999)
        assert j < h

    def test_jeffreys_all_failures_is_one(self):
        assert jeffreys_upper(10, 10) == 1.0

    def test_hoeffding_clamped_to_one(self):
        assert hoeffding_upper(9, 10, 0.999) == 1.0

    def test_hoeffding_closed_form(self):
        expected = 0.1 + np.sqrt(np.log(1 / 0.001) / (2 * 100))
        assert hoeffding_upper(10, 100, 0.999) == pytest.approx(expected)

    @given(
        k=st.integers(min_value=0, max_value=50),
        n=st.integers(min_value=100, max_value=5000),
    )
    @settings(max_examples=50, deadline=None)
    def test_all_bounds_dominate_point_estimate(self, k, n):
        p_hat = k / n
        for fn in (clopper_pearson_upper, wilson_upper, jeffreys_upper, hoeffding_upper):
            assert fn(k, n, 0.999) >= p_hat


class TestRequiredSamples:
    def test_round_trip(self):
        n = required_samples_for_bound(0.0072, 0.999)
        assert clopper_pearson_upper(0, n, 0.999) <= 0.0072
        assert clopper_pearson_upper(0, n - 1, 0.999) > 0.0072

    def test_known_paper_value(self):
        # ~956-959 samples certify the paper's minimum uncertainty of 0.0072.
        assert required_samples_for_bound(0.0072, 0.999) == pytest.approx(958, abs=3)

    def test_tighter_bound_needs_more_samples(self):
        assert required_samples_for_bound(0.001) > required_samples_for_bound(0.01)

    def test_invalid_target_rejected(self):
        with pytest.raises(ValidationError):
            required_samples_for_bound(0.0)
        with pytest.raises(ValidationError):
            required_samples_for_bound(1.0)

    def test_max_samples_guard(self):
        with pytest.raises(ValidationError):
            required_samples_for_bound(1e-9, 0.999, max_samples=1000)


class TestZeroFailureBound:
    def test_matches_cp_at_zero(self):
        assert zero_failure_bound(500) == pytest.approx(
            clopper_pearson_upper(0, 500)
        )

    def test_array(self):
        bounds = zero_failure_bound(np.array([100, 1000]))
        assert bounds.shape == (2,)
        assert bounds[0] > bounds[1]
