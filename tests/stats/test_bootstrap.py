"""Tests for bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.stats.bootstrap import BootstrapResult, bootstrap_ci, cluster_bootstrap_ci


class TestBootstrapCI:
    def test_estimate_is_statistic_of_full_data(self, rng):
        data = rng.normal(5.0, 1.0, size=200)
        result = bootstrap_ci(np.mean, data, rng=rng)
        assert result.estimate == pytest.approx(data.mean())

    def test_interval_contains_estimate(self, rng):
        data = rng.normal(size=100)
        result = bootstrap_ci(np.mean, data, rng=rng)
        assert result.lower <= result.estimate <= result.upper

    def test_interval_narrows_with_sample_size(self, rng):
        small = bootstrap_ci(np.mean, rng.normal(size=30), rng=rng, n_resamples=400)
        large = bootstrap_ci(np.mean, rng.normal(size=3000), rng=rng, n_resamples=400)
        assert large.width() < small.width()

    def test_coverage_on_known_mean(self, rng):
        # ~95 % of intervals should cover the true mean; check loosely.
        covered = 0
        for _ in range(40):
            data = rng.normal(2.0, 1.0, size=80)
            r = bootstrap_ci(np.mean, data, confidence=0.95, n_resamples=300, rng=rng)
            covered += r.lower <= 2.0 <= r.upper
        assert covered >= 30

    def test_too_few_observations_rejected(self):
        with pytest.raises(ValidationError):
            bootstrap_ci(np.mean, [1.0])

    def test_invalid_confidence_rejected(self, rng):
        with pytest.raises(ValidationError):
            bootstrap_ci(np.mean, rng.normal(size=10), confidence=1.0)

    def test_invalid_resamples_rejected(self, rng):
        with pytest.raises(ValidationError):
            bootstrap_ci(np.mean, rng.normal(size=10), n_resamples=0)

    def test_result_str(self, rng):
        result = bootstrap_ci(np.mean, rng.normal(size=50), rng=rng)
        assert isinstance(result, BootstrapResult)
        assert "[" in str(result)


class TestClusterBootstrap:
    def test_estimate_uses_all_clusters(self, rng):
        clusters = [rng.normal(i, 0.1, size=10) for i in range(5)]
        result = cluster_bootstrap_ci(np.mean, clusters, rng=rng, n_resamples=200)
        assert result.estimate == pytest.approx(
            np.concatenate(clusters).mean()
        )

    def test_cluster_ci_wider_than_iid_for_correlated_data(self, rng):
        # Strong within-cluster correlation: cluster bootstrap must widen.
        clusters = [np.full(20, rng.normal()) for _ in range(30)]
        flat = np.concatenate(clusters)
        iid = bootstrap_ci(np.mean, flat, rng=rng, n_resamples=400)
        clustered = cluster_bootstrap_ci(np.mean, clusters, rng=rng, n_resamples=400)
        assert clustered.width() > iid.width()

    def test_too_few_clusters_rejected(self, rng):
        with pytest.raises(ValidationError):
            cluster_bootstrap_ci(np.mean, [rng.normal(size=5)])

    def test_empty_cluster_rejected(self, rng):
        with pytest.raises(ValidationError):
            cluster_bootstrap_ci(np.mean, [rng.normal(size=5), np.array([])])
