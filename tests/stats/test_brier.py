"""Tests for the Brier score and its Murphy decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.stats.brier import brier_score, murphy_decomposition


class TestBrierScore:
    def test_perfect_forecast_scores_zero(self):
        assert brier_score([0.0, 1.0, 0.0], [0, 1, 0]) == 0.0

    def test_worst_forecast_scores_one(self):
        assert brier_score([1.0, 0.0], [0, 1]) == 1.0

    def test_known_value(self):
        # ((0.8-1)^2 + (0.3-0)^2) / 2 = (0.04 + 0.09) / 2
        assert brier_score([0.8, 0.3], [1, 0]) == pytest.approx(0.065)

    def test_constant_half_forecast(self):
        assert brier_score([0.5] * 4, [0, 1, 0, 1]) == pytest.approx(0.25)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValidationError):
            brier_score([0.5, 0.5], [1])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            brier_score([], [])

    def test_out_of_range_forecast_rejected(self):
        with pytest.raises(ValidationError):
            brier_score([1.2], [1])

    def test_non_binary_outcome_rejected(self):
        with pytest.raises(ValidationError):
            brier_score([0.5], [0.5])


class TestMurphyDecomposition:
    def test_identity_on_random_data(self, rng):
        f = rng.uniform(size=500)
        o = (rng.uniform(size=500) < f).astype(int)
        d = murphy_decomposition(f, o)
        assert d.identity_residual() == pytest.approx(0.0, abs=1e-12)

    def test_brier_matches_direct_computation(self, rng):
        f = rng.uniform(size=200)
        o = rng.integers(0, 2, size=200)
        d = murphy_decomposition(f, o)
        assert d.brier == pytest.approx(brier_score(f, o))

    def test_variance_depends_only_on_outcomes(self, rng):
        o = rng.integers(0, 2, size=300)
        d1 = murphy_decomposition(rng.uniform(size=300), o)
        d2 = murphy_decomposition(rng.uniform(size=300), o)
        assert d1.variance == pytest.approx(d2.variance)
        obar = o.mean()
        assert d1.variance == pytest.approx(obar * (1 - obar))

    def test_perfectly_calibrated_groups_have_zero_unreliability(self):
        # Two groups whose forecast equals the group failure rate exactly.
        f = np.array([0.25] * 4 + [0.75] * 4)
        o = np.array([1, 0, 0, 0, 1, 1, 1, 0])
        d = murphy_decomposition(f, o)
        assert d.unreliability == pytest.approx(0.0, abs=1e-15)
        assert d.overconfidence == 0.0
        assert d.underconfidence == pytest.approx(0.0, abs=1e-15)

    def test_resolution_zero_for_constant_forecast(self, rng):
        o = rng.integers(0, 2, size=100)
        d = murphy_decomposition(np.full(100, 0.5), o)
        assert d.resolution == pytest.approx(0.0, abs=1e-15)
        assert d.n_groups == 1

    def test_overconfident_group_detected(self):
        # Forecast 0.1 but everything failed: pure overconfidence.
        d = murphy_decomposition([0.1] * 10, [1] * 10)
        assert d.overconfidence == pytest.approx(d.unreliability)
        assert d.underconfidence == pytest.approx(0.0)
        assert d.overconfidence == pytest.approx(0.81)

    def test_underconfident_group_detected(self):
        # Forecast 0.9 but nothing failed: pure underconfidence.
        d = murphy_decomposition([0.9] * 10, [0] * 10)
        assert d.underconfidence == pytest.approx(d.unreliability)
        assert d.overconfidence == 0.0

    def test_unspecificity_definition(self, rng):
        f = rng.uniform(size=400)
        o = (rng.uniform(size=400) < f).astype(int)
        d = murphy_decomposition(f, o)
        assert d.unspecificity == pytest.approx(d.variance - d.resolution)

    def test_over_plus_under_equals_unreliability(self, rng):
        f = np.round(rng.uniform(size=600), 1)
        o = (rng.uniform(size=600) < 0.3).astype(int)
        d = murphy_decomposition(f, o)
        assert d.overconfidence + d.underconfidence == pytest.approx(d.unreliability)

    def test_group_count(self):
        d = murphy_decomposition([0.1, 0.1, 0.2, 0.3], [0, 1, 0, 1])
        assert d.n_groups == 3
        assert d.n_samples == 4

    def test_as_dict_keys(self, rng):
        d = murphy_decomposition(rng.uniform(size=50), rng.integers(0, 2, size=50))
        keys = set(d.as_dict())
        assert {"brier", "variance", "resolution", "unreliability",
                "unspecificity", "overconfidence", "underconfidence"} == keys

    @given(
        n=st.integers(min_value=2, max_value=200),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_identity_property(self, n, seed):
        rng = np.random.default_rng(seed)
        # Quantised forecasts create heavy ties (tree-like outputs).
        f = np.round(rng.uniform(size=n), 2)
        o = rng.integers(0, 2, size=n)
        d = murphy_decomposition(f, o)
        assert abs(d.identity_residual()) < 1e-10
        assert d.resolution >= -1e-15
        assert d.unreliability >= -1e-15
        assert 0.0 <= d.variance <= 0.25 + 1e-15
        assert d.overconfidence >= 0.0
        assert d.underconfidence >= -1e-15
