"""Tests for calibration curves and calibration-error summaries."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.stats.calibration import (
    expected_calibration_error,
    maximum_calibration_error,
    quantile_calibration_curve,
    width_calibration_curve,
)


class TestQuantileCurve:
    def test_perfectly_calibrated_curve_hugs_diagonal(self, rng):
        c = rng.uniform(size=20000)
        correct = (rng.uniform(size=20000) < c).astype(int)
        curve = quantile_calibration_curve(c, correct, n_bins=10)
        assert np.all(np.abs(curve.predicted - curve.observed) < 0.05)

    def test_bin_count(self, rng):
        c = rng.uniform(size=1000)
        correct = rng.integers(0, 2, size=1000)
        curve = quantile_calibration_curve(c, correct, n_bins=10)
        assert 1 <= len(curve) <= 10
        assert curve.counts.sum() == 1000

    def test_quantile_bins_have_similar_counts(self, rng):
        c = rng.uniform(size=10000)
        correct = rng.integers(0, 2, size=10000)
        curve = quantile_calibration_curve(c, correct, n_bins=10)
        assert len(curve) == 10
        assert curve.counts.min() > 500

    def test_degenerate_single_value(self):
        curve = quantile_calibration_curve([0.8] * 50, [1] * 40 + [0] * 10)
        assert len(curve) == 1
        assert curve.predicted[0] == pytest.approx(0.8)
        assert curve.observed[0] == pytest.approx(0.8)

    def test_overconfidence_gap_sign(self):
        # Predicted certainty 0.9 but only 50 % correct: overconfident.
        curve = quantile_calibration_curve([0.9] * 10, [1, 0] * 5)
        assert curve.overconfidence_gaps()[0] == pytest.approx(0.4)
        assert curve.is_overconfident()[0]

    def test_underconfident_bin(self):
        curve = quantile_calibration_curve([0.5] * 10, [1] * 10)
        assert not curve.is_overconfident()[0]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValidationError):
            quantile_calibration_curve([0.5], [1, 0])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            quantile_calibration_curve([], [])

    def test_out_of_range_certainty_rejected(self):
        with pytest.raises(ValidationError):
            quantile_calibration_curve([1.5], [1])

    def test_invalid_bins_rejected(self, rng):
        with pytest.raises(ValidationError):
            quantile_calibration_curve([0.5, 0.6], [1, 0], n_bins=0)


class TestWidthCurve:
    def test_bins_respect_edges(self, rng):
        c = rng.uniform(size=5000)
        correct = rng.integers(0, 2, size=5000)
        curve = width_calibration_curve(c, correct, n_bins=5)
        assert len(curve) == 5
        for i in range(len(curve)):
            assert curve.edges[i] <= curve.predicted[i] <= curve.edges[i + 1]

    def test_empty_bins_dropped(self):
        curve = width_calibration_curve([0.05, 0.95], [0, 1], n_bins=10)
        assert len(curve) == 2


class TestCalibrationErrors:
    def test_perfect_forecast_has_low_ece(self, rng):
        c = rng.uniform(size=20000)
        correct = (rng.uniform(size=20000) < c).astype(int)
        assert expected_calibration_error(c, correct) < 0.02

    def test_badly_calibrated_has_high_ece(self):
        assert expected_calibration_error([0.95] * 100, [0] * 100) > 0.9

    def test_mce_at_least_ece(self, rng):
        c = rng.uniform(size=2000)
        correct = rng.integers(0, 2, size=2000)
        assert maximum_calibration_error(c, correct) >= expected_calibration_error(
            c, correct
        )
