"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation import StudyConfig, prepare_study_data


@pytest.fixture
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def smoke_study_data():
    """One shared smoke-scale study run (expensive; ~5 s) for evaluation tests."""
    return prepare_study_data(StudyConfig.smoke_scale())
