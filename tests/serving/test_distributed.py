"""Distributed tracing + SLO tests: rebasing, timelines, burn rates.

The guarantees under test:

* clock rebasing is exact arithmetic (NTP midpoint +/- RTT/2), and a
  scripted clock skew is recovered bit-exactly;
* timeline assembly always *nests*: every rebased worker span lands
  strictly inside its shard's ``shard_step`` envelope, no matter how
  skewed the injected worker clock is;
* the trace-context/telemetry side channel is invisible to payloads --
  a traced cluster run is bitwise-identical to an untraced one, on
  every transport -- and the merged timeline is structurally identical
  across inproc/pipe/tcp;
* a worker request that raises aborts its trace (no leaked open spans);
* SLO burn rates computed live agree exactly with the offline
  recomputation from recorded telemetry;
* the Chrome trace-event export validates, from both the live exporter
  and a flight-log reconstruction.
"""

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.core.monitor import UncertaintyMonitor
from repro.exceptions import ValidationError
from repro.serving import (
    SLO,
    MetricsRegistry,
    MetricsServer,
    ServingController,
    ShardedEngine,
    SLOTracker,
    StreamFrame,
    StreamingEngine,
    TcpTransport,
    TickTracer,
    TraceExporter,
    assemble_tick_timeline,
    estimate_clock_offset,
    timeline_from_flight,
    write_trace_events,
)
from repro.serving.observability import (
    FlightRecorder,
    FlightRecordingTransport,
    parse_prometheus,
    recompute_burn_rates,
    trace_events,
    validate_trace_events,
)
from repro.serving.observability.distributed import burn_rate
from repro.serving.observability.tracing import SpanRecord, TickTrace
from repro.serving.protocol import (
    TELEMETRY_META_KEY,
    TRACE_META_KEY,
    decode_reply,
    decode_reply_telemetry,
    decode_request,
    decode_request_traced,
    encode_reply,
    encode_request,
)
from repro.serving.transport import WorkerServicer, serve_worker


def make_factory(synthetic_stack, **kwargs):
    ddm, stateless, ta_qim, layout, fusion = synthetic_stack

    def factory():
        return StreamingEngine(
            ddm=ddm,
            stateless_qim=stateless,
            timeseries_qim=ta_qim,
            layout=layout,
            information_fusion=fusion,
            **kwargs,
        )

    return factory


def monitored_kwargs():
    return dict(
        max_buffer_length=4,
        monitor_factory=lambda: UncertaintyMonitor(
            threshold=0.35, reentry_threshold=0.25, risk_budget=3.0
        ),
        idle_ttl=3,
    )


def tick_frames(series, ids, t, new_series=False):
    return [
        StreamFrame(
            ids[sid],
            series[sid][0][t],
            series[sid][1][t],
            new_series=new_series,
        )
        for sid in range(len(ids))
    ]


def counter_value(families, name, **labels):
    key = (name, tuple(sorted(labels.items())))
    return families[name]["samples"][key]


# ---------------------------------------------------------------------------
# Clock rebasing
# ---------------------------------------------------------------------------

class TestClockOffset:
    def test_midpoint_estimate_is_exact_arithmetic(self):
        offset, uncertainty = estimate_clock_offset(10.0, 10.2, 110.1)
        assert offset == pytest.approx(-100.0)
        assert uncertainty == pytest.approx(0.1)

    def test_skewed_worker_clock_is_recovered(self):
        # A worker whose clock runs 1234.5s ahead, observed through a
        # symmetric 40ms round trip, rebases exactly.
        t_request, rtt, skew = 50.0, 0.04, 1234.5
        worker_read = t_request + rtt / 2 + skew
        offset, uncertainty = estimate_clock_offset(
            t_request, t_request + rtt, worker_read
        )
        assert offset == pytest.approx(-skew)
        assert uncertainty == pytest.approx(rtt / 2)
        assert worker_read + offset == pytest.approx(t_request + rtt / 2)

    def test_non_monotonic_reads_are_rejected(self):
        with pytest.raises(ValidationError, match="precedes"):
            estimate_clock_offset(10.0, 9.0, 0.0)


# ---------------------------------------------------------------------------
# Timeline assembly + containment
# ---------------------------------------------------------------------------

def synthetic_trace(tick=7):
    """A controller trace with two shard_step envelopes on [1.0, 1.4]."""
    return TickTrace(
        tick=tick,
        spans=(
            SpanRecord("intake", 0.05, {}, 0.90),
            SpanRecord("step", 0.45, {"frames": 8}, 0.95),
            SpanRecord("shard_step", 0.40, {"shard": 0}, 1.00),
            SpanRecord("shard_step", 0.35, {"shard": 1}, 1.02),
            SpanRecord("external", 0.01, {}),  # no start: duration-only
        ),
    )


def worker_record(base, *, send=None, done=None):
    """Shard telemetry on a worker clock starting at ``base``."""
    record = {
        "telemetry": {
            "tick": 7,
            "recv": [base, base + 0.01],
            "decoded": base + 0.02,
            "stepped": base + 0.30,
            "prev_encode": 0.0,
            "prev_send": 0.0,
        }
    }
    if send is not None:
        record["send"] = send
    if done is not None:
        record["done"] = done
    return record


class TestTimelineAssembly:
    def test_worker_spans_rebase_and_nest_inside_envelope(self):
        # Worker clocks wildly skewed in both directions; offsets from
        # the handshake rebase them back inside [1.0, 1.4] / [1.02, 1.37].
        records = {
            0: worker_record(5000.0, send=1.01, done=1.39),
            1: worker_record(-300.0, send=1.03, done=1.36),
        }
        offsets = {
            0: {"offset": 1.0 - 5000.0 + 0.02, "uncertainty": 0.01},
            1: -(-300.0) + 1.03,
        }
        timeline = assemble_tick_timeline(synthetic_trace(), records, offsets)
        assert timeline.tick == 7
        envelopes = {
            span.meta["shard"]: span
            for span in timeline.spans
            if span.name == "shard_step"
        }
        assert set(envelopes) == {0, 1}
        for shard in (0, 1):
            workers = [
                span
                for span in timeline.spans
                if span.track == f"shard {shard} worker"
            ]
            assert [span.name for span in workers] == [
                "worker", "recv", "decode", "step",
            ]
            parent = envelopes[shard]
            for span in workers:
                assert span.start > parent.start
                assert span.end < parent.end
                assert span.seconds >= 0.0

    def test_extreme_skew_still_contained(self):
        # An offset that is plain wrong (handshake jitter) must clamp,
        # not escape the envelope.
        records = {0: worker_record(0.0, send=1.01, done=1.39)}
        timeline = assemble_tick_timeline(
            synthetic_trace(), records, {0: 99.0}
        )
        parent = next(
            s for s in timeline.spans if s.name == "shard_step"
            and s.meta["shard"] == 0
        )
        for span in timeline.spans:
            if span.track == "shard 0 worker":
                assert parent.start < span.start <= span.end < parent.end

    def test_spans_without_start_are_skipped(self):
        timeline = assemble_tick_timeline(synthetic_trace())
        assert all(span.name != "external" for span in timeline.spans)
        assert timeline.tracks() == ("controller",)

    def test_missing_telemetry_yields_no_worker_track(self):
        records = {0: {"send": 1.0, "done": 1.4, "telemetry": None}}
        timeline = assemble_tick_timeline(synthetic_trace(), records, {})
        assert timeline.tracks() == ("controller",)

    def test_assembly_is_deterministic(self):
        records = {
            0: worker_record(5000.0, send=1.01, done=1.39),
            1: worker_record(-300.0, send=1.03, done=1.36),
        }
        offsets = {0: -4998.98, 1: 301.03}
        a = assemble_tick_timeline(synthetic_trace(), records, offsets)
        b = assemble_tick_timeline(synthetic_trace(), dict(records), offsets)
        assert a.as_dict() == b.as_dict()


class TestTraceEventExport:
    def test_events_validate_and_rebase_to_origin(self, tmp_path):
        records = {0: worker_record(5000.0, send=1.01, done=1.39)}
        timeline = assemble_tick_timeline(
            synthetic_trace(), records, {0: -4998.98}
        )
        path = write_trace_events(tmp_path / "trace.json", [timeline])
        payload = json.loads(path.read_text())
        complete = validate_trace_events(payload)
        assert complete == len(timeline.spans)
        names = {
            event["args"]["name"]
            for event in payload["traceEvents"]
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert names == {"controller", "shard 0 worker"}
        # Events are microseconds relative to the earliest span.
        ts = [
            event["ts"]
            for event in payload["traceEvents"]
            if event["ph"] == "X"
        ]
        assert min(ts) == 0.0

    def test_negative_timestamps_are_rejected(self):
        events = trace_events(
            [assemble_tick_timeline(synthetic_trace())], origin=100.0
        )
        with pytest.raises(ValidationError, match="negative"):
            validate_trace_events({"traceEvents": events})

    def test_envelope_shape_is_validated(self):
        with pytest.raises(ValidationError, match="traceEvents"):
            validate_trace_events([])
        with pytest.raises(ValidationError, match="missing"):
            validate_trace_events({"traceEvents": [{"name": "x"}]})


# ---------------------------------------------------------------------------
# Protocol side channel
# ---------------------------------------------------------------------------

class TestTraceProtocol:
    def test_trace_meta_round_trips_and_is_stripped(self):
        trace = {"tick": 3, "shard": 1, "parent": "shard_step", "sampled": True}
        data = encode_request("ids", None, trace=trace)
        command, payload, decoded = decode_request_traced(data)
        assert (command, payload) == ("ids", None)
        assert decoded == trace
        # The plain decoder hides the side channel entirely.
        assert decode_request(data) == ("ids", None)

    def test_untraced_frames_are_byte_identical(self):
        assert encode_request("ids", None) == encode_request(
            "ids", None, trace=None
        )
        command, payload, trace = decode_request_traced(
            encode_request("ids", None)
        )
        assert trace is None

    def test_telemetry_meta_round_trips_and_is_stripped(self):
        telemetry = {"tick": 3, "recv": [1.0, 2.0]}
        data = encode_reply("ids", ("ok", ["a"]), telemetry=telemetry)
        reply, decoded = decode_reply_telemetry(data, "ids")
        assert reply == ("ok", ["a"])
        assert decoded == telemetry
        assert decode_reply(data, "ids") == ("ok", ["a"])

    def test_error_replies_never_carry_telemetry(self):
        data = encode_reply("ids", ("error", "ClusterError", "boom"))
        reply, telemetry = decode_reply_telemetry(data, "ids")
        assert reply == ("error", "ClusterError", "boom")
        assert telemetry is None

    def test_reserved_keys_are_real_constants(self):
        assert TRACE_META_KEY == "_trace"
        assert TELEMETRY_META_KEY == "_telemetry"


# ---------------------------------------------------------------------------
# Worker-side tracing
# ---------------------------------------------------------------------------

class TestWorkerTracing:
    def test_failed_request_aborts_its_trace(self, synthetic_stack):
        engine = make_factory(synthetic_stack)()
        tracer = TickTracer()
        servicer = WorkerServicer(engine, tracer=tracer)
        with pytest.raises(Exception, match="unknown worker command"):
            servicer.handle("bogus", None)
        # The satellite fix: the failed request's spans must not linger.
        assert tracer.open_spans == []
        # The next request starts from a clean trace.
        assert servicer.handle("ids", None) == []
        assert [span.name for span in tracer.open_spans] == ["handle"]

    def test_note_request_piggybacks_only_sampled_traces(self, synthetic_stack):
        engine = make_factory(synthetic_stack)()
        tracer = TickTracer()
        servicer = WorkerServicer(engine, tracer=tracer)
        servicer.handle("ids", None)
        telemetry = servicer.note_request(
            {"tick": 4, "sampled": True}, 1.0, 1.1, 1.2, 1.5, 0.01, 0.02
        )
        assert telemetry == {
            "tick": 4,
            "recv": [1.0, 1.1],
            "decoded": 1.2,
            "stepped": 1.5,
            "prev_encode": 0.01,
            "prev_send": 0.02,
        }
        assert tracer.last.tick == 4
        assert tracer.open_spans == []  # tick was closed
        names = [span.name for span in tracer.last.spans]
        assert names == ["handle", "recv", "decode", "step", "encode", "send"]

        servicer.handle("ids", None)
        assert servicer.note_request(None, 1.0, 1.1, 1.2, 1.5) is None
        assert tracer.open_spans == []  # unsampled requests close too

    def test_untraced_servicer_is_the_bare_call(self, synthetic_stack):
        engine = make_factory(synthetic_stack)()
        servicer = WorkerServicer(engine)
        assert servicer.tracer is None
        assert servicer.handle("ids", None) == []


# ---------------------------------------------------------------------------
# Cluster integration
# ---------------------------------------------------------------------------

def run_outcomes(per_stream):
    return {
        stream_id: [result.outcome for result in results]
        for stream_id, results in per_stream.items()
    }


class TestClusterTracing:
    def run_plain(self, factory, series, ids, length, transport="pipe"):
        results = []
        with ShardedEngine(factory, 2, transport=transport) as cluster:
            for t in range(length):
                results.append(
                    cluster.step_batch(tick_frames(series, ids, t))
                )
        return results

    def run_traced(self, factory, series, ids, length, transport="pipe"):
        tracer = TickTracer()
        results = []
        timelines = []
        with ShardedEngine(factory, 2, transport=transport) as cluster:
            controller = ServingController(cluster, tracer=tracer)
            with controller:
                for t in range(length):
                    results.append(
                        controller.tick(tick_frames(series, ids, t))
                    )
                    timelines.append(
                        assemble_tick_timeline(
                            tracer.last,
                            (cluster.last_rpc or {}).get("shards"),
                            cluster.clock_offsets,
                        )
                    )
            stats = cluster.fanout_stats()
        return results, timelines, stats

    def test_traced_run_is_bitwise_identical(
        self, synthetic_stack, series_maker
    ):
        rng = np.random.default_rng(702)
        n_streams, length = 8, 5
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(synthetic_stack, **monitored_kwargs())

        plain = self.run_plain(factory, series, ids, length)
        traced, timelines, stats = self.run_traced(
            factory, series, ids, length
        )
        assert [
            [r.outcome for r in tick] for tick in plain
        ] == [[r.outcome for r in tick] for tick in traced]

        # Every tick merged both shards' worker spans into the timeline.
        for timeline in timelines:
            shard_steps = [
                s for s in timeline.spans if s.name == "shard_step"
            ]
            assert len(shard_steps) == 2
            assert {f"shard {s} worker" for s in (0, 1)} <= set(
                timeline.tracks()
            )

        # Satellite: fanout_stats exposes per-shard worker phase time.
        phases = stats["worker_phase_seconds"]
        assert set(phases) == {0, 1}
        for shard_phases in phases.values():
            assert set(shard_phases) == {
                "recv", "decode", "step", "encode", "send",
            }
            assert shard_phases["step"] > 0.0

    def test_untraced_cluster_records_no_rpc_state(
        self, synthetic_stack, series_maker
    ):
        rng = np.random.default_rng(703)
        series = series_maker(rng, n_series=4, length=3)
        ids = [f"s{sid}" for sid in range(4)]
        factory = make_factory(synthetic_stack)
        with ShardedEngine(factory, 2, transport="pipe") as cluster:
            for t in range(3):
                cluster.step_batch(tick_frames(series, ids, t))
            assert cluster.last_rpc is None
            # No telemetry collected: the key is omitted entirely, not
            # published as a misleading empty breakdown.
            assert "worker_phase_seconds" not in cluster.fanout_stats()

    @pytest.mark.parametrize("transport", ["inproc", "pipe", "tcp"])
    def test_merged_timeline_is_structurally_stable(
        self, synthetic_stack, series_maker, transport
    ):
        from repro.serving import launch_local_workers, stop_local_workers

        rng = np.random.default_rng(704)
        n_streams, length = 6, 4
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(synthetic_stack, **monitored_kwargs())

        if transport == "tcp":
            addresses, processes = launch_local_workers(factory, 2)
            spec = TcpTransport(addresses)
        else:
            processes = None
            spec = transport
        try:
            _, timelines, _ = self.run_traced(
                factory, series, ids, length, transport=spec
            )
        finally:
            if processes is not None:
                stop_local_workers(processes)

        for timeline in timelines:
            for shard in (0, 1):
                track = f"shard {shard} worker"
                workers = [
                    s for s in timeline.spans if s.track == track
                ]
                # The same nested structure on every transport -- inproc
                # synthesizes zero-width recv/decode so the shape holds.
                assert [s.name for s in workers] == [
                    "worker", "recv", "decode", "step",
                ]
                parent = next(
                    s
                    for s in timeline.spans
                    if s.name == "shard_step" and s.meta["shard"] == shard
                )
                for span in workers:
                    assert parent.start < span.start
                    assert span.end < parent.end

    def test_inproc_clock_offsets_are_zero(
        self, synthetic_stack, series_maker
    ):
        factory = make_factory(synthetic_stack)
        with ShardedEngine(factory, 2, transport="inproc") as cluster:
            for entry in cluster.clock_offsets.values():
                assert entry == {"offset": 0.0, "uncertainty": 0.0}

    def test_pipe_clock_offsets_come_from_handshake(
        self, synthetic_stack
    ):
        factory = make_factory(synthetic_stack)
        with ShardedEngine(factory, 2, transport="pipe") as cluster:
            offsets = cluster.clock_offsets
            assert set(offsets) == {0, 1}
            for entry in offsets.values():
                assert entry["uncertainty"] > 0.0


# ---------------------------------------------------------------------------
# Flight-log reconstruction + exporter
# ---------------------------------------------------------------------------

class TestFlightTimeline:
    def test_flight_log_reconstructs_a_timeline(
        self, synthetic_stack, series_maker, tmp_path
    ):
        rng = np.random.default_rng(705)
        n_streams, length = 6, 4
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(synthetic_stack)

        recorder = FlightRecorder(tmp_path / "flight")
        transport = FlightRecordingTransport("pipe", recorder)
        with ShardedEngine(factory, 2, transport=transport) as cluster:
            for t in range(length):
                cluster.step_batch(tick_frames(series, ids, t))
        recorder.close()

        timelines = timeline_from_flight(tmp_path / "flight")
        assert len(timelines) == length
        for timeline in timelines:
            shards = sorted(span.meta["shard"] for span in timeline.spans)
            assert shards == [0, 1]
            for span in timeline.spans:
                assert span.name == "shard_step"
                assert span.seconds >= 0.0
                assert span.meta["status"] == "ok"

        path = write_trace_events(tmp_path / "trace.json", timelines)
        assert validate_trace_events(json.loads(path.read_text())) == 2 * length

    def test_exporter_writes_a_valid_contained_trace(
        self, synthetic_stack, series_maker, tmp_path
    ):
        rng = np.random.default_rng(706)
        n_streams, length = 6, 4
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(synthetic_stack, **monitored_kwargs())

        tracer = TickTracer()
        with TraceExporter(tmp_path / "traces") as exporter:
            with ShardedEngine(factory, 2, transport="pipe") as cluster:
                controller = ServingController(
                    cluster,
                    tracer=tracer,
                    on_tick=lambda record: exporter.observe(
                        tracer.last, cluster
                    ),
                )
                with controller:
                    for t in range(length):
                        controller.tick(tick_frames(series, ids, t))
        path = tmp_path / "traces" / "trace.json"
        payload = json.loads(path.read_text())
        assert validate_trace_events(payload) > 0

        # Containment in the exported file itself: every worker-track
        # event nests inside its tick's shard_step on the same shard.
        events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        envelopes = {
            (event["args"]["tick"], event["args"]["shard"]): event
            for event in events
            if event["name"] == "shard_step"
        }
        worker_events = [e for e in events if e["name"] == "worker"]
        assert worker_events
        for event in worker_events:
            parent = envelopes[
                (event["args"]["tick"], event["args"]["shard"])
            ]
            assert parent["ts"] < event["ts"]
            assert (
                event["ts"] + event["dur"] < parent["ts"] + parent["dur"]
            )


# ---------------------------------------------------------------------------
# Live worker scrape
# ---------------------------------------------------------------------------

class TestLiveWorkerMetrics:
    def test_worker_phase_histogram_is_scrapable(
        self, synthetic_stack, series_maker
    ):
        rng = np.random.default_rng(707)
        n_streams, length = 6, 4
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(synthetic_stack)

        registry = MetricsRegistry()
        ready = threading.Event()
        bound = {}

        def announce(port):
            bound["addr"] = ("127.0.0.1", port)
            ready.set()

        worker = threading.Thread(
            target=serve_worker,
            args=(factory,),
            kwargs=dict(
                max_connections=1, ready_callback=announce, metrics=registry
            ),
            daemon=True,
        )
        worker.start()
        assert ready.wait(10.0)

        server = MetricsServer(registry, port=0)
        try:
            tracer = TickTracer()
            with ShardedEngine(
                factory, 1, transport=TcpTransport([bound["addr"]])
            ) as cluster:
                cluster.tracer = tracer
                for t in range(length):
                    cluster.step_batch(tick_frames(series, ids, t))
                    tracer.end_tick(t)
                with urllib.request.urlopen(
                    server.url, timeout=10.0
                ) as response:
                    families = parse_prometheus(
                        response.read().decode("utf-8")
                    )
            worker.join(10.0)
        finally:
            server.close()

        assert (
            counter_value(
                families, "repro_worker_requests_total", command="step"
            )
            == length
        )
        phase_count = families["repro_worker_phase_seconds"]["samples"]
        for phase in ("recv", "decode", "step"):
            key = (
                "repro_worker_phase_seconds_count",
                (("phase", phase),),
            )
            assert phase_count[key] == length


# ---------------------------------------------------------------------------
# SLOs + burn rates
# ---------------------------------------------------------------------------

class TestSLO:
    def test_slo_validation_is_loud(self):
        with pytest.raises(ValidationError, match="budget_seconds"):
            SLO("p99", 0.0)
        with pytest.raises(ValidationError, match="target"):
            SLO("p99", 0.01, target=1.0)
        with pytest.raises(ValidationError, match="short_window"):
            SLO("p99", 0.01, short_window=0)
        with pytest.raises(ValidationError, match="slow_burn"):
            SLO("p99", 0.01, fast_burn=1.0, slow_burn=2.0)
        with pytest.raises(ValidationError, match="at least one"):
            SLOTracker([])
        with pytest.raises(ValidationError, match="duplicate"):
            SLOTracker([SLO("a", 0.01), SLO("a", 0.02)])

    def test_burn_rate_arithmetic(self):
        assert burn_rate(0, 100, 0.99) == 0.0
        assert burn_rate(1, 100, 0.99) == pytest.approx(1.0)
        assert burn_rate(50, 100, 0.99) == pytest.approx(50.0)
        assert burn_rate(0, 0, 0.99) == 0.0

    def test_multi_window_alerting_needs_both_windows(self):
        slo = SLO(
            "p99", 0.010, target=0.9,
            short_window=2, long_window=6,
            fast_burn=8.0, slow_burn=4.0,
        )
        tracker = SLOTracker([slo])
        # Good ticks: no breach, no alert.
        for _ in range(4):
            (verdict,) = tracker.observe(0.001)
            assert not verdict.breached and verdict.severity is None
        # One bad tick: the short window burns (1/2)/0.1 = 5.0 but the
        # long window (1/5)/0.1 = 2.0 stays under slow_burn -- no page.
        (verdict,) = tracker.observe(0.100)
        assert verdict.breached
        assert verdict.burn_short == pytest.approx(5.0)
        assert verdict.severity is None
        # Sustained badness: both windows exceed fast_burn -> "fast".
        for _ in range(5):
            (verdict,) = tracker.observe(0.100)
        assert verdict.burn_short == pytest.approx(10.0)
        assert verdict.severity == "fast"
        assert verdict.alerting
        assert tracker.breaches("p99") == 6
        assert tracker.alerts("p99")["fast"] >= 1

    def test_offline_recomputation_matches_live(self):
        rng = np.random.default_rng(708)
        slo = SLO("p99", 0.005, target=0.95, short_window=7, long_window=20)
        tracker = SLOTracker([slo])
        latencies = list(rng.uniform(0.0, 0.01, size=50))
        for latency in latencies:
            tracker.observe(latency)
        live = tracker.burn_rates("p99")
        offline = recompute_burn_rates(latencies, slo)
        assert live == offline  # bit-exact, not approx

    def test_controller_feeds_the_tracker(self, synthetic_stack, series_maker):
        rng = np.random.default_rng(709)
        n_streams, length = 6, 8
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(synthetic_stack)

        # A scripted controller clock: latency alternates 1ms / 20ms
        # against a 5ms budget, so breaches land on exactly the odd ticks.
        reads = []
        for t in range(length):
            reads += [float(t), float(t) + (0.020 if t % 2 else 0.001)]

        def clock():
            return reads.pop(0) if reads else 99.0

        slo = SLOTracker(
            [SLO("p99_latency", 0.005, target=0.9, short_window=4,
                 long_window=8)]
        )
        controller = ServingController(factory(), clock=clock, slo=slo)
        with controller:
            for t in range(length):
                controller.tick(tick_frames(series, ids, t))

        assert controller.stats.slo_breaches == length // 2
        breached_ticks = [
            record.slo_breaches for record in controller.telemetry
        ]
        assert breached_ticks == [0, 1] * (length // 2)
        # Live state agrees with the offline recomputation from the very
        # telemetry the controller recorded.
        latencies = [
            record.latency_seconds for record in controller.telemetry
        ]
        assert slo.burn_rates("p99_latency") == recompute_burn_rates(
            latencies, slo.objectives[0]
        )
        last = controller.telemetry[-1]
        assert last.slo_burn_rate == pytest.approx(
            slo.burn_rates("p99_latency")["short"]
        )

    def test_slo_metrics_are_published(self, synthetic_stack, series_maker):
        rng = np.random.default_rng(710)
        n_streams, length = 4, 6
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(synthetic_stack)

        registry = MetricsRegistry()
        slo = SLOTracker([SLO("p99_latency", 1e-9, target=0.9)])  # all breach
        controller = ServingController(
            factory(), metrics=registry, slo=slo
        )
        with controller:
            for t in range(length):
                controller.tick(tick_frames(series, ids, t))

        families = parse_prometheus(registry.render_prometheus())
        assert (
            counter_value(
                families, "repro_slo_breaches_total", slo="p99_latency"
            )
            == length
        )
        burn_short = counter_value(
            families, "repro_slo_burn_rate", slo="p99_latency", window="short"
        )
        assert burn_short == pytest.approx(
            slo.burn_rates("p99_latency")["short"]
        )

    def test_tracker_as_dict_is_json_safe(self):
        tracker = SLOTracker([SLO("p99", 0.01)])
        tracker.observe(0.5)
        snapshot = tracker.as_dict()
        json.dumps(snapshot)
        assert snapshot["ticks"] == 1
        assert snapshot["objectives"]["p99"]["breaches"] == 1
