"""Deterministic fault injection for the sharded serving cluster.

Failover correctness cannot be proven with ad-hoc kill scripts: the
claim is that for *any* kill point the recovered run is bitwise-identical
to an uninterrupted one, which needs faults injected at exact,
repeatable protocol positions.  This harness wraps a real transport so
tests can say "kill shard 2 on its 4th step request", "hang shard 1's
snapshot reply", or "answer shard 0's next rebalance probe with
garbage" -- on inproc, pipe, or TCP, without changing cluster code.

* :class:`ChaosFault` -- one scheduled fault: victim shard, the request
  command it triggers on, the index of that request on that shard
  (counted across endpoint generations, so a respawned worker continues
  the count), the failure mode, and whether it strikes on send or on
  the reply.
* :class:`ChaosEndpoint` -- a :class:`WorkerEndpoint` proxy that
  forwards traffic untouched until a fault fires, then fails the way
  the real world does:

  - ``kill``: the peer actually dies -- a pipe worker process is
    SIGKILLed, a TCP connection is severed (the ``serve-worker``
    process survives and accepts the failover reconnect -- the
    client-loss path), an inproc servicer is dropped.  On the send
    phase the doomed request is still forwarded so the organic error
    mapping (BrokenPipe/EOF -> :class:`ClusterWorkerError`) is what the
    cluster sees; on the recv phase the reply is never read (a reply
    from a worker killed mid-request must not be trusted), which also
    keeps the parent deterministic.
  - ``hang``: models a wedged-but-alive peer *after* detection: the
    endpoint reports the worker dead without touching the wire, leaving
    the real peer running for the respawn path to reap (terminate the
    pipe child, close the socket).  Real deployments detect this via
    ``SO_KEEPALIVE``/timeouts; simulating the detection keeps the test
    instant and exact.
  - ``garbage``: the reply is consumed and replaced by the
    out-of-protocol verdict :class:`ChannelEndpoint` reaches when a
    peer answers undecodably -- the poisoned-channel path.

* :class:`ChaosTransport` -- wraps any :class:`Transport`; respawned
  endpoints (failover!) are wrapped again, with the shared request
  counters and the not-yet-fired fault list carried over.

  - ``delay``: nothing fails -- the reply simply becomes readable
    ``seconds`` after the request was sent, emulating a slow round
    trip.  The clock anchors at *send*, so a pipelined parent that
    does other work while the request is in flight genuinely overlaps
    the latency (the point of windowed ticks); a lockstep parent eats
    the full delay on every tick.

Every fault fires exactly once (``count`` times for ``count > 1``,
on consecutive matching requests).  A run with an empty (or exhausted)
fault list is byte-for-byte the wrapped transport.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

from repro.exceptions import ClusterWorkerError, ValidationError
from repro.serving.transport import Transport, WorkerEndpoint, resolve_transport

__all__ = ["ChaosFault", "ChaosEndpoint", "ChaosTransport"]

_MODES = ("kill", "hang", "garbage", "delay")
_PHASES = ("send", "recv")


@dataclass
class ChaosFault:
    """One scheduled fault; fires exactly once, then is spent.

    Attributes
    ----------
    shard:
        Victim shard index.
    command:
        Protocol request command that triggers the fault ("step",
        "snapshot", "ids", "restore", ...).
    index:
        Which matching request fires it: the ``index``-th ``command``
        request sent to ``shard`` (0-based, counted across worker
        respawns).  For a controller-driven run with per-tick fan-out,
        step-request index == tick index until the first recovery.
    mode:
        "kill", "hang", "garbage", or "delay" (see module docstring).
        "delay" emulates a slow round trip without killing anything:
        the reply becomes readable ``seconds`` after the request was
        *sent* (the clock is anchored at send, so a windowed parent
        that pipelines work behind the in-flight request genuinely
        overlaps it, exactly like real network latency).
    phase:
        "send" (the request never reaches a live peer) or "recv" (the
        request went out; the failure strikes on the reply).  "garbage"
        is a reply corruption and therefore always "recv"; "delay"
        is always anchored at send.
    seconds:
        Emulated round-trip time for "delay" faults.
    count:
        How many consecutive matching requests fire this fault: indices
        ``[index, index + count)``.  Lets one "delay" fault slow a
        shard for a whole run without scheduling per-tick faults.
    """

    shard: int
    command: str = "step"
    index: int = 0
    mode: str = "kill"
    phase: str = "send"
    seconds: float = 0.0
    count: int = 1
    fired: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValidationError(f"unknown chaos mode {self.mode!r}")
        if self.phase not in _PHASES:
            raise ValidationError(f"unknown chaos phase {self.phase!r}")
        if self.mode == "garbage" and self.phase != "recv":
            raise ValidationError("garbage replies only make sense on recv")
        if self.count < 1:
            raise ValidationError("chaos fault count must be >= 1")
        if self.mode == "delay" and self.seconds < 0:
            raise ValidationError("chaos delay seconds must be >= 0")


class ChaosEndpoint(WorkerEndpoint):
    """Transparent :class:`WorkerEndpoint` proxy that injects faults."""

    def __init__(self, transport: "ChaosTransport", inner: WorkerEndpoint) -> None:
        # No super().__init__: `alive` is a property here (derived from
        # the inner endpoint plus our own chaos verdict), not the plain
        # attribute the base class sets.
        self.shard = inner.shard
        self._transport = transport
        self._inner = inner
        self._dead = False  # chaos declared the peer gone
        # One entry per forwarded request, FIFO (a windowed parent can
        # have several in flight): None for clean requests, a
        # ("delay", ready_at) pair, or the recv-phase fault to apply
        # when *that request's* reply is read -- so faults strike the
        # exact request they were scheduled on even under pipelining.
        self._pending_effects: deque = deque()

    @property
    def alive(self) -> bool:
        return not self._dead and self._inner.alive

    # The windowing/tracing seams live on the inner endpoint (it does
    # the encoding); delegate so a cluster that sets them on this proxy
    # reaches the real thing.
    @property
    def trace_context(self):
        return self._inner.trace_context

    @trace_context.setter
    def trace_context(self, value) -> None:
        self._inner.trace_context = value

    @property
    def tick_tag(self):
        return self._inner.tick_tag

    @tick_tag.setter
    def tick_tag(self, value) -> None:
        self._inner.tick_tag = value

    @property
    def last_telemetry(self):
        return self._inner.last_telemetry

    @property
    def last_reply_tick(self):
        return self._inner.last_reply_tick

    # -- fault machinery -----------------------------------------------
    def _gone(self) -> ClusterWorkerError:
        return ClusterWorkerError(
            f"shard {self.shard} worker is gone (chaos)", shard=self.shard
        )

    def _kill_peer(self) -> bool:
        """Really kill the peer where one exists; False = simulate."""
        process = getattr(self._inner, "process", None)
        if process is not None:  # pipe worker: SIGKILL the child
            process.kill()
            process.join(5.0)
            return True
        channel = getattr(self._inner, "_channel", None)
        if channel is not None:  # tcp: sever the connection
            channel.close()
            return True
        self._inner.shutdown()  # inproc: drop the servicer
        return False

    def _before_send(self, command: str) -> None:
        if self._dead:
            raise self._gone()
        fault = self._transport._arm(self.shard, command)
        if fault is None:
            self._pending_effects.append(None)
            return
        if fault.mode == "delay":
            # RTT emulation, anchored at send: the reply exists
            # `seconds` from *now*, so anything the parent does in the
            # meantime (pipelined sends, merges of earlier ticks)
            # genuinely overlaps the emulated latency.
            self._pending_effects.append(
                ("delay", time.monotonic() + fault.seconds)
            )
            return
        if fault.phase == "recv":
            self._pending_effects.append(fault)
            return
        if fault.mode == "kill":
            if self._kill_peer():
                self._pending_effects.append(None)
                return  # forward the send; it fails organically
            self._dead = True
            raise self._gone()
        # hang: the request would never complete; report the detection.
        self._dead = True
        raise ClusterWorkerError(
            f"shard {self.shard} request timed out (chaos hang)",
            shard=self.shard,
        )

    # -- WorkerEndpoint surface ----------------------------------------
    def prepare(self, command: str, payload=None):
        return (command, self._inner.prepare(command, payload))

    def send_prepared(self, token) -> None:
        command, inner_token = token
        self._before_send(command)
        self._inner.send_prepared(inner_token)

    def send(self, command: str, payload=None) -> None:
        self._before_send(command)
        self._inner.send(command, payload)

    def recv(self) -> tuple:
        effect = (
            self._pending_effects.popleft() if self._pending_effects else None
        )
        if self._dead:
            return ("error", "ClusterWorkerError", "chaos: worker is gone")
        if isinstance(effect, tuple) and effect[0] == "delay":
            remaining = effect[1] - time.monotonic()
            if remaining > 0:
                time.sleep(remaining)
            return self._inner.recv()
        fault = effect
        if fault is not None:
            if fault.mode == "garbage":
                self._inner.recv()  # drain the real reply; it is poison
                self._dead = True
                return (
                    "error",
                    "ClusterWorkerError",
                    "chaos: out-of-protocol reply",
                )
            if fault.mode == "kill":
                # Killed mid-request: whatever the peer may have buffered
                # must not be trusted (or raced for) -- the worker is
                # dead, report it dead.
                self._kill_peer()
            self._dead = True
            return (
                "error",
                "ClusterWorkerError",
                "chaos: worker died mid-request"
                if fault.mode == "kill"
                else "chaos: reply timed out (simulated hang)",
            )
        return self._inner.recv()

    def set_timeout(self, timeout: float | None) -> None:
        self._inner.set_timeout(timeout)

    def shutdown(self, timeout: float = 5.0) -> None:
        self._dead = True
        self._inner.shutdown(timeout)


class ChaosTransport(Transport):
    """Wrap a transport so its endpoints inject the scheduled faults.

    The base :meth:`Transport.respawn` (teardown, then ``connect``) is
    inherited unchanged and does the right thing here: teardown reaches
    the real endpoint through :meth:`ChaosEndpoint.shutdown`, and the
    replacement comes from :meth:`connect`, i.e. wrapped again, with the
    request counters and any not-yet-fired faults carried across worker
    generations.
    """

    def __init__(self, inner, faults) -> None:
        self._inner = resolve_transport(inner)
        self.faults = list(faults)
        self._counts: dict[tuple[int, str], int] = {}
        self.name = self._inner.name
        self.requires_wire_ids = self._inner.requires_wire_ids
        self.handshake_timeout = self._inner.handshake_timeout
        self.workers_self_configured = self._inner.workers_self_configured

    def _arm(self, shard: int, command: str) -> ChaosFault | None:
        """Count one request on (shard, command); fire a due fault."""
        key = (shard, command)
        index = self._counts.get(key, 0)
        self._counts[key] = index + 1
        for fault in self.faults:
            if (
                not fault.fired
                and fault.shard == shard
                and fault.command == command
                and fault.index <= index < fault.index + fault.count
            ):
                if index >= fault.index + fault.count - 1:
                    fault.fired = True  # exhausted after its last firing
                return fault
        return None

    @property
    def pending_faults(self) -> list[ChaosFault]:
        """Scheduled faults that have not fired yet."""
        return [fault for fault in self.faults if not fault.fired]

    def connect(self, shard: int, engine_factory) -> WorkerEndpoint:
        return ChaosEndpoint(self, self._inner.connect(shard, engine_factory))

    def max_shards(self) -> int | None:
        return self._inner.max_shards()
