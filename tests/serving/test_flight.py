"""Flight recorder tests: record a run's wire traffic, replay it bitwise.

The load-bearing claim (an ISSUE acceptance criterion): a recorded run
-- including a chaos-injected worker kill and the failover traffic that
recovered it -- is reproducible from its log alone.  ``replay_flight``
re-drives every journaled request through fresh worker servicers and
every reply must compare byte-for-byte, results, statistics, and error
messages included.  The negative direction matters equally: a tampered
reply byte must be detected and pinpointed, and a corrupt or truncated
log must be rejected loudly rather than replayed into nonsense.
"""

import numpy as np
import pytest

from chaos import ChaosFault, ChaosTransport
from repro.core.monitor import UncertaintyMonitor
from repro.exceptions import ValidationError
from repro.serving import (
    FailoverPolicy,
    ServingController,
    ShardedEngine,
    StreamFrame,
    StreamingEngine,
)
from repro.serving.observability import (
    FlightRecorder,
    FlightRecordingTransport,
    probe_engine_shape,
    read_flight_log,
    replay_flight,
)
from repro.serving.observability.flight import (
    _MAGIC,
    _RECORD_STRUCT,
    _VERSION_STRUCT,
)


def make_factory(synthetic_stack, **kwargs):
    ddm, stateless, ta_qim, layout, fusion = synthetic_stack

    def factory():
        return StreamingEngine(
            ddm=ddm,
            stateless_qim=stateless,
            timeseries_qim=ta_qim,
            layout=layout,
            information_fusion=fusion,
            **kwargs,
        )

    return factory


def monitored_kwargs():
    return dict(
        max_buffer_length=4,
        monitor_factory=lambda: UncertaintyMonitor(
            threshold=0.35, reentry_threshold=0.25, risk_budget=3.0
        ),
        idle_ttl=3,
    )


def tick_frames(series, ids, t, new_series=False):
    return [
        StreamFrame(
            ids[sid], series[sid][0][t], series[sid][1][t],
            new_series=new_series,
        )
        for sid in range(len(ids))
    ]


def single_baseline(factory, ticks):
    engine = factory()
    expected = {}
    for frames in ticks:
        for result in engine.step_batch(frames):
            expected.setdefault(result.stream_id, []).append(result)
    return expected


def record_run(directory, factory, series, ids, length, faults=(),
               transport="pipe", failover=None):
    """Drive a recorded 2-shard controlled run; returns its results."""
    recorder = FlightRecorder(directory)
    inner = ChaosTransport(transport, list(faults)) if faults else transport
    cluster = ShardedEngine(
        factory, 2, transport=FlightRecordingTransport(inner, recorder)
    )
    try:
        with ServingController(
            cluster, failover=failover, owns_engine=True
        ) as controller:
            results = controller.run(
                [tick_frames(series, ids, t) for t in range(length)]
            )
            stats = controller.stats
    finally:
        recorder.close()
    return results, stats


class TestRecordReplayExactness:
    def test_chaos_failover_run_replays_bitwise(
        self, synthetic_stack, series_maker, tmp_path
    ):
        rng = np.random.default_rng(911)
        n_streams, length = 6, 6
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        log_dir = tmp_path / "flight"

        results, stats = record_run(
            log_dir, factory, series, ids, length,
            faults=[ChaosFault(shard=1, command="step", index=3, mode="kill")],
            failover=FailoverPolicy(
                max_failovers=4, journal_depth=16, respawn_backoff=0.0
            ),
        )
        assert stats.failovers >= 1  # the kill really happened
        # The recorded (recovered) run equals the uninterrupted baseline.
        assert results == single_baseline(
            factory, [tick_frames(series, ids, t) for t in range(length)]
        )

        manifest, records = read_flight_log(log_dir)
        assert manifest["transport"] == "pipe"
        assert manifest["n_shards"] == 2
        assert manifest["engine_shape"] == probe_engine_shape(factory)
        assert manifest["records"] == len(records)
        counts = manifest["counts"]
        assert counts["requests"] + counts["replies"] == len(records)
        # 2 initial handshakes + >= 1 failover respawn.
        assert counts["helloes"] >= 3
        # The kill left dead-peer evidence: a send that failed (the
        # request never reached a live worker) or a reply journaled with
        # the transport verdict -- which one depends on OS pipe timing.
        assert counts["transport_errors"] + counts["undelivered"] >= 1

        report = replay_flight(log_dir, factory)
        assert report.ok, report.mismatches[:3]
        assert report.mismatches == []
        assert report.helloes == counts["helloes"]
        assert report.unmatched == 0
        assert report.shards == (0, 1)
        assert report.compared == counts["replies"] - counts["transport_errors"]
        assert (
            report.skipped == counts["transport_errors"] + counts["undelivered"]
        )
        assert "bitwise-identical" in report.summary()

    def test_wrong_engine_config_is_caught(
        self, synthetic_stack, series_maker, tmp_path
    ):
        rng = np.random.default_rng(912)
        n_streams, length = 4, 3
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        log_dir = tmp_path / "flight"
        record_run(log_dir, factory, series, ids, length, transport="inproc")

        other = make_factory(synthetic_stack, max_buffer_length=2, idle_ttl=3)
        manifest, _ = read_flight_log(log_dir)
        assert probe_engine_shape(other) != manifest["engine_shape"]
        # Without the up-front probe, the hello replies catch it as byte
        # mismatches -- the log cannot be silently replayed wrong.
        report = replay_flight(log_dir, other)
        assert not report.ok
        assert any(m["command"] == "hello" for m in report.mismatches)


class TestTamperDetection:
    def tamper_one_reply(self, log_dir):
        """Flip one payload byte of the last ok step reply in frames.bin."""
        frames_path = log_dir / "frames.bin"
        data = bytearray(frames_path.read_bytes())
        offset = len(_MAGIC) + _VERSION_STRUCT.size
        target = None
        while offset < len(data):
            header_len, data_len = _RECORD_STRUCT.unpack_from(data, offset)
            offset += _RECORD_STRUCT.size
            header = bytes(data[offset:offset + header_len])
            if b'"kind":"rep"' in header and b'"command":"step"' in header:
                target = offset + header_len + data_len - 1
            offset += header_len + data_len
        assert target is not None
        data[target] ^= 0xFF
        frames_path.write_bytes(bytes(data))

    def test_flipped_reply_byte_is_pinpointed(
        self, synthetic_stack, series_maker, tmp_path
    ):
        rng = np.random.default_rng(913)
        n_streams, length = 4, 3
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        log_dir = tmp_path / "flight"
        record_run(log_dir, factory, series, ids, length, transport="inproc")

        assert replay_flight(log_dir, factory).ok  # sanity: clean before
        self.tamper_one_reply(log_dir)
        report = replay_flight(log_dir, factory)
        assert not report.ok
        (mismatch,) = report.mismatches
        assert mismatch["command"] == "step"
        assert mismatch["recorded_bytes"] == mismatch["replayed_bytes"]
        assert mismatch["first_difference"] == mismatch["recorded_bytes"] - 1
        assert "MISMATCHED" in report.summary()


class TestLogValidation:
    def make_log(self, synthetic_stack, series_maker, tmp_path):
        rng = np.random.default_rng(914)
        series = series_maker(rng, n_series=2, length=2)
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        log_dir = tmp_path / "flight"
        record_run(
            log_dir, factory, series, ["a", "b"], 2, transport="inproc"
        )
        return log_dir

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="manifest"):
            read_flight_log(tmp_path)

    def test_truncated_frames_rejected(
        self, synthetic_stack, series_maker, tmp_path
    ):
        log_dir = self.make_log(synthetic_stack, series_maker, tmp_path)
        frames_path = log_dir / "frames.bin"
        data = frames_path.read_bytes()
        frames_path.write_bytes(data[:-3])
        with pytest.raises(ValidationError, match="truncated"):
            read_flight_log(log_dir)

    def test_bad_magic_rejected(
        self, synthetic_stack, series_maker, tmp_path
    ):
        log_dir = self.make_log(synthetic_stack, series_maker, tmp_path)
        frames_path = log_dir / "frames.bin"
        data = bytearray(frames_path.read_bytes())
        data[0] ^= 0xFF
        frames_path.write_bytes(bytes(data))
        with pytest.raises(ValidationError, match="RPFR"):
            read_flight_log(log_dir)

    def test_closed_recorder_refuses_writes(self, tmp_path):
        recorder = FlightRecorder(tmp_path / "flight")
        recorder.journal(0, "req", "hello", "sent", b"x")
        recorder.close()
        assert recorder.close() == recorder.manifest_path  # idempotent
        with pytest.raises(ValidationError, match="closed"):
            recorder.journal(0, "rep", "hello", "ok", b"y")
