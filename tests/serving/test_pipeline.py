"""Pipelined (windowed) tick tests: ordering, exactness, backpressure.

The tentpole property: a :class:`ShardedEngine` built with
``inflight_window > 1`` keeps up to that many ticks in flight -- tick
t+1's shard payloads are on the wire while tick t's replies stream back
-- and the merged per-stream results are **bitwise-identical, in
admitted order**, to the lockstep loop on every transport, at every
shard count, chaos faults included.  ``inflight_window == 1`` *is* the
lockstep path (no tick tags on the wire, byte-for-byte the pre-windowing
protocol).

Proven here:

* windowed == lockstep across inproc / pipe / shm / TCP at 1, 2, and 4
  shards, results and lifecycle statistics alike;
* the wire-level tick tag (reserved ``_tick`` meta key) round-trips,
  error replies never echo it, and untagged frames encode byte-identically
  to a pre-windowing peer's;
* the window is a hard bound: submitting past it raises, collecting an
  empty window raises, control-plane operations refuse to run mid-window,
  and ``abort_window`` settles every owed reply;
* kills / garbage / hangs striking *inside* a window recover exactly --
  admitted-but-uncollected ticks are replayed in order after failover;
* drained-engine operations (periodic snapshots, journal checkpoints)
  land at their exact lockstep tick cadence;
* backpressure: with the window saturated behind a chaos-delayed shard,
  the admission frame budget is throttled (``backpressure_throttles``)
  *before* per-stream queues overflow -- deterministic via the
  controller's injectable clock;
* observability: in-flight depth in ``fanout_stats()``, controller
  stats, telemetry, and the ``repro_cluster_inflight_depth`` /
  ``repro_cluster_backpressure_throttles_total`` metric families; the
  tracer's ``await_window`` / ``merge_ready`` spans show tick t+1's
  fan-out starting before tick t's replies were awaited -- the overlap,
  visible in a trace.
"""

import numpy as np
import pytest

from chaos import ChaosFault, ChaosTransport
from repro.exceptions import ClusterError, ValidationError
from repro.serving import (
    AdmissionPolicy,
    MetricsRegistry,
    ServingController,
    ShardedEngine,
    TcpTransport,
    TickTracer,
    launch_local_workers,
    stop_local_workers,
)
from repro.serving.observability import parse_prometheus
from repro.serving.observability.tracing import PHASES
from repro.serving.protocol import (
    decode_reply_full,
    decode_request_full,
    encode_reply,
    encode_request,
)
from test_failover import (
    TCP,
    make_factory,
    monitored_kwargs,
    policy,
    single_baseline,
    tick_frames,
)


class _WindowedCluster:
    """A windowed ShardedEngine on a chaos-wrapped transport.

    An empty fault list makes the chaos layer byte-for-byte the wrapped
    transport, so the same harness drives both plain equivalence runs
    and fault-injection runs; TCP gets loopback serve-worker processes
    (serving forever, so failover reconnects succeed).
    """

    def __init__(self, transport_name, factory, n_shards, *, window, faults=()):
        self.processes = []
        if transport_name == "tcp":
            addresses, self.processes = launch_local_workers(factory, n_shards)
            inner = TcpTransport(addresses, connect_timeout=10.0)
        else:
            inner = transport_name
        self.chaos = ChaosTransport(inner, list(faults))
        self.cluster = ShardedEngine(
            factory, n_shards, transport=self.chaos, inflight_window=window
        )

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.cluster.close()
        stop_local_workers(self.processes)


def _series_ticks(series_maker, seed, n_streams, length, new_series_at=None):
    rng = np.random.default_rng(seed)
    series = series_maker(rng, n_series=n_streams, length=length)
    ids = [f"s{sid}" for sid in range(n_streams)]
    return [
        tick_frames(series, ids, t, new_series=(t == new_series_at))
        for t in range(length)
    ]


class TestWindowedEquivalence:
    """Windowed == lockstep, bitwise, across transports and shard counts."""

    @pytest.mark.parametrize("transport", ["inproc", "pipe", "shm", TCP])
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_windowed_run_is_bitwise_lockstep(
        self, synthetic_stack, series_maker, transport, n_shards
    ):
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        ticks = _series_ticks(series_maker, 501, 10, 8, new_series_at=3)
        expected, expected_stats = single_baseline(factory, ticks)

        with _WindowedCluster(
            transport, factory, n_shards, window=2
        ) as harness:
            controller = ServingController(harness.cluster)
            got = controller.run(ticks)
            stats = harness.cluster.statistics()
            inflight = harness.cluster.fanout_stats()["inflight"]

        assert got == expected
        assert stats == expected_stats
        # The window genuinely filled (two ticks were in flight at once)
        # and drained by the end; the controller saw the depth too.
        assert inflight == {
            "window": 2,
            "depth": 0,
            "max_depth": 2,
            "oldest_age_seconds": 0.0,
        }
        assert controller.stats.max_inflight_depth == 2
        assert max(t.inflight_depth for t in controller.telemetry) == 1
        assert controller.telemetry[-1].inflight_depth == 0

    def test_deeper_window_matches(self, synthetic_stack, series_maker):
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        ticks = _series_ticks(series_maker, 503, 10, 8)
        expected, expected_stats = single_baseline(factory, ticks)
        with _WindowedCluster("pipe", factory, 2, window=4) as harness:
            controller = ServingController(harness.cluster)
            got = controller.run(ticks)
            stats = harness.cluster.statistics()
            inflight = harness.cluster.fanout_stats()["inflight"]
        assert got == expected
        assert stats == expected_stats
        assert inflight["max_depth"] == 4
        assert controller.stats.max_inflight_depth == 4

    def test_window_one_is_the_lockstep_path(
        self, synthetic_stack, series_maker
    ):
        # window == 1 must route through the untouched step_batch loop:
        # no windowed bookkeeping, no depth, identical results.
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        ticks = _series_ticks(series_maker, 505, 10, 6)
        expected, expected_stats = single_baseline(factory, ticks)
        with _WindowedCluster("pipe", factory, 2, window=1) as harness:
            controller = ServingController(harness.cluster)
            got = controller.run(ticks)
            stats = harness.cluster.statistics()
            inflight = harness.cluster.fanout_stats()["inflight"]
        assert got == expected
        assert stats == expected_stats
        assert inflight["window"] == 1
        assert inflight["max_depth"] == 0  # submit_batch never ran
        assert controller.stats.max_inflight_depth == 0
        assert all(t.inflight_depth == 0 for t in controller.telemetry)

    def test_snapshots_and_checkpoints_keep_lockstep_cadence(
        self, synthetic_stack, series_maker, tmp_path
    ):
        # Drained-engine operations must land on their exact lockstep
        # ticks: the pipelined loop drains the window before a
        # snapshot-due or checkpoint-due tick instead of sliding them.
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        ticks = _series_ticks(series_maker, 507, 10, 8)
        expected, _ = single_baseline(factory, ticks)
        with _WindowedCluster("inproc", factory, 2, window=2) as harness:
            controller = ServingController(
                harness.cluster,
                failover=policy(journal_depth=2),
                snapshot_every=3,
                snapshot_dir=tmp_path / "snaps",
            )
            got = controller.run(ticks)
        assert got == expected
        from repro.serving import RegistrySnapshot

        for cadence_tick in (3, 6):
            written = RegistrySnapshot.load(
                tmp_path / "snaps" / f"tick_{cadence_tick:06d}"
            )
            assert written.tick == cadence_tick
            assert written.n_streams == 10


class TestWindowBound:
    """The window is a hard admission boundary, not an elastic buffer."""

    def _cluster(self, synthetic_stack, window=2):
        factory = make_factory(synthetic_stack)
        return ShardedEngine(
            factory, 2, transport="inproc", inflight_window=window
        )

    def test_window_must_be_positive(self, synthetic_stack):
        factory = make_factory(synthetic_stack)
        with pytest.raises(ValidationError, match="inflight_window"):
            ShardedEngine(factory, 2, transport="inproc", inflight_window=0)

    def test_submit_past_the_bound_raises(
        self, synthetic_stack, series_maker
    ):
        ticks = _series_ticks(series_maker, 509, 6, 4)
        expected, _ = single_baseline(make_factory(synthetic_stack), ticks)
        with self._cluster(synthetic_stack) as cluster:
            assert cluster.submit_batch(ticks[0]) == 1
            assert cluster.submit_batch(ticks[1]) == 2
            with pytest.raises(ClusterError, match="window is full"):
                cluster.submit_batch(ticks[2])
            # The refused submit changed nothing: both in-flight ticks
            # collect exactly, in order.
            got: dict = {}
            for _ in range(2):
                for result in cluster.collect_batch():
                    got.setdefault(result.stream_id, []).append(result)
            assert got == {
                sid: results[:2] for sid, results in expected.items()
            }

    def test_collect_with_nothing_in_flight_raises(self, synthetic_stack):
        with self._cluster(synthetic_stack) as cluster:
            with pytest.raises(ClusterError, match="no tick in flight"):
                cluster.collect_batch()

    def test_control_plane_refuses_mid_window(
        self, synthetic_stack, series_maker
    ):
        ticks = _series_ticks(series_maker, 511, 6, 4)
        with self._cluster(synthetic_stack) as cluster:
            cluster.submit_batch(ticks[0])
            for operation in (
                cluster.snapshot,
                cluster.statistics,
                lambda: cluster.step_batch(ticks[1]),
            ):
                with pytest.raises(ClusterError, match="still in flight"):
                    operation()
            cluster.collect_batch()
            cluster.statistics()  # drained again: allowed

    def test_abort_window_settles_every_owed_reply(
        self, synthetic_stack, series_maker
    ):
        ticks = _series_ticks(series_maker, 513, 6, 4)
        with self._cluster(synthetic_stack) as cluster:
            cluster.submit_batch(ticks[0])
            cluster.submit_batch(ticks[1])
            assert cluster.inflight_depth == 2
            assert cluster.abort_window() == 2
            assert cluster.inflight_depth == 0
            # Settled means settled: control-plane traffic pairs cleanly
            # again (recovery would restore state before reuse).
            cluster.statistics()
            assert cluster.abort_window() == 0


class TestTickTag:
    """The reserved ``_tick`` wire meta: pairing without payload cost."""

    def test_request_tag_roundtrips_and_strips(self):
        data = encode_request("ids", None, tick=5)
        command, payload, trace, tick = decode_request_full(data)
        assert (command, payload, trace, tick) == ("ids", None, None, 5)
        assert b'"_tick":5' in data

    def test_reply_echo_roundtrips(self):
        data = encode_reply("ids", ("ok", ["a", "b"]), tick=5)
        reply, telemetry, tick = decode_reply_full(data, "ids")
        assert reply == ("ok", ["a", "b"])
        assert telemetry is None
        assert tick == 5

    def test_error_replies_never_echo_the_tick(self):
        tagged = encode_reply("step", ("error", "Boom", "msg"), tick=9)
        reply, _, tick = decode_reply_full(tagged, "step")
        assert reply == ("error", "Boom", "msg")
        assert tick is None
        # Byte-for-byte the untagged error frame: an error aborts the
        # window, so pairing it with a tick buys nothing.
        assert tagged == encode_reply("step", ("error", "Boom", "msg"))

    def test_untagged_frames_are_byte_identical_to_pre_windowing(self):
        assert encode_request("ids", None) == encode_request(
            "ids", None, tick=None
        )
        assert b"_tick" not in encode_request("step", None)
        assert b"_tick" not in encode_reply("ids", ("ok", ["a"]))

    def test_empty_step_request_carries_the_tag(self):
        command, payload, _, tick = decode_request_full(
            encode_request("step", None, tick=2)
        )
        assert (command, payload, tick) == ("step", None, 2)


class TestWindowedFailover:
    """Faults striking inside a window recover bitwise-exactly."""

    @pytest.mark.parametrize("transport", ["inproc", "pipe"])
    @pytest.mark.parametrize(
        "mode, phase, index",
        [
            ("kill", "send", 0),
            ("kill", "recv", 3),
            ("garbage", "recv", 4),
            ("hang", "send", 7),
        ],
    )
    def test_windowed_recovery_is_bitwise_exact(
        self, synthetic_stack, series_maker, transport, mode, phase, index
    ):
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        ticks = _series_ticks(series_maker, 515, 10, 8, new_series_at=3)
        expected, expected_stats = single_baseline(factory, ticks)
        faults = [ChaosFault(1, "step", index=index, mode=mode, phase=phase)]
        with _WindowedCluster(
            transport, factory, 2, window=2, faults=faults
        ) as harness:
            controller = ServingController(
                harness.cluster, failover=policy()
            )
            got = controller.run(ticks)
            stats = harness.cluster.statistics()
            assert not harness.chaos.pending_faults
            assert controller.stats.failovers == 1
            assert controller.stats.shards_respawned == 1
        # Admitted-but-uncollected ticks were re-submitted in admitted
        # order after recovery: the run is indistinguishable from a
        # fault-free one, statistics included.
        assert got == expected
        assert stats == expected_stats

    @pytest.mark.tcp
    @pytest.mark.slow
    def test_windowed_tcp_kill_recovers(self, synthetic_stack, series_maker):
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        ticks = _series_ticks(series_maker, 517, 10, 8)
        expected, expected_stats = single_baseline(factory, ticks)
        faults = [ChaosFault(1, "step", index=3, mode="kill")]
        with _WindowedCluster(
            "tcp", factory, 2, window=2, faults=faults
        ) as harness:
            controller = ServingController(
                harness.cluster, failover=policy()
            )
            got = controller.run(ticks)
            stats = harness.cluster.statistics()
            assert not harness.chaos.pending_faults
            assert controller.stats.failovers == 1
        assert got == expected
        assert stats == expected_stats

    def test_mid_window_failure_without_failover_settles_the_engine(
        self, synthetic_stack, series_maker
    ):
        from repro.exceptions import ClusterWorkerError

        factory = make_factory(synthetic_stack)
        ticks = _series_ticks(series_maker, 519, 6, 6)
        faults = [ChaosFault(1, "step", index=2, mode="kill")]
        with _WindowedCluster(
            "pipe", factory, 2, window=2, faults=faults
        ) as harness:
            controller = ServingController(harness.cluster)
            with pytest.raises(ClusterWorkerError) as excinfo:
                controller.run(ticks)
            assert excinfo.value.shard == 1
            # The failed run settled the window on its way out: no owed
            # replies linger, the engine answers control-plane traffic.
            assert harness.cluster.inflight_depth == 0
            assert harness.cluster.dead_shards == [1]


class _SteppingClock:
    """Deterministic controller clock: each read advances a fixed step,
    so queue ages and latency EWMAs are exact regardless of scheduler
    noise or how long the chaos delay really slept."""

    def __init__(self, step=0.05):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


class TestBackpressure:
    """Window saturation throttles intake before queues blow up."""

    def test_delayed_shard_throttles_intake_before_overflow(
        self, synthetic_stack, series_maker
    ):
        # Shard 1 answers every step late (send-anchored chaos delay);
        # the window saturates behind it, the oldest in-flight tick's
        # age exceeds the admission latency budget, and the controller
        # halves the frame budget instead of letting deferred queues
        # grow past their bound.  The stepping clock (0.05 per read,
        # budget 0.01) makes the throttle decision -- and therefore the
        # whole admission schedule -- deterministic.
        factory = make_factory(synthetic_stack)
        ticks = _series_ticks(series_maker, 521, 6, 8)
        expected, _ = single_baseline(factory, ticks)
        faults = [
            ChaosFault(
                1, "step", index=0, mode="delay", seconds=0.01, count=8
            )
        ]
        admission = AdmissionPolicy(
            latency_budget=0.01, max_deferred_per_stream=64
        )
        registry = MetricsRegistry()
        with _WindowedCluster(
            "pipe", factory, 2, window=2, faults=faults
        ) as harness:
            controller = ServingController(
                harness.cluster,
                admission=admission,
                metrics=registry,
                clock=_SteppingClock(0.05),
            )
            got = controller.run(ticks)
            assert not harness.chaos.pending_faults
        stats = controller.stats
        assert stats.backpressure_throttles > 0
        families = parse_prometheus(registry.render_prometheus())
        throttles = families["repro_cluster_backpressure_throttles_total"][
            "samples"
        ][("repro_cluster_backpressure_throttles_total", ())]
        assert throttles == stats.backpressure_throttles
        assert stats.frames_deferred > 0
        assert stats.admission_overflow == 0  # throttled before the bound
        assert stats.max_inflight_depth == 2
        # Throttling reschedules frames, never changes outcomes: every
        # stream's served sequence is a bitwise prefix of the unthrottled
        # baseline's.
        assert all(
            outcomes == expected[stream_id][: len(outcomes)]
            for stream_id, outcomes in got.items()
        )

    def test_lockstep_never_trips_backpressure(
        self, synthetic_stack, series_maker
    ):
        # Window 1 keeps the pending deque empty, so the backpressure
        # check can never fire -- the lockstep QoS path is untouched.
        factory = make_factory(synthetic_stack)
        ticks = _series_ticks(series_maker, 523, 6, 6)
        admission = AdmissionPolicy(
            latency_budget=0.01, max_deferred_per_stream=64
        )
        with _WindowedCluster("pipe", factory, 2, window=1) as harness:
            controller = ServingController(
                harness.cluster,
                admission=admission,
                clock=_SteppingClock(0.05),
            )
            controller.run(ticks)
        assert controller.stats.backpressure_throttles == 0


class TestWindowedObservability:
    """Depth and window phases are visible end to end."""

    def test_depth_reaches_stats_telemetry_and_metrics(
        self, synthetic_stack, series_maker
    ):
        factory = make_factory(synthetic_stack)
        ticks = _series_ticks(series_maker, 525, 8, 6)
        registry = MetricsRegistry()
        with _WindowedCluster("pipe", factory, 2, window=2) as harness:
            controller = ServingController(harness.cluster, metrics=registry)
            controller.run(ticks)
            inflight = harness.cluster.fanout_stats()["inflight"]
        assert inflight["max_depth"] == 2
        as_dict = controller.stats.as_dict()
        assert as_dict["max_inflight_depth"] == 2
        assert as_dict["backpressure_throttles"] == 0
        families = parse_prometheus(registry.render_prometheus())
        depth = families["repro_cluster_inflight_depth"]["samples"][
            ("repro_cluster_inflight_depth", ())
        ]
        assert depth == controller.telemetry[-1].inflight_depth == 0
        # The throttle counter family is registered; like every
        # delta-advanced counter it materializes a sample on first
        # increment (the backpressure test asserts the scraped value).
        assert "repro_cluster_backpressure_throttles_total" in families
        assert controller.stats.backpressure_throttles == 0

    def test_mid_window_depth_and_queue_age_are_live(
        self, synthetic_stack, series_maker
    ):
        ticks = _series_ticks(series_maker, 527, 6, 4)
        factory = make_factory(synthetic_stack)
        with ShardedEngine(
            factory, 2, transport="inproc", inflight_window=2
        ) as cluster:
            cluster.submit_batch(ticks[0])
            cluster.submit_batch(ticks[1])
            inflight = cluster.fanout_stats()["inflight"]
            assert inflight["depth"] == 2
            assert inflight["oldest_age_seconds"] > 0.0
            cluster.abort_window()

    def test_tracer_shows_window_phases_and_overlap(
        self, synthetic_stack, series_maker
    ):
        assert "await_window" in PHASES and "merge_ready" in PHASES
        factory = make_factory(synthetic_stack)
        ticks = _series_ticks(series_maker, 529, 8, 6)
        tracer = TickTracer()
        with _WindowedCluster("pipe", factory, 2, window=2) as harness:
            controller = ServingController(harness.cluster, tracer=tracer)
            controller.run(ticks)
        traces = {trace.tick: trace for trace in tracer.traces}
        middle = traces[3]
        names = [span.name for span in middle.spans]
        assert "await_window" in names and "merge_ready" in names
        # The overlap, on the timeline: tick 3's trace carries tick 4's
        # fan-out span (submitted while tick 3's replies were still on
        # the wire), and that fan-out STARTED before tick 3's replies
        # were awaited.  A lockstep trace has no await_window span at
        # all, so this is the windowed loop's signature.
        fanouts = [s for s in middle.spans if s.name == "fanout"]
        awaits = [s for s in middle.spans if s.name == "await_window"]
        assert fanouts and awaits
        assert awaits[0].meta["tick"] == 3
        assert fanouts[0].start < awaits[0].start
        assert middle.seconds("await_window") >= 0.0
