"""Tests for the control plane (ServingController + policies).

The load-bearing invariant: a controller with both policies disabled is
bitwise-identical to driving the engine's ``step_batch`` by hand --
results, verdicts, TTL evictions, statistics, and snapshot cadence --
for the single-process engine and for sharded clusters.  On top of that:
deterministic admission (priority-then-arrival order, bounded per-stream
FIFO deferral, loud overflow), latency-driven autoscaling with
hysteresis against a scripted clock, controller state riding inside
registry snapshots (restore-then-step reproduces a controlled run,
mid-autoscale included), and the lifecycle guarantees the CLI paths rely
on (context manager reaps workers on mid-run exceptions; double-close is
idempotent all the way down).
"""

import numpy as np
import pytest

from repro.core.monitor import UncertaintyMonitor
from repro.exceptions import ValidationError
from repro.serving import (
    AdmissionPolicy,
    AutoscalePolicy,
    RegistrySnapshot,
    ServingController,
    ShardedEngine,
    StreamFrame,
    StreamingEngine,
)


def make_factory(synthetic_stack, **kwargs):
    ddm, stateless, ta_qim, layout, fusion = synthetic_stack

    def factory():
        return StreamingEngine(
            ddm=ddm,
            stateless_qim=stateless,
            timeseries_qim=ta_qim,
            layout=layout,
            information_fusion=fusion,
            **kwargs,
        )

    return factory


def monitored_kwargs():
    return dict(
        max_buffer_length=4,
        monitor_factory=lambda: UncertaintyMonitor(
            threshold=0.35, reentry_threshold=0.25, risk_budget=3.0
        ),
        idle_ttl=3,
    )


def tick_frames(series, ids, t, priorities=None, new_series=False):
    return [
        StreamFrame(
            ids[sid],
            series[sid][0][t],
            series[sid][1][t],
            new_series=new_series,
            priority=priorities[sid] if priorities else 0,
        )
        for sid in range(len(ids))
    ]


class FakeClock:
    """Scripted latency source: each tick consumes one latency value."""

    def __init__(self, latencies):
        self._latencies = list(latencies)
        self._now = 0.0
        self._pending = None

    def __call__(self) -> float:
        if self._pending is None:
            self._pending = self._latencies.pop(0) if self._latencies else 0.0
            return self._now
        self._now += self._pending
        self._pending = None
        return self._now


class TestDisabledPoliciesAreTransparent:
    def test_single_engine_bitwise_identical(self, synthetic_stack, series_maker):
        rng = np.random.default_rng(301)
        n_streams, length = 12, 8
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(synthetic_stack, **monitored_kwargs())

        plain = factory()
        expected = {}
        for t in range(length):
            for result in plain.step_batch(tick_frames(series, ids, t)):
                expected.setdefault(result.stream_id, []).append(result)

        controlled = factory()
        with ServingController(controlled) as controller:
            got = controller.run(
                [tick_frames(series, ids, t) for t in range(length)]
            )
        assert got == expected
        assert controlled.tick == plain.tick
        assert (
            controlled.registry.statistics.evicted
            == plain.registry.statistics.evicted
        )
        assert controller.stats.frames_admitted == n_streams * length

    @pytest.mark.parametrize("transport", ["inproc", "pipe"])
    @pytest.mark.parametrize("n_shards", [1, 2])
    def test_cluster_bitwise_identical(
        self, synthetic_stack, series_maker, transport, n_shards
    ):
        rng = np.random.default_rng(303)
        n_streams, length = 10, 6
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        ticks = [tick_frames(series, ids, t) for t in range(length)]

        single = factory()
        expected = {}
        for frames in ticks:
            for result in single.step_batch(frames):
                expected.setdefault(result.stream_id, []).append(result)

        with ShardedEngine(factory, n_shards, transport=transport) as cluster:
            with ServingController(cluster) as controller:
                assert controller.run(ticks) == expected

    def test_snapshot_cadence_matches_hand_rolled_loop(
        self, synthetic_stack, series_maker, tmp_path
    ):
        rng = np.random.default_rng(305)
        series = series_maker(rng, n_series=4, length=6)
        ids = [f"s{i}" for i in range(4)]
        factory = make_factory(synthetic_stack)
        with ServingController(
            factory(),
            snapshot_every=2,
            snapshot_dir=tmp_path / "snaps",
        ) as controller:
            controller.run([tick_frames(series, ids, t) for t in range(6)])
        assert [s.rsplit("/", 1)[-1] for s in controller.snapshots_written] == [
            "tick_000002",
            "tick_000004",
            "tick_000006",
        ]
        loaded = RegistrySnapshot.load(tmp_path / "snaps" / "tick_000004")
        assert loaded.tick == 4
        assert loaded.controller is not None  # controller state rides along


class TestAdmission:
    def test_priority_then_arrival_order_and_deferral(
        self, synthetic_stack, series_maker
    ):
        rng = np.random.default_rng(307)
        n_streams, length = 6, 5
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{i}" for i in range(n_streams)]
        priorities = [i % 2 for i in range(n_streams)]  # 0,1,0,1,0,1
        factory = make_factory(synthetic_stack)

        baseline = {}
        single = factory()
        for t in range(length):
            for result in single.step_batch(tick_frames(series, ids, t)):
                baseline.setdefault(result.stream_id, []).append(
                    result.outcome
                )

        controller = ServingController(
            factory(),
            admission=AdmissionPolicy(
                max_frames_per_tick=3, max_deferred_per_stream=16
            ),
        )
        results = controller.run(
            [
                tick_frames(series, ids, t, priorities=priorities)
                for t in range(length)
            ]
        )
        # Priority 0 streams (even ids) are admitted every tick; priority
        # 1 streams only ever ride the deferred queues.
        for sid in range(n_streams):
            got = [r.outcome for r in results.get(ids[sid], [])]
            assert got == baseline[ids[sid]][: len(got)]
            if priorities[sid] == 0:
                assert len(got) == length
            else:
                assert len(got) < length
        stats = controller.stats
        assert stats.deferred_by_priority.get(0, 0) == 0
        assert stats.deferred_by_priority.get(1, 0) > 0
        assert stats.admission_overflow == 0
        assert controller.backlog > 0

    def test_deferred_frames_resume_in_fifo_order(
        self, synthetic_stack, series_maker
    ):
        rng = np.random.default_rng(309)
        series = series_maker(rng, n_series=2, length=4)
        ids = ["a", "b"]
        factory = make_factory(synthetic_stack)

        baseline = {}
        single = factory()
        for t in range(4):
            for result in single.step_batch(tick_frames(series, ids, t)):
                baseline.setdefault(result.stream_id, []).append(
                    result.outcome
                )

        controller = ServingController(
            factory(),
            admission=AdmissionPolicy(max_frames_per_tick=1),
        )
        ticks = [tick_frames(series, ids, t) for t in range(4)]
        results = controller.run(ticks)
        # Empty ticks drain the backlog one frame at a time, in order.
        while controller.backlog:
            for result in controller.tick([]):
                results.setdefault(result.stream_id, []).append(result)
        drained = {
            sid: [r.outcome for r in rs] for sid, rs in results.items()
        }
        assert drained == baseline  # every frame served, exactly once, in order

    def test_bounded_queue_drops_loudly(self, synthetic_stack, series_maker):
        rng = np.random.default_rng(311)
        series = series_maker(rng, n_series=2, length=6)
        ids = ["a", "b"]
        controller = ServingController(
            make_factory(synthetic_stack)(),
            admission=AdmissionPolicy(
                max_frames_per_tick=1, max_deferred_per_stream=2
            ),
        )
        controller.run([tick_frames(series, ids, t) for t in range(6)])
        stats = controller.stats
        assert stats.admission_overflow > 0
        assert max(len(q) for q in controller._queues.values()) <= 2
        assert (
            stats.frames_submitted
            == stats.frames_admitted
            + controller.backlog
            + stats.admission_overflow
        )

    def test_duplicate_stream_rejected_without_state_change(
        self, synthetic_stack, series_maker
    ):
        rng = np.random.default_rng(313)
        (X, q, _), = series_maker(rng, n_series=1, length=2)
        engine = make_factory(synthetic_stack)()
        controller = ServingController(
            engine, admission=AdmissionPolicy(max_frames_per_tick=1)
        )
        with pytest.raises(ValidationError, match="duplicate"):
            controller.tick(
                [StreamFrame("s", X[0], q[0]), StreamFrame("s", X[1], q[1])]
            )
        assert engine.tick == 0
        assert controller.backlog == 0
        assert controller.stats.ticks == 0

    def test_rejected_tick_rolls_back_queues(
        self, synthetic_stack, series_maker
    ):
        rng = np.random.default_rng(315)
        series = series_maker(rng, n_series=2, length=2)
        ids = ["a", "b"]
        engine = make_factory(synthetic_stack)()
        controller = ServingController(
            engine, admission=AdmissionPolicy(max_frames_per_tick=1)
        )
        frames = tick_frames(series, ids, 0)
        bad = frames[:1] + [StreamFrame("b", series[1][0][0], np.zeros(3))]
        seq_before = controller._seq
        with pytest.raises(ValidationError):
            controller.tick(bad)
        # The rejected tick staged a deferral for "b"; it must be gone,
        # and the arrival sequence counter must match a run where the
        # tick never happened (snapshots would otherwise diverge).
        assert controller.backlog == 0
        assert controller._seq == seq_before
        assert engine.tick == 0

    def test_validation(self):
        with pytest.raises(ValidationError):
            AdmissionPolicy()  # needs at least one bound
        with pytest.raises(ValidationError):
            AdmissionPolicy(max_frames_per_tick=0)
        with pytest.raises(ValidationError):
            AdmissionPolicy(latency_budget=0.0)
        with pytest.raises(ValidationError):
            AdmissionPolicy(max_frames_per_tick=1, max_deferred_per_stream=0)


class TestAutoscale:
    def _policy(self, **overrides):
        config = dict(
            latency_budget=0.010,
            min_shards=1,
            max_shards=4,
            ewma_alpha=1.0,  # raw latest latency: scripted exactly
            grow_after=2,
            shrink_after=2,
            shrink_fraction=0.5,
            cooldown_ticks=0,
        )
        config.update(overrides)
        return AutoscalePolicy(**config)

    def test_requires_rebalance(self, synthetic_stack):
        with pytest.raises(ValidationError, match="rebalance"):
            ServingController(
                make_factory(synthetic_stack)(), autoscale=self._policy()
            )

    def test_ramp_1_4_1_matches_uncontrolled_run(
        self, synthetic_stack, series_maker
    ):
        """The CI controller-smoke property: a load ramp drives the shard
        count 1 -> 4 -> 1 and every admitted frame's result is bitwise
        identical to an uncontrolled (fixed-topology) run."""
        rng = np.random.default_rng(317)
        n_streams, length = 12, 22
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{i}" for i in range(n_streams)]
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        ticks = [tick_frames(series, ids, t) for t in range(length)]

        single = factory()
        expected = {}
        for frames in ticks:
            for result in single.step_batch(frames):
                expected.setdefault(result.stream_id, []).append(result)

        # 12 over-budget ticks (grow at every 2nd): 1 -> 4 by tick 6,
        # then idle ticks shrink back 4 -> 1.
        clock = FakeClock([0.050] * 12 + [0.001] * 10)
        with ShardedEngine(factory, 1, transport="inproc") as cluster:
            controller = ServingController(
                cluster, autoscale=self._policy(), clock=clock
            )
            shard_history = []
            got = {}
            for frames in ticks:
                for result in controller.tick(frames):
                    got.setdefault(result.stream_id, []).append(result)
                shard_history.append(controller.n_shards)
            assert got == expected  # scheduling changed, results did not
        assert max(shard_history) == 4
        assert shard_history[-1] == 1
        assert controller.stats.rebalances == 6  # 3 grows + 3 shrinks

    def test_hysteresis_band_prevents_oscillation(
        self, synthetic_stack, series_maker
    ):
        rng = np.random.default_rng(319)
        series = series_maker(rng, n_series=4, length=10)
        ids = [f"s{i}" for i in range(4)]
        factory = make_factory(synthetic_stack)
        # Latencies inside the band (between 50% and 100% of budget):
        # neither streak ever builds, so no rebalance fires.
        clock = FakeClock([0.007] * 10)
        with ShardedEngine(factory, 2, transport="inproc") as cluster:
            controller = ServingController(
                cluster, autoscale=self._policy(), clock=clock
            )
            controller.run([tick_frames(series, ids, t) for t in range(10)])
            assert controller.stats.rebalances == 0
            assert controller.n_shards == 2

    def test_cooldown_spaces_actions(self, synthetic_stack, series_maker):
        rng = np.random.default_rng(321)
        series = series_maker(rng, n_series=4, length=8)
        ids = [f"s{i}" for i in range(4)]
        factory = make_factory(synthetic_stack)
        clock = FakeClock([0.050] * 8)
        with ShardedEngine(factory, 1, transport="inproc") as cluster:
            controller = ServingController(
                cluster,
                autoscale=self._policy(cooldown_ticks=3),
                clock=clock,
            )
            controller.run([tick_frames(series, ids, t) for t in range(8)])
            # grow at tick 2, cooldown 3 ticks (3,4,5), grow again at 6.
            assert controller.stats.rebalances == 2
            assert controller.n_shards == 3

    def test_clamped_to_min_max(self, synthetic_stack, series_maker):
        rng = np.random.default_rng(323)
        series = series_maker(rng, n_series=4, length=6)
        ids = [f"s{i}" for i in range(4)]
        factory = make_factory(synthetic_stack)
        clock = FakeClock([0.050] * 6)
        with ShardedEngine(factory, 2, transport="inproc") as cluster:
            controller = ServingController(
                cluster,
                autoscale=self._policy(max_shards=2),
                clock=clock,
            )
            controller.run([tick_frames(series, ids, t) for t in range(6)])
            assert controller.stats.rebalances == 0
            assert controller.n_shards == 2

    def test_validation(self):
        with pytest.raises(ValidationError):
            AutoscalePolicy(latency_budget=0.0)
        with pytest.raises(ValidationError):
            AutoscalePolicy(latency_budget=0.01, min_shards=0)
        with pytest.raises(ValidationError):
            AutoscalePolicy(latency_budget=0.01, min_shards=3, max_shards=2)
        with pytest.raises(ValidationError):
            AutoscalePolicy(latency_budget=0.01, shrink_fraction=1.0)


class TestSnapshotRestore:
    def test_mid_autoscale_snapshot_restores_identical_continuation(
        self, synthetic_stack, series_maker, tmp_path
    ):
        rng = np.random.default_rng(325)
        n_streams, length = 8, 16
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{i}" for i in range(n_streams)]
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        ticks = [tick_frames(series, ids, t) for t in range(length)]
        policy = AutoscalePolicy(
            latency_budget=0.010,
            min_shards=1,
            max_shards=4,
            ewma_alpha=1.0,
            grow_after=2,
            shrink_after=2,
            cooldown_ticks=0,
        )
        latencies = [0.050] * 8 + [0.001] * 8
        admission = AdmissionPolicy(max_frames_per_tick=6)

        # Uninterrupted controlled run.
        clock = FakeClock(list(latencies))
        with ShardedEngine(factory, 1, transport="inproc") as cluster:
            controller = ServingController(
                cluster, autoscale=policy, admission=admission, clock=clock
            )
            baseline = {}
            cut = 5  # mid-ramp: shard count is 3 and queues are non-empty
            for t in range(cut):
                for r in controller.tick(ticks[t]):
                    baseline.setdefault(r.stream_id, []).append(r)
            assert controller.n_shards == 3
            backlog_at_cut = controller.backlog
            assert backlog_at_cut > 0
            controller.snapshot().save(tmp_path / "mid")
            tail = {}
            for t in range(cut, length):
                for r in controller.tick(ticks[t]):
                    tail.setdefault(r.stream_id, []).append(r)

        # Restore into a FRESH cluster (different initial topology) and
        # replay the same scripted latencies from the cut.
        loaded = RegistrySnapshot.load(tmp_path / "mid")
        assert loaded.controller is not None
        clock2 = FakeClock(list(latencies[cut:]))
        with ShardedEngine(factory, 1, transport="inproc") as cluster2:
            controller2 = ServingController(
                cluster2, autoscale=policy, admission=admission, clock=clock2
            )
            controller2.restore(loaded)
            assert controller2.n_shards == 3  # topology restored too
            assert controller2.backlog == backlog_at_cut
            resumed = {}
            for t in range(cut, length):
                for r in controller2.tick(ticks[t]):
                    resumed.setdefault(r.stream_id, []).append(r)
        assert resumed == tail

    def test_deferred_frames_survive_save_load_bitwise(
        self, synthetic_stack, series_maker, tmp_path
    ):
        rng = np.random.default_rng(327)
        series = series_maker(rng, n_series=4, length=4)
        ids = [f"s{i}" for i in range(4)]
        factory = make_factory(synthetic_stack)
        admission = AdmissionPolicy(max_frames_per_tick=2)

        engine = factory()
        controller = ServingController(engine, admission=admission)
        controller.tick(tick_frames(series, ids, 0))
        assert controller.backlog == 2
        controller.snapshot().save(tmp_path / "deferred")

        # Drain the original: the baseline continuation.
        baseline = [controller.tick([]) for _ in range(2)]

        loaded = RegistrySnapshot.load(tmp_path / "deferred")
        engine2 = factory()
        controller2 = ServingController(engine2, admission=admission)
        controller2.restore(loaded)
        assert controller2.backlog == 2
        resumed = [controller2.tick([]) for _ in range(2)]
        assert resumed == baseline

    def test_restore_with_backlog_requires_admission_policy(
        self, synthetic_stack, series_maker
    ):
        rng = np.random.default_rng(331)
        series = series_maker(rng, n_series=4, length=2)
        ids = [f"s{i}" for i in range(4)]
        factory = make_factory(synthetic_stack)
        controller = ServingController(
            factory(), admission=AdmissionPolicy(max_frames_per_tick=2)
        )
        controller.tick(tick_frames(series, ids, 0))
        snap = controller.snapshot()
        assert controller.backlog == 2

        # A policy-free controller can never drain those queues; adopting
        # them silently would lose the frames -- it must refuse loudly,
        # leaving the target engine untouched.
        engine = factory()
        bare = ServingController(engine)
        with pytest.raises(ValidationError, match="AdmissionPolicy"):
            bare.restore(snap)
        assert engine.n_streams == 0  # refused before any state change
        assert engine.tick == 0

    def test_snapshot_without_controller_state_cold_starts(
        self, synthetic_stack, series_maker
    ):
        rng = np.random.default_rng(329)
        series = series_maker(rng, n_series=2, length=2)
        ids = ["a", "b"]
        factory = make_factory(synthetic_stack)
        engine = factory()
        engine.step_batch(tick_frames(series, ids, 0))
        snap = engine.snapshot()  # engine-level: no controller state
        assert snap.controller is None

        controller = ServingController(
            factory(), admission=AdmissionPolicy(max_frames_per_tick=1)
        )
        controller.restore(snap)
        assert controller.backlog == 0
        assert controller.latency_ewma is None


class TestLifecycle:
    def test_context_manager_reaps_workers_on_exception(self, synthetic_stack):
        factory = make_factory(synthetic_stack)
        cluster = ShardedEngine(factory, 2)  # pipe workers
        processes = [w.process for w in cluster._workers]
        with pytest.raises(RuntimeError, match="boom"):
            with ServingController(cluster, owns_engine=True):
                raise RuntimeError("boom")
        for process in processes:
            process.join(timeout=10)
            assert not process.is_alive()
        assert cluster._closed

    def test_double_close_is_idempotent_all_the_way_down(
        self, synthetic_stack
    ):
        factory = make_factory(synthetic_stack)
        cluster = ShardedEngine(factory, 2)
        endpoints = list(cluster._workers)
        controller = ServingController(cluster, owns_engine=True)
        controller.close()
        controller.close()
        cluster.close()  # already closed by the controller
        for endpoint in endpoints:
            endpoint.shutdown()  # third teardown path: still a no-op
            assert not endpoint.alive

    def test_unowned_engine_stays_open(self, synthetic_stack):
        factory = make_factory(synthetic_stack)
        with ShardedEngine(factory, 1, transport="inproc") as cluster:
            with ServingController(cluster):
                pass
            assert not cluster._closed  # caller owns the lifecycle
            cluster.step_batch([])

    def test_snapshot_every_requires_dir(self, synthetic_stack):
        with pytest.raises(ValidationError, match="snapshot_dir"):
            ServingController(
                make_factory(synthetic_stack)(), snapshot_every=2
            )
