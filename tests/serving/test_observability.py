"""Observability tests: metrics registry, exposition, tracing, controller.

Three layers of guarantees:

* the registry/exposition layer round-trips exactly -- every family a
  registry renders is re-parsed by the strict ``parse_prometheus``
  validator (type/help lines, label escaping, histogram bucket
  monotonicity) and the parsed numbers equal the registry's snapshot;
* the tracer is deterministic under a scripted clock, and the disabled
  path (``null_span``) touches no clock at all;
* a metrics-enabled controller's scrape is *consistent with its own
  ``ControllerStats``* -- tick counters, admission counters, failover
  counters, and the tick/phase histograms -- including over live HTTP
  against a running inproc cluster, and including a chaos-injected
  failover on the pipe transport.
"""

import urllib.request

import numpy as np
import pytest

from chaos import ChaosFault, ChaosTransport
from repro.core.monitor import UncertaintyMonitor
from repro.exceptions import ValidationError
from repro.serving import (
    AdmissionPolicy,
    FailoverPolicy,
    MetricsRegistry,
    MetricsServer,
    ServingController,
    ShardedEngine,
    StreamFrame,
    StreamingEngine,
    TickTracer,
)
from repro.serving.observability import null_span, parse_prometheus
from repro.serving.observability.metrics import format_number


def make_factory(synthetic_stack, **kwargs):
    ddm, stateless, ta_qim, layout, fusion = synthetic_stack

    def factory():
        return StreamingEngine(
            ddm=ddm,
            stateless_qim=stateless,
            timeseries_qim=ta_qim,
            layout=layout,
            information_fusion=fusion,
            **kwargs,
        )

    return factory


def monitored_kwargs():
    return dict(
        max_buffer_length=4,
        monitor_factory=lambda: UncertaintyMonitor(
            threshold=0.35, reentry_threshold=0.25, risk_budget=3.0
        ),
        idle_ttl=3,
    )


def tick_frames(series, ids, t, priorities=None, new_series=False):
    return [
        StreamFrame(
            ids[sid],
            series[sid][0][t],
            series[sid][1][t],
            new_series=new_series,
            priority=priorities[sid] if priorities else 0,
        )
        for sid in range(len(ids))
    ]


def counter_value(families, name, **labels):
    key = (name, tuple(sorted(labels.items())))
    return families[name]["samples"][key]


# ---------------------------------------------------------------------------
# Registry semantics
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_get_or_create_returns_the_same_family(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", "a counter")
        b = registry.counter("x_total", "a counter")
        assert a is b
        a.inc()
        b.inc(2)
        assert a.value == 3

    def test_signature_conflict_is_loud(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "a counter")
        with pytest.raises(ValidationError, match="already registered"):
            registry.gauge("x_total", "now a gauge")
        with pytest.raises(ValidationError, match="already registered"):
            registry.counter("x_total", "different labels", labels=("a",))

    def test_counters_only_go_up(self):
        counter = MetricsRegistry().counter("x_total", "c")
        counter.inc(0)  # zero is allowed (a no-op delta)
        with pytest.raises(ValidationError, match="only go up"):
            counter.inc(-1)

    def test_bad_names_and_labels_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValidationError):
            registry.counter("0bad", "starts with a digit")
        with pytest.raises(ValidationError):
            registry.counter("ok_total", "bad label", labels=("le gume",))
        with pytest.raises(ValidationError, match="reserves"):
            registry.histogram("h", "le is the bucket label", labels=("le",))

    def test_labelled_series_are_independent(self):
        registry = MetricsRegistry()
        family = registry.counter("req_total", "requests", labels=("code",))
        family.labels(code=200).inc(5)
        family.labels(code="500").inc()
        snapshot = {
            tuple(s["labels"].items()): s["value"]
            for s in registry.snapshot()["req_total"]["series"]
        }
        assert snapshot == {(("code", "200"),): 5, (("code", "500"),): 1}
        with pytest.raises(ValidationError, match="takes labels"):
            family.labels(status=200)
        with pytest.raises(ValidationError, match="labeled"):
            family.inc()  # labelled family has no unlabelled series

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", "latency", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        (series,) = registry.snapshot()["lat"]["series"]
        assert series["count"] == 5
        assert series["sum"] == pytest.approx(56.05)
        # Cumulative: le=0.1 -> 1, le=1 -> 3, le=10 -> 4, +Inf -> 5.
        assert series["buckets"] == {
            "0.1": 1, "1": 3, "10": 4, "+Inf": 5
        }

    def test_format_number_spellings(self):
        assert format_number(float("inf")) == "+Inf"
        assert format_number(float("-inf")) == "-Inf"
        assert format_number(float("nan")) == "NaN"
        assert format_number(3.0) == "3"
        assert format_number(0.25) == "0.25"


# ---------------------------------------------------------------------------
# Exposition round trip (render -> strict parse -> same numbers)
# ---------------------------------------------------------------------------

class TestExpositionRoundTrip:
    def build_registry(self):
        registry = MetricsRegistry()
        plain = registry.counter("frames_total", "Frames\nprocessed \\ total.")
        plain.inc(7)
        nasty = registry.gauge(
            "queue_depth", "per-queue depth", labels=("queue", "node")
        )
        # Label values exercising every escape: backslash, quote, newline.
        nasty.labels(queue='ba"ck\\slash', node="line1\nline2").set(3.5)
        nasty.labels(queue="plain", node="n1").set(-2)
        hist = registry.histogram(
            "tick_seconds", "tick latency", labels=("phase",),
            buckets=(0.01, 0.1, 1.0),
        )
        for phase, values in {
            "step": (0.005, 0.05, 0.5, 5.0),
            "merge": (0.02,),
        }.items():
            for value in values:
                hist.labels(phase=phase).observe(value)
        return registry

    def test_every_family_round_trips(self):
        registry = self.build_registry()
        families = parse_prometheus(registry.render_prometheus())
        assert set(families) == {"frames_total", "queue_depth", "tick_seconds"}
        assert families["frames_total"]["type"] == "counter"
        assert families["queue_depth"]["type"] == "gauge"
        assert families["tick_seconds"]["type"] == "histogram"
        # The parser keeps HELP text in its escaped wire form.
        assert (
            families["frames_total"]["help"] == "Frames\\nprocessed \\\\ total."
        )
        assert counter_value(families, "frames_total") == 7
        assert counter_value(
            families, "queue_depth", queue='ba"ck\\slash', node="line1\nline2"
        ) == 3.5
        samples = families["tick_seconds"]["samples"]
        assert samples[
            ("tick_seconds_count", (("phase", "step"),))
        ] == 4
        assert samples[
            ("tick_seconds_bucket", (("le", "+Inf"), ("phase", "step")))
        ] == 4
        assert samples[
            ("tick_seconds_bucket", (("le", "0.1"), ("phase", "step")))
        ] == 2
        assert samples[
            ("tick_seconds_sum", (("phase", "merge"),))
        ] == pytest.approx(0.02)

    def test_parser_rejects_non_monotonic_histogram(self):
        registry = self.build_registry()
        text = registry.render_prometheus()
        # Tamper one cumulative bucket below its predecessor.
        tampered = text.replace(
            'tick_seconds_bucket{phase="step",le="+Inf"} 4',
            'tick_seconds_bucket{phase="step",le="+Inf"} 1',
        )
        assert tampered != text
        with pytest.raises(ValidationError):
            parse_prometheus(tampered)

    def test_parser_rejects_foreign_samples(self):
        with pytest.raises(ValidationError, match="belong"):
            parse_prometheus(
                "# HELP a_total a\n# TYPE a_total counter\nb_total 1\n"
            )
        with pytest.raises(ValidationError, match="newline"):
            parse_prometheus("# HELP a_total a\n# TYPE a_total counter\na_total 1")


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------

class TestTracer:
    def test_scripted_clock_gives_exact_spans(self):
        reads = iter([1.0, 1.5, 2.0, 2.25, 10.0, 10.125])
        tracer = TickTracer(clock=lambda: next(reads))
        with tracer.span("fanout", shards=2):
            pass
        with tracer.span("shard_step", shard=0):
            pass
        with tracer.span("shard_step", shard=1):
            pass
        trace = tracer.end_tick(7)
        assert trace.tick == 7
        assert [s.name for s in trace.spans] == [
            "fanout", "shard_step", "shard_step"
        ]
        assert trace.seconds("fanout") == 0.5
        assert trace.seconds("shard_step") == 0.25 + 0.125
        assert trace.as_dict()["spans"][0] == {
            "name": "fanout", "seconds": 0.5, "meta": {"shards": 2}
        }

    def test_span_records_even_on_exception(self):
        reads = iter([0.0, 3.0])
        tracer = TickTracer(clock=lambda: next(reads))
        with pytest.raises(RuntimeError):
            with tracer.span("step"):
                raise RuntimeError("engine rejected the tick")
        assert tracer.open_spans[0].seconds == 3.0
        tracer.abort_tick()
        assert tracer.open_spans == []
        assert tracer.last is None

    def test_window_bounds_retained_traces(self):
        tracer = TickTracer(clock=lambda: 0.0, window=2)
        for tick in range(5):
            tracer.record("step", 0.1)
            tracer.end_tick(tick)
        assert [t.tick for t in tracer.traces] == [3, 4]
        with pytest.raises(ValidationError):
            TickTracer(window=0)

    def test_null_span_never_reads_a_clock(self):
        def bomb():
            raise AssertionError("disabled tracing read a clock")

        span = null_span
        with span("fanout", shards=4):
            pass  # no tracer anywhere near this path
        tracer = TickTracer(clock=bomb)
        # The null span is the module singleton, shared across uses.
        assert null_span("a") is null_span("b")
        del tracer


# ---------------------------------------------------------------------------
# Controller publication: scrape == ControllerStats
# ---------------------------------------------------------------------------

class TestControllerMetrics:
    def run_cluster(self, synthetic_stack, series_maker, registry):
        rng = np.random.default_rng(901)
        n_streams, length = 8, 6
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        priorities = [sid % 2 for sid in range(n_streams)]
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        cluster = ShardedEngine(factory, 2, transport="inproc")
        controller = ServingController(
            cluster,
            admission=AdmissionPolicy(max_frames_per_tick=5),
            owns_engine=True,
            metrics=registry,
        )
        with controller:
            for t in range(length):
                controller.tick(tick_frames(series, ids, t, priorities))
            stats = controller.stats
        return controller, stats

    def test_scrape_is_consistent_with_stats(
        self, synthetic_stack, series_maker
    ):
        registry = MetricsRegistry()
        controller, stats = self.run_cluster(
            synthetic_stack, series_maker, registry
        )
        families = parse_prometheus(registry.render_prometheus())

        assert counter_value(families, "repro_controller_ticks_total") == stats.ticks
        assert (
            counter_value(families, "repro_controller_frames_submitted_total")
            == stats.frames_submitted
        )
        assert (
            counter_value(families, "repro_controller_frames_admitted_total")
            == stats.frames_admitted
        )
        assert (
            counter_value(families, "repro_controller_frames_resumed_total")
            == stats.frames_resumed
        )
        assert stats.frames_deferred > 0  # budget 5 < 8 streams
        deferred = {
            key[1][0][1]: value
            for key, value in families[
                "repro_controller_frames_deferred_total"
            ]["samples"].items()
        }
        assert deferred == {
            str(priority): count
            for priority, count in stats.deferred_by_priority.items()
        }
        # Engine fan-out counters rode along.
        fanout = controller.engine.fanout_stats()
        assert (
            counter_value(families, "repro_fanout_ticks_total")
            == fanout["ticks"]
        )
        # Gauges reflect the final tick.
        assert counter_value(families, "repro_controller_shards") == 2
        assert (
            counter_value(families, "repro_controller_backlog_frames")
            == controller.backlog
        )
        assert (
            counter_value(families, "repro_controller_telemetry_window_ticks")
            == stats.telemetry_window
        )
        # Tick latency histogram observed one value per tick.
        samples = families["repro_tick_latency_seconds"]["samples"]
        assert samples[("repro_tick_latency_seconds_count", ())] == stats.ticks
        # Phase histogram shows both controller and engine phases.
        phase_counts = {
            key[1][0][1]: value
            for key, value in families["repro_tick_phase_seconds"][
                "samples"
            ].items()
            if key[0] == "repro_tick_phase_seconds_count"
        }
        for phase in ("intake", "admission", "step", "fanout", "merge"):
            assert phase_counts.get(phase) == stats.ticks, phase
        assert phase_counts.get("shard_step") == 2 * stats.ticks

    def test_failover_counters_match_stats(
        self, synthetic_stack, series_maker
    ):
        rng = np.random.default_rng(902)
        n_streams, length = 6, 6
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        registry = MetricsRegistry()
        chaos = ChaosTransport(
            "pipe",
            [ChaosFault(shard=1, command="step", index=3, mode="kill")],
        )
        cluster = ShardedEngine(factory, 2, transport=chaos)
        controller = ServingController(
            cluster,
            failover=FailoverPolicy(
                max_failovers=4, journal_depth=16, respawn_backoff=0.0
            ),
            owns_engine=True,
            metrics=registry,
        )
        with controller:
            for t in range(length):
                controller.tick(tick_frames(series, ids, t))
            stats = controller.stats
        assert stats.failovers >= 1
        families = parse_prometheus(registry.render_prometheus())
        assert (
            counter_value(families, "repro_controller_failovers_total")
            == stats.failovers
        )
        assert (
            counter_value(families, "repro_controller_shards_respawned_total")
            == stats.shards_respawned
        )
        assert (
            counter_value(families, "repro_controller_replayed_ticks_total")
            == stats.replayed_ticks
        )
        assert counter_value(
            families, "repro_controller_recovery_seconds_total"
        ) == pytest.approx(stats.recovery_seconds)
        samples = families["repro_recovery_seconds"]["samples"]
        recovering_ticks = sum(
            1 for record in controller.telemetry if record.recovery_seconds > 0
        )
        assert samples[("repro_recovery_seconds_count", ())] == recovering_ticks
        phase_counts = families["repro_tick_phase_seconds"]["samples"]
        assert (
            phase_counts[
                ("repro_tick_phase_seconds_count", (("phase", "recovery"),))
            ]
            >= 1
        )

    def test_live_scrape_over_http(self, synthetic_stack, series_maker):
        registry = MetricsRegistry()
        scrapes = []

        rng = np.random.default_rng(903)
        n_streams, length = 6, 5
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        cluster = ShardedEngine(factory, 2, transport="inproc")

        with MetricsServer(registry, port=0) as server:
            def scrape_mid_run(record):
                if record.tick != 3:
                    return
                with urllib.request.urlopen(server.url, timeout=10) as response:
                    assert response.status == 200
                    assert "0.0.4" in response.headers["Content-Type"]
                    scrapes.append(response.read().decode("utf-8"))

            controller = ServingController(
                cluster,
                owns_engine=True,
                metrics=registry,
                on_tick=scrape_mid_run,
            )
            with controller:
                for t in range(length):
                    controller.tick(tick_frames(series, ids, t))
            health = urllib.request.urlopen(
                f"http://{server.host}:{server.port}/healthz", timeout=10
            )
            assert health.read() == b"ok\n"

        (text,) = scrapes
        families = parse_prometheus(text)
        # Mid-run scrape: publication runs before on_tick, so tick 3's
        # counters (3 completed ticks) are already visible.
        assert counter_value(families, "repro_controller_ticks_total") == 3


# ---------------------------------------------------------------------------
# Telemetry window satellite
# ---------------------------------------------------------------------------

class TestTelemetryWindow:
    def test_window_is_configurable_and_surfaced(
        self, synthetic_stack, series_maker
    ):
        rng = np.random.default_rng(904)
        n_streams, length = 4, 5
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        with ServingController(factory(), telemetry_window=3) as controller:
            for t in range(length):
                controller.tick(tick_frames(series, ids, t))
            assert len(controller.telemetry) == 3
            assert [r.tick for r in controller.telemetry] == [3, 4, 5]
            assert controller.stats.telemetry_window == 3
            assert controller.stats.as_dict()["telemetry_window"] == 3

    def test_default_window_unchanged(self, synthetic_stack):
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        with ServingController(factory()) as controller:
            assert controller.telemetry.maxlen == 4096
            assert controller.stats.telemetry_window == 4096

    def test_invalid_window_rejected(self, synthetic_stack):
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        with pytest.raises(ValidationError, match="telemetry_window"):
            ServingController(factory(), telemetry_window=0)
