"""Shared-memory transport tests: rings, channels, and the full seam.

The zero-copy backend must be boring at the serving layer: bitwise
identical to a single process at any shard count, snapshots portable to
and from every other transport, failover/flight/chaos/tracing all
working unchanged at the transport seam.  Below that, the ring and
channel primitives are tested directly -- geometry validation, seqlock
publish/wrap semantics, chunked oversized frames, doorbell-less
timeouts, peer-death detection -- plus the lifecycle property that
shutdown leaves nothing behind in ``/dev/shm``.
"""

import multiprocessing
import os

import numpy as np
import pytest

from chaos import ChaosFault, ChaosTransport
from repro.core.monitor import UncertaintyMonitor
from repro.exceptions import ProtocolError
from repro.serving import (
    FailoverPolicy,
    ServingController,
    ShardedEngine,
    ShmTransport,
    StreamFrame,
    StreamingEngine,
)
from repro.serving.observability import (
    FlightRecorder,
    FlightRecordingTransport,
    TickTracer,
    read_flight_log,
    replay_flight,
)
from repro.serving.protocol import (
    decode_frame,
    encode_frame,
    encode_frame_parts,
)
from repro.serving.shm import ShmChannel, ShmRing
from repro.serving.transport import resolve_transport


def make_factory(synthetic_stack, **kwargs):
    ddm, stateless, ta_qim, layout, fusion = synthetic_stack

    def factory():
        return StreamingEngine(
            ddm=ddm,
            stateless_qim=stateless,
            timeseries_qim=ta_qim,
            layout=layout,
            information_fusion=fusion,
            **kwargs,
        )

    return factory


def monitored_kwargs():
    return dict(
        max_buffer_length=4,
        monitor_factory=lambda: UncertaintyMonitor(
            threshold=0.35, reentry_threshold=0.25, risk_budget=3.0
        ),
        idle_ttl=3,
    )


def tick_frames(series, ids, t, new_series=False):
    return [
        StreamFrame(
            ids[sid], series[sid][0][t], series[sid][1][t],
            new_series=new_series,
        )
        for sid in range(len(ids))
    ]


def single_baseline(factory, ticks):
    engine = factory()
    expected: dict = {}
    for frames in ticks:
        for result in engine.step_batch(frames):
            expected.setdefault(result.stream_id, []).append(result)
    return expected, engine.registry.statistics


def shm_segments():
    """Names of live repro ring segments (Linux shm is a tmpfs dir)."""
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        pytest.skip("/dev/shm not available on this platform")
    return {n for n in os.listdir("/dev/shm") if n.startswith("repro_ring_")}


# ---------------------------------------------------------------------------
# Ring primitive
# ---------------------------------------------------------------------------
class TestShmRing:
    def test_create_attach_geometry_and_unlink(self):
        before = shm_segments()
        ring = ShmRing.create(slots=4, slot_size=64)
        try:
            assert ring.name.startswith("repro_ring_")
            assert ring.name in shm_segments() - before
            peer = ShmRing.attach(ring.name)
            assert (peer.slots, peer.slot_size) == (4, 64)
            assert peer.writer_seq == 0
            assert peer.consumed == 0
            peer.close()
        finally:
            ring.close()
            ring.unlink()
        assert shm_segments() == before

    def test_slot_size_must_be_8_aligned(self):
        with pytest.raises(ValueError, match="multiple of 8"):
            ShmRing.create(slots=2, slot_size=100)

    def test_attach_rejects_foreign_segment(self):
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(
            name=f"repro_ring_test_{os.getpid()}", create=True, size=256
        )
        ShmRing._untrack(shm)
        try:
            with pytest.raises(ProtocolError, match="not a ring"):
                ShmRing.attach(shm.name)
        finally:
            shm.close()
            # attach() maps a second handle; drop it so unlink is clean.
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass

    def test_seqlock_publish_and_wrap(self):
        ring = ShmRing.create(slots=2, slot_size=32)
        try:
            # Unpublished slots carry generation 0, never seq + 1.
            assert ring.generation(0) == 0
            for seq in range(5):
                payload = bytes([seq]) * (seq + 1)
                ring.payload(seq, len(payload))[:] = payload
                ring.publish(seq, flags=0, length=len(payload))
                assert ring.writer_seq == seq + 1
                assert ring.generation(seq) == seq + 1
                flags, length = ring.meta(seq)
                assert (flags, length) == (0, seq + 1)
                assert bytes(ring.payload(seq, length)) == payload
            # seq 3 reused slot 1: its generation proves the lap, so a
            # reader stuck at seq 1 sees "stale", never a torn frame.
            assert ring.generation(1) == 4
            assert ring.generation(3) == 4
        finally:
            ring.close()
            ring.unlink()

    def test_flags_pack_into_the_meta_word(self):
        ring = ShmRing.create(slots=2, slot_size=32)
        try:
            ring.publish(0, flags=ShmRing.FLAG_MORE, length=17)
            assert ring.meta(0) == (ShmRing.FLAG_MORE, 17)
        finally:
            ring.close()
            ring.unlink()


# ---------------------------------------------------------------------------
# Channel primitive (both ends in-process)
# ---------------------------------------------------------------------------
class _ChannelPair:
    """Two ShmChannels wired back-to-back over a pair of rings."""

    def __init__(self, slots=4, slot_size=64, alive=lambda: True):
        self.ring_ab = ShmRing.create(slots, slot_size)
        self.ring_ba = ShmRing.create(slots, slot_size)
        self.bell_a, self.bell_b = multiprocessing.Pipe()
        self.a = ShmChannel(
            send_ring=self.ring_ab, recv_ring=self.ring_ba,
            doorbell=self.bell_a, peer_alive=alive,
        )
        self.b = ShmChannel(
            send_ring=ShmRing.attach(self.ring_ba.name),
            recv_ring=ShmRing.attach(self.ring_ab.name),
            doorbell=self.bell_b, peer_alive=alive,
        )

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.a.close()
        self.b.close()
        for ring in (self.ring_ab, self.ring_ba):
            ring.unlink()


class TestShmChannel:
    def test_bytes_round_trip_both_directions(self):
        with _ChannelPair() as pair:
            pair.a.send_bytes(b"ping")
            assert bytes(pair.b.recv_bytes()) == b"ping"
            pair.b.send_bytes(b"pong")
            assert bytes(pair.a.recv_bytes()) == b"pong"

    def test_single_slot_recv_is_a_view_into_the_ring(self):
        with _ChannelPair() as pair:
            pair.a.send_bytes(b"x" * 48)
            got = pair.b.recv_bytes()
            assert isinstance(got, memoryview)
            # The slot is only recycled at the next channel op.
            assert pair.ring_ab.consumed == 0
            assert bytes(got) == b"x" * 48
            pair.b.send_bytes(b"done")
            assert pair.ring_ab.consumed == 1

    def test_oversized_frames_chain_slots(self):
        # 1000 bytes over 64-byte slots: 16 MORE-chained chunks, more
        # chunks than the ring has slots, so the writer must block on
        # ``consumed`` and the reader must release chunk-by-chunk.
        payload = bytes(range(256)) * 4
        with _ChannelPair(slots=4, slot_size=64) as pair:
            import threading

            received = []
            reader = threading.Thread(
                target=lambda: received.append(bytes(pair.b.recv_bytes()))
            )
            reader.start()
            pair.a.send_bytes(payload)
            reader.join(timeout=10)
            assert not reader.is_alive()
            assert received == [payload]

    def test_send_frame_scatter_equals_joined_codec(self):
        rng = np.random.default_rng(7)
        arrays = {
            "X": rng.normal(size=(3, 4)),
            "mask": rng.random(5) > 0.5,
            "empty": np.empty((0, 2)),
        }
        meta = {"command": "step", "tick": 9}
        parts = encode_frame_parts("req", meta, arrays)
        with _ChannelPair(slots=4, slot_size=4096) as pair:
            pair.a.send_frame(parts)
            wire = bytes(pair.b.recv_bytes())
            assert wire == encode_frame("req", meta, arrays)
            frame = decode_frame(wire)
            assert frame.kind == "req"
            assert frame.meta["tick"] == 9
            np.testing.assert_array_equal(frame.arrays["X"], arrays["X"])

    def test_send_frame_chunks_when_larger_than_a_slot(self):
        arrays = {"X": np.arange(400, dtype=np.float64).reshape(40, 10)}
        parts = encode_frame_parts("req", {"command": "step"}, arrays)
        assert parts.nbytes > 64
        with _ChannelPair(slots=8, slot_size=64) as pair:
            import threading

            received = []
            reader = threading.Thread(
                target=lambda: received.append(bytes(pair.b.recv_bytes()))
            )
            reader.start()
            pair.a.send_frame(parts)
            reader.join(timeout=10)
            assert not reader.is_alive()
            assert received == [encode_frame("req", {"command": "step"}, arrays)]

    def test_recv_timeout_raises(self):
        with _ChannelPair() as pair:
            pair.b.set_timeout(0.05)
            with pytest.raises(TimeoutError, match="timed out"):
                pair.b.recv_bytes()

    def test_dead_peer_with_empty_ring_is_broken_pipe(self):
        with _ChannelPair(alive=lambda: False) as pair:
            with pytest.raises(BrokenPipeError, match="gone"):
                pair.b.recv_bytes()

    def test_dead_peer_frames_are_drained_before_eof(self):
        # A peer that published then died: its writes are durable in the
        # segment, so the reader still gets them before seeing the EOF.
        with _ChannelPair(alive=lambda: False) as pair:
            pair.a.send_bytes(b"last words")
            assert bytes(pair.b.recv_bytes()) == b"last words"
            with pytest.raises(BrokenPipeError):
                pair.b.recv_bytes()

    def test_closed_doorbell_degrades_to_polling(self):
        with _ChannelPair() as pair:
            pair.bell_a.close()
            # b's doorbell reads EOF -> mode switch, not an error...
            pair.b.send_bytes(b"still here")  # ringing a dead bell is ok
            assert pair.b._doorbell_eof or True
            # ...and frames published without a bell still arrive.
            pair.a._doorbell_eof = True  # skip ringing the closed pipe
            pair.a.send_bytes(b"quiet frame")
            assert bytes(pair.b.recv_bytes()) == b"quiet frame"


# ---------------------------------------------------------------------------
# Full transport seam
# ---------------------------------------------------------------------------
class TestShmClusterEquivalence:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_bitwise_identical_to_single_process(
        self, synthetic_stack, series_maker, n_shards
    ):
        rng = np.random.default_rng(801)
        n_streams, length = 10, 8
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        ticks = [
            tick_frames(series, ids, t, new_series=(t == 3)) for t in range(length)
        ]
        expected, expected_stats = single_baseline(factory, ticks)

        got: dict = {}
        with ShardedEngine(factory, n_shards, transport="shm") as cluster:
            for frames in ticks:
                for result in cluster.step_batch(frames):
                    got.setdefault(result.stream_id, []).append(result)
            stats = cluster.statistics()
        assert got == expected
        assert stats == expected_stats

    def test_tiny_slots_force_chunking_and_stay_bitwise(
        self, synthetic_stack, series_maker
    ):
        # 256-byte slots chunk essentially every frame: the MORE-flag
        # reassembly path must be invisible at the serving layer.
        rng = np.random.default_rng(802)
        series = series_maker(rng, n_series=6, length=5)
        ids = [f"s{sid}" for sid in range(6)]
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        ticks = [tick_frames(series, ids, t) for t in range(5)]
        expected, _ = single_baseline(factory, ticks)

        transport = ShmTransport(slots=4, slot_bytes=256)
        got: dict = {}
        with ShardedEngine(factory, 2, transport=transport) as cluster:
            for frames in ticks:
                for result in cluster.step_batch(frames):
                    got.setdefault(result.stream_id, []).append(result)
        assert got == expected

    def test_pool_stats_surface_in_fanout_stats(
        self, synthetic_stack, series_maker
    ):
        rng = np.random.default_rng(803)
        series = series_maker(rng, n_series=6, length=6)
        ids = [f"s{sid}" for sid in range(6)]
        factory = make_factory(synthetic_stack)
        with ShardedEngine(factory, 2, transport="shm") as cluster:
            for t in range(6):
                cluster.step_batch(tick_frames(series, ids, t))
            pool = cluster.fanout_stats()["pool"]
        # Scatter-copied request payloads are accounted, and zero-copy
        # means no buffers were ever needed for in-band frames.
        assert pool["bytes_copied"] > 0
        assert pool["hits"] + pool["misses"] >= 0

    @pytest.mark.parametrize("source,target", [("shm", "pipe"), ("pipe", "shm")])
    def test_snapshot_restores_across_transports(
        self, synthetic_stack, series_maker, source, target
    ):
        rng = np.random.default_rng(804)
        n_streams, length = 10, 8
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(synthetic_stack, **monitored_kwargs())

        with ShardedEngine(factory, 3, transport=source) as cluster:
            for t in range(4):
                cluster.step_batch(tick_frames(series, ids, t))
            snapshot = cluster.snapshot()
            baseline = [
                cluster.step_batch(tick_frames(series, ids, t))
                for t in range(4, length)
            ]

        with ShardedEngine(factory, 2, transport=target) as resumed:
            resumed.restore(snapshot)
            assert resumed.tick == 4
            got = [
                resumed.step_batch(tick_frames(series, ids, t))
                for t in range(4, length)
            ]
        assert got == baseline


class TestShmFailover:
    def test_killed_worker_recovers_bitwise(
        self, synthetic_stack, series_maker
    ):
        rng = np.random.default_rng(805)
        n_streams, length = 10, 8
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        ticks = [
            tick_frames(series, ids, t, new_series=(t == 3)) for t in range(length)
        ]
        expected, expected_stats = single_baseline(factory, ticks)

        before = shm_segments()
        chaos = ChaosTransport(
            "shm", [ChaosFault(shard=1, command="step", index=4, mode="kill")]
        )
        with ShardedEngine(factory, 2, transport=chaos) as cluster:
            controller = ServingController(
                cluster,
                failover=FailoverPolicy(
                    max_failovers=4, journal_depth=16, respawn_backoff=0.0
                ),
            )
            got: dict = {}
            for frames in ticks:
                for result in controller.tick(frames):
                    got.setdefault(result.stream_id, []).append(result)
            stats = cluster.statistics()
            assert not chaos.pending_faults
            assert controller.stats.failovers == 1
            assert controller.stats.shards_respawned == 1

        assert got == expected
        assert stats == expected_stats
        # Respawn replaced the dead shard's rings with fresh segments and
        # shutdown reclaimed every one -- old and new alike.
        assert shm_segments() == before

    def test_flight_recorded_chaos_run_replays_bitwise(
        self, synthetic_stack, series_maker, tmp_path
    ):
        rng = np.random.default_rng(806)
        n_streams, length = 6, 6
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        ticks = [tick_frames(series, ids, t) for t in range(length)]
        expected, _ = single_baseline(factory, ticks)

        recorder = FlightRecorder(tmp_path / "flight")
        chaos = ChaosTransport(
            "shm", [ChaosFault(shard=1, command="step", index=3, mode="kill")]
        )
        cluster = ShardedEngine(
            factory, 2, transport=FlightRecordingTransport(chaos, recorder)
        )
        try:
            with ServingController(
                cluster,
                failover=FailoverPolicy(
                    max_failovers=4, journal_depth=16, respawn_backoff=0.0
                ),
                owns_engine=True,
            ) as controller:
                results = controller.run(ticks)
                assert controller.stats.failovers >= 1
        finally:
            recorder.close()

        assert results == expected
        manifest, _ = read_flight_log(tmp_path / "flight")
        assert manifest["transport"] == "shm"
        report = replay_flight(tmp_path / "flight", factory)
        assert report.ok, report.mismatches[:3]


class TestShmTracing:
    def test_traced_run_propagates_worker_telemetry(
        self, synthetic_stack, series_maker
    ):
        rng = np.random.default_rng(807)
        series = series_maker(rng, n_series=6, length=4)
        ids = [f"s{sid}" for sid in range(6)]
        factory = make_factory(synthetic_stack, **monitored_kwargs())

        tracer = TickTracer()
        with ShardedEngine(factory, 2, transport="shm") as cluster:
            with ServingController(cluster, tracer=tracer) as controller:
                for t in range(4):
                    controller.tick(tick_frames(series, ids, t))
            stats = cluster.fanout_stats()

        phases = stats["worker_phase_seconds"]
        assert set(phases) == {0, 1}
        for shard_phases in phases.values():
            assert set(shard_phases) == {
                "recv", "decode", "step", "encode", "send",
            }
            assert shard_phases["step"] > 0.0


class TestShmLifecycle:
    def test_resolve_transport_accepts_shm(self):
        transport = resolve_transport("shm")
        assert isinstance(transport, ShmTransport)
        assert transport.name == "shm"
        with pytest.raises(Exception, match="shm"):
            resolve_transport("bogus")

    def test_shutdown_unlinks_every_segment(
        self, synthetic_stack, series_maker
    ):
        rng = np.random.default_rng(808)
        series = series_maker(rng, n_series=4, length=3)
        ids = [f"s{sid}" for sid in range(4)]
        factory = make_factory(synthetic_stack)

        before = shm_segments()
        with ShardedEngine(factory, 3, transport="shm") as cluster:
            during = shm_segments()
            # Two rings per shard, all visible while the cluster is up.
            assert len(during - before) == 6
            for t in range(3):
                cluster.step_batch(tick_frames(series, ids, t))
        assert shm_segments() == before

    def test_rebalance_recreates_rings(self, synthetic_stack, series_maker):
        rng = np.random.default_rng(809)
        series = series_maker(rng, n_series=6, length=6)
        ids = [f"s{sid}" for sid in range(6)]
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        ticks = [tick_frames(series, ids, t) for t in range(6)]
        expected, _ = single_baseline(factory, ticks)

        before = shm_segments()
        got: dict = {}
        with ShardedEngine(factory, 2, transport="shm") as cluster:
            for t, frames in enumerate(ticks):
                if t == 3:
                    cluster.rebalance(3)
                    assert len(shm_segments() - before) == 6
                for result in cluster.step_batch(frames):
                    got.setdefault(result.stream_id, []).append(result)
        assert got == expected
        assert shm_segments() == before
