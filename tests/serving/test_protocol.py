"""Tests for the cluster wire codec.

The codec is the contract every transport shares: frames must round-trip
bitwise (numpy payloads never touch JSON), malformed or version-skewed
frames must fail loudly as :class:`ProtocolError`, and every worker
command's payload must survive encode/decode unchanged -- including whole
registry snapshots, whose wire framing backs cross-transport restore.
"""

import numpy as np
import pytest

from repro.exceptions import ProtocolError, ValidationError
from repro.serving import RegistrySnapshot, StreamingEngine, StreamFrame
from repro.serving.protocol import (
    PROTOCOL_VERSION,
    BufferPool,
    decode_frame,
    decode_reply,
    decode_request,
    encode_frame,
    encode_frame_parts,
    encode_reply,
    encode_reply_parts,
    encode_request,
    encode_request_parts,
    require_wire_id,
)


class TestFrameLayer:
    def test_roundtrip_meta_and_arrays(self):
        arrays = {
            "X": np.arange(12, dtype=float).reshape(3, 4) * np.pi,
            "labels": np.array([1, -5, 2**40], dtype=np.int64),
            "flags": np.array([True, False, True]),
            "empty": np.empty(0, dtype=float),
        }
        meta = {"ids": ["a", 1, 2.5, None, True], "nested": {"k": [1, 2]}}
        frame = decode_frame(encode_frame("req:step", meta, arrays))
        assert frame.kind == "req:step"
        assert frame.meta == meta
        assert set(frame.arrays) == set(arrays)
        for name, array in arrays.items():
            decoded = frame.arrays[name]
            assert decoded.dtype == array.dtype
            assert decoded.shape == array.shape
            # Bitwise, not approximate: raw buffer bytes round-trip.
            assert decoded.tobytes() == np.ascontiguousarray(array).tobytes()

    def test_decoded_arrays_own_their_memory(self):
        data = bytearray(encode_frame("k", {}, {"a": np.array([1.0, 2.0])}))
        frame = decode_frame(data)
        copy = frame.arrays["a"].copy()
        data[-16:] = b"\x00" * 16  # scribble over the receive buffer
        assert np.array_equal(frame.arrays["a"], copy)
        frame.arrays["a"][0] = 9.0  # writable, not a frozen view

    def test_noncontiguous_input_is_encoded_correctly(self):
        base = np.arange(24, dtype=np.int64).reshape(4, 6)
        frame = decode_frame(encode_frame("k", {}, {"a": base[:, ::2]}))
        assert np.array_equal(frame.arrays["a"], base[:, ::2])

    def test_bad_magic_and_truncation(self):
        good = encode_frame("k", {"x": 1}, {"a": np.ones(3)})
        with pytest.raises(ProtocolError, match="magic"):
            decode_frame(b"NOPE" + good[4:])
        with pytest.raises(ProtocolError, match="truncated"):
            decode_frame(good[:3])
        with pytest.raises(ProtocolError, match="cut short"):
            decode_frame(good[:-8])
        with pytest.raises(ProtocolError, match="trailing"):
            decode_frame(good + b"junk")

    def test_version_mismatch_fails_loudly(self):
        import struct

        good = bytearray(encode_frame("k", {}))
        struct.pack_into(">H", good, 4, PROTOCOL_VERSION + 1)
        with pytest.raises(ProtocolError, match="protocol version"):
            decode_frame(bytes(good))

    def test_undecodable_header(self):
        import struct

        header = b"not json"
        raw = b"RPWC" + struct.pack(">HI", PROTOCOL_VERSION, len(header)) + header
        with pytest.raises(ProtocolError, match="header"):
            decode_frame(raw)

    def test_malformed_manifest_shapes_rejected(self):
        # A hostile peer must not be able to rewind the read offset with
        # negative dims or smuggle non-int shapes past the decoder.
        import json as json_module
        import struct

        def frame_with_shape(shape):
            header = json_module.dumps(
                {
                    "kind": "k",
                    "meta": {},
                    "arrays": [{"name": "a", "dtype": "<f8", "shape": shape}],
                }
            ).encode("utf-8")
            return (
                b"RPWC"
                + struct.pack(">HI", PROTOCOL_VERSION, len(header))
                + header
            )

        for shape in (["x"], [-1], [1, -8], 3, [2.5], [True]):
            with pytest.raises(ProtocolError, match="non-negative ints"):
                decode_frame(frame_with_shape(shape))
        # Huge dims must not wrap to a small/negative product (int64
        # overflow) -- they are simply larger than the payload.
        for shape in ([2**32, 2**32], [2**63, 2]):
            with pytest.raises(ProtocolError, match="cut short"):
                decode_frame(frame_with_shape(shape))

    def test_non_json_meta_rejected_at_encode(self):
        with pytest.raises(ValidationError, match="wire-serializable"):
            encode_frame("k", {"id": object()})


def _random_arrays(rng):
    """A randomized arrays dict mixing dtypes, orders, and emptiness."""
    dtypes = [
        np.float64, np.float32, np.int64, np.int32, np.uint8, np.bool_,
        np.dtype(">i4"), np.dtype("<f8"),
    ]
    arrays = {}
    for index in range(rng.integers(0, 5)):
        dtype = dtypes[rng.integers(0, len(dtypes))]
        ndim = int(rng.integers(0, 4))
        shape = tuple(int(rng.integers(0, 5)) for _ in range(ndim))
        array = (rng.random(shape) * 100).astype(dtype)
        kind = rng.integers(0, 3)
        if kind == 1 and array.ndim >= 2 and array.shape[-1] > 1:
            array = array[..., ::2]  # non-contiguous view
        elif kind == 2 and array.ndim >= 2:
            array = np.asfortranarray(array)
        arrays[f"a{index}"] = array
    return arrays


class TestPooledCodec:
    """The zero-copy gather-list encoder and its buffer pool."""

    def test_parts_join_matches_legacy_bytes(self):
        rng = np.random.default_rng(81)
        for _ in range(50):
            arrays = _random_arrays(rng)
            meta = {"ids": list(range(int(rng.integers(0, 4))))}
            legacy = encode_frame("req:step", meta, arrays)
            parts = encode_frame_parts("req:step", meta, arrays)
            assert parts.join() == legacy
            assert parts.nbytes == len(legacy)

    def test_pooled_assembly_matches_legacy_bytes(self):
        rng = np.random.default_rng(82)
        pool = BufferPool()
        for _ in range(50):
            arrays = _random_arrays(rng)
            legacy = encode_frame("k", {"n": 1}, arrays)
            frame = pool.encode_into(encode_frame_parts("k", {"n": 1}, arrays))
            assert bytes(frame.view) == legacy
            frame.release()
        # Steady state recycles: far more hits than allocations.
        assert pool.hits + pool.misses == 50
        assert pool.hits > pool.misses

    def test_request_and_reply_parts_match_joined_codecs(self):
        payload = {
            "ids": ["a", "b"],
            "X": np.arange(8, dtype=float).reshape(2, 4),
            "Q": np.ones((2, 3)),
            "new_series": np.array([True, False]),
            "scope": None,
        }
        assert (
            encode_request_parts("step", payload, trace={"tick": 3}).join()
            == encode_request("step", payload, trace={"tick": 3})
        )
        reply = ("ok", {"fused": np.arange(4.0)})
        assert (
            encode_reply_parts("step", reply, telemetry={"t": 1}).join()
            == encode_reply("step", reply, telemetry={"t": 1})
        )
        error = ("error", "ValueError", "boom")
        assert (
            encode_reply_parts("step", error).join()
            == encode_reply("step", error)
        )

    def test_pooled_roundtrip_mixed_dtypes_and_empties(self):
        pool = BufferPool()
        arrays = {
            "f": np.linspace(0, 1, 7, dtype=np.float32),
            "big_endian": np.arange(5, dtype=">i4"),
            "empty": np.empty((0, 3), dtype=np.int16),
            "scalarish": np.float64(2.5),
            "strided": np.arange(24, dtype=np.int64).reshape(4, 6)[:, ::2],
            "bools": np.array([[True], [False]]),
        }
        frame = pool.encode_into(encode_frame_parts("k", {"m": 1}, arrays))
        decoded = decode_frame(frame.view)
        frame.release()
        for name, array in arrays.items():
            expected = np.ascontiguousarray(array)
            assert decoded.arrays[name].dtype == expected.dtype
            assert decoded.arrays[name].shape == expected.shape
            assert decoded.arrays[name].tobytes() == expected.tobytes()

    def test_truncated_and_tampered_pooled_frames_fail_loudly(self):
        pool = BufferPool()
        parts = encode_frame_parts("k", {"x": 1}, {"a": np.ones(5)})
        frame = pool.encode_into(parts)
        good = bytes(frame.view)
        frame.release()
        with pytest.raises(ProtocolError, match="truncated"):
            decode_frame(good[:5])
        with pytest.raises(ProtocolError, match="cut short"):
            decode_frame(good[:-4])
        with pytest.raises(ProtocolError, match="magic"):
            decode_frame(b"XXXX" + good[4:])
        tampered = bytearray(good)
        tampered[4] ^= 0xFF  # version word
        with pytest.raises(ProtocolError, match="version"):
            decode_frame(bytes(tampered))
        header_garbage = bytearray(good)
        header_garbage[12] ^= 0xFF  # inside the JSON header
        with pytest.raises(ProtocolError):
            decode_frame(bytes(header_garbage))

    def test_pool_reuse_never_aliases_live_decoded_arrays(self):
        pool = BufferPool()
        first = pool.encode_into(
            encode_frame_parts("k", {}, {"a": np.full(64, 7.0)})
        )
        decoded = decode_frame(first.view)
        kept = decoded.arrays["a"]
        first.release()
        # The released buffer is recycled and overwritten by the next
        # frame of the same size class...
        second = pool.encode_into(
            encode_frame_parts("k", {}, {"a": np.zeros(64)})
        )
        assert pool.hits == 1
        # ...but decoded arrays own their memory, so the live view of
        # the first frame is unaffected.
        assert np.array_equal(kept, np.full(64, 7.0))
        second.release()

    def test_released_frame_is_inert(self):
        pool = BufferPool()
        frame = pool.encode_into(encode_frame_parts("k", {"x": 1}, {}))
        frame.release()
        frame.release()  # idempotent
        assert pool.stats()["hits"] == 0

    def test_pool_size_classes_and_counters(self):
        pool = BufferPool(max_buffers_per_class=2)
        small = pool.acquire(100)
        assert len(small) == BufferPool.MIN_BUFFER_BYTES
        big = pool.acquire(BufferPool.MIN_BUFFER_BYTES + 1)
        assert len(big) == 2 * BufferPool.MIN_BUFFER_BYTES
        pool._release(small)
        assert pool.acquire(50) is small
        assert pool.stats() == {"hits": 1, "misses": 2, "bytes_copied": 0}

    def test_segments_pin_backing_arrays(self):
        # The gather list borrows array memory; _keepalive must hold the
        # contiguous copies alive even when the caller drops its refs.
        parts = encode_frame_parts(
            "k", {}, {"a": np.arange(6.0).reshape(2, 3)[:, ::2]}
        )
        legacy = encode_frame("k", {}, {"a": np.arange(6.0).reshape(2, 3)[:, ::2]})
        import gc

        gc.collect()
        assert parts.join() == legacy


class TestWireIds:
    def test_scalars_pass_and_objects_fail(self):
        for stream_id in ("car-1", 7, 2.5, True, None):
            require_wire_id(stream_id)
        with pytest.raises(ValidationError, match="wire-serializable"):
            require_wire_id(("tuple", "id"))

    def test_step_request_rejects_exotic_ids(self):
        payload = {
            "ids": [("a", 1)],
            "X": np.ones((1, 2)),
            "Q": np.ones((1, 1)),
            "new_series": np.array([False]),
            "scope": None,
        }
        with pytest.raises(ValidationError, match="wire-serializable"):
            encode_request("step", payload)


class TestRequestReplyVocabulary:
    def test_step_request_roundtrip(self):
        payload = {
            "ids": ["a", "b", 3],
            "X": np.random.default_rng(0).normal(size=(3, 5)),
            "Q": np.random.default_rng(1).random((3, 2)),
            "new_series": np.array([True, False, True]),
            "scope": [{"lat": 1.25}, None, {"lat": -3.5}],
        }
        command, decoded = decode_request(encode_request("step", payload))
        assert command == "step"
        assert decoded["ids"] == payload["ids"]
        assert decoded["scope"] == payload["scope"]
        assert decoded["X"].tobytes() == payload["X"].tobytes()
        assert decoded["Q"].tobytes() == payload["Q"].tobytes()
        assert decoded["new_series"].tolist() == [True, False, True]

    def test_frameless_step_roundtrip(self):
        command, decoded = decode_request(encode_request("step", None))
        assert command == "step"
        assert decoded is None
        assert decode_reply(encode_reply("step", ("ok", None)), "step") == ("ok", None)

    def test_step_reply_roundtrip_bitwise(self):
        encoded = {
            "fused": np.array([3, 1], dtype=np.int64),
            "fused_u": np.array([0.1, 0.9999999999999999]),
            "isolated": np.array([3, 2], dtype=np.int64),
            "isolated_u": np.array([0.25, 0.5]),
            "timestep": np.array([0, 7], dtype=np.int64),
            "scope_u": np.array([0.0, 1.0]),
            "v_mask": np.array([True, False]),
            "v_accepted": np.array([True, False]),
            "v_u": np.array([0.1, 0.0]),
            "v_threshold": np.array([0.35, 0.0]),
            "v_hysteresis": np.array([False, False]),
        }
        status, decoded = decode_reply(encode_reply("step", ("ok", encoded)), "step")
        assert status == "ok"
        assert set(decoded) == set(encoded)
        for key in encoded:
            assert decoded[key].tobytes() == encoded[key].tobytes()

    def test_simple_commands_roundtrip(self):
        for command, payload in [
            ("hello", {"initial_tick": 5, "shard": 2}),
            ("snapshot", ["a", "b"]),
            ("snapshot", None),
            ("discard", ["a", 2, None]),
            ("ids", None),
            ("stats", None),
            ("close", None),
        ]:
            assert decode_request(encode_request(command, payload)) == (
                command,
                payload,
            )
        stats = {"created": 3, "evicted": 1, "series_started": 2,
                 "n_streams": 2, "tick": 9}
        assert decode_reply(encode_reply("stats", ("ok", stats)), "stats") == (
            "ok",
            stats,
        )
        assert decode_reply(encode_reply("ids", ("ok", ["x", 1])), "ids") == (
            "ok",
            ["x", 1],
        )

    def test_error_reply_is_command_independent(self):
        data = encode_reply("step", ("error", "ValidationError", "boom"))
        for command in ("step", "snapshot", "stats"):
            assert decode_reply(data, command) == (
                "error",
                "ValidationError",
                "boom",
            )

    def test_mismatched_reply_kind_rejected(self):
        data = encode_reply("stats", ("ok", {"tick": 1}))
        with pytest.raises(ProtocolError, match="does not match"):
            decode_reply(data, "step")

    def test_unknown_command_rejected(self):
        with pytest.raises(ProtocolError, match="unknown request"):
            encode_request("format-disk", None)


class TestSnapshotWireFraming:
    def make_snapshot(self, synthetic_stack, series_maker):
        from repro.core.monitor import UncertaintyMonitor

        ddm, stateless, ta_qim, layout, fusion = synthetic_stack
        engine = StreamingEngine(
            ddm=ddm,
            stateless_qim=stateless,
            timeseries_qim=ta_qim,
            layout=layout,
            information_fusion=fusion,
            max_buffer_length=4,
            monitor_factory=lambda: UncertaintyMonitor(threshold=0.35),
            idle_ttl=5,
        )
        series = series_maker(np.random.default_rng(5), n_series=6, length=5)
        for t in range(5):
            engine.step_batch(
                [
                    StreamFrame(f"s{i}", series[i][0][t], series[i][1][t])
                    for i in range(6)
                ]
            )
        return engine.snapshot()

    def test_to_wire_from_wire_roundtrip(self, synthetic_stack, series_maker):
        snapshot = self.make_snapshot(synthetic_stack, series_maker)
        rebuilt = RegistrySnapshot.from_wire(*snapshot.to_wire())
        assert rebuilt.tick == snapshot.tick
        assert rebuilt.max_buffer_length == snapshot.max_buffer_length
        assert rebuilt.idle_ttl == snapshot.idle_ttl
        assert rebuilt.statistics == snapshot.statistics
        assert len(rebuilt.streams) == len(snapshot.streams)
        for got, expected in zip(rebuilt.streams, snapshot.streams):
            assert got.stream_id == expected.stream_id
            assert got.step_count == expected.step_count
            assert got.last_tick == expected.last_tick
            assert got.monitor == expected.monitor
            assert got.outcomes.tobytes() == expected.outcomes.tobytes()
            assert got.uncertainties.tobytes() == expected.uncertainties.tobytes()

    def test_snapshot_travels_through_reply_codec(
        self, synthetic_stack, series_maker
    ):
        snapshot = self.make_snapshot(synthetic_stack, series_maker)
        status, rebuilt = decode_reply(
            encode_reply("snapshot", ("ok", snapshot)), "snapshot"
        )
        assert status == "ok"
        assert rebuilt.n_streams == snapshot.n_streams
        assert [s.stream_id for s in rebuilt.streams] == [
            s.stream_id for s in snapshot.streams
        ]

    def test_from_wire_validates_version_and_lengths(
        self, synthetic_stack, series_maker
    ):
        snapshot = self.make_snapshot(synthetic_stack, series_maker)
        meta, arrays = snapshot.to_wire()
        bad_meta = dict(meta, version=meta["version"] + 1)
        with pytest.raises(ValidationError, match="format version"):
            RegistrySnapshot.from_wire(bad_meta, arrays)
        bad_arrays = dict(arrays, lengths=arrays["lengths"][:-1])
        with pytest.raises(ValidationError, match="buffer lengths"):
            RegistrySnapshot.from_wire(meta, bad_arrays)
        with pytest.raises(ValidationError, match="snapshot"):
            RegistrySnapshot.from_wire({"format": "something-else"}, arrays)
