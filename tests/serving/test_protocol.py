"""Tests for the cluster wire codec.

The codec is the contract every transport shares: frames must round-trip
bitwise (numpy payloads never touch JSON), malformed or version-skewed
frames must fail loudly as :class:`ProtocolError`, and every worker
command's payload must survive encode/decode unchanged -- including whole
registry snapshots, whose wire framing backs cross-transport restore.
"""

import numpy as np
import pytest

from repro.exceptions import ProtocolError, ValidationError
from repro.serving import RegistrySnapshot, StreamingEngine, StreamFrame
from repro.serving.protocol import (
    PROTOCOL_VERSION,
    decode_frame,
    decode_reply,
    decode_request,
    encode_frame,
    encode_reply,
    encode_request,
    require_wire_id,
)


class TestFrameLayer:
    def test_roundtrip_meta_and_arrays(self):
        arrays = {
            "X": np.arange(12, dtype=float).reshape(3, 4) * np.pi,
            "labels": np.array([1, -5, 2**40], dtype=np.int64),
            "flags": np.array([True, False, True]),
            "empty": np.empty(0, dtype=float),
        }
        meta = {"ids": ["a", 1, 2.5, None, True], "nested": {"k": [1, 2]}}
        frame = decode_frame(encode_frame("req:step", meta, arrays))
        assert frame.kind == "req:step"
        assert frame.meta == meta
        assert set(frame.arrays) == set(arrays)
        for name, array in arrays.items():
            decoded = frame.arrays[name]
            assert decoded.dtype == array.dtype
            assert decoded.shape == array.shape
            # Bitwise, not approximate: raw buffer bytes round-trip.
            assert decoded.tobytes() == np.ascontiguousarray(array).tobytes()

    def test_decoded_arrays_own_their_memory(self):
        data = bytearray(encode_frame("k", {}, {"a": np.array([1.0, 2.0])}))
        frame = decode_frame(data)
        copy = frame.arrays["a"].copy()
        data[-16:] = b"\x00" * 16  # scribble over the receive buffer
        assert np.array_equal(frame.arrays["a"], copy)
        frame.arrays["a"][0] = 9.0  # writable, not a frozen view

    def test_noncontiguous_input_is_encoded_correctly(self):
        base = np.arange(24, dtype=np.int64).reshape(4, 6)
        frame = decode_frame(encode_frame("k", {}, {"a": base[:, ::2]}))
        assert np.array_equal(frame.arrays["a"], base[:, ::2])

    def test_bad_magic_and_truncation(self):
        good = encode_frame("k", {"x": 1}, {"a": np.ones(3)})
        with pytest.raises(ProtocolError, match="magic"):
            decode_frame(b"NOPE" + good[4:])
        with pytest.raises(ProtocolError, match="truncated"):
            decode_frame(good[:3])
        with pytest.raises(ProtocolError, match="cut short"):
            decode_frame(good[:-8])
        with pytest.raises(ProtocolError, match="trailing"):
            decode_frame(good + b"junk")

    def test_version_mismatch_fails_loudly(self):
        import struct

        good = bytearray(encode_frame("k", {}))
        struct.pack_into(">H", good, 4, PROTOCOL_VERSION + 1)
        with pytest.raises(ProtocolError, match="protocol version"):
            decode_frame(bytes(good))

    def test_undecodable_header(self):
        import struct

        header = b"not json"
        raw = b"RPWC" + struct.pack(">HI", PROTOCOL_VERSION, len(header)) + header
        with pytest.raises(ProtocolError, match="header"):
            decode_frame(raw)

    def test_malformed_manifest_shapes_rejected(self):
        # A hostile peer must not be able to rewind the read offset with
        # negative dims or smuggle non-int shapes past the decoder.
        import json as json_module
        import struct

        def frame_with_shape(shape):
            header = json_module.dumps(
                {
                    "kind": "k",
                    "meta": {},
                    "arrays": [{"name": "a", "dtype": "<f8", "shape": shape}],
                }
            ).encode("utf-8")
            return (
                b"RPWC"
                + struct.pack(">HI", PROTOCOL_VERSION, len(header))
                + header
            )

        for shape in (["x"], [-1], [1, -8], 3, [2.5], [True]):
            with pytest.raises(ProtocolError, match="non-negative ints"):
                decode_frame(frame_with_shape(shape))
        # Huge dims must not wrap to a small/negative product (int64
        # overflow) -- they are simply larger than the payload.
        for shape in ([2**32, 2**32], [2**63, 2]):
            with pytest.raises(ProtocolError, match="cut short"):
                decode_frame(frame_with_shape(shape))

    def test_non_json_meta_rejected_at_encode(self):
        with pytest.raises(ValidationError, match="wire-serializable"):
            encode_frame("k", {"id": object()})


class TestWireIds:
    def test_scalars_pass_and_objects_fail(self):
        for stream_id in ("car-1", 7, 2.5, True, None):
            require_wire_id(stream_id)
        with pytest.raises(ValidationError, match="wire-serializable"):
            require_wire_id(("tuple", "id"))

    def test_step_request_rejects_exotic_ids(self):
        payload = {
            "ids": [("a", 1)],
            "X": np.ones((1, 2)),
            "Q": np.ones((1, 1)),
            "new_series": np.array([False]),
            "scope": None,
        }
        with pytest.raises(ValidationError, match="wire-serializable"):
            encode_request("step", payload)


class TestRequestReplyVocabulary:
    def test_step_request_roundtrip(self):
        payload = {
            "ids": ["a", "b", 3],
            "X": np.random.default_rng(0).normal(size=(3, 5)),
            "Q": np.random.default_rng(1).random((3, 2)),
            "new_series": np.array([True, False, True]),
            "scope": [{"lat": 1.25}, None, {"lat": -3.5}],
        }
        command, decoded = decode_request(encode_request("step", payload))
        assert command == "step"
        assert decoded["ids"] == payload["ids"]
        assert decoded["scope"] == payload["scope"]
        assert decoded["X"].tobytes() == payload["X"].tobytes()
        assert decoded["Q"].tobytes() == payload["Q"].tobytes()
        assert decoded["new_series"].tolist() == [True, False, True]

    def test_frameless_step_roundtrip(self):
        command, decoded = decode_request(encode_request("step", None))
        assert command == "step"
        assert decoded is None
        assert decode_reply(encode_reply("step", ("ok", None)), "step") == ("ok", None)

    def test_step_reply_roundtrip_bitwise(self):
        encoded = {
            "fused": np.array([3, 1], dtype=np.int64),
            "fused_u": np.array([0.1, 0.9999999999999999]),
            "isolated": np.array([3, 2], dtype=np.int64),
            "isolated_u": np.array([0.25, 0.5]),
            "timestep": np.array([0, 7], dtype=np.int64),
            "scope_u": np.array([0.0, 1.0]),
            "v_mask": np.array([True, False]),
            "v_accepted": np.array([True, False]),
            "v_u": np.array([0.1, 0.0]),
            "v_threshold": np.array([0.35, 0.0]),
            "v_hysteresis": np.array([False, False]),
        }
        status, decoded = decode_reply(encode_reply("step", ("ok", encoded)), "step")
        assert status == "ok"
        assert set(decoded) == set(encoded)
        for key in encoded:
            assert decoded[key].tobytes() == encoded[key].tobytes()

    def test_simple_commands_roundtrip(self):
        for command, payload in [
            ("hello", {"initial_tick": 5, "shard": 2}),
            ("snapshot", ["a", "b"]),
            ("snapshot", None),
            ("discard", ["a", 2, None]),
            ("ids", None),
            ("stats", None),
            ("close", None),
        ]:
            assert decode_request(encode_request(command, payload)) == (
                command,
                payload,
            )
        stats = {"created": 3, "evicted": 1, "series_started": 2,
                 "n_streams": 2, "tick": 9}
        assert decode_reply(encode_reply("stats", ("ok", stats)), "stats") == (
            "ok",
            stats,
        )
        assert decode_reply(encode_reply("ids", ("ok", ["x", 1])), "ids") == (
            "ok",
            ["x", 1],
        )

    def test_error_reply_is_command_independent(self):
        data = encode_reply("step", ("error", "ValidationError", "boom"))
        for command in ("step", "snapshot", "stats"):
            assert decode_reply(data, command) == (
                "error",
                "ValidationError",
                "boom",
            )

    def test_mismatched_reply_kind_rejected(self):
        data = encode_reply("stats", ("ok", {"tick": 1}))
        with pytest.raises(ProtocolError, match="does not match"):
            decode_reply(data, "step")

    def test_unknown_command_rejected(self):
        with pytest.raises(ProtocolError, match="unknown request"):
            encode_request("format-disk", None)


class TestSnapshotWireFraming:
    def make_snapshot(self, synthetic_stack, series_maker):
        from repro.core.monitor import UncertaintyMonitor

        ddm, stateless, ta_qim, layout, fusion = synthetic_stack
        engine = StreamingEngine(
            ddm=ddm,
            stateless_qim=stateless,
            timeseries_qim=ta_qim,
            layout=layout,
            information_fusion=fusion,
            max_buffer_length=4,
            monitor_factory=lambda: UncertaintyMonitor(threshold=0.35),
            idle_ttl=5,
        )
        series = series_maker(np.random.default_rng(5), n_series=6, length=5)
        for t in range(5):
            engine.step_batch(
                [
                    StreamFrame(f"s{i}", series[i][0][t], series[i][1][t])
                    for i in range(6)
                ]
            )
        return engine.snapshot()

    def test_to_wire_from_wire_roundtrip(self, synthetic_stack, series_maker):
        snapshot = self.make_snapshot(synthetic_stack, series_maker)
        rebuilt = RegistrySnapshot.from_wire(*snapshot.to_wire())
        assert rebuilt.tick == snapshot.tick
        assert rebuilt.max_buffer_length == snapshot.max_buffer_length
        assert rebuilt.idle_ttl == snapshot.idle_ttl
        assert rebuilt.statistics == snapshot.statistics
        assert len(rebuilt.streams) == len(snapshot.streams)
        for got, expected in zip(rebuilt.streams, snapshot.streams):
            assert got.stream_id == expected.stream_id
            assert got.step_count == expected.step_count
            assert got.last_tick == expected.last_tick
            assert got.monitor == expected.monitor
            assert got.outcomes.tobytes() == expected.outcomes.tobytes()
            assert got.uncertainties.tobytes() == expected.uncertainties.tobytes()

    def test_snapshot_travels_through_reply_codec(
        self, synthetic_stack, series_maker
    ):
        snapshot = self.make_snapshot(synthetic_stack, series_maker)
        status, rebuilt = decode_reply(
            encode_reply("snapshot", ("ok", snapshot)), "snapshot"
        )
        assert status == "ok"
        assert rebuilt.n_streams == snapshot.n_streams
        assert [s.stream_id for s in rebuilt.streams] == [
            s.stream_id for s in snapshot.streams
        ]

    def test_from_wire_validates_version_and_lengths(
        self, synthetic_stack, series_maker
    ):
        snapshot = self.make_snapshot(synthetic_stack, series_maker)
        meta, arrays = snapshot.to_wire()
        bad_meta = dict(meta, version=meta["version"] + 1)
        with pytest.raises(ValidationError, match="format version"):
            RegistrySnapshot.from_wire(bad_meta, arrays)
        bad_arrays = dict(arrays, lengths=arrays["lengths"][:-1])
        with pytest.raises(ValidationError, match="buffer lengths"):
            RegistrySnapshot.from_wire(meta, bad_arrays)
        with pytest.raises(ValidationError, match="snapshot"):
            RegistrySnapshot.from_wire({"format": "something-else"}, arrays)
