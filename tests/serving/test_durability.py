"""Durability tests: atomic snapshots, incremental chains, O(dead-shard) recovery.

Three contracts under test, all variations of "the durable path must be
invisible":

* **Crash safety** -- snapshot files commit atomically (tmp + rename,
  npz before sidecar) and every component carries a content digest, so
  whatever instant a writer dies at, ``load`` either returns a complete
  earlier snapshot bitwise or refuses loudly -- never a silently
  mismatched sidecar/arrays pair.  The store's ``manifest.json`` extends
  the same property to base + delta chains: a crash mid-commit loses at
  most the newest generation.

* **Equivalence** -- background writes, incremental base+delta chains,
  and the composed restore are all bitwise-identical to the synchronous
  whole-registry snapshot they replace.

* **O(dead-shard) recovery** -- with per-shard checkpoints, a lone
  worker death is repaired by restoring and replaying *only* the dead
  shard (survivors receive no restore and no replayed steps -- proven by
  counting their wire requests), and the completed run is still
  bitwise-identical to an uninterrupted one.  Pipelined windows,
  send-phase losses, and ``shard_local=False`` fall back to the
  whole-cluster path, equally exact.
"""

import threading

import numpy as np
import pytest

from chaos import ChaosFault, ChaosTransport
from repro.core.monitor import UncertaintyMonitor
from repro.exceptions import ValidationError
from repro.serving import (
    DeltaSnapshot,
    FailoverPolicy,
    RegistrySnapshot,
    ServingController,
    ShardedEngine,
    SnapshotStore,
    SnapshotWriter,
    StreamFrame,
    StreamingEngine,
    StreamRegistry,
    compose_snapshot,
    load_snapshot,
)

TCP = pytest.param("tcp", marks=[pytest.mark.tcp, pytest.mark.slow])


def make_factory(synthetic_stack, **kwargs):
    ddm, stateless, ta_qim, layout, fusion = synthetic_stack

    def factory():
        return StreamingEngine(
            ddm=ddm,
            stateless_qim=stateless,
            timeseries_qim=ta_qim,
            layout=layout,
            information_fusion=fusion,
            **kwargs,
        )

    return factory


def monitored_kwargs():
    return dict(
        max_buffer_length=4,
        monitor_factory=lambda: UncertaintyMonitor(
            threshold=0.35, reentry_threshold=0.25, risk_budget=3.0
        ),
        idle_ttl=3,
    )


def tick_frames(series, ids, t, new_series=False, only=None):
    return [
        StreamFrame(
            ids[sid],
            series[sid][0][t],
            series[sid][1][t],
            new_series=new_series,
        )
        for sid in range(len(ids))
        if only is None or sid in only
    ]


def policy(**overrides):
    config = dict(max_failovers=4, journal_depth=16, respawn_backoff=0.0)
    config.update(overrides)
    return FailoverPolicy(**config)


def single_baseline(factory, ticks):
    engine = factory()
    results: dict = {}
    for frames in ticks:
        for result in engine.step_batch(frames):
            results.setdefault(result.stream_id, []).append(result)
    return results, engine.registry.statistics


def populated_registry(n=3) -> StreamRegistry:
    registry = StreamRegistry(max_buffer_length=5, idle_ttl=7)
    for tick in range(n):
        state = registry.get_or_create(f"obj-{tick}", tick=tick)
        for step in range(tick + 2):
            state.buffer.append(step % 2, 0.1 * (step + 1))
            state.step_count += 1
    return registry


def assert_snapshots_identical(
    a: RegistrySnapshot, b: RegistrySnapshot, strip_controller=False
):
    """Bitwise equality through the canonical wire split.

    ``strip_controller`` compares only the registry payload: controller
    state embeds wall-clock telemetry (``latency_ewma``) that two
    equally-correct runs never share bit for bit.
    """
    meta_a, arrays_a = a.to_wire()
    meta_b, arrays_b = b.to_wire()
    if strip_controller:
        meta_a.pop("controller", None)
        meta_b.pop("controller", None)
    assert meta_a == meta_b
    assert sorted(arrays_a) == sorted(arrays_b)
    for name, value in arrays_a.items():
        other = arrays_b[name]
        assert value.dtype == other.dtype
        assert np.array_equal(value, other)


# ----------------------------------------------------------------------
# Atomic, digested snapshot files
# ----------------------------------------------------------------------
class TestAtomicSave:
    def crash_on_suffix(self, monkeypatch, suffix):
        """Make the atomic rename of any ``*suffix`` target crash."""
        import repro.serving.state as state

        real = state.os.replace

        def exploding(src, dst):
            if str(dst).endswith(suffix):
                raise OSError(f"injected crash renaming {dst}")
            return real(src, dst)

        monkeypatch.setattr(state.os, "replace", exploding)

    def test_crash_before_npz_lands_keeps_old_snapshot_bitwise(
        self, tmp_path, monkeypatch
    ):
        registry = populated_registry()
        old = RegistrySnapshot.capture(registry, tick=1)
        old.save(tmp_path / "snap")
        registry.get_or_create("late", tick=2).step_count = 9
        self.crash_on_suffix(monkeypatch, ".npz")
        with pytest.raises(OSError, match="injected"):
            RegistrySnapshot.capture(registry, tick=2).save(tmp_path / "snap")
        # Nothing replaced: the previous snapshot is untouched.
        assert_snapshots_identical(RegistrySnapshot.load(tmp_path / "snap"), old)

    def test_crash_between_npz_and_sidecar_is_refused_on_load(
        self, tmp_path, monkeypatch
    ):
        # The dangerous instant: new arrays landed, old sidecar remains.
        # The digest makes the torn pair loudly unloadable instead of
        # silently restoring old metadata over new arrays.
        registry = populated_registry()
        RegistrySnapshot.capture(registry, tick=1).save(tmp_path / "snap")
        registry.get_or_create("late", tick=2).buffer.append(1, 0.5)
        self.crash_on_suffix(monkeypatch, ".json")
        with pytest.raises(OSError, match="injected"):
            RegistrySnapshot.capture(registry, tick=2).save(tmp_path / "snap")
        with pytest.raises(ValidationError, match="digest"):
            RegistrySnapshot.load(tmp_path / "snap")

    def test_crash_on_fresh_stem_leaves_nothing_loadable(
        self, tmp_path, monkeypatch
    ):
        self.crash_on_suffix(monkeypatch, ".json")
        snapshot = RegistrySnapshot.capture(populated_registry(), tick=1)
        with pytest.raises(OSError, match="injected"):
            snapshot.save(tmp_path / "fresh")
        with pytest.raises(ValidationError, match="not found"):
            RegistrySnapshot.load(tmp_path / "fresh")

    def test_digest_mismatch_names_both_paths(self, tmp_path):
        snapshot = RegistrySnapshot.capture(populated_registry(), tick=3)
        json_path, npz_path = snapshot.save(tmp_path / "snap")
        other = RegistrySnapshot.capture(populated_registry(4), tick=3)
        _, fresh_npz = other.save(tmp_path / "other")
        npz_path.write_bytes(fresh_npz.read_bytes())  # swap the arrays
        with pytest.raises(ValidationError) as excinfo:
            RegistrySnapshot.load(tmp_path / "snap")
        assert str(json_path) in str(excinfo.value)
        assert str(npz_path) in str(excinfo.value)

    def test_legacy_sidecar_without_digest_still_loads(self, tmp_path):
        import json

        snapshot = RegistrySnapshot.capture(populated_registry(), tick=3)
        json_path, _ = snapshot.save(tmp_path / "snap")
        sidecar = json.loads(json_path.read_text())
        del sidecar["digest"]
        json_path.write_text(json.dumps(sidecar))
        assert_snapshots_identical(
            RegistrySnapshot.load(tmp_path / "snap"), snapshot
        )


# ----------------------------------------------------------------------
# Delta snapshots + composition
# ----------------------------------------------------------------------
class TestDeltaSnapshots:
    def run_engine(self, factory, ticks):
        engine = factory()
        for frames in ticks:
            engine.step_batch(frames)
        return engine

    def workload(self, series_maker, length=8, n_streams=6):
        """Frames with churn a delta chain must capture exactly: streams
        s0/s1 go idle after tick 2 (TTL-evicted mid-chain at tick 6) and
        stream "late" is born after the base snapshot (tick 5)."""
        rng = np.random.default_rng(811)
        series = series_maker(rng, n_series=n_streams + 1, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        ticks = []
        for t in range(length):
            only = set(range(n_streams)) - ({0, 1} if t >= 3 else set())
            frames = tick_frames(
                series, ids, t, new_series=(t == 3), only=only
            )
            if t >= 5:
                frames.append(
                    StreamFrame(
                        "late", series[n_streams][0][t], series[n_streams][1][t]
                    )
                )
            ticks.append(frames)
        return ticks

    def chain_through(self, factory, ticks):
        """Step all ticks, capturing base@t2 + deltas@t4,t6 on the way."""
        engine = factory()
        base, chain, last = None, [], None
        for t, frames in enumerate(ticks):
            engine.step_batch(frames)
            if t == 2:
                base = engine.snapshot()
                last = base.tick
            elif t in (4, 6):
                chain.append(engine.snapshot_delta(since_tick=last))
                last = chain[-1].tick
        return engine, base, chain

    def test_capture_holds_only_dirty_streams(self, synthetic_stack, series_maker):
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        ticks = self.workload(series_maker)
        engine = self.run_engine(factory, ticks)
        delta = engine.snapshot_delta(since_tick=6)
        dirty = {s.stream_id for s in delta.streams}
        # s0/s1 were evicted at tick 6; everyone else saw tick-7 frames.
        assert dirty == {"s2", "s3", "s4", "s5", "late"}
        assert delta.live_ids == [s.stream_id for s in engine.registry.states]

    def test_compose_is_bitwise_identical_to_full_snapshot(
        self, synthetic_stack, series_maker
    ):
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        ticks = self.workload(series_maker)
        _, base, chain = self.chain_through(factory, ticks)
        composed = compose_snapshot(base, chain)
        # Reference: an uninterrupted engine snapshotted at the same
        # tick -- across the eviction of s0/s1 and the birth of "late".
        reference = factory()
        for frames in ticks[:7]:
            reference.step_batch(frames)
        assert composed.tick == reference.tick == 7
        assert_snapshots_identical(composed, reference.snapshot())

    def test_delta_file_round_trip_is_digest_checked(
        self, synthetic_stack, series_maker, tmp_path
    ):
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        engine = self.run_engine(factory, self.workload(series_maker))
        delta = engine.snapshot_delta(since_tick=6)
        json_path, npz_path = delta.save(tmp_path / "delta")
        loaded = DeltaSnapshot.load(tmp_path / "delta")
        assert loaded.tick == delta.tick
        assert loaded.base_tick == delta.base_tick
        assert loaded.live_ids == delta.live_ids
        # Pair the sidecar with a *valid* npz of different content: the
        # digest refuses the swap, naming both files.
        other = DeltaSnapshot.capture(
            populated_registry(), tick=delta.tick, since_tick=6
        )
        _, other_npz = other.save(tmp_path / "other")
        npz_path.write_bytes(other_npz.read_bytes())
        with pytest.raises(ValidationError, match="digest") as excinfo:
            DeltaSnapshot.load(tmp_path / "delta")
        assert str(json_path) in str(excinfo.value)
        assert str(npz_path) in str(excinfo.value)

    def test_compose_refuses_a_gap_in_the_chain(
        self, synthetic_stack, series_maker
    ):
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        ticks = self.workload(series_maker)
        _, base, chain = self.chain_through(factory, ticks)
        with pytest.raises(ValidationError, match="contiguous"):
            compose_snapshot(base, [chain[1]])  # skips the tick-5 link


# ----------------------------------------------------------------------
# The background writer
# ----------------------------------------------------------------------
class TestSnapshotWriter:
    def test_full_queue_drops_loudly_and_close_drains(self):
        import time

        gate = threading.Event()
        done = []
        writer = SnapshotWriter(capacity=1)
        try:
            assert writer.submit("a", lambda: (gate.wait(5.0), done.append("a")))
            # Wait until "a" is off the queue (executing, blocked on the
            # gate), then fill the single slot and overflow it.
            deadline = time.monotonic() + 5.0
            while writer.queue_depth and time.monotonic() < deadline:
                time.sleep(0.001)
            assert writer.submit("b", lambda: done.append("b"))
            assert not writer.submit("c", lambda: done.append("c"))
            assert writer.stats()["dropped"] == 1
        finally:
            gate.set()
            writer.close()
        assert done == ["a", "b"]  # accepted writes all landed, in order
        assert writer.stats()["written"] == 2
        with pytest.raises(ValidationError, match="closed"):
            writer.submit("late", lambda: None)
        writer.close()  # idempotent

    def test_a_failing_write_is_counted_not_fatal(self):
        writer = SnapshotWriter()
        done = []
        try:
            def boom():
                raise RuntimeError("disk on fire")

            writer.submit("bad", boom)
            writer.submit("good", lambda: done.append(1))
            writer.drain()
            stats = writer.stats()
            assert stats["errors"] == 1
            assert stats["written"] == 1
            label, error = writer.last_error
            assert label == "bad"
            assert "disk on fire" in str(error)
        finally:
            writer.close()
        assert done == [1]

    def test_timings_accumulate_and_drain(self):
        writer = SnapshotWriter()
        try:
            writer.submit("a", lambda: None)
            writer.drain()
            timings = writer.drain_timings()
            assert len(timings) == 1 and timings[0] >= 0.0
            assert writer.drain_timings() == []
        finally:
            writer.close()


# ----------------------------------------------------------------------
# The snapshot store (manifest + chains)
# ----------------------------------------------------------------------
class TestSnapshotStore:
    def engine_and_chain(self, synthetic_stack, series_maker, store):
        """Drive an engine, committing base@3 + deltas@5,7 into store.

        Returns ``(factory, ticks, engine)`` so tests can rebuild the
        exact reference state for any prefix of the run.
        """
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        rng = np.random.default_rng(823)
        series = series_maker(rng, n_series=5, length=8)
        ids = [f"s{sid}" for sid in range(5)]
        ticks = [
            tick_frames(series, ids, t, new_series=(t == 3)) for t in range(8)
        ]
        engine = factory()
        last = None
        for t, frames in enumerate(ticks):
            engine.step_batch(frames)
            if t == 2:
                store.commit_base(engine.snapshot())
                last = engine.tick
            elif t in (4, 6):
                store.commit_delta(engine.snapshot_delta(since_tick=last))
                last = engine.tick
        return factory, ticks, engine

    def test_load_composes_the_manifest_chain_bitwise(
        self, synthetic_stack, series_maker, tmp_path
    ):
        store = SnapshotStore(tmp_path)
        factory, ticks, _ = self.engine_and_chain(
            synthetic_stack, series_maker, store
        )
        loaded = SnapshotStore.load(tmp_path)
        assert loaded.tick == 7  # the tick-6 workload step is engine tick 7
        reference = factory()
        for frames in ticks[:7]:
            reference.step_batch(frames)
        assert_snapshots_identical(loaded, reference.snapshot())
        # And the composed restore is adoptable state, not just bytes.
        target = StreamRegistry()
        loaded.restore_into(target)
        assert_snapshots_identical(
            loaded, RegistrySnapshot.capture(target, tick=loaded.tick)
        )

    def test_crash_mid_commit_loses_only_the_new_generation(
        self, synthetic_stack, series_maker, tmp_path, monkeypatch
    ):
        import repro.serving.state as state

        store = SnapshotStore(tmp_path)
        _, _, engine = self.engine_and_chain(
            synthetic_stack, series_maker, store
        )
        before = SnapshotStore.load(tmp_path)

        real = state._atomic_write
        crash_on = {"calls": 0, "at": 1}

        def crashing(path, write):
            crash_on["calls"] += 1
            if crash_on["calls"] >= crash_on["at"]:
                raise OSError("injected crash mid-commit")
            return real(path, write)

        # Crash writing the component npz: nothing of the new delta
        # exists; the manifest still names the old complete chain.
        monkeypatch.setattr(state, "_atomic_write", crashing)
        with pytest.raises(OSError, match="injected"):
            store.commit_delta(engine.snapshot_delta(since_tick=7))
        assert_snapshots_identical(SnapshotStore.load(tmp_path), before)

        # Crash writing the manifest itself: components landed, but the
        # commit record still points at the old chain -- same outcome.
        crash_on.update(calls=0, at=3)  # survive npz + sidecar, die on manifest
        with pytest.raises(OSError, match="injected"):
            store.commit_delta(engine.snapshot_delta(since_tick=7))
        assert_snapshots_identical(SnapshotStore.load(tmp_path), before)

    def test_component_not_matching_manifest_is_refused(
        self, synthetic_stack, series_maker, tmp_path
    ):
        store = SnapshotStore(tmp_path)
        self.engine_and_chain(synthetic_stack, series_maker, store)
        victim = tmp_path / "delta_000005.json"
        assert victim.exists()
        victim.write_text(victim.read_text().replace("5", "6", 1))
        with pytest.raises(ValidationError, match="manifest"):
            SnapshotStore.load(tmp_path)

    def test_missing_or_foreign_manifest_is_refused(self, tmp_path):
        with pytest.raises(ValidationError, match="not found"):
            SnapshotStore.load(tmp_path)
        (tmp_path / "manifest.json").write_text('{"format": "something-else"}')
        with pytest.raises(ValidationError, match="manifest"):
            SnapshotStore.load(tmp_path)

    def test_retention_gc_unlinks_oldest_superseded_generations(
        self, tmp_path
    ):
        store = SnapshotStore(tmp_path, retain=1)
        registry = populated_registry()
        for tick in (1, 2, 3):
            store.commit_base(RegistrySnapshot.capture(registry, tick=tick))
        # Generations 1 and 2 are superseded; retain=1 keeps only gen 2.
        assert not (tmp_path / "base_000001.json").exists()
        assert not (tmp_path / "base_000001.npz").exists()
        assert (tmp_path / "base_000002.json").exists()
        assert SnapshotStore.load(tmp_path).tick == 3

    def test_load_snapshot_dispatches_on_layout(
        self, synthetic_stack, series_maker, tmp_path
    ):
        store_dir = tmp_path / "store"
        store_dir.mkdir()
        store = SnapshotStore(store_dir)
        _, _, engine = self.engine_and_chain(
            synthetic_stack, series_maker, store
        )
        store.commit_delta(engine.snapshot_delta(since_tick=7))
        legacy = tmp_path / "tick_000008"
        snapshot = engine.snapshot()
        snapshot.save(legacy)
        for source in (store_dir, store_dir / "manifest.json", legacy):
            assert_snapshots_identical(load_snapshot(source), snapshot)


# ----------------------------------------------------------------------
# Controller integration: bg mode, incremental cadence, bounded history
# ----------------------------------------------------------------------
class TestControllerDurability:
    def workload(self, series_maker, length=6, n_streams=5):
        rng = np.random.default_rng(829)
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        return [
            tick_frames(series, ids, t, new_series=(t == 2))
            for t in range(length)
        ]

    def run_controller(self, factory, ticks, **kwargs):
        with ServingController(factory(), **kwargs) as controller:
            results = controller.run(ticks)
        return controller, results

    def test_bg_snapshots_are_bitwise_identical_to_sync(
        self, synthetic_stack, series_maker, tmp_path
    ):
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        ticks = self.workload(series_maker)
        sync_ctl, sync_results = self.run_controller(
            factory, ticks, snapshot_every=2, snapshot_dir=tmp_path / "sync"
        )
        bg_ctl, bg_results = self.run_controller(
            factory, ticks,
            snapshot_every=2, snapshot_dir=tmp_path / "bg",
            snapshot_mode="bg",
        )
        assert bg_results == sync_results
        assert list(bg_ctl.snapshots_written) == [
            str(tmp_path / "bg" / f"tick_{t:06d}") for t in (2, 4, 6)
        ]
        assert bg_ctl.stats.snapshots_written == 3
        assert bg_ctl.stats.snapshots_dropped == 0
        for t in (2, 4, 6):
            assert_snapshots_identical(
                RegistrySnapshot.load(tmp_path / "bg" / f"tick_{t:06d}"),
                RegistrySnapshot.load(tmp_path / "sync" / f"tick_{t:06d}"),
                strip_controller=True,
            )

    def test_incremental_store_restores_bitwise_vs_legacy_snapshots(
        self, synthetic_stack, series_maker, tmp_path
    ):
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        ticks = self.workload(series_maker)
        self.run_controller(
            factory, ticks, snapshot_every=2, snapshot_dir=tmp_path / "legacy"
        )
        ctl, _ = self.run_controller(
            factory, ticks,
            snapshot_every=2, snapshot_dir=tmp_path / "store",
            snapshot_mode="bg", snapshot_deltas=2,
        )
        # base@2, delta@4, delta@6: the composed store equals the last
        # legacy full snapshot bit for bit.
        stems = [s.rsplit("/", 1)[-1] for s in ctl.snapshots_written]
        assert stems == ["base_000002", "delta_000004", "delta_000006"]
        assert_snapshots_identical(
            load_snapshot(tmp_path / "store"),
            RegistrySnapshot.load(tmp_path / "legacy" / "tick_000006"),
            strip_controller=True,
        )

    def test_dropped_write_widens_the_next_delta_window(
        self, synthetic_stack, series_maker, tmp_path, monkeypatch
    ):
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        ticks = self.workload(series_maker)
        engine = factory()
        controller = ServingController(
            engine,
            snapshot_every=1,
            snapshot_dir=tmp_path,
            snapshot_mode="bg",
            snapshot_deltas=4,
        )
        real_submit = controller._snapshot_writer.submit
        refused = []

        def flaky_submit(label, write):
            if "delta_000002" in label and not refused:
                refused.append(label)  # queue "full" for this one write
                return False
            return real_submit(label, write)

        monkeypatch.setattr(controller._snapshot_writer, "submit", flaky_submit)
        with controller:
            controller.run(ticks)
        assert refused  # the drop really happened
        assert controller.stats.snapshots_dropped == 1
        assert controller.stats.snapshots_written == len(ticks) - 1
        # The tick-3 delta covered the dropped window (dirty since 1,
        # not since 2), so the chain composes to the exact final state.
        reference = factory()
        for frames in ticks:
            reference.step_batch(frames)
        assert_snapshots_identical(
            load_snapshot(tmp_path), reference.snapshot(),
            strip_controller=True,
        )

    def test_snapshots_written_history_is_bounded(self, synthetic_stack):
        from repro.serving.controller import SNAPSHOTS_WRITTEN_KEEP

        factory = make_factory(synthetic_stack)
        with ServingController(
            factory(), snapshot_every=1, snapshot_dir="unused"
        ) as controller:
            for n in range(SNAPSHOTS_WRITTEN_KEEP + 40):
                controller._record_written(f"snap-{n}")
            assert controller.stats.snapshots_written == (
                SNAPSHOTS_WRITTEN_KEEP + 40
            )
            assert len(controller.snapshots_written) == SNAPSHOTS_WRITTEN_KEEP
            assert controller.snapshots_written[0] == "snap-40"

    def test_controller_validates_durability_parameters(self, synthetic_stack):
        factory = make_factory(synthetic_stack)
        with pytest.raises(ValidationError, match="snapshot_mode"):
            ServingController(factory(), snapshot_mode="async")
        with pytest.raises(ValidationError, match="snapshot_deltas"):
            ServingController(factory(), snapshot_deltas=-1)
        with pytest.raises(ValidationError, match="snapshot_retain"):
            ServingController(factory(), snapshot_retain=-2)


# ----------------------------------------------------------------------
# O(dead-shard) recovery
# ----------------------------------------------------------------------
class _ChaosCluster:
    """A ShardedEngine on a chaos-wrapped transport (pipe/shm/tcp)."""

    def __init__(self, transport_name, factory, n_shards, faults, **kwargs):
        self.processes = []
        if transport_name == "tcp":
            from repro.serving import TcpTransport, launch_local_workers

            addresses, self.processes = launch_local_workers(factory, n_shards)
            inner = TcpTransport(addresses, connect_timeout=10.0)
        else:
            inner = transport_name
        self.chaos = ChaosTransport(inner, faults)
        self.cluster = ShardedEngine(
            factory, n_shards, transport=self.chaos, **kwargs
        )

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        from repro.serving import stop_local_workers

        self.cluster.close()
        stop_local_workers(self.processes)


class TestShardLocalRecovery:
    def workload(self, series_maker, length=8, n_streams=10, idle=()):
        rng = np.random.default_rng(907)
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        ticks = []
        for t in range(length):
            only = None
            if idle and t >= 4:
                only = set(range(n_streams)) - set(idle)
            ticks.append(
                tick_frames(series, ids, t, new_series=(t == 3), only=only)
            )
        return ticks

    @pytest.mark.parametrize("transport", ["pipe", "shm", TCP])
    def test_step_kill_touches_only_the_dead_shard(
        self, synthetic_stack, series_maker, transport
    ):
        length = 8
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        ticks = self.workload(series_maker, length=length)
        expected, expected_stats = single_baseline(factory, ticks)

        victim = 1
        faults = [
            ChaosFault(victim, "step", index=4, mode="kill", phase="recv")
        ]
        with _ChaosCluster(transport, factory, 2, faults) as harness:
            controller = ServingController(
                harness.cluster, failover=policy()
            )
            got: dict = {}
            for frames in ticks:
                for result in controller.tick(frames):
                    got.setdefault(result.stream_id, []).append(result)
            stats = harness.cluster.statistics()
            counts = harness.chaos._counts
            assert not harness.chaos.pending_faults
            assert controller.stats.failovers == 1
            assert controller.stats.shard_recoveries == 1
            assert controller.stats.shards_respawned == 1

        # Only the revived shard was restored and replayed: the survivor
        # saw exactly one step request per tick and zero restores.
        survivor = 1 - victim
        assert counts[(survivor, "step")] == length
        assert (survivor, "restore") not in counts
        assert counts[(victim, "restore")] == 1
        assert counts[(victim, "step")] > length  # its replays + salvage

        # And the run is still indistinguishable from an undisturbed one.
        assert got == expected
        assert stats == expected_stats

    def test_ttl_evictions_survive_shard_local_recovery(
        self, synthetic_stack, series_maker
    ):
        # Streams s0/s1 go idle at tick 4 (ttl=3 -> evicted at tick 8);
        # the kill at tick 5 forces the revived shard to replay through
        # idle ticks, and the eviction bookkeeping must come out exact.
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        ticks = self.workload(series_maker, length=10, idle=(0, 1))
        expected, expected_stats = single_baseline(factory, ticks)
        faults = [ChaosFault(0, "step", index=5, mode="kill", phase="recv")]
        with _ChaosCluster("pipe", factory, 2, faults) as harness:
            controller = ServingController(harness.cluster, failover=policy())
            got = controller.run(ticks)
            stats = harness.cluster.statistics()
            assert controller.stats.shard_recoveries == 1
        assert got == expected
        assert stats == expected_stats
        assert stats.evicted == expected_stats.evicted > 0

    def test_snapshot_kill_recovers_shard_locally(
        self, synthetic_stack, series_maker, tmp_path
    ):
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        ticks = self.workload(series_maker)
        expected, expected_stats = single_baseline(factory, ticks)
        # Snapshot request 0 per shard is the eager recovery checkpoint;
        # index 1 is the tick-3 cadence write.
        faults = [ChaosFault(1, "snapshot", index=1, mode="kill", phase="recv")]
        with _ChaosCluster("pipe", factory, 2, faults) as harness:
            controller = ServingController(
                harness.cluster,
                failover=policy(),
                snapshot_every=3,
                snapshot_dir=tmp_path,
            )
            got = controller.run(ticks)
            stats = harness.cluster.statistics()
            counts = harness.chaos._counts
            assert controller.stats.failovers == 1
            assert controller.stats.shard_recoveries == 1
        assert got == expected
        assert stats == expected_stats
        assert (0, "restore") not in counts  # survivor untouched
        written = RegistrySnapshot.load(tmp_path / "tick_000003")
        assert written.tick == 3

    def test_send_phase_loss_falls_back_to_full_recovery(
        self, synthetic_stack, series_maker
    ):
        # A hang strikes before the fan-out completes: there are no kept
        # survivor replies to salvage, so recovery must take the
        # whole-cluster path -- and still come out exact.
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        ticks = self.workload(series_maker, length=6)
        expected, expected_stats = single_baseline(factory, ticks)
        faults = [ChaosFault(1, "step", index=2, mode="hang")]
        with _ChaosCluster("pipe", factory, 2, faults) as harness:
            controller = ServingController(harness.cluster, failover=policy())
            got = controller.run(ticks)
            stats = harness.cluster.statistics()
            assert controller.stats.failovers == 1
            assert controller.stats.shard_recoveries == 0
        assert got == expected
        assert stats == expected_stats

    def test_shard_local_disabled_uses_the_full_path(
        self, synthetic_stack, series_maker
    ):
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        ticks = self.workload(series_maker, length=6)
        expected, _ = single_baseline(factory, ticks)
        faults = [ChaosFault(1, "step", index=2, mode="kill", phase="recv")]
        with _ChaosCluster("pipe", factory, 2, faults) as harness:
            controller = ServingController(
                harness.cluster, failover=policy(shard_local=False)
            )
            got = controller.run(ticks)
            counts = harness.chaos._counts
            assert controller.stats.failovers == 1
            assert controller.stats.shard_recoveries == 0
        assert got == expected
        assert (0, "restore") in counts  # the survivor was rolled back too

    def test_pipelined_windows_fall_back_to_full_recovery(
        self, synthetic_stack, series_maker
    ):
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        ticks = self.workload(series_maker, length=8)
        expected, expected_stats = single_baseline(factory, ticks)
        faults = [ChaosFault(1, "step", index=3, mode="kill", phase="recv")]
        with _ChaosCluster(
            "pipe", factory, 2, faults, inflight_window=2
        ) as harness:
            controller = ServingController(harness.cluster, failover=policy())
            got = controller.run(ticks)
            stats = harness.cluster.statistics()
            assert controller.stats.failovers >= 1
            assert controller.stats.shard_recoveries == 0
        assert got == expected
        assert stats == expected_stats
