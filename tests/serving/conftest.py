"""Shared fixtures for the serving tests: a small calibrated taUW stack.

Built on the :class:`SyntheticDDM` so every component is exactly
deterministic and elementwise -- batching the DDM cannot change a single
bit, which is what the engine-vs-wrapper equivalence tests rely on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.quality_factors import QualityFactorLayout, TAQF_NAMES
from repro.core.quality_impact import QualityImpactModel
from repro.core.timeseries_wrapper import stack_traces, trace_series
from repro.fusion.information import MajorityVote
from repro.models.ddm import SyntheticDDM, synthetic_correlated_series as make_series


@pytest.fixture(scope="session")
def series_maker():
    """The series generator, exposed as a fixture for the test modules."""
    return make_series


@pytest.fixture(scope="session")
def synthetic_stack():
    """A calibrated (ddm, stateless_qim, ta_qim, layout, fusion) bundle."""
    rng = np.random.default_rng(4242)
    ddm = SyntheticDDM(correlated=True)
    layout = QualityFactorLayout(["p_err"], TAQF_NAMES)
    fusion = MajorityVote()

    train = make_series(rng, n_series=300)
    cal = make_series(rng, n_series=300)

    def frames(dataset):
        X = np.vstack([s[0] for s in dataset])
        q = np.vstack([s[1] for s in dataset])
        y = np.concatenate([np.full(len(s[0]), s[2]) for s in dataset])
        return X, q, y

    X_train, q_train, y_train = frames(train)
    X_cal, q_cal, y_cal = frames(cal)

    stateless = QualityImpactModel(max_depth=3, min_calibration_samples=200)
    stateless.fit(q_train, (ddm.predict(X_train) != y_train).astype(int))
    stateless.calibrate(q_cal, (ddm.predict(X_cal) != y_cal).astype(int))

    def traces(dataset):
        out = []
        for X_model, quality, truth in dataset:
            outcomes = ddm.predict(X_model)
            u = stateless.estimate_uncertainty(quality)
            out.append(trace_series(outcomes, u, quality, truth, layout, fusion))
        return out

    ta_qim = QualityImpactModel(max_depth=4, min_calibration_samples=200)
    ta_qim.fit(*stack_traces(traces(train)))
    ta_qim.calibrate(*stack_traces(traces(cal)))

    return ddm, stateless, ta_qim, layout, fusion
