"""Tests for the batched streaming engine.

The central property is the ISSUE's equivalence requirement: replaying the
same frames through ``StreamingEngine.step_batch`` (interleaved, all
streams at once) and through one per-stream
``TimeseriesAwareUncertaintyWrapper.step`` loop must produce
bitwise-identical outcomes and uncertainties.  ``TimeseriesWrappedOutcome``
is a frozen dataclass, so ``==`` compares every float exactly.
"""

import numpy as np
import pytest

from repro.core.monitor import UncertaintyMonitor
from repro.core.scope import BoundaryCheck, ScopeComplianceModel
from repro.core.timeseries_wrapper import TimeseriesAwareUncertaintyWrapper
from repro.exceptions import NotCalibratedError, ValidationError
from repro.core.quality_impact import QualityImpactModel
from repro.serving import StreamFrame, StreamingEngine


def build_engine(synthetic_stack, **kwargs):
    ddm, stateless, ta_qim, layout, fusion = synthetic_stack
    return StreamingEngine(
        ddm=ddm,
        stateless_qim=stateless,
        timeseries_qim=ta_qim,
        layout=layout,
        information_fusion=fusion,
        **kwargs,
    )


def build_wrapper(synthetic_stack, **kwargs):
    ddm, stateless, ta_qim, layout, fusion = synthetic_stack
    return TimeseriesAwareUncertaintyWrapper(
        ddm=ddm,
        stateless_qim=stateless,
        timeseries_qim=ta_qim,
        layout=layout,
        information_fusion=fusion,
        **kwargs,
    )


class TestEquivalence:
    @pytest.mark.parametrize("max_buffer_length", [None, 4])
    def test_bitwise_identical_to_per_stream_step_replay(
        self, synthetic_stack, series_maker, max_buffer_length
    ):
        rng = np.random.default_rng(7)
        n_streams, length = 48, 10
        series = series_maker(rng, n_series=n_streams, length=length)

        naive = {}
        for sid, (X, q, _) in enumerate(series):
            wrapper = build_wrapper(
                synthetic_stack, max_buffer_length=max_buffer_length
            )
            naive[sid] = [wrapper.step(X[t], q[t]) for t in range(length)]

        engine = build_engine(
            synthetic_stack, max_buffer_length=max_buffer_length
        )
        batched = {sid: [] for sid in range(n_streams)}
        for t in range(length):
            frames = [
                StreamFrame(sid, series[sid][0][t], series[sid][1][t])
                for sid in range(n_streams)
            ]
            for result in engine.step_batch(frames):
                batched[result.stream_id].append(result.outcome)

        assert batched == naive  # frozen dataclasses: exact float equality

    def test_new_series_matches_wrapper_reset(self, synthetic_stack, series_maker):
        rng = np.random.default_rng(11)
        (X1, q1, _), (X2, q2, _) = series_maker(rng, n_series=2, length=6)

        wrapper = build_wrapper(synthetic_stack)
        expected = [wrapper.step(X1[t], q1[t]) for t in range(6)]
        expected += [wrapper.step(X2[t], q2[t], new_series=(t == 0)) for t in range(6)]

        engine = build_engine(synthetic_stack)
        got = []
        for t in range(6):
            got.append(engine.step_stream("obj", X1[t], q1[t]).outcome)
        for t in range(6):
            got.append(
                engine.step_stream("obj", X2[t], q2[t], new_series=(t == 0)).outcome
            )

        assert got == expected
        assert got[6].timestep == 0  # counter restarted with the new object

    def test_ragged_stream_lengths(self, synthetic_stack, series_maker):
        # Streams joining at different ticks (different buffer lengths per
        # batch) must still match their isolated replays.
        rng = np.random.default_rng(13)
        series = series_maker(rng, n_series=3, length=8)
        joins = {0: 0, 1: 3, 2: 5}

        naive = {}
        for sid, (X, q, _) in enumerate(series):
            wrapper = build_wrapper(synthetic_stack)
            naive[sid] = [
                wrapper.step(X[t], q[t]) for t in range(8 - joins[sid])
            ]

        engine = build_engine(synthetic_stack)
        batched = {sid: [] for sid in joins}
        for tick in range(8):
            frames = []
            for sid, (X, q, _) in enumerate(series):
                t = tick - joins[sid]
                if t >= 0:
                    frames.append(StreamFrame(sid, X[t], q[t]))
            for result in engine.step_batch(frames):
                batched[result.stream_id].append(result.outcome)

        assert batched == naive


class TestScopeCompliance:
    """The batch path serves the wrapper's *combined* estimate, not
    quality-only: u = 1 - (1 - u_quality)(1 - u_scope)."""

    @staticmethod
    def scope_model():
        return ScopeComplianceModel(
            checks=[BoundaryCheck("latitude", low=-60.0, high=60.0)]
        )

    @staticmethod
    def scope_factors_for(sid, t):
        # Stream 1 drifts out of scope from t >= 3; everyone else stays in.
        return {"latitude": 75.0 if (sid == 1 and t >= 3) else 10.0 * sid}

    def test_bitwise_identical_to_wrapper_with_scope(
        self, synthetic_stack, series_maker
    ):
        rng = np.random.default_rng(41)
        n_streams, length = 6, 8
        series = series_maker(rng, n_series=n_streams, length=length)

        naive = {}
        for sid, (X, q, _) in enumerate(series):
            wrapper = build_wrapper(synthetic_stack, scope_model=self.scope_model())
            naive[sid] = [
                wrapper.step(
                    X[t], q[t], scope_factors=self.scope_factors_for(sid, t)
                )
                for t in range(length)
            ]

        engine = build_engine(synthetic_stack, scope_model=self.scope_model())
        batched = {sid: [] for sid in range(n_streams)}
        for t in range(length):
            frames = [
                StreamFrame(
                    sid,
                    series[sid][0][t],
                    series[sid][1][t],
                    scope_factors=self.scope_factors_for(sid, t),
                )
                for sid in range(n_streams)
            ]
            for result in engine.step_batch(frames):
                batched[result.stream_id].append(result.outcome)

        assert batched == naive  # frozen dataclasses: exact float equality
        # The out-of-scope stream really saturates (boundary check fails).
        assert batched[1][3].scope_incompliance == 1.0
        assert batched[1][3].fused_uncertainty == 1.0
        assert batched[0][3].scope_incompliance == 0.0

    def test_missing_scope_factors_reject_whole_tick(
        self, synthetic_stack, series_maker
    ):
        rng = np.random.default_rng(43)
        (X, q, _), (X2, q2, _) = series_maker(rng, n_series=2, length=1)
        engine = build_engine(synthetic_stack, scope_model=self.scope_model())
        with pytest.raises(ValidationError, match="scope_factors"):
            engine.step_batch(
                [
                    StreamFrame("a", X[0], q[0], scope_factors={"latitude": 0.0}),
                    StreamFrame("b", X2[0], q2[0]),  # missing
                ]
            )
        assert engine.tick == 0
        assert "a" not in engine.registry  # nothing committed

    def test_scope_factors_ignored_without_model(
        self, synthetic_stack, series_maker
    ):
        rng = np.random.default_rng(47)
        (X, q, _), = series_maker(rng, n_series=1, length=1)
        engine = build_engine(synthetic_stack)
        result = engine.step_stream(
            "s", X[0], q[0], scope_factors={"latitude": 999.0}
        )
        assert result.outcome.scope_incompliance == 0.0


class TestValidation:
    def test_requires_calibrated_models(self, synthetic_stack):
        ddm, stateless, ta_qim, layout, fusion = synthetic_stack
        raw = QualityImpactModel()
        with pytest.raises(NotCalibratedError):
            StreamingEngine(ddm, raw, ta_qim, layout)
        with pytest.raises(NotCalibratedError):
            StreamingEngine(ddm, stateless, raw, layout)

    def test_requires_predict(self, synthetic_stack):
        _, stateless, ta_qim, layout, _ = synthetic_stack
        with pytest.raises(ValidationError):
            StreamingEngine(object(), stateless, ta_qim, layout)

    def test_duplicate_stream_in_tick_rejected(self, synthetic_stack, series_maker):
        rng = np.random.default_rng(3)
        (X, q, _), = series_maker(rng, n_series=1, length=2)
        engine = build_engine(synthetic_stack)
        frames = [StreamFrame("s", X[0], q[0]), StreamFrame("s", X[1], q[1])]
        with pytest.raises(ValidationError):
            engine.step_batch(frames)

    def test_wrong_quality_width_rejected(self, synthetic_stack, series_maker):
        rng = np.random.default_rng(3)
        (X, q, _), = series_maker(rng, n_series=1, length=1)
        engine = build_engine(synthetic_stack)
        with pytest.raises(ValidationError):
            engine.step_batch([StreamFrame("s", X[0], np.zeros(3))])

    def test_empty_batch_advances_tick(self, synthetic_stack):
        engine = build_engine(synthetic_stack)
        assert engine.step_batch([]) == []
        assert engine.tick == 1

    def test_failed_tick_commits_no_frames(self, synthetic_stack, series_maker):
        # A batch that fails validation must not leave a subset of
        # streams with half-applied frames (retrying would double-append
        # and silently break equivalence).
        rng = np.random.default_rng(29)
        (X, q, _), (X2, q2, _) = series_maker(rng, n_series=2, length=3)
        engine = build_engine(synthetic_stack)
        engine.step_batch(
            [StreamFrame("a", X[0], q[0]), StreamFrame("b", X2[0], q2[0])]
        )
        # Second tick: stream "b" carries a malformed quality row.
        with pytest.raises(ValidationError):
            engine.step_batch(
                [StreamFrame("a", X[1], q[1]), StreamFrame("b", X2[1], np.zeros(3))]
            )
        assert len(engine.registry.get("a").buffer) == 1  # nothing committed
        assert len(engine.registry.get("b").buffer) == 1
        assert engine.tick == 1  # rejected batches are not ticks either

        # A failing monitor factory on a NEW stream must also leave the
        # existing streams' buffers untouched.
        def bad_factory():
            raise RuntimeError("monitor backend down")

        engine.registry.monitor_factory = bad_factory
        with pytest.raises(RuntimeError):
            engine.step_batch(
                [StreamFrame("a", X[1], q[1]), StreamFrame("new", X2[1], q2[1])]
            )
        assert len(engine.registry.get("a").buffer) == 1
        assert "new" not in engine.registry  # no phantom stream entries
        assert engine.registry.statistics.created == 2  # only "a" and "b"

    def test_nan_stateless_uncertainty_rejected_before_commit(
        self, synthetic_stack, series_maker
    ):
        rng = np.random.default_rng(31)
        (X, q, _), (X2, q2, _) = series_maker(rng, n_series=2, length=2)
        ddm, stateless, ta_qim, layout, fusion = synthetic_stack

        class NaNLastRow:  # a buggy stateless QIM emitting one NaN
            is_calibrated = True

            def estimate_uncertainty(self, quality):
                u = np.array(stateless.estimate_uncertainty(quality), dtype=float)
                u[-1] = np.nan
                return u

        engine = StreamingEngine(ddm, NaNLastRow(), ta_qim, layout, fusion)
        with pytest.raises(ValidationError):
            engine.step_batch(
                [StreamFrame("a", X[0], q[0]), StreamFrame("b", X2[0], q2[0])]
            )
        assert "a" not in engine.registry  # rejected before any state exists

    def test_broken_taqim_reports_recorded_tick(self, synthetic_stack, series_maker):
        # A taQIM failing AFTER the frames were committed must say so, and
        # the tick must advance (the frames exist; resubmitting them would
        # double-append).  Monitors must not be half-judged either.
        rng = np.random.default_rng(37)
        (X, q, _), = series_maker(rng, n_series=1, length=2)
        ddm, stateless, ta_qim, layout, fusion = synthetic_stack

        class NaNTaQIM:
            is_calibrated = True

            def estimate_uncertainty(self, features):
                u = np.array(ta_qim.estimate_uncertainty(features), dtype=float)
                u[-1] = np.nan
                return u

        engine = StreamingEngine(
            ddm, stateless, NaNTaQIM(), layout, fusion,
            monitor_factory=lambda: UncertaintyMonitor(threshold=0.5),
        )
        with pytest.raises(ValidationError, match="tick already recorded"):
            engine.step_stream("s", X[0], q[0])
        state = engine.registry.get("s")
        assert len(state.buffer) == 1  # the frame IS committed
        assert engine.tick == 1  # and the tick advanced past it
        assert state.monitor.statistics.steps == 0  # no partial verdicts


class TestMonitoringAndEviction:
    def test_per_stream_monitor_verdicts(self, synthetic_stack, series_maker):
        rng = np.random.default_rng(17)
        series = series_maker(rng, n_series=8, length=10)
        engine = build_engine(
            synthetic_stack,
            monitor_factory=lambda: UncertaintyMonitor(threshold=0.3),
        )
        # Reference: judge the naive wrapper replay with private monitors.
        monitors = {sid: UncertaintyMonitor(threshold=0.3) for sid in range(8)}
        expected = {}
        for sid, (X, q, _) in enumerate(series):
            wrapper = build_wrapper(synthetic_stack)
            expected[sid] = [
                monitors[sid].judge(wrapper.step(X[t], q[t]).fused_uncertainty)
                for t in range(10)
            ]

        got = {sid: [] for sid in range(8)}
        for t in range(10):
            frames = [
                StreamFrame(sid, series[sid][0][t], series[sid][1][t])
                for sid in range(8)
            ]
            for result in engine.step_batch(frames):
                assert result.verdict is not None
                assert result.accepted == result.verdict.accepted
                got[result.stream_id].append(result.verdict)

        assert got == expected

    def test_unmonitored_results_count_as_accepted(self, synthetic_stack, series_maker):
        rng = np.random.default_rng(19)
        (X, q, _), = series_maker(rng, n_series=1, length=1)
        engine = build_engine(synthetic_stack)
        result = engine.step_stream("s", X[0], q[0])
        assert result.verdict is None
        assert result.accepted

    def test_idle_streams_evicted_and_state_restarts(self, synthetic_stack, series_maker):
        rng = np.random.default_rng(23)
        (X, q, _), = series_maker(rng, n_series=1, length=10)
        engine = build_engine(synthetic_stack, idle_ttl=2)

        engine.step_stream("s", X[0], q[0])
        assert engine.n_streams == 1
        engine.step_batch([])  # tick 1
        engine.step_batch([])  # tick 2
        assert engine.n_streams == 1  # within TTL
        engine.step_batch([])  # tick 3 -> idle for 3 > ttl
        assert engine.n_streams == 0
        assert engine.registry.statistics.evicted == 1

        # A returning stream starts a fresh series (buffer was dropped).
        result = engine.step_stream("s", X[1], q[1])
        assert result.outcome.timestep == 0
