"""Tests for registry snapshot/restore (``repro.serving.state``).

The contract under test is *exactness*: a snapshot captures every bit of
serving state (ring buffers, absolute step counters, monitor budgets and
hysteresis latches, TTL clocks, lifecycle statistics), survives the
``.npz``+JSON file round trip unchanged, and a restored engine continues
bitwise-identically to one that never stopped -- including the tick at
which idle streams get evicted.
"""

import json

import numpy as np
import pytest

from repro.core.buffer import TimeseriesBuffer
from repro.core.monitor import UncertaintyMonitor
from repro.exceptions import ValidationError
from repro.serving import (
    SNAPSHOT_VERSION,
    RegistrySnapshot,
    StreamFrame,
    StreamingEngine,
    StreamRegistry,
)


def build_engine(synthetic_stack, **kwargs):
    ddm, stateless, ta_qim, layout, fusion = synthetic_stack
    return StreamingEngine(
        ddm=ddm,
        stateless_qim=stateless,
        timeseries_qim=ta_qim,
        layout=layout,
        information_fusion=fusion,
        **kwargs,
    )


def make_monitor():
    return UncertaintyMonitor(threshold=0.4, reentry_threshold=0.3, risk_budget=2.5)


def populated_registry() -> StreamRegistry:
    registry = StreamRegistry(
        max_buffer_length=5, monitor_factory=make_monitor, idle_ttl=7
    )
    for tick, stream_id in enumerate(["car-1", 17, "ped-3"]):
        state = registry.get_or_create(stream_id, tick=tick)
        for step in range(tick + 2):
            state.buffer.append(step, 0.1 * (step + 1))
            state.step_count += 1
        state.monitor.judge(0.2)
        state.monitor.judge(0.9)  # enters hysteresis
    return registry


def assert_registries_equal(a: StreamRegistry, b: StreamRegistry) -> None:
    assert a.stream_ids == b.stream_ids
    assert a.max_buffer_length == b.max_buffer_length
    assert a.idle_ttl == b.idle_ttl
    assert (
        a.statistics.created,
        a.statistics.evicted,
        a.statistics.series_started,
    ) == (
        b.statistics.created,
        b.statistics.evicted,
        b.statistics.series_started,
    )
    for sa, sb in zip(a.states, b.states):
        assert sa.stream_id == sb.stream_id
        assert sa.step_count == sb.step_count
        assert sa.last_tick == sb.last_tick
        assert np.array_equal(sa.buffer.outcomes_view(), sb.buffer.outcomes_view())
        assert np.array_equal(
            sa.buffer.uncertainties_view(), sb.buffer.uncertainties_view()
        )
        assert sa.buffer.max_length == sb.buffer.max_length
        if sa.monitor is None:
            assert sb.monitor is None
        else:
            assert sa.monitor.state_dict() == sb.monitor.state_dict()


class TestBufferState:
    def test_export_is_detached_from_live_buffer(self):
        buffer = TimeseriesBuffer()
        buffer.append(1, 0.5)
        state = buffer.export_state()
        buffer.append(2, 0.75)
        assert state["outcomes"].tolist() == [1]
        assert state["uncertainties"].tolist() == [0.5]

    def test_round_trip_preserves_window_and_sliding(self):
        buffer = TimeseriesBuffer(max_length=3)
        for step in range(5):  # slides: window is [2, 3, 4]
            buffer.append(step, step / 10)
        restored = TimeseriesBuffer.from_state(
            **buffer.export_state()
        )
        assert restored.outcomes == buffer.outcomes
        assert restored.uncertainties == buffer.uncertainties
        # appends keep sliding exactly as the original would
        buffer.append(9, 0.9)
        restored.append(9, 0.9)
        assert restored.outcomes == buffer.outcomes == [3, 4, 9]

    def test_from_state_validates(self):
        with pytest.raises(ValidationError):
            TimeseriesBuffer.from_state([1, 2], [0.5])  # misaligned
        with pytest.raises(ValidationError):
            TimeseriesBuffer.from_state([1], [1.5])  # out of range
        with pytest.raises(ValidationError):
            TimeseriesBuffer.from_state([1, 2, 3], [0.1, 0.2, 0.3], max_length=2)


class TestMonitorState:
    def test_round_trip_preserves_budget_and_hysteresis(self):
        monitor = make_monitor()
        monitor.judge(0.2)
        monitor.judge(0.9)  # fallback -> hysteresis
        clone = UncertaintyMonitor.from_state_dict(monitor.state_dict())
        assert clone.state_dict() == monitor.state_dict()
        # both continue identically: re-entry threshold applies to both
        assert clone.judge(0.35).accepted == monitor.judge(0.35).accepted
        assert clone.state_dict() == monitor.state_dict()

    def test_missing_key_rejected(self):
        state = make_monitor().state_dict()
        del state["in_hysteresis"]
        with pytest.raises(ValidationError):
            UncertaintyMonitor.from_state_dict(state)


class TestRegistrySnapshotRoundTrip:
    def test_in_memory_round_trip_is_exact(self):
        registry = populated_registry()
        snapshot = RegistrySnapshot.capture(registry, tick=11)
        target = StreamRegistry()  # config comes from the snapshot
        snapshot.restore_into(target)
        assert_registries_equal(registry, target)

    def test_file_round_trip_is_exact(self, tmp_path):
        registry = populated_registry()
        snapshot = RegistrySnapshot.capture(registry, tick=11)
        json_path, npz_path = snapshot.save(tmp_path / "snap")
        assert json_path.exists() and npz_path.exists()
        loaded = RegistrySnapshot.load(tmp_path / "snap")
        assert loaded.tick == 11
        assert loaded.version == SNAPSHOT_VERSION
        target = StreamRegistry()
        loaded.restore_into(target)
        assert_registries_equal(registry, target)

    def test_subset_and_inject_migrate_streams(self):
        registry = populated_registry()
        snapshot = RegistrySnapshot.capture(registry, tick=4)
        part = snapshot.subset(["car-1", "ped-3"])
        assert [s.stream_id for s in part.streams] == ["car-1", "ped-3"]
        target = StreamRegistry(max_buffer_length=5, idle_ttl=7)
        part.inject_into(target)
        assert target.stream_ids == ["car-1", "ped-3"]
        assert target.statistics.created == 0  # migration, not creation
        with pytest.raises(ValidationError):  # duplicate adoption rejected
            part.inject_into(target)

    def test_unsupported_stream_id_rejected_at_capture(self):
        registry = StreamRegistry()
        registry.get_or_create(("tuple", "id"), tick=0)
        with pytest.raises(ValidationError, match="JSON"):
            RegistrySnapshot.capture(registry, tick=0)

    def test_future_version_rejected_on_load(self, tmp_path):
        registry = populated_registry()
        snapshot = RegistrySnapshot.capture(registry, tick=1)
        json_path, _ = snapshot.save(tmp_path / "snap")
        sidecar = json.loads(json_path.read_text())
        assert sidecar["version"] == SNAPSHOT_VERSION
        sidecar["version"] = 999
        json_path.write_text(json.dumps(sidecar))
        with pytest.raises(ValidationError, match="version"):
            RegistrySnapshot.load(tmp_path / "snap")

    def test_missing_files_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="not found"):
            RegistrySnapshot.load(tmp_path / "nothing")

    def test_dotted_stems_do_not_collide(self, tmp_path):
        # Suffixes are appended, not substituted: 'run.1' and 'run.2'
        # must produce distinct files, each loadable by its own stem.
        registry = populated_registry()
        RegistrySnapshot.capture(registry, tick=1).save(tmp_path / "run.1")
        RegistrySnapshot.capture(registry, tick=2).save(tmp_path / "run.2")
        assert (tmp_path / "run.1.json").exists()
        assert (tmp_path / "run.2.npz").exists()
        assert RegistrySnapshot.load(tmp_path / "run.1").tick == 1
        assert RegistrySnapshot.load(tmp_path / "run.2").tick == 2


class TestEngineRestore:
    def test_restore_then_step_equals_uninterrupted_replay(
        self, synthetic_stack, series_maker
    ):
        rng = np.random.default_rng(101)
        n_streams, length = 12, 10
        series = series_maker(rng, n_series=n_streams, length=length)

        def tick_frames(t):
            return [
                StreamFrame(
                    f"s{sid}",
                    series[sid][0][t],
                    series[sid][1][t],
                    new_series=(t == 6),
                )
                for sid in range(n_streams)
            ]

        kwargs = dict(
            max_buffer_length=4, monitor_factory=make_monitor, idle_ttl=5
        )
        uninterrupted = build_engine(synthetic_stack, **kwargs)
        for t in range(5):
            uninterrupted.step_batch(tick_frames(t))
        snapshot = uninterrupted.snapshot()
        baseline = [uninterrupted.step_batch(tick_frames(t)) for t in range(5, length)]

        resumed_engine = build_engine(synthetic_stack, **kwargs)
        resumed_engine.restore(snapshot)
        assert resumed_engine.tick == 5
        resumed = [resumed_engine.step_batch(tick_frames(t)) for t in range(5, length)]

        assert resumed == baseline  # frozen dataclasses: exact equality

    def test_restore_survives_file_round_trip(
        self, synthetic_stack, series_maker, tmp_path
    ):
        rng = np.random.default_rng(103)
        (X, q, _), = series_maker(rng, n_series=1, length=8)
        engine = build_engine(synthetic_stack, monitor_factory=make_monitor)
        for t in range(4):
            engine.step_stream("obj", X[t], q[t])
        engine.snapshot().save(tmp_path / "mid")
        baseline = [engine.step_stream("obj", X[t], q[t]) for t in range(4, 8)]

        resumed = build_engine(synthetic_stack, monitor_factory=make_monitor)
        resumed.restore(RegistrySnapshot.load(tmp_path / "mid"))
        got = [resumed.step_stream("obj", X[t], q[t]) for t in range(4, 8)]
        assert got == baseline

    def test_idle_ttl_clock_survives_restore(self, synthetic_stack, series_maker):
        rng = np.random.default_rng(107)
        (X, q, _), = series_maker(rng, n_series=1, length=4)

        # Uninterrupted reference: stream seen at tick 0, ttl=2 -> evicted
        # at the end of tick 3.
        reference = build_engine(synthetic_stack, idle_ttl=2)
        reference.step_stream("s", X[0], q[0])
        for _ in range(2):
            reference.step_batch([])
        assert reference.n_streams == 1
        reference.step_batch([])
        assert reference.n_streams == 0

        # Interrupted run: snapshot after one idle tick, restore, continue.
        engine = build_engine(synthetic_stack, idle_ttl=2)
        engine.step_stream("s", X[0], q[0])
        engine.step_batch([])  # tick 1 (idle)
        snapshot = engine.snapshot()

        resumed = build_engine(synthetic_stack, idle_ttl=2)
        resumed.restore(snapshot)
        resumed.step_batch([])  # tick 2 (idle, still within TTL)
        assert resumed.n_streams == 1
        resumed.step_batch([])  # tick 3 -> idle for 3 > ttl, evicted
        assert resumed.n_streams == 0
        assert resumed.registry.statistics.evicted == 1
