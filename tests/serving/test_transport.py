"""Tests for the pluggable cluster transports.

The tentpole property: the four transports (in-proc loopback, forked
pipe workers, shared-memory rings, TCP to remote workers) are
behaviorally interchangeable --
bitwise-identical step results, monitor verdicts, TTL evictions, and
statistics versus the single-process engine at every shard count, and a
snapshot taken under one transport restores under any other and continues
exactly like an uninterrupted run.  On top of that: worker-death mapping
(a killed worker surfaces as :class:`ClusterWorkerError` naming the
shard, never a hang, with surviving shards still in protocol) and the
transport-specific spawn/validation edges.
"""

import contextlib

import numpy as np
import pytest

from repro.core.monitor import UncertaintyMonitor
from repro.exceptions import ClusterError, ClusterWorkerError, ValidationError
from repro.serving import (
    InprocTransport,
    PipeTransport,
    ShardedEngine,
    StreamFrame,
    StreamingEngine,
    TcpTransport,
    launch_local_workers,
    stop_local_workers,
)
from repro.serving.transport import parse_address, resolve_transport

TRANSPORTS = ("inproc", "pipe", "shm", "tcp")


def make_factory(synthetic_stack, **kwargs):
    ddm, stateless, ta_qim, layout, fusion = synthetic_stack

    def factory():
        return StreamingEngine(
            ddm=ddm,
            stateless_qim=stateless,
            timeseries_qim=ta_qim,
            layout=layout,
            information_fusion=fusion,
            **kwargs,
        )

    return factory


def monitored_kwargs():
    return dict(
        max_buffer_length=4,
        monitor_factory=lambda: UncertaintyMonitor(
            threshold=0.35, reentry_threshold=0.25, risk_budget=3.0
        ),
        idle_ttl=3,
    )


def tick_frames(series, stream_ids, t, new_series=False):
    return [
        StreamFrame(
            stream_ids[sid],
            series[sid][0][t],
            series[sid][1][t],
            new_series=new_series,
        )
        for sid in range(len(stream_ids))
    ]


@contextlib.contextmanager
def cluster_on(transport_name, factory, n_shards):
    """A ShardedEngine on the named transport; TCP gets loopback workers."""
    if transport_name == "tcp":
        addresses, processes = launch_local_workers(factory, n_shards)
        try:
            with ShardedEngine(
                factory, n_shards, transport=TcpTransport(addresses)
            ) as cluster:
                yield cluster
        finally:
            stop_local_workers(processes)
    else:
        with ShardedEngine(factory, n_shards, transport=transport_name) as cluster:
            yield cluster


class TestTransportEquivalence:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_bitwise_identical_to_single_process(
        self, synthetic_stack, series_maker, transport, n_shards
    ):
        rng = np.random.default_rng(311)
        n_streams, length = 12, 6
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(synthetic_stack, **monitored_kwargs())

        single = factory()
        expected = [
            single.step_batch(tick_frames(series, ids, t, new_series=(t == 3)))
            for t in range(length)
        ]
        with cluster_on(transport, factory, n_shards) as cluster:
            assert cluster.transport_name == transport
            got = [
                cluster.step_batch(tick_frames(series, ids, t, new_series=(t == 3)))
                for t in range(length)
            ]
            assert got == expected  # outcomes, uncertainties, verdicts
            assert cluster.tick == single.tick
            stats = cluster.statistics()
        assert stats.created == single.registry.statistics.created
        assert stats.series_started == single.registry.statistics.series_started

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_ttl_eviction_matches_single_process(
        self, synthetic_stack, series_maker, transport
    ):
        rng = np.random.default_rng(313)
        series = series_maker(rng, n_series=6, length=8)
        ids = [f"obj{sid}" for sid in range(6)]
        factory = make_factory(synthetic_stack, idle_ttl=2)

        single = factory()
        with cluster_on(transport, factory, 2) as cluster:
            for t in range(8):
                live = ids[:3] if t >= 3 else ids
                frames = [
                    StreamFrame(ids[sid], series[sid][0][t], series[sid][1][t])
                    for sid in range(len(live))
                ]
                assert cluster.step_batch(frames) == single.step_batch(frames)
                assert cluster.n_streams == single.n_streams
            assert (
                cluster.statistics().evicted == single.registry.statistics.evicted
            )

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_all_frameless_ticks_advance_cluster_time(
        self, synthetic_stack, series_maker, transport
    ):
        # Empty-batch ticks cross every transport as the dedicated
        # frameless payload; time must pass cluster-wide so TTL eviction
        # fires on exactly the single-process tick, and an engine that
        # served nothing but empty ticks must still be at the right time.
        rng = np.random.default_rng(353)
        series = series_maker(rng, n_series=3, length=2)
        ids = [f"s{sid}" for sid in range(3)]
        factory = make_factory(synthetic_stack, idle_ttl=2)

        single = factory()
        with cluster_on(transport, factory, 2) as cluster:
            for _ in range(3):  # frameless from a cold start
                assert cluster.step_batch([]) == single.step_batch([])
            frames = tick_frames(series, ids, 0)
            assert cluster.step_batch(frames) == single.step_batch(frames)
            for _ in range(3):  # frameless past the TTL: eviction tick
                assert cluster.step_batch([]) == single.step_batch([])
                assert cluster.n_streams == single.n_streams
            assert cluster.tick == single.tick == 7
            assert cluster.n_streams == 0  # all three evicted by the TTL
            assert (
                cluster.statistics().evicted
                == single.registry.statistics.evicted
                == 3
            )

    @pytest.mark.parametrize("transport", ["pipe", "tcp"])
    def test_worker_errors_map_to_original_types(
        self, synthetic_stack, series_maker, transport
    ):
        # A mid-tick worker failure (NaN taQIM) must surface as the same
        # ValidationError the single-process engine raises -- over bytes.
        rng = np.random.default_rng(317)
        (X, q, _), = series_maker(rng, n_series=1, length=1)
        ddm, stateless, ta_qim, layout, fusion = synthetic_stack

        class NaNTaQIM:
            is_calibrated = True

            def estimate_uncertainty(self, features):
                u = np.array(ta_qim.estimate_uncertainty(features), dtype=float)
                u[-1] = np.nan
                return u

        def factory():
            return StreamingEngine(ddm, stateless, NaNTaQIM(), layout, fusion)

        with cluster_on(transport, factory, 2) as cluster:
            with pytest.raises(ValidationError, match="tick already recorded"):
                cluster.step_batch([StreamFrame("s", X[0], q[0])])


class TestCrossTransportSnapshots:
    @pytest.mark.parametrize(
        "source,target", [("pipe", "tcp"), ("tcp", "inproc"), ("inproc", "pipe")]
    )
    def test_snapshot_restores_across_transports(
        self, synthetic_stack, series_maker, source, target
    ):
        rng = np.random.default_rng(331)
        n_streams, length = 10, 8
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(synthetic_stack, **monitored_kwargs())

        with cluster_on(source, factory, 3) as cluster:
            for t in range(4):
                cluster.step_batch(tick_frames(series, ids, t))
            snapshot = cluster.snapshot()
            baseline = [
                cluster.step_batch(tick_frames(series, ids, t))
                for t in range(4, length)
            ]
            stats = cluster.statistics()

        # Different transport AND different shard count: restore must be
        # exact because the wire format and the placement ring are shared.
        with cluster_on(target, factory, 2) as resumed:
            resumed.restore(snapshot)
            assert resumed.tick == 4
            assert resumed.n_streams == n_streams
            got = [
                resumed.step_batch(tick_frames(series, ids, t))
                for t in range(4, length)
            ]
            assert got == baseline
            resumed_stats = resumed.statistics()
        assert (resumed_stats.created, resumed_stats.series_started) == (
            stats.created,
            stats.series_started,
        )

    def test_snapshot_file_roundtrip_pipe_to_tcp(
        self, synthetic_stack, series_maker, tmp_path
    ):
        # The full durability path: pipe cluster -> .json/.npz on disk ->
        # TCP cluster, continuing bitwise-identically.
        from repro.serving import RegistrySnapshot

        rng = np.random.default_rng(337)
        series = series_maker(rng, n_series=8, length=6)
        ids = [f"s{sid}" for sid in range(8)]
        factory = make_factory(synthetic_stack, **monitored_kwargs())

        with cluster_on("pipe", factory, 2) as cluster:
            for t in range(3):
                cluster.step_batch(tick_frames(series, ids, t))
            cluster.snapshot().save(tmp_path / "snap")
            baseline = [
                cluster.step_batch(tick_frames(series, ids, t)) for t in range(3, 6)
            ]

        loaded = RegistrySnapshot.load(tmp_path / "snap")
        with cluster_on("tcp", factory, 2) as resumed:
            resumed.restore(loaded)
            got = [
                resumed.step_batch(tick_frames(series, ids, t)) for t in range(3, 6)
            ]
        assert got == baseline


class TestWorkerDeath:
    @pytest.mark.parametrize("transport", ["pipe", "tcp"])
    def test_killed_worker_maps_to_cluster_worker_error(
        self, synthetic_stack, series_maker, transport
    ):
        rng = np.random.default_rng(341)
        n_streams, length = 8, 6
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(synthetic_stack)

        victim = 1
        if transport == "tcp":
            addresses, processes = launch_local_workers(factory, 2)
        try:
            transport_arg = (
                TcpTransport(addresses) if transport == "tcp" else transport
            )
            with ShardedEngine(factory, 2, transport=transport_arg) as cluster:
                for t in range(3):
                    cluster.step_batch(tick_frames(series, ids, t))

                if transport == "tcp":
                    processes[victim].kill()
                    processes[victim].join(5.0)
                else:
                    cluster._workers[victim].process.kill()
                    cluster._workers[victim].process.join(5.0)

                # The next tick must fail fast with the mapped error --
                # not hang, not corrupt the surviving shard.
                with pytest.raises(ClusterWorkerError) as excinfo:
                    cluster.step_batch(tick_frames(series, ids, 3))
                assert excinfo.value.shard == victim
                assert cluster.dead_shards == [victim]

                # Serving calls now fail fast until a restore elsewhere...
                with pytest.raises(ClusterWorkerError, match="died"):
                    cluster.step_batch(tick_frames(series, ids, 4))
                with pytest.raises(ClusterWorkerError):
                    cluster.snapshot()
                # ...while the surviving worker stayed in protocol: its
                # channel answers cleanly, no stale replies queued.
                survivor = cluster._workers[0]
                stats = survivor.request("stats")
                assert stats["n_streams"] > 0
                # close() reaps what is left without raising
        finally:
            if transport == "tcp":
                stop_local_workers(processes)

    def test_send_failure_drains_survivors(self, synthetic_stack, series_maker):
        # Kill shard 0 (the first send target): the fan-out loop must
        # drain the already-sent workers so their channels stay usable.
        rng = np.random.default_rng(343)
        series = series_maker(rng, n_series=8, length=4)
        ids = [f"s{sid}" for sid in range(8)]
        factory = make_factory(synthetic_stack)
        with ShardedEngine(factory, 3, transport="pipe") as cluster:
            for t in range(2):
                cluster.step_batch(tick_frames(series, ids, t))
            cluster._workers[0].process.kill()
            cluster._workers[0].process.join(5.0)
            with pytest.raises(ClusterWorkerError):
                cluster.step_batch(tick_frames(series, ids, 2))
            assert 0 in cluster.dead_shards
            for worker in cluster._workers[1:]:
                assert worker.request("stats")["tick"] >= 2


class TestTransportEdges:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_factory_failure_surfaces_at_spawn(self, transport):
        def broken():
            raise RuntimeError("no models on this host")

        if transport == "tcp":
            addresses, processes = launch_local_workers(broken, 2)
            try:
                with pytest.raises(RuntimeError, match="no models"):
                    ShardedEngine(broken, 2, transport=TcpTransport(addresses))
            finally:
                stop_local_workers(processes)
        else:
            with pytest.raises(RuntimeError, match="no models"):
                ShardedEngine(broken, 2, transport=transport)

    def test_tcp_shard_count_capped_by_addresses(self, synthetic_stack):
        factory = make_factory(synthetic_stack)
        transport = TcpTransport([("127.0.0.1", 1)])
        with pytest.raises(ValidationError, match="at most 1 shard"):
            ShardedEngine(factory, 2, transport=transport)

    def test_tcp_rebalance_capped_by_addresses(self, synthetic_stack):
        factory = make_factory(synthetic_stack)
        addresses, processes = launch_local_workers(factory, 2)
        try:
            with ShardedEngine(
                factory, 2, transport=TcpTransport(addresses)
            ) as cluster:
                with pytest.raises(ValidationError, match="at most 2 shard"):
                    cluster.rebalance(3)
        finally:
            stop_local_workers(processes)

    def test_tcp_unreachable_worker_times_out(self, synthetic_stack):
        factory = make_factory(synthetic_stack)
        # Port 1 is never listening; a tiny timeout keeps the test fast.
        transport = TcpTransport([("127.0.0.1", 1)], connect_timeout=0.2)
        with pytest.raises(ClusterWorkerError, match="cannot reach"):
            ShardedEngine(factory, 1, transport=transport)

    def test_rebalance_on_inproc_and_tcp(self, synthetic_stack, series_maker):
        rng = np.random.default_rng(347)
        series = series_maker(rng, n_series=12, length=6)
        ids = [f"s{sid}" for sid in range(12)]
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        single = factory()
        addresses, processes = launch_local_workers(factory, 4)
        try:
            with ShardedEngine(
                factory, 2, transport=TcpTransport(addresses)
            ) as tcp_cluster, ShardedEngine(
                factory, 2, transport="inproc"
            ) as inproc_cluster:
                for t in range(3):
                    frames = tick_frames(series, ids, t)
                    expected = single.step_batch(frames)
                    assert tcp_cluster.step_batch(frames) == expected
                    assert inproc_cluster.step_batch(frames) == expected
                assert tcp_cluster.rebalance(4)["to"] == 4
                assert inproc_cluster.rebalance(4)["to"] == 4
                for t in range(3, 6):
                    frames = tick_frames(series, ids, t)
                    expected = single.step_batch(frames)
                    assert tcp_cluster.step_batch(frames) == expected
                    assert inproc_cluster.step_batch(frames) == expected
        finally:
            stop_local_workers(processes)

    def test_mismatched_worker_config_rejected_at_hello(
        self, synthetic_stack
    ):
        # TCP workers configure themselves; one started with a different
        # threshold must be rejected at spawn, not silently serve
        # non-equivalent verdicts.
        factory_a = make_factory(
            synthetic_stack,
            monitor_factory=lambda: UncertaintyMonitor(threshold=0.35),
        )
        factory_b = make_factory(
            synthetic_stack,
            monitor_factory=lambda: UncertaintyMonitor(threshold=0.5),
        )
        addr_a, procs_a = launch_local_workers(factory_a, 1, max_connections=0)
        addr_b, procs_b = launch_local_workers(factory_b, 1, max_connections=0)
        try:
            with pytest.raises(ClusterError, match="identical to the cluster's"):
                ShardedEngine(
                    factory_a, 2, transport=TcpTransport(addr_a + addr_b)
                )
            # Even a 1-shard cluster checks the worker against its OWN
            # flags, not just worker-vs-worker consistency.
            with pytest.raises(ClusterError, match="identical to the cluster's"):
                ShardedEngine(factory_a, 1, transport=TcpTransport(addr_b))
        finally:
            stop_local_workers(procs_a + procs_b)

    def test_duplicate_address_fails_handshake_instead_of_deadlocking(
        self, synthetic_stack
    ):
        # serve_worker is sequential: listing one worker's address twice
        # leaves the second connection waiting in the backlog.  The hello
        # timeout must turn that into a prompt error, not a hang.
        factory = make_factory(synthetic_stack)
        addresses, processes = launch_local_workers(factory, 1)
        try:
            transport = TcpTransport(addresses * 2, connect_timeout=1.0)
            with pytest.raises(ClusterWorkerError):
                ShardedEngine(factory, 2, transport=transport)
        finally:
            stop_local_workers(processes)

    def test_stray_connections_do_not_wedge_the_worker(
        self, synthetic_stack, series_maker
    ):
        # A port scanner (connects, says nothing) and a garbage peer
        # (claims a 4 GiB message) both get dropped on the handshake
        # timeout / length cap; a real cluster served afterwards still
        # produces correct results -- the listener never wedges.
        import socket as socket_module

        rng = np.random.default_rng(367)
        series = series_maker(rng, n_series=4, length=2)
        ids = [f"s{sid}" for sid in range(4)]
        factory = make_factory(synthetic_stack)
        addresses, processes = launch_local_workers(
            factory, 1, handshake_timeout=0.3
        )
        try:
            silent = socket_module.create_connection(addresses[0], timeout=5.0)
            garbage = socket_module.create_connection(addresses[0], timeout=5.0)
            garbage.sendall(b"\xff\xff\xff\xff")  # absurd length prefix
            try:
                single = factory()
                expected = [
                    single.step_batch(tick_frames(series, ids, t))
                    for t in range(2)
                ]
                with ShardedEngine(
                    factory, 1, transport=TcpTransport(addresses)
                ) as cluster:
                    got = [
                        cluster.step_batch(tick_frames(series, ids, t))
                        for t in range(2)
                    ]
                assert got == expected
            finally:
                silent.close()
                garbage.close()
        finally:
            stop_local_workers(processes)

    def test_resolve_transport_specs(self):
        assert isinstance(resolve_transport(None), PipeTransport)
        assert isinstance(resolve_transport("pipe"), PipeTransport)
        assert isinstance(resolve_transport("inproc"), InprocTransport)
        tcp = resolve_transport("tcp:10.0.0.1:7000,10.0.0.2:7000")
        assert isinstance(tcp, TcpTransport)
        assert tcp.addresses == [("10.0.0.1", 7000), ("10.0.0.2", 7000)]
        with pytest.raises(ValidationError, match="unknown transport"):
            resolve_transport("carrier-pigeon")

    def test_parse_address(self):
        assert parse_address("127.0.0.1:7000") == ("127.0.0.1", 7000)
        assert parse_address(("h", 1)) == ("h", 1)
        with pytest.raises(ValidationError, match="HOST:PORT"):
            parse_address("no-port")
        with pytest.raises(ValidationError, match="non-numeric"):
            parse_address("host:http")

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_numpy_scope_values_cross_every_transport(
        self, synthetic_stack, series_maker, transport
    ):
        # The single-process engine accepts numpy-scalar scope values, so
        # the wire must too (unwrapped to exact Python equivalents before
        # fan-out); an unserializable value rejects the whole tick
        # atomically instead of half-executing it across shards.
        from repro.core.scope import BoundaryCheck, ScopeComplianceModel

        rng = np.random.default_rng(359)
        n_streams = 6
        series = series_maker(rng, n_series=n_streams, length=2)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(
            synthetic_stack,
            scope_model=ScopeComplianceModel(
                checks=[BoundaryCheck("lat", low=-60.0, high=60.0)]
            ),
        )

        def frames_at(t):
            return [
                StreamFrame(
                    ids[sid],
                    series[sid][0][t],
                    series[sid][1][t],
                    scope_factors={
                        "lat": np.float64(70.0 if sid == 2 else 10.0)
                    },
                )
                for sid in range(n_streams)
            ]

        single = factory()
        expected = [single.step_batch(frames_at(t)) for t in range(2)]
        with cluster_on(transport, factory, 2) as cluster:
            got = [cluster.step_batch(frames_at(t)) for t in range(2)]
            assert got == expected
            assert got[0][2].outcome.scope_incompliance == 1.0

            if transport != "inproc":
                # An unserializable scope value must reject pre-fan-out:
                # no tick advances anywhere, snapshot stays aligned.
                bad = frames_at(0)
                bad[0] = StreamFrame(
                    ids[0],
                    series[0][0][0],
                    series[0][1][0],
                    scope_factors={"lat": object()},
                )
                with pytest.raises(ValidationError, match="scope factor"):
                    cluster.step_batch(bad)
                assert cluster.tick == 2
                cluster.snapshot()  # shard ticks still aligned

    def test_serve_connection_reports_how_the_session_ended(
        self, synthetic_stack
    ):
        # The connection-accounting contract behind --max-connections:
        # "served" only for orderly closes, "lost" for a client that
        # vanishes mid-session, "stray" for peers that never handshake.
        from repro.serving.protocol import encode_request
        from repro.serving.transport import serve_connection

        class ScriptedChannel:
            def __init__(self, frames):
                self._frames = list(frames)
                self.sent = []

            def send_bytes(self, data):
                self.sent.append(data)

            def recv_bytes(self):
                if not self._frames:
                    raise EOFError("peer went away")
                return self._frames.pop(0)

            def set_timeout(self, timeout):
                pass

        factory = make_factory(synthetic_stack)
        hello = encode_request("hello", {"initial_tick": 0, "shard": 0})
        assert (
            serve_connection(
                ScriptedChannel([hello, encode_request("close")]), factory
            )
            == "served"
        )
        assert serve_connection(ScriptedChannel([hello]), factory) == "lost"
        assert serve_connection(ScriptedChannel([]), factory) == "stray"

    @pytest.mark.tcp
    def test_client_death_does_not_consume_the_connection_budget(
        self, synthetic_stack, series_maker
    ):
        # Regression for the failover reconnect path: a serve-worker
        # with --max-connections 1 whose client dies mid-session must
        # still be listening for the reconnect -- only the later orderly
        # close may consume the budget and let the worker exit.
        rng = np.random.default_rng(373)
        series = series_maker(rng, n_series=4, length=2)
        ids = [f"s{sid}" for sid in range(4)]
        factory = make_factory(synthetic_stack)
        single = factory()
        expected = [
            single.step_batch(tick_frames(series, ids, t)) for t in range(2)
        ]
        addresses, processes = launch_local_workers(
            factory, 1, max_connections=1
        )
        try:
            crashed = ShardedEngine(factory, 1, transport=TcpTransport(addresses))
            crashed.step_batch(tick_frames(series, ids, 0))
            # Abrupt client death: sever the socket, no close command.
            crashed._workers[0]._channel.close()
            crashed.close()

            with ShardedEngine(
                factory, 1, transport=TcpTransport(addresses)
            ) as resumed:
                got = [
                    resumed.step_batch(tick_frames(series, ids, t))
                    for t in range(2)
                ]
            assert got == expected  # fresh engine, clean state
            # The orderly close above consumed the single budgeted
            # session; the worker now exits on its own.
            for process in processes:
                process.join(10.0)
                assert not process.is_alive()
        finally:
            stop_local_workers(processes)

    def test_inproc_exotic_ids_work_but_wire_ids_are_validated(
        self, synthetic_stack, series_maker
    ):
        # In-proc never serializes, so a tuple id still serves; the same
        # id on a wire transport is rejected with a clear message.
        rng = np.random.default_rng(353)
        (X, q, _), = series_maker(rng, n_series=1, length=1)
        factory = make_factory(synthetic_stack)
        with ShardedEngine(factory, 2, transport="inproc") as cluster:
            results = cluster.step_batch([StreamFrame(("car", 1), X[0], q[0])])
            assert results[0].stream_id == ("car", 1)
        with ShardedEngine(factory, 2, transport="pipe") as cluster:
            with pytest.raises(ValidationError, match="wire-serializable"):
                cluster.step_batch([StreamFrame(("car", 1), X[0], q[0])])
