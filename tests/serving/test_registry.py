"""Tests for the per-stream state registry."""

import pytest

from repro.core.monitor import UncertaintyMonitor
from repro.exceptions import ValidationError
from repro.serving.registry import StreamRegistry


class TestLifecycle:
    def test_lazy_creation(self):
        registry = StreamRegistry()
        assert len(registry) == 0
        state = registry.get_or_create("car-1", tick=0)
        assert state.stream_id == "car-1"
        assert state.step_count == 0
        assert len(registry) == 1
        assert "car-1" in registry
        assert registry.statistics.created == 1

    def test_get_or_create_is_idempotent(self):
        registry = StreamRegistry()
        first = registry.get_or_create("s", tick=0)
        first.step_count = 5
        again = registry.get_or_create("s", tick=3)
        assert again is first
        assert registry.statistics.created == 1

    def test_get_unknown_raises(self):
        registry = StreamRegistry()
        with pytest.raises(ValidationError):
            registry.get("ghost")

    def test_duplicate_ids_in_bulk_create_rejected(self):
        registry = StreamRegistry()
        with pytest.raises(ValidationError):
            registry.get_or_create_many(["a", "a"], tick=0)
        assert len(registry) == 0
        assert registry.statistics.created == 0

    def test_discard(self):
        registry = StreamRegistry()
        registry.get_or_create("s", tick=0)
        assert registry.discard("s")
        assert not registry.discard("s")
        assert len(registry) == 0

    def test_reset_forgets_streams_keeps_statistics(self):
        registry = StreamRegistry()
        registry.get_or_create("a", tick=0)
        registry.get_or_create("b", tick=0)
        registry.reset()
        assert len(registry) == 0
        assert registry.statistics.created == 2

    def test_begin_series_clears_buffer_not_monitor(self):
        registry = StreamRegistry(monitor_factory=lambda: UncertaintyMonitor(0.1))
        state = registry.get_or_create("s", tick=0)
        state.buffer.append(3, 0.2)
        state.step_count = 1
        state.monitor.judge(0.05)
        state.begin_series()
        assert state.buffer.is_empty
        assert state.step_count == 0
        assert state.monitor.statistics.steps == 1  # monitor survives


class TestMonitors:
    def test_monitor_factory_builds_independent_monitors(self):
        registry = StreamRegistry(monitor_factory=lambda: UncertaintyMonitor(0.1))
        a = registry.get_or_create("a", tick=0)
        b = registry.get_or_create("b", tick=0)
        assert a.monitor is not b.monitor
        a.monitor.judge(0.05)
        assert b.monitor.statistics.steps == 0

    def test_no_factory_no_monitor(self):
        registry = StreamRegistry()
        assert registry.get_or_create("a", tick=0).monitor is None


class TestEviction:
    def test_idle_streams_evicted_after_ttl(self):
        registry = StreamRegistry(idle_ttl=2)
        registry.get_or_create("old", tick=0)
        registry.get_or_create("fresh", tick=2)
        # old last seen at 0: survives through tick 2, expires at tick 3.
        assert registry.evict_idle(2) == []
        assert registry.evict_idle(3) == ["old"]
        assert registry.stream_ids == ["fresh"]
        assert registry.statistics.evicted == 1

    def test_touch_postpones_eviction(self):
        registry = StreamRegistry(idle_ttl=1)
        state = registry.get_or_create("s", tick=0)
        state.last_tick = 5
        assert registry.evict_idle(6) == []
        assert registry.evict_idle(7) == ["s"]

    def test_get_or_create_touches_existing_streams(self):
        # Looking a live stream up counts as activity: last_tick refreshes
        # so actively-served streams never age toward eviction.
        registry = StreamRegistry(idle_ttl=1)
        registry.get_or_create("s", tick=0)
        for tick in range(1, 5):
            registry.get_or_create("s", tick=tick)
            assert registry.evict_idle(tick) == []
        assert registry.get("s").last_tick == 4

    def test_eviction_drops_monitor_and_budget(self):
        # Eviction ends the stream's lifetime: a returning id gets a
        # fresh monitor (documented; budgets must otherwise live outside).
        registry = StreamRegistry(
            idle_ttl=1,
            monitor_factory=lambda: UncertaintyMonitor(0.5, risk_budget=0.1),
        )
        old = registry.get_or_create("s", tick=0)
        old.monitor.judge(0.09)  # spends most of the budget
        registry.evict_idle(2)
        fresh = registry.get_or_create("s", tick=2)
        assert fresh is not old
        assert fresh.monitor.statistics.accepted_risk == 0.0

    def test_no_ttl_never_evicts(self):
        registry = StreamRegistry()
        registry.get_or_create("s", tick=0)
        assert registry.evict_idle(10_000) == []

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ValidationError):
            StreamRegistry(idle_ttl=0)
