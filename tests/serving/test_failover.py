"""Failover tests: worker death mid-run is invisible to the caller.

The tentpole property, proven by deterministic fault injection
(``chaos.py``): for any kill point -- during step, snapshot, or
rebalance traffic, on any transport, at any shard count -- a
failover-enabled controller recovers (respawn + snapshot restore +
journal replay) and the run's final per-stream results are
bitwise-identical to an uninterrupted run, statistics included; only the
``failovers``/``replay_depth``/``recovery_seconds`` telemetry records
the injected faults.  With failover disabled, behavior is exactly the
PR-4 fail-fast contract.  The TCP cells ride loopback ``serve-worker``
processes and are marked ``tcp``/``slow`` (run them with ``-m tcp``).
"""

import numpy as np
import pytest

from chaos import ChaosFault, ChaosTransport
from repro.core.monitor import UncertaintyMonitor
from repro.exceptions import ClusterWorkerError, ValidationError
from repro.serving import (
    FailoverPolicy,
    RegistrySnapshot,
    ServingController,
    ShardedEngine,
    StreamFrame,
    StreamingEngine,
    TcpTransport,
    launch_local_workers,
    stop_local_workers,
)

TCP = pytest.param("tcp", marks=[pytest.mark.tcp, pytest.mark.slow])


def make_factory(synthetic_stack, **kwargs):
    ddm, stateless, ta_qim, layout, fusion = synthetic_stack

    def factory():
        return StreamingEngine(
            ddm=ddm,
            stateless_qim=stateless,
            timeseries_qim=ta_qim,
            layout=layout,
            information_fusion=fusion,
            **kwargs,
        )

    return factory


def monitored_kwargs():
    return dict(
        max_buffer_length=4,
        monitor_factory=lambda: UncertaintyMonitor(
            threshold=0.35, reentry_threshold=0.25, risk_budget=3.0
        ),
        idle_ttl=3,
    )


def tick_frames(series, ids, t, new_series=False):
    return [
        StreamFrame(
            ids[sid],
            series[sid][0][t],
            series[sid][1][t],
            new_series=new_series,
        )
        for sid in range(len(ids))
    ]


def policy(**overrides):
    config = dict(max_failovers=4, journal_depth=16, respawn_backoff=0.0)
    config.update(overrides)
    return FailoverPolicy(**config)


def single_baseline(factory, ticks):
    """Per-stream results and statistics of an uninterrupted run."""
    engine = factory()
    results: dict = {}
    for frames in ticks:
        for result in engine.step_batch(frames):
            results.setdefault(result.stream_id, []).append(result)
    return results, engine.registry.statistics


class _ChaosCluster:
    """A ShardedEngine on a chaos-wrapped transport; TCP gets loopback
    serve-worker processes (serving forever, so reconnects succeed)."""

    def __init__(self, transport_name, factory, n_shards, faults, n_workers=None):
        self.processes = []
        if transport_name == "tcp":
            addresses, self.processes = launch_local_workers(
                factory, n_workers or n_shards
            )
            inner = TcpTransport(addresses, connect_timeout=10.0)
        else:
            inner = transport_name
        self.chaos = ChaosTransport(inner, faults)
        self.cluster = ShardedEngine(factory, n_shards, transport=self.chaos)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.cluster.close()
        stop_local_workers(self.processes)


class TestKillMatrix:
    """Kill during step/snapshot/rebalance x transport x 2/4 shards."""

    @pytest.mark.parametrize("transport", ["pipe", TCP])
    @pytest.mark.parametrize("n_shards", [2, 4])
    @pytest.mark.parametrize("phase", ["step", "snapshot", "rebalance"])
    def test_recovery_is_bitwise_exact(
        self, synthetic_stack, series_maker, tmp_path, transport, n_shards, phase
    ):
        rng = np.random.default_rng(401)
        n_streams, length = 10, 8
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        ticks = [
            tick_frames(series, ids, t, new_series=(t == 3)) for t in range(length)
        ]
        expected, expected_stats = single_baseline(factory, ticks)

        victim = 1
        rebalance_at, rebalance_to = 3, (3 if n_shards != 3 else 2)
        if phase == "step":
            # Mid-run tick; the whole fan-out rolls back and retries.
            faults = [ChaosFault(victim, "step", index=4, mode="kill")]
        elif phase == "snapshot":
            # Snapshot request 0 per shard is the controller's initial
            # recovery checkpoint; index 1 is the tick-3 cadence write.
            faults = [ChaosFault(victim, "snapshot", index=1, mode="kill")]
        else:
            # Only rebalance migration sends "ids" probes.
            faults = [ChaosFault(victim, "ids", index=0, mode="kill")]

        snapshot_every = 3 if phase == "snapshot" else 0
        with _ChaosCluster(
            transport, factory, n_shards, faults,
            n_workers=max(n_shards, rebalance_to),
        ) as harness:
            controller = ServingController(
                harness.cluster,
                failover=policy(),
                snapshot_every=snapshot_every,
                snapshot_dir=tmp_path / "snaps" if snapshot_every else None,
            )
            got: dict = {}
            for t, frames in enumerate(ticks):
                if phase == "rebalance" and t == rebalance_at:
                    assert controller.rebalance(rebalance_to)["to"] == rebalance_to
                for result in controller.tick(frames):
                    got.setdefault(result.stream_id, []).append(result)
            stats = harness.cluster.statistics()
            assert not harness.chaos.pending_faults  # the kill really fired
            assert controller.stats.failovers == 1
            assert controller.stats.shards_respawned == 1
            if phase == "rebalance":
                assert controller.n_shards == rebalance_to

        # The caller-visible run is indistinguishable from one where no
        # worker ever died: results, verdicts, and lifecycle statistics.
        assert got == expected
        assert stats == expected_stats
        if phase == "snapshot":
            written = RegistrySnapshot.load(tmp_path / "snaps" / "tick_000003")
            assert written.tick == 3
            assert written.n_streams == n_streams

    def test_failover_telemetry_reports_the_recovery(
        self, synthetic_stack, series_maker
    ):
        rng = np.random.default_rng(403)
        series = series_maker(rng, n_series=6, length=6)
        ids = [f"s{sid}" for sid in range(6)]
        factory = make_factory(synthetic_stack)
        ticks = [tick_frames(series, ids, t) for t in range(6)]
        faults = [ChaosFault(0, "step", index=3, mode="kill")]
        with _ChaosCluster("inproc", factory, 2, faults) as harness:
            controller = ServingController(harness.cluster, failover=policy())
            controller.run(ticks)
        records = [t for t in controller.telemetry if t.failovers]
        assert len(records) == 1
        assert records[0].tick == 4  # the recovered tick completed
        assert records[0].replay_depth == 3  # ticks 0-2 were replayed
        assert records[0].recovery_seconds > 0.0
        assert controller.stats.replayed_ticks == 3
        assert controller.stats.recovery_seconds > 0.0


class TestFaultModes:
    def test_hang_terminates_the_wedged_worker_and_recovers(
        self, synthetic_stack, series_maker
    ):
        rng = np.random.default_rng(405)
        series = series_maker(rng, n_series=8, length=6)
        ids = [f"s{sid}" for sid in range(8)]
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        ticks = [tick_frames(series, ids, t) for t in range(6)]
        expected, _ = single_baseline(factory, ticks)

        faults = [ChaosFault(1, "step", index=2, mode="hang")]
        with _ChaosCluster("pipe", factory, 2, faults) as harness:
            wedged = harness.cluster._workers[1]._inner.process
            controller = ServingController(harness.cluster, failover=policy())
            got = controller.run(ticks)
            assert controller.stats.failovers == 1
            # The hung-but-alive child was reaped by the respawn, not
            # leaked: revive's teardown terminates it.
            wedged.join(5.0)
            assert not wedged.is_alive()
        assert got == expected

    @pytest.mark.parametrize("transport", ["inproc", "pipe"])
    def test_garbage_reply_poisons_the_channel_and_recovers(
        self, synthetic_stack, series_maker, transport
    ):
        rng = np.random.default_rng(407)
        series = series_maker(rng, n_series=8, length=6)
        ids = [f"s{sid}" for sid in range(8)]
        factory = make_factory(synthetic_stack)
        ticks = [tick_frames(series, ids, t) for t in range(6)]
        expected, _ = single_baseline(factory, ticks)

        faults = [ChaosFault(0, "step", index=2, mode="garbage", phase="recv")]
        with _ChaosCluster(transport, factory, 2, faults) as harness:
            controller = ServingController(harness.cluster, failover=policy())
            got = controller.run(ticks)
            assert controller.stats.failovers == 1
        assert got == expected

    def test_kill_on_the_reply_path_recovers(
        self, synthetic_stack, series_maker
    ):
        # The worker received and executed the request, then died before
        # (or while) answering -- its partial tick must be rolled back
        # with everyone else's.
        rng = np.random.default_rng(409)
        series = series_maker(rng, n_series=8, length=6)
        ids = [f"s{sid}" for sid in range(8)]
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        ticks = [tick_frames(series, ids, t) for t in range(6)]
        expected, _ = single_baseline(factory, ticks)

        faults = [ChaosFault(1, "step", index=3, mode="kill", phase="recv")]
        with _ChaosCluster("pipe", factory, 2, faults) as harness:
            controller = ServingController(harness.cluster, failover=policy())
            got = controller.run(ticks)
            assert controller.stats.failovers == 1
        assert got == expected


class TestRandomizedKills:
    def test_seeded_kill_sweep_is_exact_and_counted(
        self, synthetic_stack, series_maker
    ):
        """~20 random (kill_tick, shard, mode, phase) faults under one
        seed: every recovery is exact and the failover telemetry matches
        the injected fault count, one for one."""
        rng = np.random.default_rng(20260729)
        n_streams, length, n_shards = 9, 6, 3
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        ticks = [
            tick_frames(series, ids, t, new_series=(t == 2))
            for t in range(length)
        ]
        expected, expected_stats = single_baseline(factory, ticks)

        injected = 0
        recovered = 0
        for _ in range(20):
            kill_tick = int(rng.integers(0, length))
            shard = int(rng.integers(0, n_shards))
            mode = ("kill", "hang", "garbage")[int(rng.integers(0, 3))]
            phase = "recv" if mode == "garbage" else ("send", "recv")[
                int(rng.integers(0, 2))
            ]
            faults = [ChaosFault(shard, "step", kill_tick, mode, phase)]
            with _ChaosCluster("inproc", factory, n_shards, faults) as harness:
                controller = ServingController(
                    harness.cluster, failover=policy()
                )
                got = controller.run(ticks)
                stats = harness.cluster.statistics()
                assert not harness.chaos.pending_faults
            injected += 1
            recovered += controller.stats.failovers
            assert controller.stats.failovers == 1, (
                f"fault {mode}/{phase} at tick {kill_tick} on shard {shard} "
                f"took {controller.stats.failovers} recoveries"
            )
            assert got == expected, (
                f"recovered run diverged for {mode}/{phase} at tick "
                f"{kill_tick} on shard {shard}"
            )
            assert stats == expected_stats
        assert recovered == injected == 20

    def test_two_faults_one_run(self, synthetic_stack, series_maker):
        rng = np.random.default_rng(411)
        series = series_maker(rng, n_series=6, length=8)
        ids = [f"s{sid}" for sid in range(6)]
        factory = make_factory(synthetic_stack)
        ticks = [tick_frames(series, ids, t) for t in range(8)]
        expected, _ = single_baseline(factory, ticks)

        # The second index is counted across the replayed requests too:
        # after the first recovery (replaying ticks 0-1 and retrying
        # tick 2), shard 1 has seen step requests 0..4, so index 6 lands
        # on original tick 4.
        faults = [
            ChaosFault(0, "step", index=2, mode="kill"),
            ChaosFault(1, "step", index=6, mode="kill"),
        ]
        with _ChaosCluster("inproc", factory, 2, faults) as harness:
            controller = ServingController(harness.cluster, failover=policy())
            got = controller.run(ticks)
            assert not harness.chaos.pending_faults
            assert controller.stats.failovers == 2
            assert controller.stats.shards_respawned == 2
        assert got == expected

    def test_fault_during_recovery_replay_is_also_recovered(
        self, synthetic_stack, series_maker
    ):
        # A second worker dying DURING a recovery (here: mid journal
        # replay) consumes more budget and is recovered too -- the run
        # still finishes exactly, it is not aborted with budget left.
        rng = np.random.default_rng(429)
        series = series_maker(rng, n_series=6, length=6)
        ids = [f"s{sid}" for sid in range(6)]
        factory = make_factory(synthetic_stack)
        ticks = [tick_frames(series, ids, t) for t in range(6)]
        expected, _ = single_baseline(factory, ticks)

        # Shard 1's step indices: ticks 0,1 = 0,1 (the failed tick 2
        # never reaches it), then the first recovery's replay of ticks
        # 0-1 = indices 2,3 -- so index 3 strikes inside _recover.
        faults = [
            ChaosFault(0, "step", index=2, mode="kill"),
            ChaosFault(1, "step", index=3, mode="kill"),
        ]
        with _ChaosCluster("inproc", factory, 2, faults) as harness:
            controller = ServingController(harness.cluster, failover=policy())
            got = controller.run(ticks)
            assert not harness.chaos.pending_faults
            assert controller.stats.failovers == 2
            assert controller.stats.shards_respawned == 2
        assert got == expected

    def test_death_during_checkpoint_rearm_fails_fast(
        self, synthetic_stack, series_maker
    ):
        # After a bare load_state_dict the checkpoint must be re-armed
        # from the live engine; a worker death during THAT capture has
        # no checkpoint to recover from, so it must fail fast -- never
        # blank-revive the shard and silently lose its streams.
        rng = np.random.default_rng(431)
        series = series_maker(rng, n_series=6, length=4)
        ids = [f"s{sid}" for sid in range(6)]
        factory = make_factory(synthetic_stack)
        # Snapshot index 0 is the constructor's eager checkpoint; index 1
        # is the re-arm triggered by the first tick after the reset.
        faults = [ChaosFault(1, "snapshot", index=1, mode="kill")]
        with _ChaosCluster("inproc", factory, 2, faults) as harness:
            controller = ServingController(harness.cluster, failover=policy())
            controller.tick(tick_frames(series, ids, 0))
            controller.load_state_dict(None)
            with pytest.raises(ClusterWorkerError):
                controller.tick(tick_frames(series, ids, 1))
            assert controller.stats.failovers == 0  # no budget spent
            assert 1 in harness.cluster.dead_shards

    def test_max_failovers_exhaustion_reraises_with_the_shard(
        self, synthetic_stack, series_maker
    ):
        rng = np.random.default_rng(413)
        series = series_maker(rng, n_series=6, length=6)
        ids = [f"s{sid}" for sid in range(6)]
        factory = make_factory(synthetic_stack)
        ticks = [tick_frames(series, ids, t) for t in range(6)]

        faults = [
            ChaosFault(0, "step", index=1, mode="kill"),
            ChaosFault(1, "step", index=5, mode="kill"),
        ]
        with _ChaosCluster("inproc", factory, 2, faults) as harness:
            controller = ServingController(
                harness.cluster, failover=policy(max_failovers=1)
            )
            with pytest.raises(ClusterWorkerError) as excinfo:
                controller.run(ticks)
            # The budget covered the first fault; the second re-raises
            # fail-fast, naming the shard that died.
            assert controller.stats.failovers == 1
            assert excinfo.value.shard == 1
            assert 1 in harness.cluster.dead_shards


class TestFailoverDisabled:
    @pytest.mark.parametrize("transport", ["inproc", "pipe"])
    def test_worker_death_still_fails_fast(
        self, synthetic_stack, series_maker, transport
    ):
        """Without a FailoverPolicy the PR-4 contract is untouched: the
        tick raises ClusterWorkerError naming the shard, the shard lands
        in dead_shards, and further serving fails fast."""
        rng = np.random.default_rng(415)
        series = series_maker(rng, n_series=6, length=4)
        ids = [f"s{sid}" for sid in range(6)]
        factory = make_factory(synthetic_stack)
        faults = [ChaosFault(1, "step", index=2, mode="kill")]
        with _ChaosCluster(transport, factory, 2, faults) as harness:
            controller = ServingController(harness.cluster)
            for t in range(2):
                controller.tick(tick_frames(series, ids, t))
            with pytest.raises(ClusterWorkerError) as excinfo:
                controller.tick(tick_frames(series, ids, 2))
            assert excinfo.value.shard == 1
            assert harness.cluster.dead_shards == [1]
            with pytest.raises(ClusterWorkerError, match="died"):
                controller.tick(tick_frames(series, ids, 3))

    def test_policy_requires_a_revivable_engine(self, synthetic_stack):
        with pytest.raises(ValidationError, match="revive_shard"):
            ServingController(
                make_factory(synthetic_stack)(), failover=policy()
            )

    def test_policy_validation(self):
        with pytest.raises(ValidationError):
            FailoverPolicy(max_failovers=0)
        with pytest.raises(ValidationError):
            FailoverPolicy(journal_depth=0)
        with pytest.raises(ValidationError):
            FailoverPolicy(respawn_backoff=-1.0)


class TestJournal:
    def test_replay_depth_is_bounded_by_journal_depth(
        self, synthetic_stack, series_maker
    ):
        rng = np.random.default_rng(417)
        series = series_maker(rng, n_series=6, length=6)
        ids = [f"s{sid}" for sid in range(6)]
        factory = make_factory(synthetic_stack)
        ticks = [tick_frames(series, ids, t) for t in range(6)]
        expected, _ = single_baseline(factory, ticks)

        # journal_depth=2: checkpoints advance after ticks 1 and 3, so a
        # kill at tick 5 replays exactly one tick (tick 4).
        faults = [ChaosFault(0, "step", index=5, mode="kill")]
        with _ChaosCluster("inproc", factory, 2, faults) as harness:
            controller = ServingController(
                harness.cluster, failover=policy(journal_depth=2)
            )
            got = controller.run(ticks)
            assert controller.stats.failovers == 1
            assert controller.stats.replayed_ticks == 1
        assert got == expected

    def test_journal_rides_in_snapshots_and_restore_rebases(
        self, synthetic_stack, series_maker, tmp_path
    ):
        import json

        rng = np.random.default_rng(419)
        n_streams, length = 6, 8
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(synthetic_stack, **monitored_kwargs())
        ticks = [tick_frames(series, ids, t) for t in range(length)]
        expected, _ = single_baseline(factory, ticks)

        # Run half the schedule with a large journal_depth and snapshot
        # by hand mid-window: the sidecar must carry the journal.
        cut = 3
        with ShardedEngine(factory, 2, transport="inproc") as cluster:
            controller = ServingController(cluster, failover=policy())
            for t in range(cut):
                controller.tick(ticks[t])
            snapshot = controller.snapshot()
            assert snapshot.controller["failover"] is not None
            # snapshot() itself checkpoints, so the serialized journal
            # is the window since the initial checkpoint: ticks 0..2.
            assert len(snapshot.controller["failover"]["journal"]) == cut
            snapshot.save(tmp_path / "mid")
        sidecar = json.loads((tmp_path / "mid.json").read_text())
        journal = sidecar["controller"]["failover"]["journal"]
        assert [len(batch) for batch in journal] == [n_streams] * cut

        # Restore into a fresh chaos cluster and kill a worker two ticks
        # later: recovery must use the REBASED checkpoint (the restored
        # state), replaying only post-restore ticks -- and stay exact.
        loaded = RegistrySnapshot.load(tmp_path / "mid")
        # Fresh cluster, fresh request counters: step index 1 is the
        # second post-restore tick (original tick 4).
        faults = [ChaosFault(1, "step", index=1, mode="kill")]
        with _ChaosCluster("inproc", factory, 2, faults) as harness:
            controller = ServingController(harness.cluster, failover=policy())
            controller.restore(loaded)
            got: dict = {}
            for t in range(cut, length):
                for result in controller.tick(ticks[t]):
                    got.setdefault(result.stream_id, []).append(result)
            assert controller.stats.failovers == 1
            assert controller.stats.replayed_ticks == 1  # tick 3 only
        tail = {sid: results[cut:] for sid, results in expected.items()}
        assert got == tail

    def test_admission_controlled_run_recovers_exactly(
        self, synthetic_stack, series_maker
    ):
        # The journal replays the ADMITTED batches, so recovery composes
        # with QoS admission: the recovered run equals a fault-free
        # admission-controlled run -- deferral schedule, backlog, and
        # results alike (a static frame budget keeps both deterministic).
        from repro.serving import AdmissionPolicy

        rng = np.random.default_rng(427)
        n_streams, length = 6, 6
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(synthetic_stack)
        ticks = [tick_frames(series, ids, t) for t in range(length)]
        admission = AdmissionPolicy(max_frames_per_tick=4)

        with ShardedEngine(factory, 2, transport="inproc") as cluster:
            reference = ServingController(cluster, admission=admission)
            expected = reference.run(ticks)
            expected_backlog = reference.backlog

        faults = [ChaosFault(1, "step", index=3, mode="kill")]
        with _ChaosCluster("inproc", factory, 2, faults) as harness:
            controller = ServingController(
                harness.cluster, admission=admission, failover=policy()
            )
            got = controller.run(ticks)
            assert controller.stats.failovers == 1
            assert controller.backlog == expected_backlog
        assert got == expected

    def test_ttl_evictions_survive_recovery_exactly(
        self, synthetic_stack, series_maker
    ):
        # Streams that go quiet are evicted on the same tick as in an
        # uninterrupted run even when the eviction window spans a
        # recovery (restore preserves TTL clocks; replay re-ages them).
        rng = np.random.default_rng(421)
        n_streams, length = 6, 8
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(synthetic_stack, idle_ttl=2)

        def frames_at(t):
            live = range(3) if t >= 3 else range(n_streams)
            return [
                StreamFrame(ids[sid], series[sid][0][t], series[sid][1][t])
                for sid in live
            ]

        ticks = [frames_at(t) for t in range(length)]
        expected, expected_stats = single_baseline(factory, ticks)
        faults = [ChaosFault(0, "step", index=4, mode="kill")]
        with _ChaosCluster("inproc", factory, 2, faults) as harness:
            controller = ServingController(harness.cluster, failover=policy())
            got = controller.run(ticks)
            stats = harness.cluster.statistics()
            assert controller.stats.failovers == 1
        assert got == expected
        assert stats == expected_stats
        assert stats.evicted == 3


class TestReviveShard:
    def test_revive_without_snapshot_gives_an_empty_worker(
        self, synthetic_stack, series_maker
    ):
        rng = np.random.default_rng(423)
        series = series_maker(rng, n_series=8, length=4)
        ids = [f"s{sid}" for sid in range(8)]
        factory = make_factory(synthetic_stack)
        with ShardedEngine(factory, 2, transport="pipe") as cluster:
            for t in range(2):
                cluster.step_batch(tick_frames(series, ids, t))
            cluster._workers[1].process.kill()
            cluster._workers[1].process.join(5.0)
            with pytest.raises(ClusterWorkerError):
                cluster.step_batch(tick_frames(series, ids, 2))
            assert cluster.dead_shards == [1]

            cluster.revive_shard(1)
            assert cluster.dead_shards == []
            stats = cluster._workers[1].request("stats")
            assert stats["n_streams"] == 0  # fresh registry
            assert stats["tick"] == cluster.tick  # joined at cluster time

    def test_revive_with_snapshot_restores_the_shard_subset(
        self, synthetic_stack, series_maker
    ):
        # Shard-local restore: snapshot right before the kill, revive
        # with it, and the run continues bitwise-identically (results;
        # cluster-wide statistics are exactly what the controller's
        # whole-cluster recovery exists to additionally preserve).
        rng = np.random.default_rng(425)
        n_streams, length = 10, 6
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(synthetic_stack, **monitored_kwargs())

        single = factory()
        expected = [
            single.step_batch(tick_frames(series, ids, t)) for t in range(length)
        ]
        with ShardedEngine(factory, 2, transport="pipe") as cluster:
            got = [
                cluster.step_batch(tick_frames(series, ids, t)) for t in range(3)
            ]
            snapshot = cluster.snapshot()
            # Kill between ticks: the survivors are still aligned with
            # the snapshot, so a shard-local restore needs no replay.
            # (After a *failed tick* the survivors have already stepped
            # it, which only the controller's whole-cluster rollback can
            # rewind -- the revive_shard docstring's replay contract.)
            cluster._workers[1].process.kill()
            cluster._workers[1].process.join(5.0)
            cluster.revive_shard(1, snapshot)
            revived_ids = set(cluster._workers[1].request("ids"))
            assert revived_ids == {
                sid for sid in ids if cluster.shard_for(sid) == 1
            }
            got += [
                cluster.step_batch(tick_frames(series, ids, t))
                for t in range(3, length)
            ]
        assert got == expected

    def test_revive_rejects_unknown_shards(self, synthetic_stack):
        factory = make_factory(synthetic_stack)
        with ShardedEngine(factory, 2, transport="inproc") as cluster:
            with pytest.raises(ValidationError, match="not a current worker"):
                cluster.revive_shard(5)
