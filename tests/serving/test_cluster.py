"""Tests for the sharded multi-process serving cluster.

The central property mirrors the engine suite one layer up: partitioning
streams across worker processes by consistent hashing and merging each
tick in input order must be bitwise-identical to the single-process
``StreamingEngine`` -- outcomes, uncertainties, monitor verdicts, TTL
evictions, and lifecycle statistics alike.  On top of that: placement
stability (the whole point of *consistent* hashing), cluster-wide
snapshot/restore across topologies, and live rebalances that migrate
stream state without changing a single bit of the output.
"""

import numpy as np
import pytest

from repro.core.monitor import UncertaintyMonitor
from repro.exceptions import ClusterError, ValidationError
from repro.serving import (
    HashRing,
    ShardedEngine,
    StreamFrame,
    StreamingEngine,
    stable_stream_hash,
)


def make_factory(synthetic_stack, **kwargs):
    ddm, stateless, ta_qim, layout, fusion = synthetic_stack

    def factory():
        return StreamingEngine(
            ddm=ddm,
            stateless_qim=stateless,
            timeseries_qim=ta_qim,
            layout=layout,
            information_fusion=fusion,
            **kwargs,
        )

    return factory


def monitored_factory_kwargs():
    return dict(
        max_buffer_length=4,
        monitor_factory=lambda: UncertaintyMonitor(
            threshold=0.35, reentry_threshold=0.25, risk_budget=3.0
        ),
        idle_ttl=3,
    )


def tick_frames(series, stream_ids, t, new_series=False):
    return [
        StreamFrame(
            stream_ids[sid],
            series[sid][0][t],
            series[sid][1][t],
            new_series=new_series,
        )
        for sid in range(len(stream_ids))
    ]


class TestHashRing:
    def test_stable_hash_is_process_independent(self):
        # Hard-coded expectation: must never change across runs/processes,
        # or restored clusters would place streams differently.
        assert stable_stream_hash("car-1") == stable_stream_hash("car-1")
        assert stable_stream_hash(1) != stable_stream_hash("1")
        assert stable_stream_hash(True) != stable_stream_hash(1)

    def test_ring_covers_all_shards_reasonably(self):
        ring = HashRing(4)
        counts = [0, 0, 0, 0]
        for i in range(4000):
            counts[ring.shard_for(f"stream-{i}")] += 1
        assert min(counts) > 0.5 * (4000 / 4)  # no starved shard

    def test_growth_moves_only_a_fraction(self):
        before = HashRing(4)
        after = HashRing(5)
        ids = [f"stream-{i}" for i in range(2000)]
        moved = sum(1 for i in ids if before.shard_for(i) != after.shard_for(i))
        # Consistent hashing: ~1/5 of the keys move; plain modulo would
        # move ~4/5.  Allow slack for vnode unevenness.
        assert moved < 0.4 * len(ids)
        # Every moved key lands on the new shard (pure-growth rings only
        # hand arcs to the added vnodes).
        for i in ids:
            if before.shard_for(i) != after.shard_for(i):
                assert after.shard_for(i) == 4

    def test_validation(self):
        with pytest.raises(ValidationError):
            HashRing(0)
        with pytest.raises(ValidationError):
            HashRing(2, replicas=0)


class TestHashRingProperties:
    """Property-style checks of the placement ring across shard counts."""

    IDS = [f"stream-{i}" for i in range(4096)]

    def test_vnode_load_balance_within_bounds_1_to_16_shards(self):
        # With 64 vnodes per shard the split must stay reasonably even at
        # every cluster size we serve: no shard starves, none hoards.
        for n_shards in range(1, 17):
            ring = HashRing(n_shards)
            counts = [0] * n_shards
            for stream_id in self.IDS:
                counts[ring.shard_for(stream_id)] += 1
            expected = len(self.IDS) / n_shards
            assert min(counts) > 0.4 * expected, (
                f"{n_shards} shards: starved shard ({min(counts)} of "
                f"~{expected:.0f} streams)"
            )
            assert max(counts) < 2.0 * expected, (
                f"{n_shards} shards: overloaded shard ({max(counts)} of "
                f"~{expected:.0f} streams)"
            )

    @pytest.mark.parametrize(
        "before_n,after_n", [(2, 3), (3, 4), (4, 8), (8, 5), (5, 2), (7, 1)]
    )
    def test_resize_moves_only_streams_whose_arc_changed_owner(
        self, before_n, after_n
    ):
        # Minimal-movement invariant.  Ring(n)'s vnode set is a prefix of
        # Ring(m)'s for n < m, so growth may only move streams onto the
        # added shards, and shrink may only move streams off the retired
        # ones -- every stream whose arc kept its owner must stay put.
        before, after = HashRing(before_n), HashRing(after_n)
        moved = [
            stream_id
            for stream_id in self.IDS
            if before.shard_for(stream_id) != after.shard_for(stream_id)
        ]
        if after_n > before_n:
            for stream_id in moved:
                assert after.shard_for(stream_id) >= before_n
            # ~ (m - n)/m of the keys move; generous slack for vnode noise.
            expected_fraction = (after_n - before_n) / after_n
            assert len(moved) / len(self.IDS) < 1.6 * expected_fraction + 0.05
        else:
            for stream_id in moved:
                assert before.shard_for(stream_id) >= after_n
            expected_fraction = (before_n - after_n) / before_n
            assert len(moved) / len(self.IDS) < 1.6 * expected_fraction + 0.05

    def test_shard_for_hash_matches_shard_for(self):
        ring = HashRing(5)
        for stream_id in self.IDS[:256]:
            assert ring.shard_for(stream_id) == ring.shard_for_hash(
                stable_stream_hash(stream_id)
            )

    def test_shard_for_hash_after_shrink_to_one(self):
        # Shrunk to a single shard, every hash -- including ones past the
        # last vnode, which wrap around the ring -- must map to shard 0.
        ring = HashRing(1)
        assert ring.shard_for_hash(0) == 0
        assert ring.shard_for_hash((1 << 64) - 1) == 0  # wrap-around arc
        for stream_id in self.IDS[:512]:
            assert ring.shard_for(stream_id) == 0
        # And a live shrink-to-1 agrees with the ring's prediction.
        assert all(
            HashRing(1).shard_for(i) == 0 for i in self.IDS[:64]
        )

    def test_single_vnode_rings_are_total_and_consistent(self):
        # replicas=1 is the degenerate ring: one point per shard.  Balance
        # is not guaranteed, but placement must stay total (every hash
        # owned), deterministic, and minimally moving on resize.
        for n_shards in (1, 2, 5):
            ring = HashRing(n_shards, replicas=1)
            owners = {ring.shard_for(i) for i in self.IDS}
            assert owners <= set(range(n_shards))
            for stream_id in self.IDS[:128]:
                assert ring.shard_for(stream_id) == ring.shard_for_hash(
                    stable_stream_hash(stream_id)
                )
        before, after = HashRing(3, replicas=1), HashRing(4, replicas=1)
        for stream_id in self.IDS:
            if before.shard_for(stream_id) != after.shard_for(stream_id):
                assert after.shard_for(stream_id) == 3  # only onto the new shard

    def test_live_rebalance_matches_ring_prediction_on_shrink(
        self, synthetic_stack, series_maker
    ):
        # The live counterpart of the minimal-movement invariant, shrink
        # direction (growth is covered below); the cluster must move
        # exactly the streams the rings disagree on, via cached hashes.
        rng = np.random.default_rng(251)
        n_streams = 24
        series = series_maker(rng, n_series=n_streams, length=1)
        ids = [f"s{sid}" for sid in range(n_streams)]
        before, after = HashRing(4), HashRing(2)
        expected_moves = sum(
            1 for i in ids if before.shard_for(i) != after.shard_for(i)
        )
        factory = make_factory(synthetic_stack)
        with ShardedEngine(factory, 4) as cluster:
            cluster.step_batch(tick_frames(series, ids, 0))
            summary = cluster.rebalance(2)
            assert summary["moved"] == expected_moves
            assert cluster.n_streams == n_streams


class TestClusterEquivalence:
    @pytest.mark.parametrize("n_shards", [1, 3])
    def test_bitwise_identical_to_single_process(
        self, synthetic_stack, series_maker, n_shards
    ):
        rng = np.random.default_rng(211)
        n_streams, length = 24, 8
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(synthetic_stack, **monitored_factory_kwargs())

        single = factory()
        with ShardedEngine(factory, n_shards) as cluster:
            for t in range(length):
                frames = tick_frames(series, ids, t, new_series=(t == 5))
                expected = single.step_batch(frames)
                got = cluster.step_batch(frames)
                assert got == expected  # results incl. verdicts, in order
            assert cluster.tick == single.tick
            assert cluster.n_streams == single.n_streams
            stats = cluster.statistics()
        assert stats.created == single.registry.statistics.created
        assert stats.series_started == single.registry.statistics.series_started

    def test_ragged_join_leave_and_ttl_eviction(self, synthetic_stack, series_maker):
        rng = np.random.default_rng(223)
        series = series_maker(rng, n_series=6, length=10)
        ids = [f"obj{sid}" for sid in range(6)]
        factory = make_factory(synthetic_stack, idle_ttl=2)

        single = factory()
        with ShardedEngine(factory, 3) as cluster:
            for t in range(10):
                # Streams 0-2 always; 3-5 only on early ticks, so the TTL
                # evicts them mid-run on both engines.
                live = ids[:3] if t >= 3 else ids
                frames = [
                    StreamFrame(ids[sid], series[sid][0][t], series[sid][1][t])
                    for sid in range(len(live))
                ]
                assert cluster.step_batch(frames) == single.step_batch(frames)
                assert cluster.n_streams == single.n_streams
            assert cluster.statistics().evicted == single.registry.statistics.evicted
            assert single.registry.statistics.evicted == 3

    def test_scope_factors_flow_through_shards(self, synthetic_stack, series_maker):
        from repro.core.scope import BoundaryCheck, ScopeComplianceModel

        rng = np.random.default_rng(243)
        n_streams, length = 8, 4
        series = series_maker(rng, n_series=n_streams, length=length)
        factory = make_factory(
            synthetic_stack,
            scope_model=ScopeComplianceModel(
                checks=[BoundaryCheck("lat", low=-60.0, high=60.0)]
            ),
        )
        single = factory()
        with ShardedEngine(factory, 3) as cluster:
            for t in range(length):
                frames = [
                    StreamFrame(
                        f"s{sid}",
                        series[sid][0][t],
                        series[sid][1][t],
                        scope_factors={"lat": 70.0 if sid == 2 else 10.0},
                    )
                    for sid in range(n_streams)
                ]
                expected = single.step_batch(frames)
                got = cluster.step_batch(frames)
                assert got == expected
                assert got[2].outcome.scope_incompliance == 1.0

    def test_empty_tick_advances_cluster_time(self, synthetic_stack):
        factory = make_factory(synthetic_stack)
        with ShardedEngine(factory, 2) as cluster:
            assert cluster.step_batch([]) == []
            assert cluster.tick == 1


class TestClusterValidation:
    def test_duplicate_stream_rejected_before_fanout(
        self, synthetic_stack, series_maker
    ):
        rng = np.random.default_rng(227)
        (X, q, _), = series_maker(rng, n_series=1, length=2)
        factory = make_factory(synthetic_stack)
        with ShardedEngine(factory, 2) as cluster:
            with pytest.raises(ValidationError, match="duplicate"):
                cluster.step_batch(
                    [StreamFrame("s", X[0], q[0]), StreamFrame("s", X[1], q[1])]
                )
            assert cluster.tick == 0  # rejected ticks advance nothing

    def test_quality_width_rejected_before_fanout(
        self, synthetic_stack, series_maker
    ):
        # Checkable without the models, so the parent rejects the whole
        # tick atomically -- no shard advances, no tick skew.
        rng = np.random.default_rng(229)
        (X, q, _), (X2, q2, _) = series_maker(rng, n_series=2, length=1)
        factory = make_factory(synthetic_stack)
        with ShardedEngine(factory, 2) as cluster:
            with pytest.raises(ValidationError, match="quality"):
                cluster.step_batch(
                    [
                        StreamFrame("a", X[0], q[0]),
                        StreamFrame("b", X2[0], np.zeros(3)),
                    ]
                )
            assert cluster.tick == 0
            assert cluster.n_streams == 0
            cluster.snapshot()  # shard ticks still aligned

    def test_worker_side_error_propagates_type(
        self, synthetic_stack, series_maker
    ):
        rng = np.random.default_rng(231)
        (X, q, _), = series_maker(rng, n_series=1, length=1)
        ddm, stateless, ta_qim, layout, fusion = synthetic_stack

        class NaNTaQIM:  # fails only inside the worker, mid-tick
            is_calibrated = True

            def estimate_uncertainty(self, features):
                u = np.array(ta_qim.estimate_uncertainty(features), dtype=float)
                u[-1] = np.nan
                return u

        def factory():
            return StreamingEngine(ddm, stateless, NaNTaQIM(), layout, fusion)

        with ShardedEngine(factory, 2) as cluster:
            with pytest.raises(ValidationError, match="tick already recorded"):
                cluster.step_batch([StreamFrame("s", X[0], q[0])])

    def test_missing_scope_factors_rejected_before_fanout(
        self, synthetic_stack, series_maker
    ):
        from repro.core.scope import BoundaryCheck, ScopeComplianceModel

        rng = np.random.default_rng(237)
        (X, q, _), = series_maker(rng, n_series=1, length=1)
        factory = make_factory(
            synthetic_stack,
            scope_model=ScopeComplianceModel(checks=[BoundaryCheck("lat")]),
        )
        with ShardedEngine(factory, 2) as cluster:
            with pytest.raises(ValidationError, match="scope_factors"):
                cluster.step_batch([StreamFrame("s", X[0], q[0])])
            assert cluster.tick == 0
            cluster.snapshot()  # shard ticks still aligned

    def test_factory_failure_surfaces_at_spawn(self):
        def broken():
            raise RuntimeError("no models on this host")

        with pytest.raises(RuntimeError, match="no models"):
            ShardedEngine(broken, 2)

    def test_closed_cluster_refuses_work(self, synthetic_stack):
        cluster = ShardedEngine(make_factory(synthetic_stack), 1)
        cluster.close()
        cluster.close()  # idempotent
        with pytest.raises(ClusterError):
            cluster.step_batch([])


class TestClusterSnapshotRestore:
    def test_snapshot_restore_across_topologies(
        self, synthetic_stack, series_maker, tmp_path
    ):
        rng = np.random.default_rng(233)
        n_streams, length = 16, 8
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(synthetic_stack, **monitored_factory_kwargs())

        with ShardedEngine(factory, 3) as cluster:
            for t in range(4):
                cluster.step_batch(tick_frames(series, ids, t))
            cluster.snapshot().save(tmp_path / "snap")
            baseline = [
                cluster.step_batch(tick_frames(series, ids, t))
                for t in range(4, length)
            ]
            stats = cluster.statistics()

        from repro.serving import RegistrySnapshot

        loaded = RegistrySnapshot.load(tmp_path / "snap")
        assert loaded.tick == 4
        # Restore into a DIFFERENT topology: 2 shards, and also into the
        # plain single-process engine; both must continue identically.
        with ShardedEngine(factory, 2) as resumed:
            resumed.restore(loaded)
            assert resumed.tick == 4
            assert resumed.n_streams == n_streams
            got = [
                resumed.step_batch(tick_frames(series, ids, t))
                for t in range(4, length)
            ]
            assert got == baseline
            resumed_stats = resumed.statistics()
        assert (resumed_stats.created, resumed_stats.series_started) == (
            stats.created,
            stats.series_started,
        )

        single = factory()
        single.restore(loaded)
        got_single = [
            single.step_batch(tick_frames(series, ids, t)) for t in range(4, length)
        ]
        assert got_single == baseline


class TestRebalance:
    @pytest.mark.parametrize("target_shards", [4, 1])
    def test_live_rebalance_preserves_results(
        self, synthetic_stack, series_maker, target_shards
    ):
        rng = np.random.default_rng(239)
        n_streams, length = 20, 9
        series = series_maker(rng, n_series=n_streams, length=length)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(synthetic_stack, **monitored_factory_kwargs())

        single = factory()
        with ShardedEngine(factory, 2) as cluster:
            for t in range(4):
                frames = tick_frames(series, ids, t)
                assert cluster.step_batch(frames) == single.step_batch(frames)

            summary = cluster.rebalance(target_shards)
            assert summary["from"] == 2 and summary["to"] == target_shards
            assert cluster.n_shards == target_shards
            assert cluster.n_streams == n_streams  # nobody lost in the move

            for t in range(4, length):
                frames = tick_frames(series, ids, t, new_series=(t == 6))
                assert cluster.step_batch(frames) == single.step_batch(frames)
            stats = cluster.statistics()
        assert stats.created == single.registry.statistics.created
        assert stats.series_started == single.registry.statistics.series_started

    def test_rebalance_moves_minimal_set_on_growth(
        self, synthetic_stack, series_maker
    ):
        rng = np.random.default_rng(241)
        n_streams = 30
        series = series_maker(rng, n_series=n_streams, length=1)
        ids = [f"s{sid}" for sid in range(n_streams)]
        factory = make_factory(synthetic_stack)
        before = HashRing(3)
        after = HashRing(4)
        expected_moves = sum(
            1 for i in ids if before.shard_for(i) != after.shard_for(i)
        )
        with ShardedEngine(factory, 3) as cluster:
            cluster.step_batch(tick_frames(series, ids, 0))
            summary = cluster.rebalance(4)
            assert summary["moved"] == expected_moves
            assert cluster.n_streams == n_streams

    def test_noop_rebalance(self, synthetic_stack):
        with ShardedEngine(make_factory(synthetic_stack), 2) as cluster:
            assert cluster.rebalance(2) == {"moved": 0, "from": 2, "to": 2}
