"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_study_flags(self):
        args = build_parser().parse_args(["study", "--smoke", "--seed", "7"])
        assert args.command == "study"
        assert args.smoke and not args.paper_scale
        assert args.seed == 7

    def test_dataset_flags(self):
        args = build_parser().parse_args(
            ["dataset", "out.npz", "--n-series", "20", "--subsample-length", "10"]
        )
        assert args.out == "out.npz"
        assert args.n_series == 20
        assert args.subsample_length == 10


class TestBoundsCommand:
    def test_prints_all_bound_families(self, capsys):
        assert main(["bounds", "0", "959"]) == 0
        out = capsys.readouterr().out
        for name in ("clopper-pearson", "wilson", "jeffreys", "hoeffding"):
            assert name in out
        assert "0.0071" in out or "0.0072" in out  # the paper's minimum u

    def test_invalid_counts_fail_gracefully(self, capsys):
        assert main(["bounds", "10", "5"]) == 1
        assert "error:" in capsys.readouterr().err


class TestDatasetCommand:
    def test_generates_and_saves(self, tmp_path, capsys):
        out = tmp_path / "ds.npz"
        code = main(
            ["dataset", str(out), "--n-series", "8", "--subsample-length", "5"]
        )
        assert code == 0
        assert out.exists()
        from repro.datasets import load_dataset_npz

        dataset = load_dataset_npz(out)
        assert len(dataset) == 8
        assert all(s.n_frames == 5 for s in dataset)

    def test_settings_multiply_series(self, tmp_path):
        out = tmp_path / "ds.npz"
        main(["dataset", str(out), "--n-series", "4", "--settings-per-series", "3"])
        from repro.datasets import load_dataset_npz

        assert len(load_dataset_npz(out)) == 12


class TestStudyCommand:
    def test_smoke_study_with_artifacts(self, tmp_path, capsys):
        json_path = tmp_path / "results.json"
        csv_dir = tmp_path / "csv"
        code = main(
            [
                "study",
                "--smoke",
                "--json",
                str(json_path),
                "--csv-dir",
                str(csv_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert json_path.exists()
        assert (csv_dir / "table1.csv").exists()
        assert (csv_dir / "fig4.csv").exists()

    def test_conflicting_scales_rejected(self):
        with pytest.raises(SystemExit):
            main(["study", "--smoke", "--paper-scale"])


class TestSimulateStreamsCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["simulate-streams", "--smoke"])
        assert args.command == "simulate-streams"
        assert args.streams == 256
        assert args.ticks == 50
        assert args.threshold is None

    def test_smoke_replay_with_comparison_and_json(self, tmp_path, capsys):
        json_path = tmp_path / "serving.json"
        code = main(
            [
                "simulate-streams",
                "--smoke",
                "--streams", "16",
                "--ticks", "8",
                "--threshold", "0.5",
                "--compare-naive",
                "--json", str(json_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "frames/s" in out
        assert "outputs identical: True" in out

        import json

        report = json.loads(json_path.read_text())
        assert report["streams"] == 16
        assert report["frames"] == 16 * 8
        assert report["outputs_identical"] is True
        assert report["speedup"] > 1.0
        assert 0.0 <= report["acceptance_rate"] <= 1.0


class TestServeClusterCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve-cluster", "--smoke"])
        assert args.command == "serve-cluster"
        assert args.shards == 4
        assert args.streams == 1024
        assert args.snapshot_every == 0
        assert args.restore is None

    def test_sharded_replay_with_snapshots_and_equivalence(self, tmp_path, capsys):
        json_path = tmp_path / "cluster.json"
        code = main(
            [
                "serve-cluster",
                "--smoke",
                "--streams", "12",
                "--ticks", "6",
                "--shards", "2",
                "--threshold", "0.5",
                "--snapshot-every", "3",
                "--snapshot-dir", str(tmp_path / "snaps"),
                "--compare-single",
                "--json", str(json_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "outputs identical: True" in out

        import json

        report = json.loads(json_path.read_text())
        assert report["shards"] == 2
        assert report["frames"] == 12 * 6
        assert report["outputs_identical"] is True
        assert len(report["snapshots_written"]) == 2
        assert (tmp_path / "snaps" / "tick_000006.json").exists()
        assert (tmp_path / "snaps" / "tick_000006.npz").exists()

        # Resume from the final snapshot in a different topology.
        code = main(
            [
                "serve-cluster",
                "--smoke",
                "--streams", "12",
                "--ticks", "3",
                "--shards", "3",
                "--threshold", "0.5",
                "--restore", str(tmp_path / "snaps" / "tick_000006"),
                "--compare-single",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "restored 12 streams at tick 6" in out
        assert "outputs identical: True" in out

    def test_simulate_streams_sharded_path(self, tmp_path, capsys):
        args = build_parser().parse_args(["simulate-streams", "--smoke"])
        assert args.shards == 1  # default stays single-process
        code = main(
            [
                "simulate-streams",
                "--smoke",
                "--streams", "8",
                "--ticks", "4",
                "--shards", "2",
                "--compare-naive",
            ]
        )
        assert code == 0
        assert "outputs identical: True" in capsys.readouterr().out


class TestControlPlaneFlags:
    def test_parser_defaults(self):
        for command in ("simulate-streams", "serve-cluster"):
            args = build_parser().parse_args([command, "--smoke"])
            assert args.latency_budget_ms is None
            assert args.autoscale is None
            assert args.priority_field == "priority"
            assert args.priority_classes == 1
            assert args.stats_every == 0

    def test_autoscale_requires_budget(self, capsys):
        with pytest.raises(SystemExit):
            main(
                ["simulate-streams", "--smoke", "--streams", "4",
                 "--ticks", "2", "--autoscale", "1:2"]
            )

    def test_bad_autoscale_spec_rejected(self):
        with pytest.raises(SystemExit):
            main(
                ["simulate-streams", "--smoke", "--streams", "4",
                 "--ticks", "2", "--latency-budget-ms", "5",
                 "--autoscale", "4:2"]
            )

    def test_admission_and_stats_every_smoke(self, capsys):
        # A generous budget admits everything: the run must match the
        # naive replay exactly and print telemetry lines.
        code = main(
            [
                "simulate-streams", "--smoke",
                "--streams", "8", "--ticks", "6",
                "--latency-budget-ms", "5000",
                "--priority-classes", "2",
                "--stats-every", "2",
                "--compare-naive",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "outputs identical: True" in out
        assert "admission:" in out
        assert "tick 2: latency" in out

    def test_autoscale_inproc_smoke(self, capsys):
        code = main(
            [
                "simulate-streams", "--smoke",
                "--streams", "8", "--ticks", "5",
                "--latency-budget-ms", "5000",
                "--autoscale", "1:2",
                "--transport", "inproc",
                "--compare-naive",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "autoscale:" in out
        assert "outputs identical: True" in out

    def test_serve_cluster_clamps_shards_into_autoscale_range(self, capsys):
        # --shards 1 with --autoscale 2:3 must start at the policy
        # minimum (the policy only shrinks above it, never grows into it).
        code = main(
            [
                "serve-cluster", "--smoke",
                "--streams", "6", "--ticks", "3",
                "--shards", "1", "--transport", "inproc",
                "--latency-budget-ms", "5000",
                "--autoscale", "2:3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "starting 2 inproc shard worker(s)" in out
        assert "final shard count 2" in out

    def test_serve_cluster_with_admission(self, capsys):
        code = main(
            [
                "serve-cluster", "--smoke",
                "--streams", "8", "--ticks", "5",
                "--shards", "2", "--transport", "inproc",
                "--latency-budget-ms", "5000",
                "--priority-classes", "2",
                "--compare-single",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "admission:" in out
        assert "outputs identical: True" in out


class TestObservabilityCLI:
    def test_parser_defaults(self):
        for command in ("simulate-streams", "serve-cluster"):
            args = build_parser().parse_args([command, "--smoke"])
            assert args.metrics_port is None
            assert args.telemetry_window == 4096
        cluster = build_parser().parse_args(["serve-cluster", "--smoke"])
        assert cluster.flight_record is None
        worker = build_parser().parse_args(
            ["serve-worker", "--listen", "127.0.0.1:0"]
        )
        assert worker.metrics_port is None
        replay = build_parser().parse_args(["replay-flight", "some/dir"])
        assert replay.command == "replay-flight"
        assert replay.log == "some/dir"
        assert replay.seed == 42
        assert replay.json is None

    def test_metrics_endpoint_announced(self, capsys):
        code = main(
            [
                "simulate-streams", "--smoke",
                "--streams", "4", "--ticks", "2",
                "--metrics-port", "0",
                "--telemetry-window", "2",
            ]
        )
        assert code == 0
        assert "serving metrics at http://127.0.0.1:" in capsys.readouterr().out

    def test_record_then_replay_flight(self, tmp_path, capsys):
        flight_dir = tmp_path / "flight"
        code = main(
            [
                "serve-cluster", "--smoke",
                "--streams", "8", "--ticks", "4",
                "--shards", "2", "--transport", "inproc",
                "--threshold", "0.5",
                "--flight-record", str(flight_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"flight-recording wire frames to {flight_dir}" in out
        assert "wrote flight log" in out
        assert (flight_dir / "frames.bin").exists()
        assert (flight_dir / "manifest.json").exists()

        json_path = tmp_path / "replay.json"
        code = main(
            [
                "replay-flight", str(flight_dir),
                "--smoke", "--threshold", "0.5",
                "--json", str(json_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bitwise-identical" in out

        import json

        report = json.loads(json_path.read_text())
        assert report["ok"] is True
        assert report["mismatches"] == []
        assert report["shards"] == [0, 1]
        assert report["helloes"] >= 2

    def test_replay_flight_wrong_config_is_explained(self, tmp_path, capsys):
        flight_dir = tmp_path / "flight"
        code = main(
            [
                "serve-cluster", "--smoke",
                "--streams", "6", "--ticks", "3",
                "--shards", "2", "--transport", "inproc",
                "--threshold", "0.5",
                "--flight-record", str(flight_dir),
            ]
        )
        assert code == 0
        capsys.readouterr()
        # Replaying without the monitor (--threshold) is a different
        # engine configuration; the probe must name the differing key
        # instead of replaying into opaque byte mismatches.
        code = main(["replay-flight", str(flight_dir), "--smoke"])
        assert code == 1
        err = capsys.readouterr().err
        assert "engine configuration does not match" in err
        assert "monitor: recorded" in err

    def test_replay_flight_missing_log_fails_fast(self, tmp_path, capsys):
        assert main(["replay-flight", str(tmp_path)]) == 1
        assert "manifest" in capsys.readouterr().err


class TestImportanceCommand:
    def test_smoke_importance_with_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "fig7.csv"
        code = main(["importance", "--smoke", "--csv", str(csv_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "FEATURE IMPORTANCE" in out
        assert csv_path.exists()
        assert len(csv_path.read_text().strip().splitlines()) == 17
