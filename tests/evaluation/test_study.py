"""Tests for the end-to-end study pipeline (on the shared smoke run)."""

import numpy as np
import pytest

from repro.evaluation.study import (
    APPROACH_IF_NO_UF,
    APPROACH_NAIVE,
    APPROACH_OPPORTUNE,
    APPROACH_STATELESS,
    APPROACH_TAUW,
    APPROACH_WORST_CASE,
    StudyConfig,
    evaluate_study,
)
from repro.exceptions import ValidationError


@pytest.fixture(scope="module")
def results(smoke_study_data):
    return evaluate_study(smoke_study_data)


class TestStudyConfig:
    def test_defaults_valid(self):
        StudyConfig()

    def test_paper_scale_counts(self):
        cfg = StudyConfig.paper_scale()
        assert cfg.n_series == 1307
        assert cfg.eval_settings_per_series == 28
        assert cfg.subsample_length == 10
        assert cfg.min_calibration_samples == 200
        assert cfg.confidence == 0.999
        assert cfg.tree_max_depth == 8

    def test_invalid_values_rejected(self):
        with pytest.raises(ValidationError):
            StudyConfig(n_series=5)
        with pytest.raises(ValidationError):
            StudyConfig(eval_settings_per_series=0)
        with pytest.raises(ValidationError):
            StudyConfig(subsample_length=0)
        with pytest.raises(ValidationError):
            StudyConfig(ddm_kind="cnn")


class TestStudyData(object):
    def test_split_sizes(self, smoke_study_data):
        cfg = smoke_study_data.config
        n_eval = round(0.3 * cfg.n_series) * cfg.eval_settings_per_series
        assert len(smoke_study_data.test_traces) == n_eval
        assert len(smoke_study_data.calibration_traces) == n_eval

    def test_eval_traces_subsampled(self, smoke_study_data):
        max_len = smoke_study_data.config.subsample_length
        assert all(
            t.n_steps <= max_len for t in smoke_study_data.test_traces
        )

    def test_train_traces_full_length(self, smoke_study_data):
        lengths = {t.n_steps for t in smoke_study_data.train_traces}
        assert max(lengths) >= 29

    def test_models_calibrated(self, smoke_study_data):
        assert smoke_study_data.stateless_qim.is_calibrated
        assert smoke_study_data.ta_qim.is_calibrated

    def test_ddm_learned_something(self, smoke_study_data):
        assert smoke_study_data.ddm_accuracy_train > 0.7
        assert smoke_study_data.ddm_accuracy_test > 0.5

    def test_layout_columns(self, smoke_study_data):
        layout = smoke_study_data.layout
        assert layout.n_features == 10 + 4
        assert layout.taqf_names == ("ratio", "length", "size", "certainty")


class TestStudyResults:
    def test_all_six_approaches_present(self, results):
        names = [a.name for a in results.approaches]
        assert names == [
            APPROACH_STATELESS,
            APPROACH_IF_NO_UF,
            APPROACH_NAIVE,
            APPROACH_WORST_CASE,
            APPROACH_OPPORTUNE,
            APPROACH_TAUW,
        ]

    def test_approach_lookup(self, results):
        assert results.approach(APPROACH_TAUW).name == APPROACH_TAUW
        with pytest.raises(ValidationError):
            results.approach("nonexistent")

    def test_variance_identical_across_fused_approaches(self, results):
        # Variance depends only on the outcome process, so all approaches
        # scored against the fused outcomes share it exactly.
        fused = [
            a for a in results.approaches if a.name != APPROACH_STATELESS
        ]
        variances = {round(a.decomposition.variance, 12) for a in fused}
        assert len(variances) == 1

    def test_fusion_reduces_variance(self, results):
        # IF improves accuracy, so the outcome variance must drop.
        stateless = results.approach(APPROACH_STATELESS).decomposition.variance
        fused = results.approach(APPROACH_IF_NO_UF).decomposition.variance
        assert fused < stateless

    def test_decompositions_exact(self, results):
        for approach in results.approaches:
            assert abs(approach.decomposition.identity_residual()) < 1e-10

    def test_uncertainties_aligned_with_cases(self, results):
        n = results.approaches[0].uncertainties.size
        for approach in results.approaches:
            assert approach.uncertainties.size == n
            assert approach.wrong.size == n

    def test_naive_most_overconfident(self, results):
        # The core qualitative claim about eq. (1): dependent errors break
        # the independence assumption.
        naive = results.approach(APPROACH_NAIVE).decomposition.overconfidence
        for name in (APPROACH_WORST_CASE, APPROACH_TAUW):
            assert naive >= results.approach(name).decomposition.overconfidence

    def test_worst_case_least_overconfident_of_uf(self, results):
        worst = results.approach(APPROACH_WORST_CASE).decomposition
        naive = results.approach(APPROACH_NAIVE).decomposition
        opportune = results.approach(APPROACH_OPPORTUNE).decomposition
        assert worst.overconfidence <= naive.overconfidence
        assert worst.overconfidence <= opportune.overconfidence + 1e-12

    def test_fusion_improves_misclassification(self, results):
        m = results.misclassification
        assert m.fused_mean <= m.isolated_mean
        assert m.fused_final <= m.fused[2]

    def test_first_two_steps_coincide(self, results):
        # Majority vote with most-recent tie-breaking equals the isolated
        # prediction for series prefixes of length 1 and 2.
        m = results.misclassification
        assert m.isolated[0] == m.fused[0]
        assert m.isolated[1] == m.fused[1]

    def test_distribution_summaries(self, results):
        for key in ("stateless", "taUW"):
            dist = results.distributions[key]
            assert 0.0 < dist.min_guaranteed < 1.0
            assert 0.0 <= dist.share_at_min <= 1.0
            counts, edges = dist.histogram(bins=10)
            assert counts.sum() == dist.uncertainties.size

    def test_calibration_curves_for_all_approaches(self, results):
        curves = results.calibration_curves()
        assert set(curves) == {a.name for a in results.approaches}
        for curve in curves.values():
            assert len(curve) >= 1


class TestReproducibility:
    def test_same_seed_same_results(self, smoke_study_data):
        from repro.evaluation.study import prepare_study_data

        data2 = prepare_study_data(StudyConfig.smoke_scale())
        assert data2.ddm_accuracy_test == smoke_study_data.ddm_accuracy_test
        r1 = evaluate_study(smoke_study_data)
        r2 = evaluate_study(data2)
        for a1, a2 in zip(r1.approaches, r2.approaches):
            assert a1.decomposition.brier == pytest.approx(a2.decomposition.brier)
