"""Tests for text rendering of tables and figures."""

import pytest

from repro.evaluation.importance import feature_importance_study
from repro.evaluation.reporting import (
    render_fig4,
    render_fig5,
    render_fig6,
    render_fig7,
    render_study_summary,
    render_table1,
)
from repro.evaluation.study import APPROACH_TAUW, evaluate_study


@pytest.fixture(scope="module")
def results(smoke_study_data):
    return evaluate_study(smoke_study_data)


class TestRenderers:
    def test_table1_contains_all_approaches(self, results):
        text = render_table1(results)
        assert "TABLE I" in text
        for approach in results.approaches:
            assert approach.name in text

    def test_table1_contains_component_columns(self, results):
        text = render_table1(results)
        for column in ("Brier", "Variance", "Unspecificity", "Unreliability",
                       "Overconfidence"):
            assert column in text

    def test_fig4_lists_every_timestep(self, results):
        text = render_fig4(results.misclassification)
        for t in results.misclassification.timesteps:
            assert f"\n{int(t)} " in text or text.splitlines()[int(t) + 2].startswith(str(int(t)))

    def test_fig4_summary_line(self, results):
        text = render_fig4(results.misclassification)
        assert "mean isolated" in text
        assert "fused @ final step" in text

    def test_fig5_shows_minimum_share(self, results):
        text = render_fig5(results)
        assert "min guaranteed u" in text
        assert "%" in text

    def test_fig6_renders_curves(self, results):
        text = render_fig6(results.calibration_curves())
        assert "Predicted certainty" in text
        assert APPROACH_TAUW in text

    def test_fig7_renders_rows(self, smoke_study_data):
        rows = feature_importance_study(smoke_study_data)
        text = render_fig7(rows)
        assert "ratio+certainty" in text
        assert text.count("\n") >= 17

    def test_summary_concatenates_everything(self, results):
        text = render_study_summary(results)
        assert "DDM accuracy" in text
        assert "TABLE I" in text
        assert "Fig. 4" in text
        assert "Fig. 5" in text
