"""Tests for the feature-importance sweep (Fig. 7)."""

import pytest

from repro.evaluation.importance import (
    feature_importance_study,
    taqf_subsets,
)


class TestSubsets:
    def test_counts_with_empty(self):
        subsets = list(taqf_subsets(("a", "b", "c", "d")))
        assert len(subsets) == 16
        assert subsets[0] == ()

    def test_counts_without_empty(self):
        subsets = list(taqf_subsets(("a", "b", "c", "d"), include_empty=False))
        assert len(subsets) == 15

    def test_ordered_by_size(self):
        sizes = [len(s) for s in taqf_subsets(("a", "b", "c"))]
        assert sizes == sorted(sizes)


class TestImportanceStudy:
    @pytest.fixture(scope="class")
    def rows(self, smoke_study_data):
        return feature_importance_study(smoke_study_data)

    def test_sixteen_rows(self, rows):
        assert len(rows) == 16

    def test_all_subsets_unique(self, rows):
        assert len({r.subset for r in rows}) == 16

    def test_labels(self, rows):
        by_subset = {r.subset: r for r in rows}
        assert by_subset[()].label() == "-"
        assert by_subset[("ratio", "certainty")].label() == "ratio+certainty"

    def test_briers_positive_and_bounded(self, rows):
        for row in rows:
            assert 0.0 < row.brier < 1.0
            assert row.brier == pytest.approx(row.decomposition.brier)

    def test_full_subset_at_least_as_good_as_baseline(self, rows):
        by_subset = {r.subset: r for r in rows}
        full = by_subset[("ratio", "length", "size", "certainty")]
        baseline = by_subset[()]
        # More features should not hurt materially (tree can ignore them).
        assert full.brier <= baseline.brier * 1.1

    def test_n_factors(self, rows):
        assert {r.n_factors for r in rows} == {0, 1, 2, 3, 4}
