"""Tests for study-result serialisation."""

import json

import pytest

from repro.evaluation.artifacts import (
    importance_to_rows,
    load_results_json,
    results_to_dict,
    save_fig4_csv,
    save_importance_csv,
    save_results_json,
    save_table1_csv,
)
from repro.evaluation.importance import feature_importance_study
from repro.evaluation.study import evaluate_study
from repro.exceptions import ValidationError


@pytest.fixture(scope="module")
def results(smoke_study_data):
    return evaluate_study(smoke_study_data)


class TestResultsToDict:
    def test_round_trips_through_json(self, results):
        payload = results_to_dict(results)
        assert json.loads(json.dumps(payload)) == payload

    def test_contains_all_sections(self, results):
        payload = results_to_dict(results)
        assert set(payload) == {
            "config",
            "ddm_accuracy_test",
            "misclassification",
            "approaches",
            "distributions",
        }
        assert len(payload["approaches"]) == 6
        assert {"stateless", "taUW"} == set(payload["distributions"])

    def test_approach_rows_carry_decomposition(self, results):
        row = results_to_dict(results)["approaches"][0]
        for key in ("brier", "variance", "unspecificity", "unreliability",
                    "overconfidence"):
            assert key in row

    def test_misclassification_series_lengths_match(self, results):
        m = results_to_dict(results)["misclassification"]
        assert len(m["timesteps"]) == len(m["isolated"]) == len(m["fused"])


class TestJsonFiles:
    def test_save_and_load(self, results, tmp_path):
        path = save_results_json(results, tmp_path / "out" / "results.json")
        loaded = load_results_json(path)
        assert loaded == results_to_dict(results)

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(ValidationError):
            load_results_json(tmp_path / "nope.json")


class TestCsvFiles:
    def test_table1_csv(self, results, tmp_path):
        path = save_table1_csv(results, tmp_path / "table1.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("approach,brier")
        assert len(lines) == 7  # header + 6 approaches

    def test_fig4_csv(self, results, tmp_path):
        path = save_fig4_csv(results, tmp_path / "fig4.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "timestep,isolated,fused,n_series"
        assert len(lines) == 1 + results.misclassification.timesteps.size

    def test_importance_csv(self, smoke_study_data, tmp_path):
        rows = feature_importance_study(smoke_study_data)
        path = save_importance_csv(rows, tmp_path / "fig7.csv")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 17  # header + 16 subsets
        flattened = importance_to_rows(rows)
        assert len(flattened) == 16
        assert all("brier" in r for r in flattened)
