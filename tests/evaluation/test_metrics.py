"""Tests for study metrics (misclassification by timestep, pooling)."""

import numpy as np
import pytest

from repro.core.quality_factors import QualityFactorLayout
from repro.core.timeseries_wrapper import trace_series
from repro.evaluation.metrics import misclassification_by_timestep, pool_traces
from repro.exceptions import ValidationError


def make_trace(outcomes, truth, uncertainties=None):
    layout = QualityFactorLayout(["qf"], ())
    n = len(outcomes)
    if uncertainties is None:
        uncertainties = [0.1] * n
    return trace_series(
        outcomes, uncertainties, np.zeros((n, 1)), truth, layout
    )


class TestMisclassificationByTimestep:
    def test_crafted_rates(self):
        # Series A: isolated errors at steps 0 and 2; fused errors at 0 only
        # (majority of [1, 2, 1] prefixes: 1, then tie->2... craft simply).
        traces = [
            make_trace([2, 1, 1], truth=1),  # iso wrong: 1,0,0
            make_trace([1, 1, 1], truth=1),  # iso wrong: 0,0,0
        ]
        result = misclassification_by_timestep(traces)
        assert result.timesteps.tolist() == [1, 2, 3]
        assert result.isolated.tolist() == [0.5, 0.0, 0.0]
        assert result.n_series.tolist() == [2, 2, 2]

    def test_fused_uses_majority(self):
        trace = make_trace([2, 1, 1], truth=1)
        # fused prefixes: [2], [2,1]->tie->1, [2,1,1]->1
        assert trace.fused_outcomes.tolist() == [2, 1, 1]
        result = misclassification_by_timestep([trace])
        assert result.fused.tolist() == [1.0, 0.0, 0.0]

    def test_ragged_lengths(self):
        traces = [make_trace([1, 1, 1, 1], truth=1), make_trace([2], truth=1)]
        result = misclassification_by_timestep(traces)
        assert result.n_series.tolist() == [2, 1, 1, 1]
        assert result.isolated[0] == 0.5
        assert result.isolated[1] == 0.0

    def test_means_weighted_by_counts(self):
        traces = [make_trace([2, 2], truth=1), make_trace([1], truth=1)]
        result = misclassification_by_timestep(traces)
        # 3 cases total, 2 isolated errors.
        assert result.isolated_mean == pytest.approx(2 / 3)

    def test_fused_final(self):
        traces = [make_trace([2, 1, 1], truth=1)]
        assert misclassification_by_timestep(traces).fused_final == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            misclassification_by_timestep([])


class TestPoolTraces:
    def test_alignment(self):
        t1 = make_trace([1, 2], truth=1, uncertainties=[0.1, 0.2])
        t2 = make_trace([3], truth=3, uncertainties=[0.4])
        pooled = pool_traces([t1, t2])
        assert pooled.n_cases == 3
        assert pooled.series_index.tolist() == [0, 0, 1]
        assert pooled.timestep.tolist() == [0, 1, 0]
        assert pooled.isolated_uncertainty.tolist() == [0.1, 0.2, 0.4]
        assert pooled.isolated_wrong.tolist() == [0, 1, 0]

    def test_feature_stacking(self):
        t1 = make_trace([1, 2], truth=1)
        pooled = pool_traces([t1])
        assert pooled.features.shape == (2, 1)

    def test_per_series_prefixes(self):
        t1 = make_trace([1, 2], truth=1, uncertainties=[0.1, 0.2])
        t2 = make_trace([3], truth=3, uncertainties=[0.4])
        groups = pool_traces([t1, t2]).per_series_uncertainty_prefixes()
        assert [g.tolist() for g in groups] == [[0.1, 0.2], [0.4]]

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            pool_traces([])
