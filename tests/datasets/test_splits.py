"""Tests for dataset splitting and series subsampling."""

import numpy as np
import pytest

from repro.datasets.gtsrb import GTSRBLikeGenerator
from repro.datasets.splits import split_dataset, subsample_dataset, subsample_series
from repro.exceptions import ValidationError


@pytest.fixture
def dataset(rng):
    return GTSRBLikeGenerator().generate_base(50, rng)


class TestSplitDataset:
    def test_fraction_sizes(self, dataset, rng):
        train, cal, test = split_dataset(dataset, (0.4, 0.3, 0.3), rng)
        assert len(train) == 20
        assert len(cal) == 15
        assert len(test) == 15

    def test_disjoint_union(self, dataset, rng):
        train, cal, test = split_dataset(dataset, rng=rng)
        ids = [s.series_id for part in (train, cal, test) for s in part]
        assert sorted(ids) == sorted(s.series_id for s in dataset)
        assert len(set(ids)) == len(ids)

    def test_paper_fractions_on_1307(self, rng):
        # 0.4/0.3/0.3 of 1307 gives the paper's 522 training series.
        ds = GTSRBLikeGenerator(frames_per_series=(2, 2)).generate_base(1307, rng)
        train, cal, test = split_dataset(ds, rng=rng)
        assert len(train) == 523  # round(0.4 * 1307)
        assert len(cal) == 392
        assert len(test) == 392

    def test_invalid_fractions_rejected(self, dataset, rng):
        with pytest.raises(ValidationError):
            split_dataset(dataset, (0.5, 0.5, 0.5), rng)
        with pytest.raises(ValidationError):
            split_dataset(dataset, (-0.1, 0.6, 0.5), rng)

    def test_deterministic_given_rng(self, dataset):
        a = split_dataset(dataset, rng=np.random.default_rng(7))
        b = split_dataset(dataset, rng=np.random.default_rng(7))
        assert [s.series_id for s in a[0]] == [s.series_id for s in b[0]]


class TestSubsample:
    def test_window_length(self, dataset, rng):
        series = dataset[0]
        sub = subsample_series(series, 10, rng)
        assert sub.n_frames == 10

    def test_window_is_contiguous(self, dataset, rng):
        series = dataset[0]
        sub = subsample_series(series, 10, rng)
        start = np.where(series.sizes_px == sub.sizes_px[0])[0][0]
        assert np.array_equal(sub.sizes_px, series.sizes_px[start : start + 10])

    def test_short_series_returned_whole(self, dataset, rng):
        series = dataset[0].window(0, 5)
        sub = subsample_series(series, 10, rng)
        assert sub.n_frames == 5

    def test_invalid_length_rejected(self, dataset, rng):
        with pytest.raises(ValidationError):
            subsample_series(dataset[0], 0, rng)

    def test_start_positions_vary(self, dataset, rng):
        starts = set()
        for _ in range(50):
            sub = subsample_series(dataset[0], 10, rng)
            starts.add(float(sub.sizes_px[0]))
        assert len(starts) > 3

    def test_subsample_dataset(self, dataset, rng):
        sub = subsample_dataset(dataset, 10, rng)
        assert len(sub) == len(dataset)
        assert all(s.n_frames == 10 for s in sub)
        assert [s.series_id for s in sub] == list(range(len(dataset)))
