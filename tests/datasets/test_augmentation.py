"""Tests for deficit profiles, series propagation, and the sensor model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.augmentation import (
    DEFICIT_NAMES,
    DeficitProfile,
    IntensityLevel,
    N_DEFICITS,
    SensorModel,
    SeriesAugmenter,
    VARYING_DEFICITS,
    single_deficit_grid,
)
from repro.exceptions import ValidationError


class TestDeficitProfile:
    def test_nine_deficits(self):
        assert N_DEFICITS == 9
        assert len(DEFICIT_NAMES) == 9

    def test_clean_profile_is_zero(self):
        assert DeficitProfile.clean().total_severity() == 0.0

    def test_from_mapping(self):
        p = DeficitProfile.from_mapping({"rain": 0.5, "motion_blur": 0.2})
        assert p.get("rain") == 0.5
        assert p.get("motion_blur") == 0.2
        assert p.get("darkness") == 0.0

    def test_unknown_deficit_rejected(self):
        with pytest.raises(ValidationError):
            DeficitProfile.from_mapping({"snow": 0.5})
        with pytest.raises(ValidationError):
            DeficitProfile.clean().get("snow")
        with pytest.raises(ValidationError):
            DeficitProfile.clean().with_deficit("snow", 0.5)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            DeficitProfile.from_mapping({"rain": 1.5})
        with pytest.raises(ValidationError):
            DeficitProfile(np.full(9, -0.1))

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValidationError):
            DeficitProfile(np.zeros(5))

    def test_with_deficit_copies(self):
        base = DeficitProfile.clean()
        changed = base.with_deficit("haze", 0.7)
        assert base.get("haze") == 0.0
        assert changed.get("haze") == 0.7

    def test_as_mapping_round_trip(self):
        p = DeficitProfile.from_mapping({"rain": 0.3})
        assert DeficitProfile.from_mapping(p.as_mapping()).get("rain") == pytest.approx(0.3)


class TestGrid:
    def test_grid_size_matches_paper(self):
        # 9 deficits x 3 intensities + clean original = 28 profiles.
        assert len(single_deficit_grid()) == 28

    def test_grid_without_clean(self):
        assert len(single_deficit_grid(include_clean=False)) == 27

    def test_each_profile_has_one_active_deficit(self):
        for profile in single_deficit_grid(include_clean=False):
            assert np.count_nonzero(profile.intensities) == 1

    def test_levels_used(self):
        grid = single_deficit_grid(include_clean=False)
        rains = sorted(p.get("rain") for p in grid if p.get("rain") > 0)
        assert rains == [l.value for l in IntensityLevel]


class TestSeriesAugmenter:
    def test_constant_deficits_stay_constant(self, rng):
        profile = DeficitProfile.from_mapping({"rain": 0.6, "haze": 0.3})
        frames = SeriesAugmenter().propagate(profile, 20, rng)
        assert frames.shape == (20, 9)
        for i, name in enumerate(DEFICIT_NAMES):
            if name not in VARYING_DEFICITS:
                assert np.all(frames[:, i] == profile.intensities[i])

    def test_varying_deficits_change(self, rng):
        profile = DeficitProfile.from_mapping({"motion_blur": 0.5})
        frames = SeriesAugmenter(variation_scale=0.2).propagate(profile, 30, rng)
        blur_col = DEFICIT_NAMES.index("motion_blur")
        assert len(np.unique(frames[:, blur_col])) > 1

    def test_varying_deficits_stay_in_range(self, rng):
        profile = DeficitProfile.from_mapping({"motion_blur": 0.9})
        frames = SeriesAugmenter(variation_scale=0.5).propagate(profile, 100, rng)
        assert np.all((frames >= 0.0) & (frames <= 1.0))

    def test_zero_variation_freezes_everything(self, rng):
        profile = DeficitProfile.from_mapping({"motion_blur": 0.4})
        frames = SeriesAugmenter(variation_scale=0.0).propagate(profile, 10, rng)
        assert np.all(frames == profile.intensities)

    def test_invalid_args_rejected(self, rng):
        with pytest.raises(ValidationError):
            SeriesAugmenter(variation_scale=-0.1)
        with pytest.raises(ValidationError):
            SeriesAugmenter().propagate(DeficitProfile.clean(), 0, rng)


class TestSensorModel:
    def test_shapes(self, rng):
        sensor = SensorModel()
        deficits = rng.uniform(size=(15, 9))
        sizes = rng.uniform(10, 100, size=15)
        sensed = sensor.sense(deficits, sizes, rng)
        assert sensed.shape == (15, sensor.n_signals)
        assert sensor.n_signals == 10

    def test_signals_clipped(self, rng):
        sensor = SensorModel(noise_scale=2.0)
        sensed = sensor.sense(np.ones((50, 9)), np.full(50, 50.0), rng)
        assert np.all(sensed[:, :9] >= 0.0)
        assert np.all(sensed[:, :9] <= 1.0)

    def test_noise_free_sensor_reports_truth(self, rng):
        sensor = SensorModel(noise_scale=0.0)
        deficits = rng.uniform(size=(5, 9))
        sensed = sensor.sense(deficits, np.full(5, 100.0), rng)
        assert np.allclose(sensed[:, :9], deficits)

    def test_size_signal_normalised(self, rng):
        sensor = SensorModel(noise_scale=0.0, size_norm=200.0)
        sensed = sensor.sense(np.zeros((3, 9)), np.array([50.0, 200.0, 400.0]), rng)
        assert sensed[:, 9] == pytest.approx([0.25, 1.0, 1.5])

    def test_signal_names_cover_columns(self):
        assert len(SensorModel.SIGNAL_NAMES) == SensorModel().n_signals
        assert SensorModel.SIGNAL_NAMES[-1] == "apparent_size"

    def test_invalid_args_rejected(self, rng):
        with pytest.raises(ValidationError):
            SensorModel(noise_scale=-1.0)
        with pytest.raises(ValidationError):
            SensorModel(size_norm=0.0)
        with pytest.raises(ValidationError):
            SensorModel().sense(np.zeros((5, 4)), np.zeros(5), rng)
        with pytest.raises(ValidationError):
            SensorModel().sense(np.zeros((5, 9)), np.zeros(3), rng)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_sensed_values_always_valid(self, seed):
        rng = np.random.default_rng(seed)
        sensor = SensorModel(noise_scale=0.3)
        deficits = rng.uniform(size=(10, 9))
        sensed = sensor.sense(deficits, rng.uniform(5, 250, size=10), rng)
        assert np.all(np.isfinite(sensed))
        assert np.all(sensed[:, :9] >= 0.0) and np.all(sensed[:, :9] <= 1.0)
