"""Tests for situation settings and the situation -> deficit mapping."""

import numpy as np
import pytest

from repro.datasets.augmentation import DEFICIT_NAMES
from repro.datasets.situations import (
    GERMANY_BBOX,
    Location,
    LocationModel,
    RoadType,
    SituationGenerator,
    SituationSetting,
    deficits_from_situation,
)
from repro.datasets.weather import WeatherModel, WeatherState
from repro.exceptions import ValidationError


def make_setting(
    rain=0.0,
    light=1.0,
    fog_vis=20000.0,
    humidity=0.5,
    temp=15.0,
    elevation=45.0,
    hour=12.0,
    heading=180.0,
    speed=50.0,
    road="urban",
    lens_dirt=0.0,
    sign_dirt=0.0,
):
    weather = WeatherState(
        rain_mm_h=rain,
        fog_visibility_m=fog_vis,
        cloud_cover=0.3,
        temperature_c=temp,
        humidity=humidity,
        sun_elevation_deg=elevation,
        light_level=light,
    )
    return SituationSetting(
        location=Location(latitude=50.0, longitude=9.0, road_type=road),
        month=6,
        hour=hour,
        weather=weather,
        heading_deg=heading,
        vehicle_speed_kmh=speed,
        lens_dirt=lens_dirt,
        sign_dirt=sign_dirt,
    )


class TestLocation:
    def test_in_scope_detection(self):
        inside = Location(50.0, 9.0, RoadType.URBAN)
        outside = Location(40.7, -74.0, RoadType.URBAN)
        assert inside.in_target_scope()
        assert not outside.in_target_scope()

    def test_location_model_in_scope_by_default(self, rng):
        model = LocationModel()
        for _ in range(50):
            assert model.sample(rng).in_target_scope()

    def test_location_model_out_of_scope_sampling(self, rng):
        model = LocationModel(out_of_scope_probability=1.0)
        for _ in range(20):
            assert not model.sample(rng).in_target_scope()

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValidationError):
            LocationModel(out_of_scope_probability=1.5)

    def test_road_types_sampled(self, rng):
        model = LocationModel()
        roads = {model.sample(rng).road_type for _ in range(200)}
        assert roads == set(RoadType.all())


class TestSituationGenerator:
    def test_sample_fields_valid(self, rng):
        gen = SituationGenerator()
        for _ in range(50):
            s = gen.sample(rng)
            assert 1 <= s.month <= 12
            assert 0.0 <= s.hour < 24.0
            assert 0.0 <= s.heading_deg <= 360.0
            assert 10.0 <= s.vehicle_speed_kmh <= 180.0
            assert 0.0 <= s.lens_dirt <= 1.0
            assert 0.0 <= s.sign_dirt <= 1.0

    def test_sample_many(self, rng):
        settings = SituationGenerator().sample_many(7, rng)
        assert len(settings) == 7

    def test_sample_many_negative_rejected(self, rng):
        with pytest.raises(ValidationError):
            SituationGenerator().sample_many(-1, rng)

    def test_custom_models_used(self, rng):
        gen = SituationGenerator(
            location_model=LocationModel(out_of_scope_probability=1.0),
            weather_model=WeatherModel(),
        )
        assert not gen.sample(rng).location.in_target_scope()


class TestDeficitsFromSituation:
    def test_all_deficits_in_range(self, rng):
        gen = SituationGenerator()
        for _ in range(100):
            profile = deficits_from_situation(gen.sample(rng))
            assert np.all(profile.intensities >= 0.0)
            assert np.all(profile.intensities <= 1.0)

    def test_clear_day_is_nearly_clean(self):
        profile = deficits_from_situation(make_setting(speed=30.0, heading=0.0))
        assert profile.get("rain") == 0.0
        assert profile.get("darkness") == 0.0
        assert profile.get("haze") < 0.05
        assert profile.get("motion_blur") < 0.05

    def test_rain_monotone_in_rate(self):
        light_rain = deficits_from_situation(make_setting(rain=1.0))
        heavy_rain = deficits_from_situation(make_setting(rain=15.0))
        assert 0.0 < light_rain.get("rain") < heavy_rain.get("rain")

    def test_night_is_dark_with_artificial_backlight(self):
        night = deficits_from_situation(make_setting(light=0.0, elevation=-20.0))
        assert night.get("darkness") == 1.0
        assert night.get("backlight_artificial") > 0.5

    def test_fog_creates_haze(self):
        foggy = deficits_from_situation(make_setting(fog_vis=100.0))
        assert foggy.get("haze") > 0.8

    def test_natural_backlight_needs_low_sun_ahead(self):
        # Evening sun in the west (~azimuth 270), car heading west.
        glare = deficits_from_situation(
            make_setting(elevation=5.0, hour=18.0, heading=270.0)
        )
        away = deficits_from_situation(
            make_setting(elevation=5.0, hour=18.0, heading=90.0)
        )
        assert glare.get("backlight_natural") > 0.5
        assert away.get("backlight_natural") == 0.0

    def test_no_natural_backlight_below_horizon(self):
        night = deficits_from_situation(
            make_setting(elevation=-5.0, hour=22.0, heading=270.0, light=0.0)
        )
        assert night.get("backlight_natural") == 0.0

    def test_steamed_lens_needs_humid_cold(self):
        steamy = deficits_from_situation(make_setting(humidity=0.95, temp=2.0))
        dry = deficits_from_situation(make_setting(humidity=0.4, temp=20.0))
        assert steamy.get("steamed_lens") > 0.3
        assert dry.get("steamed_lens") == 0.0

    def test_blur_grows_with_speed_and_darkness(self):
        slow = deficits_from_situation(make_setting(speed=30.0))
        fast = deficits_from_situation(make_setting(speed=150.0))
        fast_dark = deficits_from_situation(make_setting(speed=150.0, light=0.0))
        assert slow.get("motion_blur") < fast.get("motion_blur")
        assert fast.get("motion_blur") < fast_dark.get("motion_blur")

    def test_dirt_passthrough(self):
        dirty = deficits_from_situation(make_setting(lens_dirt=0.4, sign_dirt=0.7))
        assert dirty.get("dirt_lens") == pytest.approx(0.4)
        assert dirty.get("dirt_sign") == pytest.approx(0.7)

    def test_profile_covers_all_names(self, rng):
        profile = deficits_from_situation(SituationGenerator().sample(rng))
        assert set(profile.as_mapping()) == set(DEFICIT_NAMES)
