"""Tests for the GTSRB-like series generator."""

import numpy as np
import pytest

from repro.datasets.augmentation import DeficitProfile, single_deficit_grid
from repro.datasets.gtsrb import (
    CONFUSION_PARTNERS,
    GTSRB_CLASSES,
    GTSRBLikeGenerator,
    N_CLASSES,
    SeriesGeometry,
    TimeseriesDataset,
)
from repro.exceptions import ValidationError


class TestCatalogue:
    def test_43_classes(self):
        assert N_CLASSES == 43
        assert len(GTSRB_CLASSES) == 43

    def test_ids_are_contiguous(self):
        assert [c.class_id for c in GTSRB_CLASSES] == list(range(43))

    def test_weights_positive(self):
        assert all(c.frequency_weight > 0 for c in GTSRB_CLASSES)

    def test_frequency_skew(self):
        # GTSRB is imbalanced: the most common class is >5x the rarest.
        weights = [c.frequency_weight for c in GTSRB_CLASSES]
        assert max(weights) / min(weights) > 5.0

    def test_categories_present(self):
        categories = {c.category for c in GTSRB_CLASSES}
        assert {"speed_limit", "danger", "mandatory", "prohibitory", "priority"} <= categories


class TestConfusionPartners:
    def test_every_class_has_partner(self):
        assert set(CONFUSION_PARTNERS) == set(range(43))

    def test_partner_shares_category(self):
        by_id = {c.class_id: c for c in GTSRB_CLASSES}
        for class_id, partner in CONFUSION_PARTNERS.items():
            assert by_id[class_id].category == by_id[partner].category

    def test_partner_differs_unless_singleton(self):
        by_category: dict = {}
        for c in GTSRB_CLASSES:
            by_category.setdefault(c.category, []).append(c.class_id)
        for class_id, partner in CONFUSION_PARTNERS.items():
            category_size = len(
                by_category[next(c.category for c in GTSRB_CLASSES if c.class_id == class_id)]
            )
            if category_size > 1:
                assert partner != class_id


class TestGenerateBase:
    def test_series_count_and_ids(self, rng):
        ds = GTSRBLikeGenerator().generate_base(25, rng)
        assert len(ds) == 25
        assert [s.series_id for s in ds] == list(range(25))

    def test_frames_in_configured_range(self, rng):
        gen = GTSRBLikeGenerator(frames_per_series=(29, 30))
        ds = gen.generate_base(20, rng)
        assert all(29 <= s.n_frames <= 30 for s in ds)

    def test_sizes_grow_monotonically(self, rng):
        ds = GTSRBLikeGenerator().generate_base(20, rng)
        for series in ds:
            assert np.all(np.diff(series.sizes_px) >= 0)

    def test_sizes_within_geometry_bounds(self, rng):
        geom = SeriesGeometry()
        ds = GTSRBLikeGenerator(geometry=geom).generate_base(20, rng)
        for series in ds:
            assert np.all(series.sizes_px >= geom.min_size_px)
            assert np.all(series.sizes_px <= geom.max_size_px)

    def test_distances_shrink(self, rng):
        ds = GTSRBLikeGenerator().generate_base(10, rng)
        for series in ds:
            assert np.all(np.diff(series.distances_m) <= 0)

    def test_min_per_class_coverage(self, rng):
        ds = GTSRBLikeGenerator().generate_base(100, rng, min_per_class=2)
        counts = ds.class_counts()
        assert counts.min() >= 2

    def test_min_per_class_too_large_rejected(self, rng):
        with pytest.raises(ValidationError):
            GTSRBLikeGenerator().generate_base(40, rng, min_per_class=1)

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ValidationError):
            GTSRBLikeGenerator().generate_base(-1, rng)

    def test_start_id_offsets(self, rng):
        ds = GTSRBLikeGenerator().generate_base(5, rng, start_id=100)
        assert [s.series_id for s in ds] == [100, 101, 102, 103, 104]

    def test_base_series_have_no_deficits(self, rng):
        ds = GTSRBLikeGenerator().generate_base(5, rng)
        for series in ds:
            assert np.all(series.deficits == 0.0)
            assert series.situation is None


class TestAugmentation:
    def test_grid_multiplies_series(self, rng):
        gen = GTSRBLikeGenerator()
        base = gen.generate_base(4, rng)
        grid = single_deficit_grid()
        out = gen.augment_with_grid(base, grid, rng)
        assert len(out) == 4 * len(grid)

    def test_grid_preserves_geometry(self, rng):
        gen = GTSRBLikeGenerator()
        base = gen.generate_base(2, rng)
        out = gen.augment_with_grid(base, [DeficitProfile.clean()], rng)
        assert np.array_equal(out[0].sizes_px, base[0].sizes_px)
        assert out[0].class_id == base[0].class_id

    def test_grid_sets_sensed_signals(self, rng):
        gen = GTSRBLikeGenerator()
        base = gen.generate_base(2, rng)
        out = gen.augment_with_grid(base, single_deficit_grid(), rng)
        for series in out:
            assert series.sensed.shape == (series.n_frames, 10)

    def test_empty_grid_rejected(self, rng):
        gen = GTSRBLikeGenerator()
        base = gen.generate_base(2, rng)
        with pytest.raises(ValidationError):
            gen.augment_with_grid(base, [], rng)

    def test_situations_multiply_series(self, rng):
        gen = GTSRBLikeGenerator()
        base = gen.generate_base(3, rng)
        out = gen.augment_with_situations(base, 5, rng)
        assert len(out) == 15
        assert all(s.situation is not None for s in out)

    def test_situation_count_validated(self, rng):
        gen = GTSRBLikeGenerator()
        base = gen.generate_base(2, rng)
        with pytest.raises(ValidationError):
            gen.augment_with_situations(base, 0, rng)

    def test_augmented_ids_unique(self, rng):
        gen = GTSRBLikeGenerator()
        base = gen.generate_base(3, rng)
        out = gen.augment_with_situations(base, 4, rng)
        ids = [s.series_id for s in out]
        assert len(set(ids)) == len(ids)


class TestSeriesAndDataset:
    def test_window_slices_all_arrays(self, rng):
        gen = GTSRBLikeGenerator()
        series = gen.generate_base(1, rng)[0]
        window = series.window(5, 10)
        assert window.n_frames == 10
        assert np.array_equal(window.sizes_px, series.sizes_px[5:15])
        assert window.positions.shape == (10, 2)

    def test_window_out_of_range_rejected(self, rng):
        series = GTSRBLikeGenerator().generate_base(1, rng)[0]
        with pytest.raises(ValidationError):
            series.window(0, series.n_frames + 1)
        with pytest.raises(ValidationError):
            series.window(-1, 5)

    def test_window_copies(self, rng):
        series = GTSRBLikeGenerator().generate_base(1, rng)[0]
        window = series.window(0, 5)
        window.sizes_px[0] = -1.0
        assert series.sizes_px[0] != -1.0

    def test_dataset_frame_count(self, rng):
        ds = GTSRBLikeGenerator().generate_base(6, rng)
        assert ds.n_frames_total == sum(s.n_frames for s in ds)

    def test_labels_per_frame(self, rng):
        ds = GTSRBLikeGenerator().generate_base(4, rng)
        labels = ds.labels_per_frame()
        assert labels.shape == (ds.n_frames_total,)
        assert labels[0] == ds[0].class_id

    def test_empty_dataset_labels(self):
        assert TimeseriesDataset().labels_per_frame().size == 0
