"""Tests for dataset (de)serialisation."""

import numpy as np
import pytest

from repro.datasets.gtsrb import GTSRBLikeGenerator, TimeseriesDataset
from repro.datasets.io import load_dataset_npz, save_dataset_npz
from repro.exceptions import ValidationError


@pytest.fixture
def dataset(rng):
    gen = GTSRBLikeGenerator()
    base = gen.generate_base(6, rng)
    return gen.augment_with_situations(base, 2, rng)


class TestRoundTrip:
    def test_structure_preserved(self, dataset, tmp_path, rng):
        path = save_dataset_npz(dataset, tmp_path / "data" / "series.npz")
        loaded = load_dataset_npz(path)
        assert len(loaded) == len(dataset)
        assert loaded.n_classes == dataset.n_classes
        for original, restored in zip(dataset, loaded):
            assert restored.series_id == original.series_id
            assert restored.class_id == original.class_id
            assert restored.n_frames == original.n_frames
            assert np.array_equal(restored.sizes_px, original.sizes_px)
            assert np.array_equal(restored.distances_m, original.distances_m)
            assert np.array_equal(restored.positions, original.positions)
            assert np.array_equal(restored.deficits, original.deficits)
            assert np.array_equal(restored.sensed, original.sensed)

    def test_situations_not_persisted(self, dataset, tmp_path):
        path = save_dataset_npz(dataset, tmp_path / "series.npz")
        loaded = load_dataset_npz(path)
        assert all(s.situation is None for s in loaded)

    def test_loaded_dataset_usable_downstream(self, dataset, tmp_path, rng):
        from repro.datasets.splits import subsample_dataset
        from repro.models import PrototypeFeatureModel

        path = save_dataset_npz(dataset, tmp_path / "series.npz")
        loaded = load_dataset_npz(path)
        sub = subsample_dataset(loaded, 10, rng)
        model = PrototypeFeatureModel(loaded.n_classes, seed=1)
        X, y, _ = model.embed_dataset(sub, rng)
        assert X.shape[0] == sub.n_frames_total
        assert y.size == X.shape[0]


class TestErrors:
    def test_empty_dataset_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            save_dataset_npz(TimeseriesDataset(), tmp_path / "empty.npz")

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            load_dataset_npz(tmp_path / "missing.npz")
