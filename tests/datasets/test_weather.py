"""Tests for the synthetic weather model."""

import numpy as np
import pytest

from repro.datasets.weather import WeatherModel, sun_elevation_deg
from repro.exceptions import ValidationError


class TestSunElevation:
    def test_noon_above_midnight(self):
        assert sun_elevation_deg(6, 12.0) > sun_elevation_deg(6, 0.0)

    def test_summer_noon_above_winter_noon(self):
        assert sun_elevation_deg(6, 12.0) > sun_elevation_deg(12, 12.0)

    def test_night_is_negative(self):
        assert sun_elevation_deg(6, 1.0) < 0.0

    def test_summer_noon_plausible_for_germany(self):
        # At 50 deg N the June midday sun stands around 60 deg high.
        elevation = sun_elevation_deg(6, 12.0, latitude_deg=50.0)
        assert 55.0 < elevation < 68.0

    def test_bounded(self):
        for month in range(1, 13):
            for hour in (0.0, 6.0, 12.0, 18.0):
                assert -90.0 <= sun_elevation_deg(month, hour) <= 90.0

    def test_invalid_month_rejected(self):
        with pytest.raises(ValidationError):
            sun_elevation_deg(0, 12.0)
        with pytest.raises(ValidationError):
            sun_elevation_deg(13, 12.0)

    def test_invalid_hour_rejected(self):
        with pytest.raises(ValidationError):
            sun_elevation_deg(6, 24.0)
        with pytest.raises(ValidationError):
            sun_elevation_deg(6, -1.0)


class TestWeatherModel:
    def test_sampled_fields_in_range(self, rng):
        model = WeatherModel()
        for month in (1, 4, 7, 10):
            for hour in (3.0, 9.0, 15.0, 21.0):
                w = model.sample(month, hour, 50.0, rng)
                assert w.rain_mm_h >= 0.0
                assert w.fog_visibility_m > 0.0
                assert 0.0 <= w.cloud_cover <= 1.0
                assert 0.0 <= w.humidity <= 1.0
                assert 0.0 <= w.light_level <= 1.0

    def test_night_is_dark(self, rng):
        model = WeatherModel()
        lights = [model.sample(12, 23.0, 50.0, rng).light_level for _ in range(30)]
        assert max(lights) < 0.1

    def test_summer_noon_is_bright(self, rng):
        model = WeatherModel()
        lights = [model.sample(6, 12.0, 50.0, rng).light_level for _ in range(30)]
        assert np.mean(lights) > 0.5

    def test_winter_colder_than_summer(self, rng):
        model = WeatherModel()
        winter = np.mean([model.sample(1, 12.0, 50.0, rng).temperature_c for _ in range(60)])
        summer = np.mean([model.sample(7, 12.0, 50.0, rng).temperature_c for _ in range(60)])
        assert winter < summer - 8.0

    def test_rain_occurs_at_plausible_rate(self, rng):
        model = WeatherModel()
        raining = [model.sample(10, 12.0, 50.0, rng).rain_mm_h > 0 for _ in range(400)]
        assert 0.1 < np.mean(raining) < 0.5

    def test_rain_intensity_capped(self, rng):
        model = WeatherModel()
        rates = [model.sample(7, 15.0, 50.0, rng).rain_mm_h for _ in range(300)]
        assert max(rates) <= 30.0

    def test_invalid_month_rejected(self, rng):
        with pytest.raises(ValidationError):
            WeatherModel().sample(0, 12.0, 50.0, rng)

    def test_invalid_amplitude_rejected(self):
        with pytest.raises(ValidationError):
            WeatherModel(rain_probability_amplitude=0.9)
