"""Tests for information-fusion rules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.fusion.information import (
    ExponentialDecayVote,
    LatestOutcome,
    MajorityVote,
    WeightedMajorityVote,
)


class TestMajorityVote:
    def test_clear_majority(self):
        assert MajorityVote().fuse([1, 1, 2]) == 1

    def test_single_outcome(self):
        assert MajorityVote().fuse([7]) == 7

    def test_tie_resolved_to_most_recent(self):
        # Paper: "the most recent momentaneous prediction is chosen".
        assert MajorityVote().fuse([1, 2]) == 2
        assert MajorityVote().fuse([2, 1]) == 1
        assert MajorityVote().fuse([1, 1, 2, 2]) == 2
        assert MajorityVote().fuse([2, 2, 1, 1]) == 1

    def test_three_way_tie(self):
        assert MajorityVote().fuse([3, 1, 2]) == 2

    def test_tie_between_subset_of_classes(self):
        # 1 and 2 are tied at two votes; 3 has one; latest tied is 2.
        assert MajorityVote().fuse([1, 1, 2, 3, 2]) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            MajorityVote().fuse([])

    def test_fuse_prefixes(self):
        fused = MajorityVote().fuse_prefixes([1, 2, 2, 3, 3, 3])
        assert fused == [1, 2, 2, 2, 3, 3]

    def test_certainties_ignored(self):
        assert MajorityVote().fuse([1, 1, 2], certainties=[0.1, 0.1, 0.99]) == 1

    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_fused_outcome_always_occurs_in_series(self, outcomes):
        assert MajorityVote().fuse(outcomes) in outcomes

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=15))
    @settings(max_examples=100, deadline=None)
    def test_fused_outcome_has_maximal_count(self, outcomes):
        fused = MajorityVote().fuse(outcomes)
        counts = {o: outcomes.count(o) for o in set(outcomes)}
        assert counts[fused] == max(counts.values())


class TestLatestOutcome:
    def test_returns_last(self):
        assert LatestOutcome().fuse([1, 2, 3]) == 3

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            LatestOutcome().fuse([])


class TestWeightedMajorityVote:
    def test_certainty_outweighs_count(self):
        fused = WeightedMajorityVote().fuse([1, 1, 2], certainties=[0.2, 0.2, 0.9])
        assert fused == 2

    def test_falls_back_to_majority_without_certainties(self):
        assert WeightedMajorityVote().fuse([1, 1, 2]) == 1

    def test_tie_resolved_to_most_recent(self):
        fused = WeightedMajorityVote().fuse([1, 2], certainties=[0.5, 0.5])
        assert fused == 2

    def test_misaligned_certainties_rejected(self):
        with pytest.raises(ValidationError):
            WeightedMajorityVote().fuse([1, 2], certainties=[0.5])

    def test_invalid_certainty_rejected(self):
        with pytest.raises(ValidationError):
            WeightedMajorityVote().fuse([1], certainties=[1.5])


class TestExponentialDecayVote:
    def test_decay_one_equals_majority(self):
        outcomes = [1, 1, 2, 2, 2, 1]
        assert ExponentialDecayVote(decay=1.0).fuse(outcomes) == MajorityVote().fuse(
            outcomes
        )

    def test_decay_zero_equals_latest(self):
        assert ExponentialDecayVote(decay=0.0).fuse([1, 1, 1, 2]) == 2

    def test_recent_outcomes_dominate(self):
        # Two old votes for 1 vs two recent votes for 2 with decay.
        assert ExponentialDecayVote(decay=0.5).fuse([1, 1, 2, 2]) == 2

    def test_invalid_decay_rejected(self):
        with pytest.raises(ValidationError):
            ExponentialDecayVote(decay=1.5)

    @given(
        outcomes=st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=12),
        decay=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_result_occurs_in_series(self, outcomes, decay):
        assert ExponentialDecayVote(decay=decay).fuse(outcomes) in outcomes
