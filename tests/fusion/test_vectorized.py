"""Tests for the vectorized (batched) information fusion."""

import numpy as np
import pytest

from repro.core.ragged import RaggedBatch
from repro.fusion.information import (
    ExponentialDecayVote,
    LatestOutcome,
    MajorityVote,
    WeightedMajorityVote,
)
from repro.fusion.vectorized import fuse_segments, majority_vote_batch


def random_batch(rng, n_segments=40, max_length=12, n_classes=5):
    segments = []
    for _ in range(n_segments):
        length = int(rng.integers(1, max_length + 1))
        outcomes = rng.integers(0, n_classes, size=length)
        uncertainties = rng.uniform(0.0, 1.0, size=length)
        segments.append((outcomes, uncertainties))
    return segments, RaggedBatch.from_segments(segments)


class TestMajorityVoteBatch:
    def test_matches_scalar_rule_on_random_segments(self, rng):
        scalar = MajorityVote()
        for _ in range(10):
            segments, batch = random_batch(rng)
            result = majority_vote_batch(batch)
            for i, (outcomes, certs) in enumerate(segments):
                assert result.fused[i] == scalar.fuse(list(outcomes))

    def test_tie_breaks_to_most_recent(self):
        batch = RaggedBatch.from_segments(
            [
                ([1, 2], [0.1, 0.1]),        # tie -> most recent: 2
                ([2, 1], [0.1, 0.1]),        # tie -> most recent: 1
                ([3, 1, 3, 1], [0.1] * 4),   # tie -> most recent: 1
                ([5], [0.1]),                # singleton
            ]
        )
        assert majority_vote_batch(batch).fused.tolist() == [2, 1, 1, 5]

    def test_counts_and_unique(self):
        batch = RaggedBatch.from_segments(
            [([4, 4, 2, 4], [0.2] * 4), ([1, 2, 3], [0.2] * 3)]
        )
        result = majority_vote_batch(batch)
        assert result.fused.tolist() == [4, 3]
        assert result.fused_counts.tolist() == [3, 1]
        assert result.unique_counts.tolist() == [2, 3]

    def test_segment_isolation(self, rng):
        # A segment's vote must not depend on its batch neighbours.
        segments, batch = random_batch(rng, n_segments=25)
        whole = majority_vote_batch(batch).fused
        for i, segment in enumerate(segments):
            alone = majority_vote_batch(RaggedBatch.from_segments([segment]))
            assert alone.fused[0] == whole[i]


class TestFuseSegments:
    @pytest.mark.parametrize(
        "fusion",
        [
            MajorityVote(),
            LatestOutcome(),
            WeightedMajorityVote(),
            ExponentialDecayVote(decay=0.8),
        ],
        ids=lambda f: type(f).__name__,
    )
    def test_matches_per_segment_fuse(self, rng, fusion):
        segments, batch = random_batch(rng)
        fused, vote = fuse_segments(fusion, batch)
        for i, (outcomes, uncertainties) in enumerate(segments):
            expected = fusion.fuse(
                list(outcomes), [1.0 - u for u in uncertainties]
            )
            assert fused[i] == expected

    def test_returns_vote_stats_only_for_majority(self, rng):
        segments, batch = random_batch(rng)
        _, vote = fuse_segments(MajorityVote(), batch)
        assert vote is not None
        codes, counts = vote.class_counts
        assert counts.shape == (batch.n_segments, codes.size)
        _, no_vote = fuse_segments(LatestOutcome(), batch)
        assert no_vote is None
