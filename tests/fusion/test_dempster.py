"""Tests for Dempster-Shafer information fusion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.fusion.dempster import (
    DempsterShaferFusion,
    SimpleSupportMass,
    combine_simple_support,
)
from repro.fusion.information import MajorityVote


class TestSimpleSupportMass:
    def test_from_outcome(self):
        mass = SimpleSupportMass.from_outcome(3, 0.7)
        assert mass.belief(3) == pytest.approx(0.7)
        assert mass.belief(5) == 0.0
        assert mass.ignorance == pytest.approx(0.3)

    def test_best_class(self):
        mass = SimpleSupportMass({1: 0.3, 2: 0.5}, 0.2)
        assert mass.best_class() == 2

    def test_total_ignorance_has_no_best_class(self):
        with pytest.raises(ValidationError):
            SimpleSupportMass({}, 1.0).best_class()

    def test_masses_must_sum_to_one(self):
        with pytest.raises(ValidationError):
            SimpleSupportMass({1: 0.5}, 0.2)

    def test_negative_mass_rejected(self):
        with pytest.raises(ValidationError):
            SimpleSupportMass({1: -0.1}, 1.1)

    def test_invalid_certainty_rejected(self):
        with pytest.raises(ValidationError):
            SimpleSupportMass.from_outcome(1, 1.5)


class TestCombination:
    def test_agreement_reinforces(self):
        a = SimpleSupportMass.from_outcome(1, 0.6)
        b = SimpleSupportMass.from_outcome(1, 0.6)
        combined, conflict = combine_simple_support(a, b)
        assert conflict == 0.0
        # Classic DS: 1 - (1-0.6)^2 = 0.84 belief after two agreements.
        assert combined.belief(1) == pytest.approx(0.84)

    def test_disagreement_creates_conflict(self):
        a = SimpleSupportMass.from_outcome(1, 0.6)
        b = SimpleSupportMass.from_outcome(2, 0.5)
        combined, conflict = combine_simple_support(a, b)
        assert conflict == pytest.approx(0.3)  # 0.6 * 0.5
        # Renormalised masses: 1: 0.6*0.5/0.7, 2: 0.5*0.4/0.7.
        assert combined.belief(1) == pytest.approx(0.3 / 0.7)
        assert combined.belief(2) == pytest.approx(0.2 / 0.7)

    def test_total_conflict_rejected(self):
        a = SimpleSupportMass.from_outcome(1, 1.0)
        b = SimpleSupportMass.from_outcome(2, 1.0)
        with pytest.raises(ValidationError):
            combine_simple_support(a, b)

    def test_combination_commutative(self):
        a = SimpleSupportMass.from_outcome(1, 0.7)
        b = SimpleSupportMass.from_outcome(2, 0.4)
        ab, k_ab = combine_simple_support(a, b)
        ba, k_ba = combine_simple_support(b, a)
        assert k_ab == pytest.approx(k_ba)
        assert ab.belief(1) == pytest.approx(ba.belief(1))
        assert ab.belief(2) == pytest.approx(ba.belief(2))

    def test_masses_remain_normalised(self):
        a = SimpleSupportMass.from_outcome(1, 0.8)
        b = SimpleSupportMass.from_outcome(2, 0.6)
        combined, _ = combine_simple_support(a, b)
        total = sum(combined.masses.values()) + combined.ignorance
        assert total == pytest.approx(1.0)


class TestDempsterShaferFusion:
    def test_confident_minority_can_win(self):
        fusion = DempsterShaferFusion()
        outcome = fusion.fuse([1, 1, 2], certainties=[0.2, 0.2, 0.95])
        assert outcome == 2

    def test_agreeing_majority_wins(self):
        fusion = DempsterShaferFusion()
        assert fusion.fuse([1, 1, 2], certainties=[0.6, 0.6, 0.6]) == 1

    def test_without_certainties_uses_default(self):
        fusion = DempsterShaferFusion(default_certainty=0.5)
        assert fusion.fuse([1, 1, 2]) == 1

    def test_single_outcome(self):
        assert DempsterShaferFusion().fuse([7], certainties=[0.9]) == 7

    def test_certainty_clipping_prevents_lock_in(self):
        # A certainty-1.0 outcome must not make later evidence irrelevant.
        fusion = DempsterShaferFusion(max_certainty=0.9)
        outcome = fusion.fuse(
            [2, 1, 1, 1, 1], certainties=[1.0, 0.9, 0.9, 0.9, 0.9]
        )
        assert outcome == 1

    def test_misaligned_certainties_rejected(self):
        with pytest.raises(ValidationError):
            DempsterShaferFusion().fuse([1, 2], certainties=[0.5])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            DempsterShaferFusion().fuse([])

    def test_invalid_params_rejected(self):
        with pytest.raises(ValidationError):
            DempsterShaferFusion(max_certainty=1.0)
        with pytest.raises(ValidationError):
            DempsterShaferFusion(default_certainty=0.0)
        with pytest.raises(ValidationError):
            DempsterShaferFusion(max_certainty=0.5, default_certainty=0.6)

    def test_combine_series_reports_conflict(self):
        fusion = DempsterShaferFusion()
        _, conflict_agree = fusion.combine_series([1, 1, 1], [0.6, 0.6, 0.6])
        _, conflict_mixed = fusion.combine_series([1, 2, 1], [0.6, 0.6, 0.6])
        assert conflict_agree == 0.0
        assert conflict_mixed > 0.0

    @given(
        outcomes=st.lists(st.integers(0, 4), min_size=1, max_size=10),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_fused_outcome_occurs_in_series(self, outcomes, seed):
        rng = np.random.default_rng(seed)
        certainties = rng.uniform(0.1, 0.9, size=len(outcomes)).tolist()
        assert DempsterShaferFusion().fuse(outcomes, certainties) in outcomes

    @given(outcomes=st.lists(st.integers(0, 3), min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_equal_certainties_behave_like_majority_on_clear_wins(self, outcomes):
        # With identical certainties DS ranks classes by vote count, so a
        # strict majority winner must match majority voting.
        counts = {o: outcomes.count(o) for o in set(outcomes)}
        top = max(counts.values())
        winners = [c for c, n in counts.items() if n == top]
        if len(winners) != 1:
            return  # ties resolve differently; skip
        ds = DempsterShaferFusion().fuse(outcomes, [0.5] * len(outcomes))
        assert ds == MajorityVote().fuse(outcomes)
