"""Tests for the uncertainty-fusion baselines (paper equations 1-3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.fusion.uncertainty import (
    NaiveProductFusion,
    OpportuneFusion,
    UNCERTAINTY_FUSION_REGISTRY,
    WorstCaseFusion,
    get_uncertainty_fusion,
)

uncertainty_lists = st.lists(
    st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=15
)


class TestNaiveProduct:
    def test_equation_one(self):
        # u = prod(u_i)
        assert NaiveProductFusion().fuse([0.5, 0.5]) == pytest.approx(0.25)
        assert NaiveProductFusion().fuse([0.1, 0.2, 0.3]) == pytest.approx(0.006)

    def test_single_value_identity(self):
        assert NaiveProductFusion().fuse([0.42]) == pytest.approx(0.42)

    def test_prefixes_non_increasing(self):
        prefixes = NaiveProductFusion().fuse_prefixes([0.9, 0.8, 0.7, 0.9])
        assert all(a >= b for a, b in zip(prefixes, prefixes[1:]))


class TestOpportune:
    def test_equation_two(self):
        assert OpportuneFusion().fuse([0.5, 0.2, 0.8]) == pytest.approx(0.2)

    def test_prefixes_non_increasing(self):
        prefixes = OpportuneFusion().fuse_prefixes([0.5, 0.3, 0.6, 0.1])
        assert prefixes == [0.5, 0.3, 0.3, 0.1]


class TestWorstCase:
    def test_equation_three(self):
        assert WorstCaseFusion().fuse([0.5, 0.2, 0.8]) == pytest.approx(0.8)

    def test_prefixes_non_decreasing(self):
        prefixes = WorstCaseFusion().fuse_prefixes([0.5, 0.3, 0.6, 0.1])
        assert prefixes == [0.5, 0.5, 0.6, 0.6]


class TestCommonBehaviour:
    @pytest.mark.parametrize(
        "fusion", [NaiveProductFusion(), OpportuneFusion(), WorstCaseFusion()]
    )
    def test_empty_rejected(self, fusion):
        with pytest.raises(ValidationError):
            fusion.fuse([])

    @pytest.mark.parametrize(
        "fusion", [NaiveProductFusion(), OpportuneFusion(), WorstCaseFusion()]
    )
    def test_out_of_range_rejected(self, fusion):
        with pytest.raises(ValidationError):
            fusion.fuse([0.5, 1.2])

    @given(uncertainties=uncertainty_lists)
    @settings(max_examples=100, deadline=None)
    def test_ordering_naive_le_opportune_le_worst(self, uncertainties):
        # prod <= min <= max always holds for values in [0, 1].
        naive = NaiveProductFusion().fuse(uncertainties)
        opportune = OpportuneFusion().fuse(uncertainties)
        worst = WorstCaseFusion().fuse(uncertainties)
        assert naive <= opportune + 1e-12
        assert opportune <= worst + 1e-12

    @given(uncertainties=uncertainty_lists)
    @settings(max_examples=100, deadline=None)
    def test_results_stay_in_unit_interval(self, uncertainties):
        for fusion in (NaiveProductFusion(), OpportuneFusion(), WorstCaseFusion()):
            assert 0.0 <= fusion.fuse(uncertainties) <= 1.0


class TestRegistry:
    def test_all_rules_registered(self):
        assert set(UNCERTAINTY_FUSION_REGISTRY) == {"naive", "opportune", "worst-case"}

    def test_lookup_constructs_instances(self):
        assert isinstance(get_uncertainty_fusion("naive"), NaiveProductFusion)
        assert isinstance(get_uncertainty_fusion("opportune"), OpportuneFusion)
        assert isinstance(get_uncertainty_fusion("worst-case"), WorstCaseFusion)

    def test_unknown_rejected(self):
        with pytest.raises(ValidationError):
            get_uncertainty_fusion("bayes")
