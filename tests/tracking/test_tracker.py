"""Tests for the sign tracker (series-onset detection)."""

import numpy as np
import pytest

from repro.datasets.gtsrb import GTSRBLikeGenerator
from repro.exceptions import ValidationError
from repro.tracking.tracker import SignTracker


class TestSignTracker:
    def test_first_detection_starts_series(self):
        tracker = SignTracker()
        event = tracker.update([0.0, 0.0])
        assert event.new_series
        assert event.track_id == 0
        assert np.isnan(event.distance_squared)

    def test_smooth_motion_keeps_track(self):
        tracker = SignTracker(dt=0.1)
        tracker.update([10.0, 0.0])
        for i in range(1, 20):
            event = tracker.update([10.0 - 0.2 * i, 0.0])
            assert not event.new_series, f"lost track at step {i}"
        assert tracker.current_track_id == 0

    def test_jump_starts_new_series(self):
        tracker = SignTracker(dt=0.1)
        tracker.update([10.0, 0.0])
        for i in range(1, 10):
            tracker.update([10.0 - 0.2 * i, 0.0])
        event = tracker.update([100.0, 50.0])
        assert event.new_series
        assert event.track_id == 1
        assert event.distance_squared > tracker.gate_threshold

    def test_reset_forgets_track(self):
        tracker = SignTracker()
        tracker.update([0.0, 0.0])
        tracker.reset()
        event = tracker.update([0.1, 0.0])
        assert event.new_series
        assert event.track_id == 1

    def test_tracks_generated_series(self, rng):
        # Positions from two consecutive synthetic series: one new-series
        # event at the start of each.
        gen = GTSRBLikeGenerator()
        ds = gen.generate_base(2, rng)
        # Ensure the second series starts somewhere clearly different.
        ds[1].positions[:, 1] += 30.0
        tracker = SignTracker(dt=gen.geometry.frame_interval_s, process_noise=3.0)
        events = []
        for series in ds:
            for t in range(series.n_frames):
                events.append(tracker.update(series.positions[t]).new_series)
        onsets = [i for i, is_new in enumerate(events) if is_new]
        assert onsets[0] == 0
        assert ds[0].n_frames in onsets

    def test_bad_gate_probability_rejected(self):
        with pytest.raises(ValidationError):
            SignTracker(gate_probability=1.0)

    def test_bad_position_rejected(self):
        with pytest.raises(ValidationError):
            SignTracker().update([1.0])
