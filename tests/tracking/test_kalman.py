"""Tests for the Kalman filter."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.tracking.kalman import KalmanFilter, constant_velocity_filter


class TestConstantVelocityFilter:
    def test_tracks_linear_motion(self, rng):
        kf = constant_velocity_filter([0.0, 0.0], dt=0.1, measurement_noise=0.1)
        true_v = np.array([2.0, -1.0])
        position = np.zeros(2)
        for _ in range(60):
            position = position + true_v * 0.1
            kf.predict()
            kf.update(position + rng.normal(0, 0.1, size=2))
        assert np.allclose(kf.x[:2], position, atol=0.5)
        assert np.allclose(kf.x[2:], true_v, atol=0.6)

    def test_covariance_shrinks_with_measurements(self, rng):
        kf = constant_velocity_filter([0.0, 0.0])
        initial_trace = np.trace(kf.P)
        for _ in range(20):
            kf.predict()
            kf.update(rng.normal(0, 0.1, size=2))
        assert np.trace(kf.P) < initial_trace

    def test_mahalanobis_small_for_expected_measurement(self):
        kf = constant_velocity_filter([1.0, 1.0])
        kf.predict()
        assert kf.mahalanobis_squared([1.0, 1.0]) < 1.0

    def test_mahalanobis_large_for_jump(self):
        kf = constant_velocity_filter([0.0, 0.0], measurement_noise=0.1)
        for _ in range(10):
            kf.predict()
            kf.update([0.0, 0.0])
        kf.predict()
        assert kf.mahalanobis_squared([50.0, 50.0]) > 100.0

    def test_bad_initial_position_rejected(self):
        with pytest.raises(ValidationError):
            constant_velocity_filter([0.0, 0.0, 0.0])

    def test_bad_measurement_rejected(self):
        kf = constant_velocity_filter([0.0, 0.0])
        with pytest.raises(ValidationError):
            kf.update([1.0, 2.0, 3.0])


class TestKalmanFilterValidation:
    def test_dimension_checks(self):
        eye2 = np.eye(2)
        with pytest.raises(ValidationError):
            KalmanFilter(np.eye(3), eye2, eye2, eye2, np.zeros(2), eye2)
        with pytest.raises(ValidationError):
            KalmanFilter(eye2, np.eye(3), eye2, eye2, np.zeros(2), eye2)
        with pytest.raises(ValidationError):
            KalmanFilter(eye2, eye2, np.eye(3), eye2, np.zeros(2), eye2)
        with pytest.raises(ValidationError):
            KalmanFilter(eye2, eye2, eye2, np.eye(3), np.zeros(2), eye2)

    def test_covariance_stays_symmetric(self, rng):
        kf = constant_velocity_filter([0.0, 0.0])
        for _ in range(30):
            kf.predict()
            kf.update(rng.normal(size=2))
        assert np.allclose(kf.P, kf.P.T)
        assert np.all(np.linalg.eigvalsh(kf.P) > 0)
