"""Tests for the timeseries-aware uncertainty wrapper and the trace path."""

import numpy as np
import pytest

from repro.core.quality_factors import QualityFactorLayout, TAQF_NAMES
from repro.core.quality_impact import QualityImpactModel
from repro.core.timeseries_wrapper import (
    TimeseriesAwareUncertaintyWrapper,
    stack_traces,
    trace_series,
)
from repro.exceptions import NotCalibratedError, ValidationError
from repro.fusion.information import MajorityVote
from repro.models.ddm import SyntheticDDM, synthetic_correlated_series as make_series


def build_stack(rng, taqf_names=TAQF_NAMES, n_series=400):
    """Train and calibrate a full taUW stack on synthetic series.

    Calibration sets are sized so the Clopper-Pearson bounds stay close to
    the empirical leaf rates (tiny leaves would otherwise drown the taQIM's
    resolution advantage in bound slack).
    """
    ddm = SyntheticDDM(correlated=True)
    layout = QualityFactorLayout(["p_err"], taqf_names)
    fusion = MajorityVote()

    train = make_series(rng, n_series=n_series)
    cal = make_series(rng, n_series=n_series)

    def frames(dataset):
        X = np.vstack([s[0] for s in dataset])
        q = np.vstack([s[1] for s in dataset])
        y = np.concatenate([np.full(len(s[0]), s[2]) for s in dataset])
        return X, q, y

    X_train, q_train, y_train = frames(train)
    X_cal, q_cal, y_cal = frames(cal)

    stateless = QualityImpactModel(max_depth=3, min_calibration_samples=300)
    stateless.fit(q_train, (ddm.predict(X_train) != y_train).astype(int))
    stateless.calibrate(q_cal, (ddm.predict(X_cal) != y_cal).astype(int))

    def traces(dataset):
        out = []
        for X_model, quality, truth in dataset:
            outcomes = ddm.predict(X_model)
            u = stateless.estimate_uncertainty(quality)
            out.append(
                trace_series(outcomes, u, quality, truth, layout, fusion)
            )
        return out

    ta_qim = QualityImpactModel(max_depth=4, min_calibration_samples=300)
    ta_qim.fit(*stack_traces(traces(train)))
    ta_qim.calibrate(*stack_traces(traces(cal)))

    wrapper = TimeseriesAwareUncertaintyWrapper(
        ddm, stateless, ta_qim, layout, information_fusion=fusion
    )
    return wrapper, ddm, stateless, ta_qim, layout, fusion


class TestTraceSeries:
    def test_fused_outcomes_follow_majority(self):
        layout = QualityFactorLayout(["qf"], ())
        trace = trace_series(
            outcomes=[1, 2, 2, 3],
            uncertainties=[0.1] * 4,
            stateless_features=np.zeros((4, 1)),
            truth=2,
            layout=layout,
        )
        assert trace.fused_outcomes.tolist() == [1, 2, 2, 2]
        assert trace.fused_wrong().tolist() == [1, 0, 0, 0]
        assert trace.isolated_wrong().tolist() == [1, 0, 0, 1]

    def test_features_include_taqfs(self):
        layout = QualityFactorLayout(["qf"], TAQF_NAMES)
        trace = trace_series(
            outcomes=[1, 1, 2],
            uncertainties=[0.2, 0.1, 0.3],
            stateless_features=np.full((3, 1), 0.5),
            truth=1,
            layout=layout,
        )
        # Step 2 (0-based): fused = 1; ratio 2/3; length 3; size 2;
        # certainty (1-0.2)+(1-0.1) for the two agreeing outcomes.
        assert trace.features.shape == (3, 5)
        assert trace.features[2].tolist() == pytest.approx(
            [0.5, 2 / 3, 3.0, 2.0, 1.7]
        )

    def test_empty_series_rejected(self):
        layout = QualityFactorLayout(["qf"], ())
        with pytest.raises(ValidationError):
            trace_series([], [], np.zeros((0, 1)), 0, layout)

    def test_misaligned_inputs_rejected(self):
        layout = QualityFactorLayout(["qf"], ())
        with pytest.raises(ValidationError):
            trace_series([1, 2], [0.1], np.zeros((2, 1)), 0, layout)
        with pytest.raises(ValidationError):
            trace_series([1, 2], [0.1, 0.1], np.zeros((3, 1)), 0, layout)

    def test_out_of_range_and_nan_uncertainties_rejected(self):
        layout = QualityFactorLayout(["qf"], ())
        with pytest.raises(ValidationError):
            trace_series([1, 2], [0.1, 1.5], np.zeros((2, 1)), 0, layout)
        with pytest.raises(ValidationError):
            trace_series([1, 2], [0.1, np.nan], np.zeros((2, 1)), 0, layout)

    def test_stack_traces_alignment(self):
        layout = QualityFactorLayout(["qf"], ("ratio",))
        t1 = trace_series([1, 1], [0.1, 0.1], np.zeros((2, 1)), 1, layout)
        t2 = trace_series([2], [0.1], np.zeros((1, 1)), 3, layout)
        X, y = stack_traces([t1, t2])
        assert X.shape == (3, 2)
        assert y.tolist() == [0, 0, 1]

    def test_stack_empty_rejected(self):
        with pytest.raises(ValidationError):
            stack_traces([])

    def test_long_series_chunked_tracing_matches_single_batch(self, rng):
        # Series longer than one prefix chunk must produce the same trace
        # as the unchunked path (kernels are segment-independent).
        import repro.core.timeseries_wrapper as tw

        layout = QualityFactorLayout(["qf"], TAQF_NAMES)
        n = 64
        outcomes = rng.integers(0, 4, size=n)
        uncertainties = rng.uniform(0.0, 1.0, size=n)
        stateless = rng.uniform(size=(n, 1))
        whole = trace_series(outcomes, uncertainties, stateless, 1, layout)

        original = tw._PREFIX_CHUNK_ELEMENTS
        tw._PREFIX_CHUNK_ELEMENTS = 100  # forces ~1-2 rows per chunk
        try:
            chunked = trace_series(outcomes, uncertainties, stateless, 1, layout)
        finally:
            tw._PREFIX_CHUNK_ELEMENTS = original

        assert np.array_equal(whole.fused_outcomes, chunked.fused_outcomes)
        assert np.array_equal(whole.features, chunked.features)


class TestOnlineWrapper:
    def test_requires_calibrated_models(self, rng):
        ddm = SyntheticDDM()
        layout = QualityFactorLayout(["p_err"], TAQF_NAMES)
        raw = QualityImpactModel()
        with pytest.raises(NotCalibratedError):
            TimeseriesAwareUncertaintyWrapper(ddm, raw, raw, layout)

    def test_step_matches_offline_trace(self, rng):
        # The online step() path and the offline trace path must agree
        # exactly: same fused outcomes, same features, same uncertainties.
        wrapper, ddm, stateless, ta_qim, layout, fusion = build_stack(rng)
        X_model, quality, truth = make_series(rng, n_series=1)[0]
        outcomes = ddm.predict(X_model)
        u = stateless.estimate_uncertainty(quality)
        trace = trace_series(outcomes, u, quality, truth, layout, fusion)
        expected_u = ta_qim.estimate_uncertainty(trace.features)

        wrapper.reset()
        for t in range(len(X_model)):
            result = wrapper.step(X_model[t], quality[t])
            assert result.timestep == t
            assert result.isolated_outcome == outcomes[t]
            assert result.isolated_uncertainty == pytest.approx(u[t])
            assert result.fused_outcome == trace.fused_outcomes[t]
            assert result.fused_uncertainty == pytest.approx(expected_u[t])

    def test_new_series_resets_buffer(self, rng):
        wrapper, *_ = build_stack(rng)
        X_model, quality, _ = make_series(rng, n_series=1)[0]
        for t in range(3):
            wrapper.step(X_model[t], quality[t])
        assert wrapper.timestep == 3
        result = wrapper.step(X_model[0], quality[0], new_series=True)
        assert result.timestep == 0
        assert wrapper.timestep == 1

    def test_fused_certainty_property(self, rng):
        wrapper, *_ = build_stack(rng)
        X_model, quality, _ = make_series(rng, n_series=1)[0]
        result = wrapper.step(X_model[0], quality[0])
        assert result.fused_certainty == pytest.approx(1.0 - result.fused_uncertainty)

    def test_wrong_quality_width_rejected(self, rng):
        wrapper, *_ = build_stack(rng)
        X_model, quality, _ = make_series(rng, n_series=1)[0]
        with pytest.raises(ValidationError):
            wrapper.step(X_model[0], np.zeros(3))

    def test_missing_scope_factors_rejected_before_state_changes(self, rng):
        # The scope check is part of input validation: failing it must not
        # commit the frame (or wipe the series via new_series).
        class HalfScope:
            def incompliance_probability(self, factors):
                return 0.5

        wrapper, ddm, stateless, ta_qim, layout, fusion = build_stack(rng)
        scoped = TimeseriesAwareUncertaintyWrapper(
            ddm, stateless, ta_qim, layout,
            information_fusion=fusion, scope_model=HalfScope(),
        )
        X_model, quality, _ = make_series(rng, n_series=1)[0]
        result = scoped.step(X_model[0], quality[0], scope_factors={})
        assert result.scope_incompliance == 0.5
        with pytest.raises(ValidationError):
            scoped.step(X_model[1], quality[1], new_series=True)
        assert scoped.timestep == 1  # frame not committed, series kept
        assert len(scoped.buffer) == 1

    def test_rejected_new_series_frame_keeps_current_series(self, rng):
        # A malformed frame must not wipe the running series even when it
        # carries new_series=True (parity with the engine's atomic ticks).
        wrapper, *_ = build_stack(rng)
        X_model, quality, _ = make_series(rng, n_series=1)[0]
        for t in range(3):
            wrapper.step(X_model[t], quality[t])
        with pytest.raises(ValidationError):
            wrapper.step(X_model[3], np.zeros(3), new_series=True)
        assert wrapper.timestep == 3
        assert len(wrapper.buffer) == 3

    def test_max_buffer_length_slides(self, rng):
        wrapper, ddm, stateless, ta_qim, layout, fusion = build_stack(rng)
        bounded = TimeseriesAwareUncertaintyWrapper(
            ddm, stateless, ta_qim, layout,
            information_fusion=fusion, max_buffer_length=4,
        )
        X_model, quality, _ = make_series(rng, n_series=1, length=10)[0]
        for t in range(10):
            bounded.step(X_model[t], quality[t])
        assert len(bounded.buffer) == 4

    def test_timestep_keeps_counting_under_sliding_window(self, rng):
        # The reported timestep is the absolute series position, not the
        # buffer fill level: it must not freeze at max_buffer_length - 1.
        wrapper, ddm, stateless, ta_qim, layout, fusion = build_stack(rng)
        bounded = TimeseriesAwareUncertaintyWrapper(
            ddm, stateless, ta_qim, layout,
            information_fusion=fusion, max_buffer_length=4,
        )
        X_model, quality, _ = make_series(rng, n_series=1, length=10)[0]
        timesteps = [
            bounded.step(X_model[t], quality[t]).timestep for t in range(10)
        ]
        assert timesteps == list(range(10))
        assert bounded.timestep == 10
        # A new series restarts the absolute counter.
        result = bounded.step(X_model[0], quality[0], new_series=True)
        assert result.timestep == 0

    def test_taUW_improves_on_stateless_for_fused_outcomes(self, rng):
        # On the synthetic process the taUW's Brier on fused outcomes
        # should beat using the momentaneous stateless estimate.
        from repro.stats.brier import brier_score

        wrapper, ddm, stateless, ta_qim, layout, fusion = build_stack(rng)
        test = make_series(rng, n_series=150)
        u_ta, u_iso, wrong = [], [], []
        for X_model, quality, truth in test:
            outcomes = ddm.predict(X_model)
            u = stateless.estimate_uncertainty(quality)
            trace = trace_series(outcomes, u, quality, truth, layout, fusion)
            u_ta.extend(ta_qim.estimate_uncertainty(trace.features))
            u_iso.extend(u)
            wrong.extend(trace.fused_wrong())
        assert brier_score(u_ta, wrong) < brier_score(u_iso, wrong)
