"""Tests for the scope compliance model."""

import numpy as np
import pytest

from repro.core.scope import BoundaryCheck, ScopeComplianceModel, SimilarityScope
from repro.exceptions import NotFittedError, ScopeError, ValidationError


class TestBoundaryCheck:
    def test_passes_inside(self):
        check = BoundaryCheck("latitude", 47.3, 55.0)
        assert check.passes(50.0)
        assert check.passes(47.3)
        assert check.passes(55.0)

    def test_fails_outside(self):
        check = BoundaryCheck("latitude", 47.3, 55.0)
        assert not check.passes(40.0)
        assert not check.passes(56.0)

    def test_open_sides(self):
        assert BoundaryCheck("x", low=0.0).passes(1e9)
        assert BoundaryCheck("x", high=0.0).passes(-1e9)

    def test_inverted_interval_rejected(self):
        with pytest.raises(ValidationError):
            BoundaryCheck("x", low=1.0, high=0.0)


class TestSimilarityScope:
    def test_in_distribution_scores_zero(self, rng):
        X = rng.normal(size=(500, 3))
        scope = SimilarityScope(k=5, quantile=0.95).fit(X, rng)
        scores = scope.incompliance(rng.normal(size=(200, 3)))
        assert np.mean(scores == 0.0) > 0.8

    def test_far_outlier_scores_one(self, rng):
        X = rng.normal(size=(500, 3))
        scope = SimilarityScope(k=5).fit(X, rng)
        assert scope.incompliance(np.full((1, 3), 100.0))[0] == 1.0

    def test_scores_monotone_in_distance(self, rng):
        X = rng.normal(size=(500, 2))
        scope = SimilarityScope(k=5, quantile=0.9).fit(X, rng)
        offsets = np.array([[0.0, 0.0], [5.0, 0.0], [15.0, 0.0], [50.0, 0.0]])
        scores = scope.incompliance(offsets)
        assert all(a <= b + 1e-12 for a, b in zip(scores, scores[1:]))

    def test_unfitted_raises(self, rng):
        with pytest.raises(NotFittedError):
            SimilarityScope().incompliance(rng.normal(size=(2, 3)))

    def test_wrong_width_rejected(self, rng):
        scope = SimilarityScope(k=3).fit(rng.normal(size=(100, 3)), rng)
        with pytest.raises(ValidationError):
            scope.incompliance(rng.normal(size=(2, 4)))

    def test_reference_subsampling(self, rng):
        scope = SimilarityScope(k=3, max_reference=50).fit(
            rng.normal(size=(500, 2)), rng
        )
        assert scope._reference.shape[0] == 50

    def test_too_few_rows_rejected(self, rng):
        with pytest.raises(ValidationError):
            SimilarityScope(k=10).fit(rng.normal(size=(5, 2)), rng)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValidationError):
            SimilarityScope(k=0)
        with pytest.raises(ValidationError):
            SimilarityScope(quantile=1.0)
        with pytest.raises(ValidationError):
            SimilarityScope(ramp_factor=1.0)
        with pytest.raises(ValidationError):
            SimilarityScope(max_reference=1)


class TestScopeComplianceModel:
    def test_boundary_violation_is_certain_incompliance(self):
        model = ScopeComplianceModel(checks=[BoundaryCheck("latitude", 47.3, 55.0)])
        assert model.incompliance_probability({"latitude": 40.0}) == 1.0

    def test_inside_boundaries_without_similarity_is_zero(self):
        model = ScopeComplianceModel(checks=[BoundaryCheck("latitude", 47.3, 55.0)])
        assert model.incompliance_probability({"latitude": 50.0}) == 0.0

    def test_similarity_consulted_inside_boundaries(self, rng):
        similarity = SimilarityScope(k=5).fit(rng.normal(size=(300, 2)), rng)
        model = ScopeComplianceModel(
            checks=[BoundaryCheck("a", -10.0, 10.0)],
            similarity=similarity,
            similarity_factors=("a", "b"),
        )
        assert model.incompliance_probability({"a": 9.9, "b": 100.0}) == 1.0
        assert model.incompliance_probability({"a": 0.0, "b": 0.0}) < 0.5

    def test_missing_boundary_factor_raises(self):
        model = ScopeComplianceModel(checks=[BoundaryCheck("latitude")])
        with pytest.raises(ScopeError):
            model.incompliance_probability({"longitude": 9.0})

    def test_missing_similarity_factor_raises(self, rng):
        similarity = SimilarityScope(k=5).fit(rng.normal(size=(300, 2)), rng)
        model = ScopeComplianceModel(
            similarity=similarity, similarity_factors=("a", "b")
        )
        with pytest.raises(ScopeError):
            model.incompliance_probability({"a": 0.0})

    def test_similarity_without_factor_names_rejected(self, rng):
        similarity = SimilarityScope(k=5).fit(rng.normal(size=(300, 2)), rng)
        with pytest.raises(ValidationError):
            ScopeComplianceModel(similarity=similarity)

    def test_no_checks_no_similarity_always_compliant(self):
        assert ScopeComplianceModel().incompliance_probability({}) == 0.0
