"""Tests for the stateless/timeseries-aware quality-factor machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buffer import TimeseriesBuffer
from repro.core.quality_factors import (
    QualityFactorLayout,
    TAQF_NAMES,
    compute_taqf_vector,
    taqf_cumulative_certainty,
    taqf_length,
    taqf_ratio,
    taqf_unique_count,
)
from repro.exceptions import ValidationError


class TestTaqfRatio:
    def test_all_agree(self):
        assert taqf_ratio([4, 4, 4], 4) == 1.0

    def test_none_agree(self):
        assert taqf_ratio([1, 2, 3], 4) == 0.0

    def test_partial(self):
        assert taqf_ratio([1, 2, 1, 1], 1) == pytest.approx(0.75)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            taqf_ratio([], 1)

    @given(
        outcomes=st.lists(st.integers(0, 5), min_size=1, max_size=20),
        fused=st.integers(0, 5),
    )
    @settings(max_examples=80, deadline=None)
    def test_bounded(self, outcomes, fused):
        assert 0.0 <= taqf_ratio(outcomes, fused) <= 1.0


class TestTaqfLength:
    def test_counts_steps(self):
        assert taqf_length([1]) == 1.0
        assert taqf_length([1, 2, 3]) == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            taqf_length([])


class TestTaqfUniqueCount:
    def test_counts_distinct(self):
        assert taqf_unique_count([1, 1, 1]) == 1.0
        assert taqf_unique_count([1, 2, 1, 3]) == 3.0

    @given(outcomes=st.lists(st.integers(0, 5), min_size=1, max_size=20))
    @settings(max_examples=80, deadline=None)
    def test_bounded_by_length(self, outcomes):
        assert 1.0 <= taqf_unique_count(outcomes) <= len(outcomes)


class TestTaqfCumulativeCertainty:
    def test_agreeing_outcomes_contribute_certainty(self):
        # c_j = 1 - u_j for agreeing outcomes: 0.9 + 0.8 = 1.7.
        value = taqf_cumulative_certainty([1, 1], [0.1, 0.2], 1)
        assert value == pytest.approx(1.7)

    def test_disagreeing_outcomes_contribute_zero(self):
        value = taqf_cumulative_certainty([1, 2, 1], [0.1, 0.0, 0.2], 1)
        assert value == pytest.approx(0.9 + 0.8)

    def test_no_agreement_is_zero(self):
        assert taqf_cumulative_certainty([2, 3], [0.1, 0.1], 1) == 0.0

    def test_misaligned_rejected(self):
        with pytest.raises(ValidationError):
            taqf_cumulative_certainty([1, 2], [0.1], 1)

    def test_invalid_uncertainty_rejected(self):
        with pytest.raises(ValidationError):
            taqf_cumulative_certainty([1], [1.5], 1)

    @given(
        n=st.integers(1, 15),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounded_by_agreement_count(self, n, seed):
        rng = np.random.default_rng(seed)
        outcomes = rng.integers(0, 3, size=n).tolist()
        uncertainties = rng.uniform(size=n).tolist()
        fused = int(outcomes[-1])
        value = taqf_cumulative_certainty(outcomes, uncertainties, fused)
        agreeing = sum(1 for o in outcomes if o == fused)
        assert 0.0 <= value <= agreeing


class TestComputeVector:
    def test_default_order(self):
        buffer = TimeseriesBuffer()
        buffer.append(1, 0.1)
        buffer.append(2, 0.2)
        buffer.append(1, 0.3)
        vec = compute_taqf_vector(buffer, 1)
        assert vec.shape == (4,)
        assert vec[0] == pytest.approx(2 / 3)  # ratio
        assert vec[1] == 3.0  # length
        assert vec[2] == 2.0  # size
        assert vec[3] == pytest.approx(0.9 + 0.7)  # certainty

    def test_subset_and_order_respected(self):
        buffer = TimeseriesBuffer()
        buffer.append(1, 0.5)
        vec = compute_taqf_vector(buffer, 1, names=("length", "ratio"))
        assert vec[0] == 1.0
        assert vec[1] == 1.0

    def test_unknown_name_rejected(self):
        buffer = TimeseriesBuffer()
        buffer.append(1, 0.5)
        with pytest.raises(ValidationError):
            compute_taqf_vector(buffer, 1, names=("bogus",))


class TestLayout:
    def test_feature_names_concatenated(self):
        layout = QualityFactorLayout(["rain", "size"], ("ratio", "certainty"))
        assert layout.feature_names == ("rain", "size", "ratio", "certainty")
        assert layout.n_features == 4

    def test_stateless_only_layout(self):
        layout = QualityFactorLayout(["rain"])
        assert layout.taqf_names == ()
        row = layout.assemble(np.array([0.3]))
        assert np.array_equal(row, [0.3])

    def test_assemble_appends_taqfs(self):
        layout = QualityFactorLayout(["rain"], ("ratio", "length"))
        buffer = TimeseriesBuffer()
        buffer.append(1, 0.1)
        buffer.append(1, 0.1)
        row = layout.assemble(np.array([0.5]), buffer, 1)
        assert np.allclose(row, [0.5, 1.0, 2.0])

    def test_assemble_without_buffer_rejected(self):
        layout = QualityFactorLayout(["rain"], ("ratio",))
        with pytest.raises(ValidationError):
            layout.assemble(np.array([0.5]))

    def test_wrong_stateless_width_rejected(self):
        layout = QualityFactorLayout(["rain", "size"])
        with pytest.raises(ValidationError):
            layout.assemble(np.array([0.5]))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError):
            QualityFactorLayout(["rain", "rain"])
        with pytest.raises(ValidationError):
            QualityFactorLayout(["rain"], ("ratio", "ratio"))

    def test_unknown_taqf_rejected(self):
        with pytest.raises(ValidationError):
            QualityFactorLayout(["rain"], ("bogus",))

    def test_overlap_rejected(self):
        with pytest.raises(ValidationError):
            QualityFactorLayout(["ratio"], ("ratio",))

    def test_canonical_names(self):
        assert TAQF_NAMES == ("ratio", "length", "size", "certainty")
