"""Tests for the ragged segment batch container and its kernels."""

import numpy as np
import pytest

from repro.core.quality_factors import TAQF_NAMES, compute_taqf_matrix
from repro.core.buffer import TimeseriesBuffer
from repro.core.ragged import RaggedBatch, segment_class_counts
from repro.exceptions import ValidationError


class TestConstruction:
    def test_from_segments_layout(self):
        batch = RaggedBatch.from_segments(
            [([1, 2], [0.1, 0.2]), ([3], [0.3]), ([4, 4, 4], [0.4] * 3)]
        )
        assert batch.n_segments == 3
        assert batch.total == 6
        assert batch.outcomes.tolist() == [1, 2, 3, 4, 4, 4]
        assert batch.offsets.tolist() == [0, 2, 3]
        assert batch.lengths.tolist() == [2, 1, 3]
        assert batch.segment_ids().tolist() == [0, 0, 1, 2, 2, 2]

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValidationError):
            RaggedBatch.from_segments([])
        with pytest.raises(ValidationError):
            RaggedBatch.from_segments([([], [])])
        with pytest.raises(ValidationError):
            RaggedBatch.from_segments([([1], [0.1, 0.2])])

    def test_from_buffers(self):
        a, b = TimeseriesBuffer(), TimeseriesBuffer()
        a.append(1, 0.1)
        a.append(2, 0.2)
        b.append(9, 0.9)
        batch = RaggedBatch.from_buffers([a, b])
        assert batch.outcomes.tolist() == [1, 2, 9]
        assert batch.lengths.tolist() == [2, 1]

    def test_prefixes(self):
        batch = RaggedBatch.prefixes([1, 2, 3], [0.1, 0.2, 0.3])
        assert batch.n_segments == 3
        assert batch.outcomes.tolist() == [1, 1, 2, 1, 2, 3]
        assert np.allclose(batch.uncertainties, [0.1, 0.1, 0.2, 0.1, 0.2, 0.3])
        assert batch.lengths.tolist() == [1, 2, 3]

    def test_prefixes_empty_rejected(self):
        with pytest.raises(ValidationError):
            RaggedBatch.prefixes([], [])

    def test_prefixes_row_range(self):
        batch = RaggedBatch.prefixes([1, 2, 3, 4], [0.1] * 4, start=1, stop=3)
        assert batch.n_segments == 2
        assert batch.outcomes.tolist() == [1, 2, 1, 2, 3]
        assert batch.lengths.tolist() == [2, 3]

    def test_prefixes_invalid_range_rejected(self):
        with pytest.raises(ValidationError):
            RaggedBatch.prefixes([1, 2], [0.1, 0.1], start=1, stop=1)
        with pytest.raises(ValidationError):
            RaggedBatch.prefixes([1, 2], [0.1, 0.1], start=0, stop=3)

    def test_expand_and_certainties(self):
        batch = RaggedBatch.from_segments([([1, 1], [0.25, 0.5]), ([2], [0.0])])
        assert batch.expand(np.array([7, 8])).tolist() == [7, 7, 8]
        assert batch.certainties().tolist() == [0.75, 0.5, 1.0]


class TestSegmentClassCounts:
    def test_counts(self):
        batch = RaggedBatch.from_segments(
            [([3, 1, 3], [0.1] * 3), ([1], [0.1])]
        )
        codes, counts = segment_class_counts(batch)
        assert codes.tolist() == [1, 3]
        assert counts.tolist() == [[1, 2], [1, 0]]


class TestTaqfMatrix:
    def test_matches_worked_example(self):
        # Mirror of the scalar taQF example in test_timeseries_wrapper:
        # series [1, 1, 2] with u = [0.2, 0.1, 0.3], fused prefix-wise
        # [1, 1, 1].
        batch = RaggedBatch.prefixes([1, 1, 2], [0.2, 0.1, 0.3])
        values = compute_taqf_matrix(batch, np.array([1, 1, 1]), TAQF_NAMES)
        assert values[2].tolist() == pytest.approx([2 / 3, 3.0, 2.0, 1.7])

    def test_fused_not_in_segment_gets_zero_ratio(self):
        batch = RaggedBatch.from_segments([([1, 2], [0.1, 0.1])])
        values = compute_taqf_matrix(batch, np.array([99]), ("ratio",))
        assert values[0, 0] == 0.0

    def test_misaligned_fused_rejected(self):
        batch = RaggedBatch.from_segments([([1], [0.1])])
        with pytest.raises(ValidationError):
            compute_taqf_matrix(batch, np.array([1, 2]))

    def test_unknown_name_rejected(self):
        batch = RaggedBatch.from_segments([([1], [0.1])])
        with pytest.raises(ValidationError):
            compute_taqf_matrix(batch, np.array([1]), ("bogus",))

    def test_custom_registry_factor_rejected_by_kernel_served_by_scalar(self):
        # Factors registered beyond the built-ins dispatch through the
        # scalar registry path; the batched kernel refuses them loudly
        # instead of silently computing the wrong column.
        from repro.core.quality_factors import TAQF_REGISTRY, compute_taqf_vector

        TAQF_REGISTRY["last_outcome"] = lambda buffer, fused: float(
            buffer.last_outcome()
        )
        try:
            buffer = TimeseriesBuffer()
            buffer.append(7, 0.25)
            values = compute_taqf_vector(buffer, 7, ("ratio", "last_outcome"))
            assert values.tolist() == [1.0, 7.0]
            batch = RaggedBatch.from_buffers([buffer])
            with pytest.raises(ValidationError):
                compute_taqf_matrix(batch, np.array([7]), ("last_outcome",))
        finally:
            del TAQF_REGISTRY["last_outcome"]

    def test_overridden_builtin_factor_dispatches_through_registry(self):
        # Replacing a built-in registry entry must take effect everywhere,
        # not be silently shadowed by the batched kernel fast path.
        from repro.core.quality_factors import (
            QualityFactorLayout,
            TAQF_REGISTRY,
            compute_taqf_vector,
        )
        from repro.core.timeseries_wrapper import trace_series

        original = TAQF_REGISTRY["certainty"]
        TAQF_REGISTRY["certainty"] = lambda buffer, fused: 42.0
        try:
            buffer = TimeseriesBuffer()
            buffer.append(1, 0.25)
            assert compute_taqf_vector(buffer, 1, ("certainty",)).tolist() == [42.0]
            layout = QualityFactorLayout(["qf"], ("certainty",))
            trace = trace_series([1, 2], [0.1, 0.2], np.zeros((2, 1)), 1, layout)
            assert trace.features[:, 1].tolist() == [42.0, 42.0]
        finally:
            TAQF_REGISTRY["certainty"] = original
        # Restored: the kernel fast path applies again.
        assert compute_taqf_vector(buffer, 1, ("certainty",)).tolist() == [0.75]

    def test_custom_factor_layout_assembles_via_registry_fallback(self):
        # Layouts carrying custom-registered factors stay fully usable:
        # assemble_batch (and through it trace_series / the wrapper / the
        # engine) falls back to per-segment scalar assembly.
        from repro.core.quality_factors import QualityFactorLayout, TAQF_REGISTRY
        from repro.core.timeseries_wrapper import trace_series

        TAQF_REGISTRY["last_outcome"] = lambda buffer, fused: float(
            buffer.last_outcome()
        )
        try:
            layout = QualityFactorLayout(["qf"], ("ratio", "last_outcome"))
            trace = trace_series(
                [1, 1, 2], [0.1, 0.2, 0.3], np.full((3, 1), 0.5), 1, layout
            )
            assert trace.features.shape == (3, 3)
            assert trace.features[:, 2].tolist() == [1.0, 1.0, 2.0]
            assert trace.features[2, 1] == pytest.approx(2 / 3)  # ratio
        finally:
            del TAQF_REGISTRY["last_outcome"]

    def test_matches_scalar_path_per_buffer(self, rng):
        from repro.core.quality_factors import compute_taqf_vector

        buffers = []
        for _ in range(20):
            buffer = TimeseriesBuffer()
            for _ in range(int(rng.integers(1, 15))):
                buffer.append(int(rng.integers(0, 4)), float(rng.uniform()))
            buffers.append(buffer)
        batch = RaggedBatch.from_buffers(buffers)
        fused = np.array([b.last_outcome() for b in buffers])
        matrix = compute_taqf_matrix(batch, fused, TAQF_NAMES)
        for i, buffer in enumerate(buffers):
            scalar = compute_taqf_vector(buffer, int(fused[i]), TAQF_NAMES)
            assert matrix[i] == pytest.approx(scalar)
