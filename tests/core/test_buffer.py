"""Tests for the timeseries buffer."""

import numpy as np
import pytest

from repro.core.buffer import TimeseriesBuffer
from repro.exceptions import EmptyBufferError, ValidationError


class TestBuffer:
    def test_starts_empty(self):
        buffer = TimeseriesBuffer()
        assert len(buffer) == 0
        assert buffer.is_empty

    def test_append_records_in_order(self):
        buffer = TimeseriesBuffer()
        buffer.append(3, 0.1)
        buffer.append(5, 0.2)
        assert buffer.outcomes == [3, 5]
        assert buffer.uncertainties == [0.1, 0.2]
        assert len(buffer) == 2

    def test_certainties_are_complements(self):
        buffer = TimeseriesBuffer()
        buffer.append(1, 0.25)
        assert buffer.certainties == [0.75]

    def test_reset_clears(self):
        buffer = TimeseriesBuffer()
        buffer.append(1, 0.5)
        buffer.reset()
        assert buffer.is_empty

    def test_properties_return_copies(self):
        buffer = TimeseriesBuffer()
        buffer.append(1, 0.5)
        outcomes = buffer.outcomes
        outcomes.append(99)
        assert buffer.outcomes == [1]

    def test_arrays(self):
        buffer = TimeseriesBuffer()
        buffer.append(1, 0.5)
        buffer.append(2, 0.7)
        assert np.array_equal(buffer.outcomes_array(), [1, 2])
        assert np.allclose(buffer.uncertainties_array(), [0.5, 0.7])
        assert buffer.outcomes_array().dtype == np.int64

    def test_last_outcome(self):
        buffer = TimeseriesBuffer()
        buffer.append(1, 0.5)
        buffer.append(9, 0.5)
        assert buffer.last_outcome() == 9

    def test_empty_queries_raise(self):
        buffer = TimeseriesBuffer()
        with pytest.raises(EmptyBufferError):
            buffer.outcomes_array()
        with pytest.raises(EmptyBufferError):
            buffer.uncertainties_array()
        with pytest.raises(EmptyBufferError):
            buffer.last_outcome()

    def test_invalid_uncertainty_rejected(self):
        buffer = TimeseriesBuffer()
        with pytest.raises(ValidationError):
            buffer.append(1, 1.5)
        with pytest.raises(ValidationError):
            buffer.append(1, -0.1)

    def test_sliding_window(self):
        buffer = TimeseriesBuffer(max_length=3)
        for i in range(5):
            buffer.append(i, 0.1 * i)
        assert buffer.outcomes == [2, 3, 4]
        assert len(buffer) == 3

    def test_invalid_max_length_rejected(self):
        with pytest.raises(ValidationError):
            TimeseriesBuffer(max_length=0)


class TestArrayViews:
    def test_views_are_zero_copy_slices(self):
        buffer = TimeseriesBuffer()
        buffer.append(1, 0.25)
        buffer.append(2, 0.75)
        out = buffer.outcomes_view()
        unc = buffer.uncertainties_view()
        assert out.tolist() == [1, 2]
        assert unc.tolist() == [0.25, 0.75]
        assert out.base is not None  # slice of the backing storage, no copy
        assert out.dtype == np.int64

    def test_views_track_sliding_window(self):
        buffer = TimeseriesBuffer(max_length=3)
        for i in range(7):
            buffer.append(i, 0.1)
        assert buffer.outcomes_view().tolist() == [4, 5, 6]
        assert len(buffer) == 3

    def test_unbounded_growth_beyond_initial_capacity(self):
        buffer = TimeseriesBuffer()
        for i in range(1000):
            buffer.append(i, 0.5)
        assert len(buffer) == 1000
        assert buffer.outcomes_view().tolist() == list(range(1000))
        assert buffer.last_outcome() == 999

    def test_long_sliding_window_stays_correct(self):
        buffer = TimeseriesBuffer(max_length=5)
        for i in range(503):
            buffer.append(i, 0.5)
        assert buffer.outcomes_view().tolist() == list(range(498, 503))

    def test_large_window_cap_does_not_preallocate(self):
        # Registries hold thousands of mostly-short buffers: storage must
        # track the actual fill, not the window cap.
        buffer = TimeseriesBuffer(max_length=100_000)
        assert buffer._out.size <= 32
        for i in range(100):
            buffer.append(i, 0.5)
        assert len(buffer) == 100
        assert buffer._out.size < 1000
        assert buffer.outcomes_view().tolist() == list(range(100))

    def test_list_properties_cached_between_appends(self):
        buffer = TimeseriesBuffer()
        buffer.append(1, 0.5)
        assert buffer._lists() is buffer._lists()  # same cache object
        first = buffer.outcomes
        second = buffer.outcomes
        assert first == second and first is not second  # independent copies
        buffer.append(2, 0.5)
        assert buffer.outcomes == [1, 2]  # cache invalidated by append
