"""Tests for the stateless uncertainty wrapper."""

import numpy as np
import pytest

from repro.core.quality_impact import QualityImpactModel
from repro.core.scope import BoundaryCheck, ScopeComplianceModel
from repro.core.wrapper import UncertaintyWrapper, WrappedOutcome
from repro.exceptions import ValidationError
from repro.models.ddm import SyntheticDDM


def make_cases(rng, n=3000):
    """Synthetic wrapper cases with exactly known error behaviour.

    Each case is (true_class, error_probability, noise); the correlated
    SyntheticDDM errs exactly when noise < error_probability, so outcomes
    are deterministic given the rows.  The error probability doubles as the
    (perfectly informative) quality factor.
    """
    truth = rng.integers(0, 10, size=n)
    p_err = np.where(rng.uniform(size=n) < 0.5, 0.05, 0.5)
    noise = rng.uniform(size=n)
    X_model = np.column_stack([truth, p_err, noise]).astype(float)
    quality = p_err[:, None]
    return X_model, quality, truth


@pytest.fixture
def wrapper(rng):
    ddm = SyntheticDDM(correlated=True)
    qim = QualityImpactModel(max_depth=3, min_calibration_samples=100)
    wrapper = UncertaintyWrapper(ddm, qim)
    X_train, q_train, y_train = make_cases(rng)
    X_cal, q_cal, y_cal = make_cases(rng)
    wrapper.fit(X_train, q_train, y_train)
    wrapper.calibrate(X_cal, q_cal, y_cal)
    return wrapper


class TestLifecycle:
    def test_requires_predict_method(self):
        with pytest.raises(ValidationError):
            UncertaintyWrapper(object())

    def test_default_qim_constructed(self):
        wrapper = UncertaintyWrapper(SyntheticDDM())
        assert isinstance(wrapper.quality_impact_model, QualityImpactModel)


class TestApplyBatch:
    def test_outcomes_match_ddm(self, wrapper, rng):
        X, quality, _ = make_cases(rng, 500)
        outcomes, _ = wrapper.apply_batch(X, quality)
        assert np.array_equal(outcomes, wrapper.ddm.predict(X))

    def test_uncertainty_tracks_risk(self, wrapper, rng):
        X, quality, _ = make_cases(rng, 2000)
        _, u = wrapper.apply_batch(X, quality)
        risky = quality[:, 0] > 0.25
        assert u[risky].mean() > u[~risky].mean() + 0.2

    def test_uncertainty_conservative(self, wrapper, rng):
        # Dependable estimates must upper-bound the true error rates
        # (0.05 and 0.5 by construction).
        X, quality, y = make_cases(rng, 4000)
        _, u = wrapper.apply_batch(X, quality)
        risky = quality[:, 0] > 0.25
        assert u[risky].min() >= 0.45
        assert u[~risky].min() >= 0.04

    def test_misaligned_inputs_rejected(self, wrapper, rng):
        X, quality, _ = make_cases(rng, 100)
        with pytest.raises(ValidationError):
            wrapper.apply_batch(X, quality[:-1])


class TestApplySingle:
    def test_returns_wrapped_outcome(self, wrapper):
        result = wrapper.apply([3.0, 0.05, 0.9], [0.05])
        assert isinstance(result, WrappedOutcome)
        assert result.outcome == 3
        assert 0.0 < result.uncertainty < 1.0
        assert result.certainty == pytest.approx(1.0 - result.uncertainty)
        assert result.scope_incompliance == 0.0

    def test_single_matches_batch(self, wrapper, rng):
        X, quality, _ = make_cases(rng, 20)
        outcomes, uncertainties = wrapper.apply_batch(X, quality)
        for i in range(5):
            single = wrapper.apply(X[i], quality[i])
            assert single.outcome == outcomes[i]
            assert single.uncertainty == pytest.approx(uncertainties[i])

    def test_batch_input_rejected(self, wrapper, rng):
        X, quality, _ = make_cases(rng, 10)
        with pytest.raises(ValidationError):
            wrapper.apply(X, quality)


class TestScopeIntegration:
    def test_out_of_scope_forces_full_uncertainty(self, rng):
        ddm = SyntheticDDM(correlated=True)
        qim = QualityImpactModel(max_depth=2, min_calibration_samples=100)
        scope = ScopeComplianceModel(checks=[BoundaryCheck("latitude", 47.3, 55.0)])
        wrapper = UncertaintyWrapper(ddm, qim, scope_model=scope)
        X_train, q_train, y_train = make_cases(rng)
        wrapper.fit(X_train, q_train, y_train)
        wrapper.calibrate(*make_cases(rng))
        inside = wrapper.apply([1.0, 0.05, 0.9], [0.05], {"latitude": 50.0})
        outside = wrapper.apply([1.0, 0.05, 0.9], [0.05], {"latitude": 40.0})
        assert inside.scope_incompliance == 0.0
        assert outside.scope_incompliance == 1.0
        assert outside.uncertainty == 1.0
        assert outside.outcome == inside.outcome

    def test_scope_factors_required_when_model_present(self, rng):
        ddm = SyntheticDDM(correlated=True)
        scope = ScopeComplianceModel(checks=[BoundaryCheck("latitude")])
        wrapper = UncertaintyWrapper(ddm, scope_model=scope)
        X_train, q_train, y_train = make_cases(rng)
        wrapper.fit(X_train, q_train, y_train)
        wrapper.calibrate(*make_cases(rng))
        with pytest.raises(ValidationError):
            wrapper.apply([1.0, 0.05, 0.9], [0.05])
