"""Tests for combining quality- and scope-related uncertainties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.combination import combine_uncertainties
from repro.exceptions import ValidationError

unit = st.floats(min_value=0.0, max_value=1.0)


class TestCombine:
    def test_formula(self):
        assert combine_uncertainties(0.1, 0.2) == pytest.approx(1 - 0.9 * 0.8)

    def test_zero_scope_is_identity(self):
        assert combine_uncertainties(0.37, 0.0) == pytest.approx(0.37)

    def test_certain_incompliance_dominates(self):
        assert combine_uncertainties(0.01, 1.0) == 1.0

    def test_scalar_output_type(self):
        assert isinstance(combine_uncertainties(0.1, 0.1), float)

    def test_array_broadcast(self):
        result = combine_uncertainties(np.array([0.1, 0.2]), 0.5)
        assert result.shape == (2,)
        assert result[0] == pytest.approx(1 - 0.9 * 0.5)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            combine_uncertainties(1.2, 0.0)
        with pytest.raises(ValidationError):
            combine_uncertainties(0.0, -0.1)

    @given(uq=unit, us=unit)
    @settings(max_examples=100, deadline=None)
    def test_bounds_and_monotonicity(self, uq, us):
        combined = combine_uncertainties(uq, us)
        assert 0.0 <= combined <= 1.0
        assert combined >= max(uq, us) - 1e-12  # never below either component

    @given(uq=unit, us=unit)
    @settings(max_examples=50, deadline=None)
    def test_symmetry(self, uq, us):
        assert combine_uncertainties(uq, us) == pytest.approx(
            combine_uncertainties(us, uq)
        )
