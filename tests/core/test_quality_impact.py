"""Tests for the quality impact model (tree + calibration + guarantees)."""

import numpy as np
import pytest

from repro.core.quality_impact import BOUND_FUNCTIONS, QualityImpactModel
from repro.exceptions import NotCalibratedError, NotFittedError, ValidationError
from repro.stats.binomial import clopper_pearson_upper


def make_data(rng, n=4000):
    """One informative quality factor: failure probability rises with it."""
    X = rng.uniform(size=(n, 3))
    p_fail = np.where(X[:, 0] > 0.7, 0.4, 0.02)
    wrong = (rng.uniform(size=n) < p_fail).astype(int)
    return X, wrong


@pytest.fixture
def calibrated(rng):
    X_train, wrong_train = make_data(rng)
    X_cal, wrong_cal = make_data(rng)
    qim = QualityImpactModel(max_depth=4, min_calibration_samples=100)
    qim.fit(X_train, wrong_train).calibrate(X_cal, wrong_cal)
    return qim


class TestLifecycle:
    def test_estimate_before_fit_raises(self):
        with pytest.raises(NotCalibratedError):
            QualityImpactModel().estimate_uncertainty([[0.5, 0.5, 0.5]])

    def test_calibrate_before_fit_raises(self, rng):
        X, wrong = make_data(rng, 500)
        with pytest.raises(NotFittedError):
            QualityImpactModel().calibrate(X, wrong)

    def test_estimate_after_fit_but_before_calibrate_raises(self, rng):
        X, wrong = make_data(rng, 500)
        qim = QualityImpactModel().fit(X, wrong)
        with pytest.raises(NotCalibratedError):
            qim.estimate_uncertainty(X)
        assert not qim.is_calibrated

    def test_refit_invalidates_calibration(self, rng, calibrated):
        X, wrong = make_data(rng, 500)
        calibrated.fit(X, wrong)
        with pytest.raises(NotCalibratedError):
            calibrated.estimate_uncertainty(X)


class TestEstimates:
    def test_separates_risky_region(self, rng, calibrated):
        X, _ = make_data(rng, 2000)
        u = calibrated.estimate_uncertainty(X)
        risky = X[:, 0] > 0.75
        assert u[risky].mean() > u[~risky].mean() + 0.1

    def test_bound_dominates_point_estimate(self, rng, calibrated):
        X, _ = make_data(rng, 1000)
        assert np.all(
            calibrated.estimate_uncertainty(X) >= calibrated.point_uncertainty(X)
        )

    def test_guarantee_holds_on_fresh_data(self, rng, calibrated):
        # The per-leaf bound at 0.999 confidence should rarely be exceeded
        # by the error rate observed on fresh data from the same process.
        X, wrong = make_data(rng, 4000)
        u = calibrated.estimate_uncertainty(X)
        leaves = calibrated.leaf_assignments(X)
        for leaf in np.unique(leaves):
            mask = leaves == leaf
            if mask.sum() < 200:
                continue
            observed = wrong[mask].mean()
            assert observed <= u[mask][0] + 0.05

    def test_estimates_are_leaf_constant(self, rng, calibrated):
        X, _ = make_data(rng, 1000)
        u = calibrated.estimate_uncertainty(X)
        leaves = calibrated.leaf_assignments(X)
        for leaf in np.unique(leaves):
            assert len(np.unique(u[leaves == leaf])) == 1

    def test_min_guaranteed_uncertainty_positive(self, calibrated):
        assert 0.0 < calibrated.min_guaranteed_uncertainty < 1.0

    def test_bound_matches_clopper_pearson(self, rng):
        X_train, wrong_train = make_data(rng)
        qim = QualityImpactModel(max_depth=1, min_calibration_samples=1)
        # Single-leaf tree: the bound must equal CP over the whole set.
        qim.fit(X_train, np.zeros(len(X_train), dtype=int))
        X_cal, wrong_cal = make_data(rng, 1000)
        qim.calibrate(X_cal, wrong_cal)
        expected = clopper_pearson_upper(wrong_cal.sum(), 1000, 0.999)
        u = qim.estimate_uncertainty(X_cal[:5])
        assert np.allclose(u, expected)


class TestCalibration:
    def test_leaves_meet_min_samples(self, rng):
        X_train, wrong_train = make_data(rng)
        X_cal, wrong_cal = make_data(rng, 2000)
        qim = QualityImpactModel(max_depth=8, min_calibration_samples=300)
        qim.fit(X_train, wrong_train).calibrate(X_cal, wrong_cal)
        for row in qim.leaf_table():
            assert row["calibration_samples"] >= 300

    def test_leaf_table_sorted_by_bound(self, calibrated):
        bounds = [row["guaranteed_uncertainty"] for row in calibrated.leaf_table()]
        assert bounds == sorted(bounds)

    def test_leaf_table_counts_sum_to_calibration_size(self, rng):
        X_train, wrong_train = make_data(rng)
        X_cal, wrong_cal = make_data(rng, 1500)
        qim = QualityImpactModel(max_depth=4, min_calibration_samples=100)
        qim.fit(X_train, wrong_train).calibrate(X_cal, wrong_cal)
        total = sum(r["calibration_samples"] for r in qim.leaf_table())
        assert total == 1500

    def test_n_leaves(self, calibrated):
        assert calibrated.n_leaves >= 2

    def test_misaligned_calibration_rejected(self, rng):
        X, wrong = make_data(rng, 500)
        qim = QualityImpactModel().fit(X, wrong)
        with pytest.raises(ValidationError):
            qim.calibrate(X, wrong[:-1])

    def test_non_binary_labels_rejected(self, rng):
        X, _ = make_data(rng, 100)
        with pytest.raises(ValidationError):
            QualityImpactModel().fit(X, np.full(100, 0.5))


class TestBoundChoices:
    @pytest.mark.parametrize("bound", sorted(BOUND_FUNCTIONS))
    def test_each_bound_works(self, rng, bound):
        X_train, wrong_train = make_data(rng)
        X_cal, wrong_cal = make_data(rng, 1500)
        qim = QualityImpactModel(
            max_depth=3, min_calibration_samples=150, bound=bound
        )
        qim.fit(X_train, wrong_train).calibrate(X_cal, wrong_cal)
        u = qim.estimate_uncertainty(X_cal)
        assert np.all((u >= 0.0) & (u <= 1.0))

    def test_hoeffding_loosest(self, rng):
        X_train, wrong_train = make_data(rng)
        X_cal, wrong_cal = make_data(rng, 1500)
        estimates = {}
        for bound in ("clopper_pearson", "hoeffding"):
            qim = QualityImpactModel(
                max_depth=3, min_calibration_samples=150, bound=bound
            )
            qim.fit(X_train, wrong_train).calibrate(X_cal, wrong_cal)
            estimates[bound] = qim.estimate_uncertainty(X_cal)
        assert np.all(estimates["hoeffding"] >= estimates["clopper_pearson"] - 1e-12)

    def test_unknown_bound_rejected(self):
        with pytest.raises(ValidationError):
            QualityImpactModel(bound="bogus")


class TestParams:
    def test_invalid_params_rejected(self):
        with pytest.raises(ValidationError):
            QualityImpactModel(min_calibration_samples=0)
        with pytest.raises(ValidationError):
            QualityImpactModel(confidence=1.0)
        with pytest.raises(ValidationError):
            QualityImpactModel(confidence=0.0)


class TestTransparency:
    def test_export_contains_bounds(self, calibrated):
        text = calibrated.export_text(feature_names=["qf_a", "qf_b", "qf_c"])
        assert "u <=" in text
        assert "qf_a" in text

    def test_export_requires_calibration(self, rng):
        X, wrong = make_data(rng, 500)
        qim = QualityImpactModel().fit(X, wrong)
        with pytest.raises(NotCalibratedError):
            qim.export_text()
