"""Tests for the simplex-style uncertainty monitor."""

import pytest

from repro.core.monitor import (
    MonitorDecision,
    UncertaintyMonitor,
)
from repro.exceptions import ValidationError


class TestBasicThreshold:
    def test_accepts_below_threshold(self):
        monitor = UncertaintyMonitor(threshold=0.05)
        verdict = monitor.judge(0.01)
        assert verdict.decision is MonitorDecision.ACCEPT
        assert verdict.accepted

    def test_accepts_at_threshold(self):
        monitor = UncertaintyMonitor(threshold=0.05)
        assert monitor.judge(0.05).accepted

    def test_falls_back_above_threshold(self):
        monitor = UncertaintyMonitor(threshold=0.05)
        verdict = monitor.judge(0.2)
        assert verdict.decision is MonitorDecision.FALLBACK
        assert not verdict.accepted

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValidationError):
            UncertaintyMonitor(threshold=0.0)
        with pytest.raises(ValidationError):
            UncertaintyMonitor(threshold=1.0)

    def test_invalid_uncertainty_rejected(self):
        monitor = UncertaintyMonitor(threshold=0.1)
        with pytest.raises(ValidationError):
            monitor.judge(1.2)


class TestHysteresis:
    def test_reentry_threshold_applies_after_fallback(self):
        monitor = UncertaintyMonitor(threshold=0.1, reentry_threshold=0.02)
        assert monitor.judge(0.08).accepted  # fine under base threshold
        assert not monitor.judge(0.5).accepted  # fallback
        # 0.08 would pass the base threshold but not the re-entry one.
        verdict = monitor.judge(0.08)
        assert not verdict.accepted
        assert verdict.in_hysteresis
        assert verdict.threshold == 0.02
        # Dropping below the re-entry threshold re-arms acceptance.
        assert monitor.judge(0.01).accepted
        assert monitor.judge(0.08).accepted  # base threshold again

    def test_no_hysteresis_by_default(self):
        monitor = UncertaintyMonitor(threshold=0.1)
        monitor.judge(0.5)
        assert monitor.judge(0.08).accepted

    def test_invalid_reentry_rejected(self):
        with pytest.raises(ValidationError):
            UncertaintyMonitor(threshold=0.05, reentry_threshold=0.1)
        with pytest.raises(ValidationError):
            UncertaintyMonitor(threshold=0.05, reentry_threshold=0.0)


class TestRiskBudget:
    def test_budget_exhaustion_forces_fallback(self):
        monitor = UncertaintyMonitor(threshold=0.5, risk_budget=0.1)
        assert monitor.judge(0.06).accepted
        # 0.06 + 0.06 would exceed the 0.1 budget.
        assert not monitor.judge(0.06).accepted
        # A cheaper acceptance still fits.
        assert monitor.judge(0.03).accepted

    def test_exact_budget_boundary_accepts(self):
        # Spending the budget to exactly 0 is allowed: exhaustion means
        # strictly exceeding it, not reaching it.
        # Dyadic values so the float sums are exact: 0.0625 + 0.0625 == 0.125.
        monitor = UncertaintyMonitor(threshold=0.5, risk_budget=0.125)
        assert monitor.judge(0.0625).accepted
        assert monitor.judge(0.0625).accepted  # spends the budget to exactly 0
        assert monitor.statistics.accepted_risk == 0.125
        # Any further risk, however small, exceeds the budget.
        assert not monitor.judge(0.0625).accepted

    def test_zero_uncertainty_accepted_on_exhausted_budget(self):
        # A perfectly certain outcome costs no budget and stays acceptable.
        monitor = UncertaintyMonitor(threshold=0.5, risk_budget=0.05)
        assert monitor.judge(0.05).accepted
        assert not monitor.judge(0.05).accepted
        assert monitor.judge(0.0).accepted

    def test_hysteresis_reentry_after_budget_fallback(self):
        # A budget-driven fallback arms hysteresis like a threshold-driven
        # one: acceptance afterwards needs the stricter re-entry level
        # (and remaining budget).
        monitor = UncertaintyMonitor(
            threshold=0.5, reentry_threshold=0.01, risk_budget=0.1
        )
        assert monitor.judge(0.09).accepted
        verdict = monitor.judge(0.09)  # budget would reach 0.18 > 0.1
        assert not verdict.accepted
        assert not verdict.in_hysteresis  # hysteresis armed by this fallback
        # 0.02 passes the base threshold and fits the remaining budget but
        # fails the re-entry threshold.
        blocked = monitor.judge(0.02)
        assert not blocked.accepted
        assert blocked.in_hysteresis
        assert blocked.threshold == 0.01
        # Dropping to the re-entry level (and within budget) re-arms.
        assert monitor.judge(0.005).accepted

    def test_reset_restores_budget(self):
        monitor = UncertaintyMonitor(threshold=0.5, risk_budget=0.1)
        assert monitor.judge(0.08).accepted
        assert not monitor.judge(0.08).accepted  # budget nearly spent
        monitor.reset()
        assert monitor.statistics.accepted_risk == 0.0
        assert monitor.judge(0.08).accepted  # full budget available again
        assert monitor.risk_budget == 0.1  # the configured cap is untouched

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValidationError):
            UncertaintyMonitor(threshold=0.1, risk_budget=0.0)


class TestStatistics:
    def test_counters(self):
        monitor = UncertaintyMonitor(threshold=0.1)
        monitor.judge(0.05)
        monitor.judge(0.5)
        monitor.judge(0.02)
        stats = monitor.statistics
        assert stats.steps == 3
        assert stats.accepted == 2
        assert stats.fallbacks == 1
        assert stats.acceptance_rate == pytest.approx(2 / 3)
        assert stats.accepted_risk == pytest.approx(0.07)
        assert stats.expected_accepted_failures == pytest.approx(0.07)

    def test_empty_statistics(self):
        monitor = UncertaintyMonitor(threshold=0.1)
        assert monitor.statistics.acceptance_rate == 0.0

    def test_reset(self):
        monitor = UncertaintyMonitor(threshold=0.1, reentry_threshold=0.01)
        monitor.judge(0.5)
        monitor.reset()
        assert monitor.statistics.steps == 0
        # Hysteresis state cleared: base threshold applies again.
        assert monitor.judge(0.08).accepted


class TestJudgeMany:
    """judge_many must be indistinguishable from sequential judge calls."""

    @staticmethod
    def _mixed_monitors(n):
        monitors = []
        for i in range(n):
            monitors.append(
                UncertaintyMonitor(
                    threshold=0.2 + 0.05 * (i % 7),
                    reentry_threshold=0.1 + 0.02 * (i % 5),
                    risk_budget=None if i % 3 == 0 else 1.5 + 0.5 * (i % 4),
                )
            )
        return monitors

    def test_matches_sequential_judge_over_random_sequences(self):
        import numpy as np

        from repro.core.monitor import judge_many

        rng = np.random.default_rng(71)
        n = 40
        batched = self._mixed_monitors(n)
        sequential = self._mixed_monitors(n)
        for _ in range(25):  # enough rounds to exercise budgets + hysteresis
            u = rng.uniform(0.0, 1.0, size=n)
            expected = [m.judge(float(x)) for m, x in zip(sequential, u)]
            got = judge_many(batched, u)
            assert got == expected  # frozen dataclasses: exact equality
        for a, b in zip(batched, sequential):
            assert a.state_dict() == b.state_dict()

    def test_empty_batch(self):
        from repro.core.monitor import judge_many

        assert judge_many([], []) == []

    def test_shared_monitor_object_rejected(self):
        from repro.core.monitor import judge_many

        shared = UncertaintyMonitor(threshold=0.5, risk_budget=0.5)
        # Vectorized decisions all read the pre-call budget, so a shared
        # monitor would hand out ACCEPTs its budget no longer covers --
        # refuse loudly instead.
        with pytest.raises(ValidationError, match="distinct"):
            judge_many([shared, shared], [0.4, 0.4])
        assert shared.statistics.steps == 0

    def test_validation_is_all_or_nothing(self):
        import numpy as np

        from repro.core.monitor import judge_many

        monitors = self._mixed_monitors(3)
        with pytest.raises(ValidationError):
            judge_many(monitors, [0.1, 1.5, 0.2])  # one bad value
        with pytest.raises(ValidationError):
            judge_many(monitors, [0.1, np.nan, 0.2])
        with pytest.raises(ValidationError):
            judge_many(monitors, [0.1, 0.2])  # length mismatch
        for monitor in monitors:  # nothing was judged
            assert monitor.statistics.steps == 0
