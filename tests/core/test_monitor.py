"""Tests for the simplex-style uncertainty monitor."""

import pytest

from repro.core.monitor import (
    MonitorDecision,
    UncertaintyMonitor,
)
from repro.exceptions import ValidationError


class TestBasicThreshold:
    def test_accepts_below_threshold(self):
        monitor = UncertaintyMonitor(threshold=0.05)
        verdict = monitor.judge(0.01)
        assert verdict.decision is MonitorDecision.ACCEPT
        assert verdict.accepted

    def test_accepts_at_threshold(self):
        monitor = UncertaintyMonitor(threshold=0.05)
        assert monitor.judge(0.05).accepted

    def test_falls_back_above_threshold(self):
        monitor = UncertaintyMonitor(threshold=0.05)
        verdict = monitor.judge(0.2)
        assert verdict.decision is MonitorDecision.FALLBACK
        assert not verdict.accepted

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValidationError):
            UncertaintyMonitor(threshold=0.0)
        with pytest.raises(ValidationError):
            UncertaintyMonitor(threshold=1.0)

    def test_invalid_uncertainty_rejected(self):
        monitor = UncertaintyMonitor(threshold=0.1)
        with pytest.raises(ValidationError):
            monitor.judge(1.2)


class TestHysteresis:
    def test_reentry_threshold_applies_after_fallback(self):
        monitor = UncertaintyMonitor(threshold=0.1, reentry_threshold=0.02)
        assert monitor.judge(0.08).accepted  # fine under base threshold
        assert not monitor.judge(0.5).accepted  # fallback
        # 0.08 would pass the base threshold but not the re-entry one.
        verdict = monitor.judge(0.08)
        assert not verdict.accepted
        assert verdict.in_hysteresis
        assert verdict.threshold == 0.02
        # Dropping below the re-entry threshold re-arms acceptance.
        assert monitor.judge(0.01).accepted
        assert monitor.judge(0.08).accepted  # base threshold again

    def test_no_hysteresis_by_default(self):
        monitor = UncertaintyMonitor(threshold=0.1)
        monitor.judge(0.5)
        assert monitor.judge(0.08).accepted

    def test_invalid_reentry_rejected(self):
        with pytest.raises(ValidationError):
            UncertaintyMonitor(threshold=0.05, reentry_threshold=0.1)
        with pytest.raises(ValidationError):
            UncertaintyMonitor(threshold=0.05, reentry_threshold=0.0)


class TestRiskBudget:
    def test_budget_exhaustion_forces_fallback(self):
        monitor = UncertaintyMonitor(threshold=0.5, risk_budget=0.1)
        assert monitor.judge(0.06).accepted
        # 0.06 + 0.06 would exceed the 0.1 budget.
        assert not monitor.judge(0.06).accepted
        # A cheaper acceptance still fits.
        assert monitor.judge(0.03).accepted

    def test_exact_budget_boundary_accepts(self):
        # Spending the budget to exactly 0 is allowed: exhaustion means
        # strictly exceeding it, not reaching it.
        # Dyadic values so the float sums are exact: 0.0625 + 0.0625 == 0.125.
        monitor = UncertaintyMonitor(threshold=0.5, risk_budget=0.125)
        assert monitor.judge(0.0625).accepted
        assert monitor.judge(0.0625).accepted  # spends the budget to exactly 0
        assert monitor.statistics.accepted_risk == 0.125
        # Any further risk, however small, exceeds the budget.
        assert not monitor.judge(0.0625).accepted

    def test_zero_uncertainty_accepted_on_exhausted_budget(self):
        # A perfectly certain outcome costs no budget and stays acceptable.
        monitor = UncertaintyMonitor(threshold=0.5, risk_budget=0.05)
        assert monitor.judge(0.05).accepted
        assert not monitor.judge(0.05).accepted
        assert monitor.judge(0.0).accepted

    def test_hysteresis_reentry_after_budget_fallback(self):
        # A budget-driven fallback arms hysteresis like a threshold-driven
        # one: acceptance afterwards needs the stricter re-entry level
        # (and remaining budget).
        monitor = UncertaintyMonitor(
            threshold=0.5, reentry_threshold=0.01, risk_budget=0.1
        )
        assert monitor.judge(0.09).accepted
        verdict = monitor.judge(0.09)  # budget would reach 0.18 > 0.1
        assert not verdict.accepted
        assert not verdict.in_hysteresis  # hysteresis armed by this fallback
        # 0.02 passes the base threshold and fits the remaining budget but
        # fails the re-entry threshold.
        blocked = monitor.judge(0.02)
        assert not blocked.accepted
        assert blocked.in_hysteresis
        assert blocked.threshold == 0.01
        # Dropping to the re-entry level (and within budget) re-arms.
        assert monitor.judge(0.005).accepted

    def test_reset_restores_budget(self):
        monitor = UncertaintyMonitor(threshold=0.5, risk_budget=0.1)
        assert monitor.judge(0.08).accepted
        assert not monitor.judge(0.08).accepted  # budget nearly spent
        monitor.reset()
        assert monitor.statistics.accepted_risk == 0.0
        assert monitor.judge(0.08).accepted  # full budget available again
        assert monitor.risk_budget == 0.1  # the configured cap is untouched

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValidationError):
            UncertaintyMonitor(threshold=0.1, risk_budget=0.0)


class TestStatistics:
    def test_counters(self):
        monitor = UncertaintyMonitor(threshold=0.1)
        monitor.judge(0.05)
        monitor.judge(0.5)
        monitor.judge(0.02)
        stats = monitor.statistics
        assert stats.steps == 3
        assert stats.accepted == 2
        assert stats.fallbacks == 1
        assert stats.acceptance_rate == pytest.approx(2 / 3)
        assert stats.accepted_risk == pytest.approx(0.07)
        assert stats.expected_accepted_failures == pytest.approx(0.07)

    def test_empty_statistics(self):
        monitor = UncertaintyMonitor(threshold=0.1)
        assert monitor.statistics.acceptance_rate == 0.0

    def test_reset(self):
        monitor = UncertaintyMonitor(threshold=0.1, reentry_threshold=0.01)
        monitor.judge(0.5)
        monitor.reset()
        assert monitor.statistics.steps == 0
        # Hysteresis state cleared: base threshold applies again.
        assert monitor.judge(0.08).accepted
