"""Tests for tree split criteria."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.trees.criteria import entropy_from_counts, get_criterion, gini_from_counts


class TestGini:
    def test_pure_node_is_zero(self):
        assert gini_from_counts(np.array([10.0, 0.0])) == pytest.approx(0.0)

    def test_uniform_binary_is_half(self):
        assert gini_from_counts(np.array([5.0, 5.0])) == pytest.approx(0.5)

    def test_uniform_k_classes(self):
        k = 4
        counts = np.full(k, 25.0)
        assert gini_from_counts(counts) == pytest.approx(1.0 - 1.0 / k)

    def test_known_value(self):
        # p = (0.75, 0.25): gini = 1 - 0.5625 - 0.0625 = 0.375
        assert gini_from_counts(np.array([3.0, 1.0])) == pytest.approx(0.375)

    def test_empty_group_is_zero(self):
        assert gini_from_counts(np.array([0.0, 0.0])) == 0.0

    def test_vectorised_shapes(self):
        counts = np.array([[10.0, 0.0], [5.0, 5.0], [0.0, 0.0]])
        result = gini_from_counts(counts)
        assert result.shape == (3,)
        assert result[0] == 0.0
        assert result[1] == pytest.approx(0.5)
        assert result[2] == 0.0

    def test_scale_invariance(self):
        a = gini_from_counts(np.array([3.0, 7.0]))
        b = gini_from_counts(np.array([30.0, 70.0]))
        assert a == pytest.approx(b)


class TestEntropy:
    def test_pure_node_is_zero(self):
        assert entropy_from_counts(np.array([10.0, 0.0])) == pytest.approx(0.0)

    def test_uniform_binary_is_ln2(self):
        assert entropy_from_counts(np.array([5.0, 5.0])) == pytest.approx(np.log(2))

    def test_empty_group_is_zero(self):
        assert entropy_from_counts(np.array([0.0, 0.0])) == 0.0

    def test_entropy_exceeds_gini_for_impure_nodes(self):
        counts = np.array([4.0, 6.0])
        assert entropy_from_counts(counts) > gini_from_counts(counts)


class TestRegistry:
    def test_lookup(self):
        assert get_criterion("gini") is gini_from_counts
        assert get_criterion("entropy") is entropy_from_counts

    def test_unknown_rejected(self):
        with pytest.raises(ValidationError):
            get_criterion("mse")
