"""Tests for the random-forest ensemble."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.trees.cart import DecisionTreeClassifier
from repro.trees.forest import RandomForestClassifier


@pytest.fixture
def noisy_xor(rng):
    X = rng.normal(size=(1200, 6))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    flip = rng.uniform(size=1200) < 0.05
    return X, np.where(flip, 1 - y, y)


class TestForest:
    def test_learns_noisy_xor(self, noisy_xor):
        X, y = noisy_xor
        forest = RandomForestClassifier(n_estimators=15, max_depth=6, seed=0)
        forest.fit(X, y)
        assert forest.score(X, y) > 0.9

    def test_proba_shape_and_sum(self, noisy_xor):
        X, y = noisy_xor
        forest = RandomForestClassifier(n_estimators=5, seed=0).fit(X, y)
        proba = forest.predict_proba(X[:50])
        assert proba.shape == (50, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_probabilities_smoother_than_single_tree(self, noisy_xor):
        X, y = noisy_xor
        tree = DecisionTreeClassifier(max_depth=6).fit(X, y)
        forest = RandomForestClassifier(n_estimators=20, max_depth=6, seed=0).fit(X, y)
        # The forest produces many more distinct probability levels.
        assert (
            len(np.unique(forest.predict_proba(X)[:, 1]))
            > len(np.unique(tree.predict_proba(X)[:, 1]))
        )

    def test_deterministic_given_seed(self, noisy_xor):
        X, y = noisy_xor
        p1 = RandomForestClassifier(n_estimators=5, seed=3).fit(X, y).predict_proba(X[:10])
        p2 = RandomForestClassifier(n_estimators=5, seed=3).fit(X, y).predict_proba(X[:10])
        assert np.allclose(p1, p2)

    def test_different_seeds_differ(self, noisy_xor):
        X, y = noisy_xor
        p1 = RandomForestClassifier(n_estimators=5, seed=3).fit(X, y).predict_proba(X[:10])
        p2 = RandomForestClassifier(n_estimators=5, seed=4).fit(X, y).predict_proba(X[:10])
        assert not np.allclose(p1, p2)

    def test_max_features_respected(self, noisy_xor):
        X, y = noisy_xor
        forest = RandomForestClassifier(
            n_estimators=4, max_features=2, seed=0
        ).fit(X, y)
        assert all(cols.size == 2 for cols in forest.feature_subsets_)

    def test_default_max_features_sqrt(self, noisy_xor):
        X, y = noisy_xor
        forest = RandomForestClassifier(n_estimators=2, seed=0).fit(X, y)
        assert all(cols.size == 3 for cols in forest.feature_subsets_)  # ceil(sqrt(6))

    def test_multiclass_with_partial_bootstrap_coverage(self, rng):
        # Rare classes may be absent from some bootstraps; predict_proba
        # must still return columns for every global class.
        X = rng.normal(size=(300, 4))
        y = np.where(X[:, 0] > 1.5, 2, (X[:, 0] > 0).astype(int))
        forest = RandomForestClassifier(n_estimators=10, seed=0).fit(X, y)
        proba = forest.predict_proba(X[:20])
        assert proba.shape == (20, 3)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            RandomForestClassifier().predict([[0.0]])

    def test_invalid_params_rejected(self):
        with pytest.raises(ValidationError):
            RandomForestClassifier(n_estimators=0)
        with pytest.raises(ValidationError):
            RandomForestClassifier(max_features=0)

    def test_bad_shapes_rejected(self, rng):
        with pytest.raises(ValidationError):
            RandomForestClassifier().fit(rng.normal(size=10), np.zeros(10))
        forest = RandomForestClassifier(n_estimators=2, seed=0).fit(
            rng.normal(size=(50, 3)), rng.integers(0, 2, 50)
        )
        with pytest.raises(ValidationError):
            forest.predict(rng.normal(size=(5, 2)))
