"""Tests for calibration-driven pruning."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.trees.cart import LEAF, DecisionTreeClassifier
from repro.trees.pruning import (
    collapse_node,
    count_samples_per_node,
    prune_to_min_samples,
)


@pytest.fixture
def fitted(rng):
    X = rng.normal(size=(2000, 5))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0.3)).astype(int)
    tree = DecisionTreeClassifier(max_depth=8).fit(X, y)
    X_cal = rng.normal(size=(1000, 5))
    return tree, X_cal


class TestCountSamples:
    def test_root_counts_everything(self, fitted):
        tree, X_cal = fitted
        counts = count_samples_per_node(tree, X_cal)
        assert counts[0] == len(X_cal)

    def test_children_partition_parent(self, fitted):
        tree, X_cal = fitted
        counts = count_samples_per_node(tree, X_cal)
        for node in range(tree.node_count_):
            left = tree.children_left_[node]
            if left == LEAF:
                continue
            right = tree.children_right_[node]
            assert counts[node] == counts[left] + counts[right]

    def test_leaf_counts_match_apply(self, fitted):
        tree, X_cal = fitted
        counts = count_samples_per_node(tree, X_cal)
        leaves, leaf_counts = np.unique(tree.apply(X_cal), return_counts=True)
        for leaf, count in zip(leaves, leaf_counts):
            assert counts[leaf] == count

    def test_empty_input(self, fitted):
        tree, _ = fitted
        counts = count_samples_per_node(tree, np.empty((0, 5)))
        assert counts.sum() == 0


class TestPrune:
    def test_every_leaf_meets_minimum(self, fitted):
        tree, X_cal = fitted
        pruned = prune_to_min_samples(tree, X_cal, 100)
        counts = count_samples_per_node(pruned, X_cal)
        assert all(counts[leaf] >= 100 for leaf in pruned.leaf_ids())

    def test_pruning_reduces_leaves(self, fitted):
        tree, X_cal = fitted
        pruned = prune_to_min_samples(tree, X_cal, 200)
        assert pruned.get_n_leaves() < tree.get_n_leaves()

    def test_original_untouched(self, fitted):
        tree, X_cal = fitted
        before = tree.get_n_leaves()
        prune_to_min_samples(tree, X_cal, 200)
        assert tree.get_n_leaves() == before

    def test_huge_minimum_collapses_to_root(self, fitted):
        tree, X_cal = fitted
        pruned = prune_to_min_samples(tree, X_cal, 10_000)
        assert pruned.get_n_leaves() == 1
        assert pruned.children_left_[0] == LEAF

    def test_minimum_of_one_keeps_non_empty_leaves(self, fitted):
        tree, X_cal = fitted
        pruned = prune_to_min_samples(tree, X_cal, 1)
        counts = count_samples_per_node(pruned, X_cal)
        assert all(counts[leaf] >= 1 for leaf in pruned.leaf_ids())

    def test_pruned_tree_still_predicts(self, fitted):
        tree, X_cal = fitted
        pruned = prune_to_min_samples(tree, X_cal, 150)
        predictions = pruned.predict(X_cal)
        assert predictions.shape == (len(X_cal),)

    def test_apply_lands_in_reachable_leaves(self, fitted):
        tree, X_cal = fitted
        pruned = prune_to_min_samples(tree, X_cal, 150)
        assert set(pruned.apply(X_cal)) <= set(pruned.leaf_ids())

    def test_invalid_minimum_rejected(self, fitted):
        tree, X_cal = fitted
        with pytest.raises(ValidationError):
            prune_to_min_samples(tree, X_cal, 0)

    def test_monotone_in_minimum(self, fitted):
        tree, X_cal = fitted
        leaves = [
            prune_to_min_samples(tree, X_cal, m).get_n_leaves()
            for m in (10, 50, 200, 500)
        ]
        assert leaves == sorted(leaves, reverse=True)


class TestCollapse:
    def test_collapse_root(self, fitted):
        tree, _ = fitted
        clone = tree.copy()
        collapse_node(clone, 0)
        assert clone.get_n_leaves() == 1

    def test_out_of_range_rejected(self, fitted):
        tree, _ = fitted
        with pytest.raises(ValidationError):
            collapse_node(tree.copy(), tree.node_count_)
