"""Tests for the CART decision-tree classifier."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import NotFittedError, ValidationError
from repro.trees.cart import LEAF, DecisionTreeClassifier


@pytest.fixture
def separable(rng):
    X = rng.normal(size=(400, 4))
    y = ((X[:, 0] > 0) & (X[:, 1] > -0.5)).astype(int)
    return X, y


class TestFit:
    def test_learns_separable_data(self, separable):
        X, y = separable
        tree = DecisionTreeClassifier(max_depth=6).fit(X, y)
        assert (tree.predict(X) == y).mean() > 0.98

    def test_max_depth_respected(self, separable):
        X, y = separable
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert tree.get_depth() <= 3

    def test_depth_one_is_a_stump(self, separable):
        X, y = separable
        tree = DecisionTreeClassifier(max_depth=1).fit(X, y)
        assert tree.get_n_leaves() == 2

    def test_min_samples_leaf_respected(self, separable):
        X, y = separable
        tree = DecisionTreeClassifier(max_depth=None, min_samples_leaf=25).fit(X, y)
        leaf_sizes = tree.n_node_samples_[tree.leaf_ids()]
        assert leaf_sizes.min() >= 25

    def test_min_samples_split_respected(self, separable):
        X, y = separable
        tree = DecisionTreeClassifier(max_depth=None, min_samples_split=100).fit(X, y)
        for node in range(tree.node_count_):
            if tree.children_left_[node] != LEAF:
                assert tree.n_node_samples_[node] >= 100

    def test_pure_labels_yield_single_leaf(self, rng):
        X = rng.normal(size=(50, 3))
        tree = DecisionTreeClassifier().fit(X, np.ones(50, dtype=int))
        assert tree.get_n_leaves() == 1
        assert tree.node_count_ == 1

    def test_multiclass(self, rng):
        X = rng.normal(size=(600, 2))
        y = (X[:, 0] > 0).astype(int) + 2 * (X[:, 1] > 0).astype(int)
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert (tree.predict(X) == y).mean() > 0.95
        assert set(tree.classes_) == {0, 1, 2, 3}

    def test_string_labels(self, rng):
        X = rng.normal(size=(100, 2))
        y = np.where(X[:, 0] > 0, "pos", "neg")
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert set(tree.predict(X)) <= {"pos", "neg"}

    def test_deterministic(self, separable):
        X, y = separable
        t1 = DecisionTreeClassifier(max_depth=5).fit(X, y)
        t2 = DecisionTreeClassifier(max_depth=5).fit(X, y)
        assert np.array_equal(t1.threshold_, t2.threshold_, equal_nan=True)
        assert np.array_equal(t1.feature_, t2.feature_)

    def test_entropy_criterion(self, separable):
        X, y = separable
        tree = DecisionTreeClassifier(max_depth=6, criterion="entropy").fit(X, y)
        assert (tree.predict(X) == y).mean() > 0.98

    def test_min_impurity_decrease_prunes_weak_splits(self, rng):
        X = rng.normal(size=(500, 3))
        y = rng.integers(0, 2, size=500)  # pure noise
        strict = DecisionTreeClassifier(max_depth=8, min_impurity_decrease=0.01).fit(X, y)
        loose = DecisionTreeClassifier(max_depth=8).fit(X, y)
        assert strict.get_n_leaves() < loose.get_n_leaves()


class TestValidation:
    def test_invalid_params_rejected(self):
        with pytest.raises(ValidationError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValidationError):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(ValidationError):
            DecisionTreeClassifier(min_samples_leaf=0)
        with pytest.raises(ValidationError):
            DecisionTreeClassifier(min_impurity_decrease=-1.0)
        with pytest.raises(ValidationError):
            DecisionTreeClassifier(criterion="bogus").fit([[1.0]], [0])

    def test_bad_shapes_rejected(self, rng):
        with pytest.raises(ValidationError):
            DecisionTreeClassifier().fit(rng.normal(size=10), np.zeros(10))
        with pytest.raises(ValidationError):
            DecisionTreeClassifier().fit(rng.normal(size=(10, 2)), np.zeros(5))

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            DecisionTreeClassifier().fit(np.empty((0, 2)), np.empty(0))

    def test_non_finite_rejected(self):
        with pytest.raises(ValidationError):
            DecisionTreeClassifier().fit([[np.nan]], [0])

    def test_unfitted_predict_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict([[1.0]])

    def test_wrong_feature_count_rejected(self, separable):
        X, y = separable
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        with pytest.raises(ValidationError):
            tree.predict(X[:, :2])


class TestInference:
    def test_apply_returns_leaves(self, separable):
        X, y = separable
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        leaves = tree.apply(X)
        assert set(leaves) <= set(tree.leaf_ids())

    def test_proba_rows_sum_to_one(self, separable):
        X, y = separable
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        proba = tree.predict_proba(X)
        assert proba.shape == (len(X), 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_predict_matches_argmax_proba(self, separable):
        X, y = separable
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        proba = tree.predict_proba(X)
        assert np.array_equal(tree.predict(X), tree.classes_[proba.argmax(axis=1)])

    def test_single_leaf_tree_predicts_majority(self, rng):
        X = rng.normal(size=(30, 2))
        y = np.array([0] * 20 + [1] * 10)
        tree = DecisionTreeClassifier(max_depth=1, min_samples_split=1000).fit(X, y)
        assert np.all(tree.predict(X) == 0)


class TestIntrospection:
    def test_feature_importances_sum_to_one(self, separable):
        X, y = separable
        tree = DecisionTreeClassifier(max_depth=5).fit(X, y)
        importances = tree.feature_importances()
        assert importances.shape == (4,)
        assert importances.sum() == pytest.approx(1.0)

    def test_informative_features_dominate(self, separable):
        X, y = separable
        tree = DecisionTreeClassifier(max_depth=5).fit(X, y)
        importances = tree.feature_importances()
        assert importances[0] + importances[1] > 0.9

    def test_copy_is_independent(self, separable):
        X, y = separable
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        clone = tree.copy()
        clone.children_left_[0] = LEAF
        assert tree.children_left_[0] != LEAF

    def test_node_counts_consistent(self, separable):
        X, y = separable
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        for node in range(tree.node_count_):
            left = tree.children_left_[node]
            if left == LEAF:
                continue
            right = tree.children_right_[node]
            assert (
                tree.n_node_samples_[node]
                == tree.n_node_samples_[left] + tree.n_node_samples_[right]
            )

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_unbounded_tree_memorises_unique_rows(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(60, 3))
        y = rng.integers(0, 3, size=60)
        tree = DecisionTreeClassifier(max_depth=None).fit(X, y)
        # Distinct rows with distinct labels are perfectly separable.
        assert (tree.predict(X) == y).all()
