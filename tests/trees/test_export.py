"""Tests for tree text export."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.trees.cart import DecisionTreeClassifier
from repro.trees.export import export_text


@pytest.fixture
def tree(rng):
    X = rng.normal(size=(300, 2))
    y = (X[:, 0] > 0).astype(int)
    return DecisionTreeClassifier(max_depth=3).fit(X, y)


class TestExportText:
    def test_contains_default_feature_names(self, tree):
        text = export_text(tree)
        assert "feature_0" in text

    def test_custom_feature_names(self, tree):
        text = export_text(tree, feature_names=["rain", "darkness"])
        assert "rain" in text
        assert "feature_0" not in text

    def test_too_few_names_rejected(self, tree):
        with pytest.raises(ValidationError):
            export_text(tree, feature_names=["only_one"])

    def test_leaf_lines_show_class_and_count(self, tree):
        text = export_text(tree)
        assert "leaf #" in text
        assert "n=" in text

    def test_annotations_rendered(self, tree):
        leaf = int(tree.leaf_ids()[0])
        text = export_text(tree, leaf_annotations={leaf: "u <= 0.0072"})
        assert "u <= 0.0072" in text

    def test_max_depth_truncates(self, rng):
        X = rng.normal(size=(500, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)  # needs depth >= 2
        deep = DecisionTreeClassifier(max_depth=4).fit(X, y)
        text = export_text(deep, max_depth=1)
        assert "..." in text

    def test_single_leaf_tree(self, rng):
        X = rng.normal(size=(20, 2))
        stump = DecisionTreeClassifier().fit(X, np.zeros(20, dtype=int))
        text = export_text(stump)
        assert text.startswith("leaf #0")

    def test_line_count_matches_nodes(self, tree):
        text = export_text(tree)
        # One line per reachable node (internal nodes appear twice: <= and >).
        n_internal = sum(
            1 for n in tree.reachable_nodes() if tree.children_left_[n] != -1
        )
        n_leaves = tree.get_n_leaves()
        assert len(text.splitlines()) == 2 * n_internal + n_leaves
