"""Tests for the exact best-split search."""

import numpy as np
import pytest

from repro.trees.criteria import gini_from_counts
from repro.trees.splitter import find_best_split


def split(X, y, min_samples_leaf=1, idx=None):
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    if idx is None:
        idx = np.arange(X.shape[0])
    n_classes = int(y.max()) + 1
    return find_best_split(X, y, idx, n_classes, gini_from_counts, min_samples_leaf)


class TestFindBestSplit:
    def test_perfect_split_found(self):
        X = np.array([[0.0], [1.0], [2.0], [10.0], [11.0], [12.0]])
        y = np.array([0, 0, 0, 1, 1, 1])
        s = split(X, y)
        assert s is not None
        assert s.feature == 0
        assert 2.0 < s.threshold <= 10.0
        assert s.n_left == 3 and s.n_right == 3
        # Parent gini 0.5, children pure: improvement = 0.5.
        assert s.improvement == pytest.approx(0.5)

    def test_best_feature_selected(self):
        rng = np.random.default_rng(0)
        n = 200
        noise = rng.normal(size=n)
        signal = np.where(rng.uniform(size=n) < 0.5, 0.0, 5.0)
        y = (signal > 2.5).astype(int)
        X = np.column_stack([noise, signal])
        s = split(X, y)
        assert s.feature == 1

    def test_pure_node_returns_none(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([1, 1, 1])
        assert split(X, y) is None

    def test_constant_feature_returns_none(self):
        X = np.zeros((10, 1))
        y = np.array([0, 1] * 5)
        assert split(X, y) is None

    def test_min_samples_leaf_respected(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0], [4.0], [50.0]])
        y = np.array([0, 0, 0, 0, 0, 1])
        # Isolating the single positive would need a 1-sample leaf.
        s = split(X, y, min_samples_leaf=2)
        assert s is None or min(s.n_left, s.n_right) >= 2

    def test_too_few_samples_returns_none(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([0, 1, 0])
        assert split(X, y, min_samples_leaf=2) is None

    def test_subset_indices_respected(self):
        X = np.array([[0.0], [1.0], [100.0], [101.0], [5.0]])
        y = np.array([0, 0, 1, 1, 1])
        # Exclude the ambiguous row 4; the remaining four split perfectly.
        s = split(X, y, idx=np.array([0, 1, 2, 3]))
        assert s.improvement == pytest.approx(0.5)

    def test_threshold_separates_sorted_values(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(300, 3))
        y = (X[:, 2] > 0.3).astype(int)
        s = split(X, y)
        assert s.feature == 2
        left = X[:, 2] <= s.threshold
        assert left.sum() == s.n_left

    def test_ties_in_feature_values_handled(self):
        X = np.array([[1.0], [1.0], [1.0], [2.0], [2.0], [2.0]])
        y = np.array([0, 0, 1, 1, 1, 1])
        s = split(X, y)
        assert s is not None
        # Only one admissible cut: between the tied groups.
        assert 1.0 < s.threshold <= 2.0
        assert s.n_left == 3
