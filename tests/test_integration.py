"""Cross-module integration tests.

These exercise the full stack the way a deployment would: tracker-driven
series onsets feeding the online wrapper, agreement between the online and
offline paths on real study data, and the scope model guarding the whole
pipeline.
"""

import numpy as np
import pytest

from repro.core import (
    BoundaryCheck,
    ScopeComplianceModel,
    TimeseriesAwareUncertaintyWrapper,
)
from repro.core.timeseries_wrapper import trace_series
from repro.datasets import GTSRBLikeGenerator, subsample_dataset
from repro.evaluation.metrics import pool_traces
from repro.tracking import SignTracker


@pytest.fixture(scope="module")
def online_wrapper(smoke_study_data):
    return TimeseriesAwareUncertaintyWrapper(
        ddm=smoke_study_data.ddm,
        stateless_qim=smoke_study_data.stateless_qim,
        timeseries_qim=smoke_study_data.ta_qim,
        layout=smoke_study_data.layout,
    )


class TestOnlineOfflineAgreement:
    def test_step_reproduces_test_traces(self, smoke_study_data, online_wrapper):
        """The online API must replay the study's offline traces exactly."""
        data = smoke_study_data
        pooled = pool_traces(data.test_traces[:5])
        expected_u = data.ta_qim.estimate_uncertainty(pooled.features)

        i = 0
        for trace in data.test_traces[:5]:
            online_wrapper.reset()
            for t in range(trace.n_steps):
                # Feed the recorded isolated outcome through a stub DDM so
                # the online path sees the identical prediction stream.
                stub = _StubDDM(trace.outcomes[t])
                online = TimeseriesAwareUncertaintyWrapper(
                    ddm=stub,
                    stateless_qim=data.stateless_qim,
                    timeseries_qim=data.ta_qim,
                    layout=data.layout,
                )
                online.buffer = online_wrapper.buffer  # share series state
                result = online.step(
                    np.zeros(1), trace.features[t, : len(data.layout.stateless_names)]
                )
                assert result.fused_outcome == trace.fused_outcomes[t]
                assert result.fused_uncertainty == pytest.approx(expected_u[i])
                i += 1


class _StubDDM:
    """DDM stub replaying one fixed outcome."""

    def __init__(self, outcome: int) -> None:
        self.outcome = int(outcome)

    def predict(self, X) -> np.ndarray:
        return np.full(np.atleast_2d(X).shape[0], self.outcome, dtype=np.int64)


class TestTrackerDrivenStream:
    def test_three_signs_three_series(self, smoke_study_data, online_wrapper, rng):
        data = smoke_study_data
        generator = GTSRBLikeGenerator()
        base = generator.generate_base(3, rng)
        drive = subsample_dataset(
            generator.augment_with_situations(base, 1, rng), 10, rng
        )
        for i, series in enumerate(drive):
            series.positions[:, 1] += 50.0 * i

        tracker = SignTracker(
            dt=generator.geometry.frame_interval_s, process_noise=3.0
        )
        onsets = []
        frame = 0
        for series in drive:
            embeddings = data.feature_model.embed_series(series, rng)
            for t in range(series.n_frames):
                event = tracker.update(series.positions[t])
                result = online_wrapper.step(
                    embeddings[t], series.sensed[t], new_series=event.new_series
                )
                if event.new_series:
                    onsets.append(frame)
                    assert result.timestep == 0
                frame += 1
        assert onsets == [0, 10, 20]

    def test_buffer_never_exceeds_series_length(self, smoke_study_data, online_wrapper, rng):
        data = smoke_study_data
        generator = GTSRBLikeGenerator()
        base = generator.generate_base(2, rng)
        drive = subsample_dataset(
            generator.augment_with_situations(base, 1, rng), 10, rng
        )
        for series in drive:
            embeddings = data.feature_model.embed_series(series, rng)
            online_wrapper.reset()
            for t in range(series.n_frames):
                online_wrapper.step(embeddings[t], series.sensed[t])
                assert len(online_wrapper.buffer) == t + 1


class TestScopeGuardedPipeline:
    def test_scope_model_overrides_quality(self, smoke_study_data, rng):
        data = smoke_study_data
        scope = ScopeComplianceModel(
            checks=[BoundaryCheck("latitude", 47.3, 55.0)]
        )
        wrapper = TimeseriesAwareUncertaintyWrapper(
            ddm=data.ddm,
            stateless_qim=data.stateless_qim,
            timeseries_qim=data.ta_qim,
            layout=data.layout,
            scope_model=scope,
        )
        generator = GTSRBLikeGenerator()
        base = generator.generate_base(1, rng)
        series = subsample_dataset(
            generator.augment_with_situations(base, 1, rng), 10, rng
        )[0]
        embeddings = data.feature_model.embed_series(series, rng)

        inside = wrapper.step(
            embeddings[0], series.sensed[0], scope_factors={"latitude": 50.0}
        )
        outside = wrapper.step(
            embeddings[1], series.sensed[1], scope_factors={"latitude": 40.0}
        )
        assert inside.scope_incompliance == 0.0
        assert outside.scope_incompliance == 1.0
        assert outside.fused_uncertainty == 1.0


class TestGuaranteeEndToEnd:
    def test_bounds_cover_observed_error_rates(self, smoke_study_data):
        """Dependability: per-leaf bounds must cover the test error rates.

        This is the core promise of the wrapper.  We check every taUW leaf
        with enough test support; a small tolerance absorbs test-sampling
        noise (the guarantee itself is at 99.9 % confidence w.r.t. the
        calibration draw).
        """
        data = smoke_study_data
        pooled = pool_traces(data.test_traces)
        u = data.ta_qim.estimate_uncertainty(pooled.features)
        leaves = data.ta_qim.leaf_assignments(pooled.features)
        checked = 0
        for leaf in np.unique(leaves):
            mask = leaves == leaf
            if mask.sum() < 100:
                continue
            observed = pooled.fused_wrong[mask].mean()
            bound = u[mask][0]
            assert observed <= bound + 0.06, (
                f"leaf {leaf}: observed {observed:.4f} above bound {bound:.4f}"
            )
            checked += 1
        assert checked >= 1
