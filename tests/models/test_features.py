"""Tests for the prototype embedding model."""

import numpy as np
import pytest

from repro.datasets.augmentation import DeficitProfile
from repro.datasets.gtsrb import GTSRBLikeGenerator, N_CLASSES
from repro.exceptions import ValidationError
from repro.models.features import FeatureConfig, PrototypeFeatureModel


@pytest.fixture
def model():
    return PrototypeFeatureModel(N_CLASSES, seed=3)


@pytest.fixture
def series(rng):
    gen = GTSRBLikeGenerator()
    base = gen.generate_base(3, rng)
    return gen.augment_with_profile(
        base[0], DeficitProfile.from_mapping({"rain": 0.4}), rng, new_id=0
    )


class TestConfig:
    def test_defaults_valid(self):
        FeatureConfig()

    def test_bad_dim_rejected(self):
        with pytest.raises(ValidationError):
            FeatureConfig(dim=1)

    def test_bad_weights_rejected(self):
        with pytest.raises(ValidationError):
            FeatureConfig(deficit_weights=(0.5, 0.5))


class TestPrototypes:
    def test_unit_norm(self, model):
        norms = np.linalg.norm(model.prototypes, axis=1)
        assert np.allclose(norms, 1.0)

    def test_deterministic_given_seed(self):
        a = PrototypeFeatureModel(N_CLASSES, seed=5)
        b = PrototypeFeatureModel(N_CLASSES, seed=5)
        assert np.array_equal(a.prototypes, b.prototypes)

    def test_different_seeds_differ(self):
        a = PrototypeFeatureModel(N_CLASSES, seed=5)
        b = PrototypeFeatureModel(N_CLASSES, seed=6)
        assert not np.allclose(a.prototypes, b.prototypes)

    def test_too_few_classes_rejected(self):
        with pytest.raises(ValidationError):
            PrototypeFeatureModel(1)


class TestVisibility:
    def test_monotone_in_size(self, model):
        deficits = np.zeros((3, 9))
        sizes = np.array([10.0, 50.0, 200.0])
        v = model.visibility(sizes, deficits)
        assert np.all(np.diff(v) > 0)

    def test_monotone_in_deficits(self, model):
        sizes = np.full(3, 50.0)
        deficits = np.zeros((3, 9))
        deficits[1, 1] = 0.5
        deficits[2, 1] = 1.0
        v = model.visibility(sizes, deficits)
        assert v[0] > v[1] > v[2]

    def test_bounded(self, model, rng):
        v = model.visibility(
            rng.uniform(5, 250, size=100), rng.uniform(size=(100, 9))
        )
        assert np.all((v > 0.0) & (v <= 1.0))


class TestEmbedding:
    def test_shape(self, model, series, rng):
        emb = model.embed_series(series, rng)
        assert emb.shape == (series.n_frames, model.config.dim)

    def test_normalised(self, model, series, rng):
        emb = model.embed_series(series, rng)
        assert np.allclose(np.linalg.norm(emb, axis=1), 1.0)

    def test_unnormalised_config(self, series, rng):
        model = PrototypeFeatureModel(
            N_CLASSES, FeatureConfig(normalize=False), seed=3
        )
        emb = model.embed_series(series, rng)
        assert not np.allclose(np.linalg.norm(emb, axis=1), 1.0)

    def test_clean_large_sign_aligns_with_prototype(self, model, rng):
        gen = GTSRBLikeGenerator()
        base = gen.generate_base(1, rng)
        series = gen.augment_with_profile(
            base[0], DeficitProfile.clean(), rng, new_id=0
        )
        emb = model.embed_series(series, rng)
        # The last (closest, largest) frame should correlate most strongly
        # with its own class prototype.
        sims = emb[-1] @ model.prototypes.T
        assert int(np.argmax(sims)) == series.class_id

    def test_class_out_of_range_rejected(self, series, rng):
        small = PrototypeFeatureModel(2, seed=3)
        series.class_id = 5
        with pytest.raises(ValidationError):
            small.embed_series(series, rng)

    def test_embed_dataset_alignment(self, model, rng):
        gen = GTSRBLikeGenerator()
        base = gen.generate_base(4, rng)
        ds = gen.augment_with_situations(base, 2, rng)
        X, y, sidx = model.embed_dataset(ds, rng)
        assert X.shape[0] == ds.n_frames_total
        assert np.array_equal(y, ds.labels_per_frame())
        assert sidx.max() == len(ds) - 1

    def test_embed_empty_dataset(self, model, rng):
        from repro.datasets.gtsrb import TimeseriesDataset

        X, y, sidx = model.embed_dataset(TimeseriesDataset(), rng)
        assert X.shape == (0, model.config.dim)
        assert y.size == 0 and sidx.size == 0
