"""Tests for the numpy classifiers (softmax regression and MLP)."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.models.linear import SoftmaxRegression, one_hot, softmax
from repro.models.mlp import MLPClassifier


@pytest.fixture
def blobs(rng):
    """Three well-separated Gaussian blobs."""
    centers = np.array([[0.0, 0.0], [6.0, 0.0], [0.0, 6.0]])
    X = np.vstack([rng.normal(c, 0.5, size=(80, 2)) for c in centers])
    y = np.repeat([0, 1, 2], 80)
    return X, y


class TestSoftmaxHelpers:
    def test_softmax_rows_sum_to_one(self, rng):
        p = softmax(rng.normal(size=(10, 5)))
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_softmax_stable_for_large_logits(self):
        p = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(p).all()
        assert p[0, 0] == pytest.approx(1.0)

    def test_one_hot(self):
        oh = one_hot(np.array([0, 2, 1]), 3)
        assert np.array_equal(oh, np.eye(3)[[0, 2, 1]])

    def test_one_hot_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            one_hot(np.array([3]), 3)

    def test_one_hot_2d_rejected(self):
        with pytest.raises(ValidationError):
            one_hot(np.zeros((2, 2), dtype=int), 3)


@pytest.mark.parametrize(
    "factory",
    [
        lambda: SoftmaxRegression(epochs=20, seed=0),
        lambda: MLPClassifier(
            hidden_sizes=(16,), epochs=40, batch_size=32, learning_rate=5e-3, seed=0
        ),
    ],
    ids=["softmax", "mlp"],
)
class TestClassifiers:
    def test_learns_blobs(self, factory, blobs):
        X, y = blobs
        clf = factory().fit(X, y)
        assert clf.score(X, y) > 0.97

    def test_proba_shape_and_sum(self, factory, blobs):
        X, y = blobs
        clf = factory().fit(X, y)
        proba = clf.predict_proba(X)
        assert proba.shape == (len(X), 3)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_predict_matches_argmax(self, factory, blobs):
        X, y = blobs
        clf = factory().fit(X, y)
        proba = clf.predict_proba(X)
        assert np.array_equal(clf.predict(X), clf.classes_[proba.argmax(axis=1)])

    def test_deterministic_given_seed(self, factory, blobs):
        X, y = blobs
        p1 = factory().fit(X, y).predict_proba(X[:5])
        p2 = factory().fit(X, y).predict_proba(X[:5])
        assert np.allclose(p1, p2)

    def test_non_contiguous_labels(self, factory, blobs):
        X, y = blobs
        clf = factory().fit(X, y * 10 + 5)
        assert set(clf.predict(X)) <= {5, 15, 25}

    def test_unfitted_raises(self, factory):
        with pytest.raises(NotFittedError):
            factory().predict([[0.0, 0.0]])

    def test_wrong_width_rejected(self, factory, blobs):
        X, y = blobs
        clf = factory().fit(X, y)
        with pytest.raises(ValidationError):
            clf.predict(X[:, :1])

    def test_bad_shapes_rejected(self, factory):
        with pytest.raises(ValidationError):
            factory().fit(np.zeros(5), np.zeros(5))
        with pytest.raises(ValidationError):
            factory().fit(np.zeros((5, 2)), np.zeros(4))
        with pytest.raises(ValidationError):
            factory().fit(np.empty((0, 2)), np.empty(0))


class TestParamValidation:
    def test_softmax_params(self):
        with pytest.raises(ValidationError):
            SoftmaxRegression(learning_rate=0.0)
        with pytest.raises(ValidationError):
            SoftmaxRegression(epochs=0)
        with pytest.raises(ValidationError):
            SoftmaxRegression(batch_size=0)
        with pytest.raises(ValidationError):
            SoftmaxRegression(l2=-1.0)

    def test_mlp_params(self):
        with pytest.raises(ValidationError):
            MLPClassifier(hidden_sizes=())
        with pytest.raises(ValidationError):
            MLPClassifier(hidden_sizes=(0,))
        with pytest.raises(ValidationError):
            MLPClassifier(learning_rate=-1.0)
        with pytest.raises(ValidationError):
            MLPClassifier(epochs=0)

    def test_mlp_two_hidden_layers(self, rng):
        X = rng.normal(size=(200, 3))
        y = (X[:, 0] > 0).astype(int)
        clf = MLPClassifier(
            hidden_sizes=(16, 8), epochs=80, batch_size=32, learning_rate=5e-3, seed=0
        ).fit(X, y)
        assert clf.score(X, y) > 0.9
