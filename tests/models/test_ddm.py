"""Tests for the DDM protocol, adapter, and synthetic DDM."""

import numpy as np
import pytest

from repro.datasets.gtsrb import CONFUSION_PARTNERS
from repro.exceptions import ValidationError
from repro.models.ddm import ClassifierDDM, DataDrivenModel, SyntheticDDM
from repro.models.linear import SoftmaxRegression


class TestClassifierDDM:
    def test_delegates_predict(self, rng):
        X = rng.normal(size=(60, 2))
        y = (X[:, 0] > 0).astype(int)
        clf = SoftmaxRegression(epochs=10, seed=0).fit(X, y)
        ddm = ClassifierDDM(clf, name="test")
        assert np.array_equal(ddm.predict(X), clf.predict(X))

    def test_satisfies_protocol(self, rng):
        X = rng.normal(size=(10, 2))
        clf = SoftmaxRegression(epochs=2, seed=0).fit(X, np.zeros(10, dtype=int))
        assert isinstance(ClassifierDDM(clf), DataDrivenModel)

    def test_requires_predict(self):
        with pytest.raises(ValidationError):
            ClassifierDDM(object())


def rows(true_class, p_err, noise):
    return np.column_stack([true_class, p_err, noise]).astype(float)


class TestSyntheticDDM:
    def test_zero_error_probability_is_perfect(self):
        X = rows([3, 5, 7], [0.0, 0.0, 0.0], [0.5, 0.5, 0.5])
        assert np.array_equal(SyntheticDDM().predict(X), [3, 5, 7])

    def test_certain_error_flips_to_partner(self):
        X = rows([0, 14], [1.0, 1.0], [0.5, 0.5])
        expected = [CONFUSION_PARTNERS[0], CONFUSION_PARTNERS[14]]
        assert np.array_equal(SyntheticDDM().predict(X), expected)

    def test_correlated_mode_uses_series_noise(self):
        # noise < p -> error; same noise, same p -> identical outcomes.
        X = rows([5] * 4, [0.3] * 4, [0.1] * 4)
        out = SyntheticDDM(correlated=True).predict(X)
        assert np.all(out == CONFUSION_PARTNERS[5])
        X2 = rows([5] * 4, [0.3] * 4, [0.9] * 4)
        assert np.all(SyntheticDDM(correlated=True).predict(X2) == 5)

    def test_uncorrelated_mode_hits_error_rate(self):
        n = 20000
        X = rows([2] * n, [0.25] * n, [0.0] * n)
        out = SyntheticDDM(correlated=False, seed=1).predict(X)
        assert (out != 2).mean() == pytest.approx(0.25, abs=0.02)

    def test_protocol_satisfied(self):
        assert isinstance(SyntheticDDM(), DataDrivenModel)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValidationError):
            SyntheticDDM().predict(np.zeros((3, 2)))

    def test_bad_probability_rejected(self):
        with pytest.raises(ValidationError):
            SyntheticDDM().predict(rows([1], [1.5], [0.5]))
