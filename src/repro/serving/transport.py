"""Pluggable worker transports for the sharded serving cluster.

:mod:`repro.serving.protocol` defines *what* crosses the wire; this module
defines *how*.  A :class:`Transport` hands the cluster front end one
:class:`WorkerEndpoint` per shard, all speaking the same strict
request/reply protocol, so :class:`~repro.serving.cluster.ShardedEngine`
reduces to placement + fan-out/merge and never touches a pipe or socket:

* :class:`InprocTransport` -- same-process loopback.  No child processes,
  no byte encoding; commands dispatch straight into a
  :class:`WorkerServicer`.  The zero-overhead path for tests and for
  1-shard clusters, with exception mapping identical to the real
  transports;
* :class:`PipeTransport` -- one forked (or spawned) child process per
  shard, exchanging codec frames over a :func:`multiprocessing.Pipe`.
  The single-host default;
* :class:`TcpTransport` -- connects shards to ``repro serve-worker
  --listen HOST:PORT`` processes anywhere on the network, exchanging the
  same codec frames over length-prefixed TCP.  Multi-machine sharding.

Worker side, every byte transport runs the same :func:`serve_connection`
loop: the parent opens with a ``hello`` (cluster tick + shard index), the
worker builds its engine via the factory and answers with the engine
shape, then serves step/snapshot/inject/discard/stats requests until
``close`` or EOF.  Because the servicer and codec are shared, the three
transports are behaviorally interchangeable -- same results bit for bit,
same error types, same messages -- which the transport test matrix
asserts.

Worker loss surfaces as :class:`~repro.exceptions.ClusterWorkerError`
carrying the shard index: sends to a dead peer raise immediately, receives
return an error tuple the front end maps through
:func:`raise_worker_error`, and an endpoint that saw its peer die reports
``alive == False`` so the cluster can mark the shard as failed instead of
hanging.  Orderly deaths (FIN/RST, closed pipe) are seen at the next
send/recv; silent TCP peer loss relies on ``SO_KEEPALIVE``, detected at
the OS's probe cadence.
"""

from __future__ import annotations

import multiprocessing
import socket
import struct
import time
from collections import deque
from typing import Callable, Sequence

import repro.exceptions as _exceptions
from repro.exceptions import ClusterError, ClusterWorkerError, ValidationError
from repro.serving.protocol import (
    BufferPool,
    decode_reply_full,
    decode_request,
    decode_request_full,
    encode_reply,
    encode_reply_parts,
    encode_request_parts,
)
from repro.serving.state import RegistrySnapshot

__all__ = [
    "Transport",
    "WorkerEndpoint",
    "InprocTransport",
    "PipeTransport",
    "TcpTransport",
    "WorkerServicer",
    "serve_connection",
    "serve_worker",
    "launch_local_workers",
    "stop_local_workers",
    "resolve_transport",
    "parse_address",
    "raise_worker_error",
]


def raise_worker_error(shard: int, name: str, message: str):
    """Re-raise a worker-reported error as its original exception type.

    Library exceptions and builtins round-trip by name (so a worker's
    ``ValidationError`` or a monitor factory's ``RuntimeError`` surface
    exactly as the single-process engine would raise them); transport
    deaths map to :class:`ClusterWorkerError` with the shard attached;
    anything else degrades to :class:`ClusterError`.
    """
    import builtins

    exc_type = getattr(_exceptions, name, None) or getattr(builtins, name, None)
    if exc_type is ClusterWorkerError:
        raise ClusterWorkerError(f"[shard {shard}] {message}", shard=shard)
    if isinstance(exc_type, type) and issubclass(exc_type, Exception):
        raise exc_type(f"[shard {shard}] {message}")
    raise ClusterError(f"shard {shard} failed with {name}: {message}")


# ---------------------------------------------------------------------------
# Worker-side command servicer (shared by every transport)
# ---------------------------------------------------------------------------

class WorkerServicer:
    """Executes decoded worker commands against one shard's engine.

    The single implementation of worker semantics: the in-proc endpoint
    calls :meth:`handle` directly, pipe and TCP workers call it from
    :func:`serve_connection`.  Raises on failure; the caller maps the
    exception into an error reply.

    With a metrics registry attached (``serve-worker --metrics-port``)
    every command is counted by name, errors separately, plus stepped
    frames, live stream/tick gauges, and a per-phase latency histogram
    fed by :meth:`note_request`.  Families are get-or-create, so the
    per-connection servicers of one worker process share series in the
    one registry.  Without a registry (the default, and always the
    in-cluster path) dispatch is exactly the bare call -- metrics can
    never perturb the parent-side serving loop.

    With a :class:`~repro.serving.observability.tracing.TickTracer`
    attached the servicer keeps its own per-request traces: every
    ``handle`` runs inside a span, and a request that raises aborts its
    tick so the failed request's spans never leak into (and poison) the
    next request's trace.
    """

    def __init__(self, engine, metrics=None, tracer=None) -> None:
        self.engine = engine
        self.metrics = metrics
        self.tracer = tracer
        if metrics is not None:
            self._requests = metrics.counter(
                "repro_worker_requests_total",
                "Commands serviced, by command name.",
                labels=("command",),
            )
            self._errors = metrics.counter(
                "repro_worker_errors_total",
                "Commands that raised, by command name.",
                labels=("command",),
            )
            self._frames = metrics.counter(
                "repro_worker_frames_total",
                "Frames stepped by this worker.",
            )
            self._streams = metrics.gauge(
                "repro_worker_streams",
                "Streams currently registered on this worker.",
            )
            self._tick_gauge = metrics.gauge(
                "repro_worker_tick", "This worker's engine tick."
            )
            self._phase_seconds = metrics.histogram(
                "repro_worker_phase_seconds",
                "Per-request worker time by phase "
                "(recv/decode/step/encode/send).",
                labels=("phase",),
            )

    def engine_shape(self) -> dict:
        """The hello payload: input shape plus a config fingerprint.

        The shape fields drive parent-side input validation; the config
        fields let the cluster reject a worker whose engine was built
        with different flags (TCP workers configure themselves, so a
        mismatched ``--threshold``/``--ttl`` would otherwise silently
        break the equivalence guarantee).
        """
        engine = self.engine
        monitor_config = None
        if engine.registry.monitor_factory is not None:
            probe = engine.registry.monitor_factory()
            monitor_config = {
                "threshold": probe.threshold,
                "reentry_threshold": probe.reentry_threshold,
                "risk_budget": probe.risk_budget,
            }
        return {
            "n_stateless": len(engine.layout.stateless_names),
            "has_scope_model": engine.scope_model is not None,
            "max_buffer_length": engine.registry.max_buffer_length,
            "idle_ttl": engine.registry.idle_ttl,
            "monitor": monitor_config,
        }

    def handle(self, command: str, payload):
        tracer = self.tracer
        if tracer is None:
            return self._count(command, payload)
        try:
            with tracer.span("handle", command=command):
                return self._count(command, payload)
        except Exception:
            # abort_tick semantics: the failed request's spans (the
            # "handle" span above included -- it records on exception)
            # must not linger in open_spans and pollute the trace the
            # *next* request closes.
            tracer.abort_tick()
            raise

    def _count(self, command: str, payload):
        if self.metrics is None:
            return self._handle(command, payload)
        self._requests.labels(command=command).inc()
        if command == "step" and payload is not None:
            self._frames.inc(len(payload["ids"]))
        try:
            result = self._handle(command, payload)
        except Exception:
            self._errors.labels(command=command).inc()
            raise
        self._streams.set(len(self.engine.registry))
        self._tick_gauge.set(self.engine.tick)
        return result

    def note_request(
        self, trace, t_recv0, t_recv1, t_decoded, t_stepped,
        prev_encode=0.0, prev_send=0.0,
    ):
        """Book one served request's phase timings; returns the telemetry
        dict to piggyback on the reply (``None`` when unsampled).

        Timestamps are this worker's own clock (``time.perf_counter``),
        taken by :func:`serve_connection` around recv/decode/handle.
        ``prev_encode``/``prev_send`` are the encode+send durations of
        the *previous* reply on this connection -- a reply cannot carry
        the cost of encoding itself, so those two phases ride one
        request late (and are absent from the very first reply).
        """
        tracer = self.tracer
        if tracer is not None:
            tracer.record("recv", t_recv1 - t_recv0, start=t_recv0)
            tracer.record("decode", t_decoded - t_recv1, start=t_recv1)
            tracer.record("step", t_stepped - t_decoded, start=t_decoded)
            if prev_encode:
                tracer.record("encode", prev_encode)
            if prev_send:
                tracer.record("send", prev_send)
            tick = trace.get("tick") if isinstance(trace, dict) else None
            tracer.end_tick(int(tick) if tick is not None else self.engine.tick)
        if self.metrics is not None:
            phase = self._phase_seconds
            phase.labels(phase="recv").observe(t_recv1 - t_recv0)
            phase.labels(phase="decode").observe(t_decoded - t_recv1)
            phase.labels(phase="step").observe(t_stepped - t_decoded)
            if prev_encode:
                phase.labels(phase="encode").observe(prev_encode)
            if prev_send:
                phase.labels(phase="send").observe(prev_send)
        if not isinstance(trace, dict) or not trace.get("sampled", True):
            return None
        return {
            "tick": trace.get("tick"),
            "recv": [t_recv0, t_recv1],
            "decoded": t_decoded,
            "stepped": t_stepped,
            "prev_encode": prev_encode,
            "prev_send": prev_send,
        }

    def _handle(self, command: str, payload):
        engine = self.engine
        if command == "step":
            return self._step(payload)
        if command == "snapshot":
            # A subset request captures only the named streams --
            # rebalance migration cost is O(moved state), not O(all).
            return RegistrySnapshot.capture(
                engine.registry, tick=engine.tick, stream_ids=payload
            )
        if command == "delta":
            # Streams dirty since the shard's last persisted epoch -- the
            # incremental-snapshot cost is O(touched), not O(resident).
            from repro.serving.state import DeltaSnapshot

            return DeltaSnapshot.capture(
                engine.registry, tick=engine.tick, since_tick=payload
            )
        if command == "restore":
            engine.restore(payload)
            return None
        if command == "inject":
            payload.inject_into(engine.registry)
            return None
        if command == "discard":
            for stream_id in payload:
                engine.registry.discard(stream_id)
            return None
        if command == "ids":
            return engine.registry.stream_ids
        if command == "stats":
            statistics = engine.registry.statistics
            return {
                "created": statistics.created,
                "evicted": statistics.evicted,
                "series_started": statistics.series_started,
                "n_streams": len(engine.registry),
                "tick": engine.tick,
            }
        raise ClusterError(f"unknown worker command {command!r}")

    def _step(self, payload):
        from repro.serving.cluster import encode_step_results
        from repro.serving.engine import StreamFrame

        engine = self.engine
        if payload is None:  # frameless tick: time still passes on this shard
            engine.step_batch([])
            return None
        ids = payload["ids"]
        X = payload["X"]
        Q = payload["Q"]
        new_series = [bool(flag) for flag in payload["new_series"]]
        scope = payload["scope"]
        frames = [
            StreamFrame(
                stream_id=ids[i],
                model_input=X[i],
                stateless_quality_values=Q[i],
                new_series=new_series[i],
                scope_factors=scope[i] if scope is not None else None,
            )
            for i in range(len(ids))
        ]
        return encode_step_results(engine.step_batch(frames))


# ---------------------------------------------------------------------------
# Byte channels + the shared worker loop
# ---------------------------------------------------------------------------

class PipeChannel:
    """Message framing over a multiprocessing ``Connection``.

    With a :class:`~repro.serving.protocol.BufferPool` attached,
    :meth:`send_frame` assembles gather lists into a reused pooled
    buffer (one copy per segment, zero allocations in steady state)
    instead of joining them into fresh bytes per frame.
    """

    def __init__(self, conn, pool=None) -> None:
        self._conn = conn
        self.pool = pool

    def send_bytes(self, data: bytes) -> None:
        self._conn.send_bytes(data)

    def send_frame(self, parts) -> None:
        """Vectored send of a :class:`FrameSegments` gather list."""
        if self.pool is None:
            self._conn.send_bytes(parts.join())
            return
        frame = self.pool.encode_into(parts)
        try:
            # send_bytes blocks until the kernel owns the bytes, so the
            # buffer is reusable the moment it returns.
            self._conn.send_bytes(frame.view)
        finally:
            frame.release()

    def recv_bytes(self) -> bytes:
        return self._conn.recv_bytes()

    def set_timeout(self, timeout: float | None) -> None:
        """No-op: pipe peers are our own child processes."""

    def close(self) -> None:
        self._conn.close()


#: Refuse messages larger than this before allocating their buffer.  A
#: TCP listener reads the 4-byte length prefix from unauthenticated
#: peers; without a cap, 4 junk bytes could demand a 4 GiB allocation
#: before the codec's magic/version checks ever run.  1 GiB comfortably
#: covers real snapshot frames (the largest message class) while
#: bounding what a stray connection can cost.
MAX_MESSAGE_BYTES = 1 << 30


class SocketChannel:
    """Length-prefixed message framing over a TCP socket."""

    _LEN = struct.Struct(">I")

    #: Advertised send-size cap, honored by endpoints at prepare() time
    #: so over-cap payloads fail before anything is transmitted.
    max_message_bytes = MAX_MESSAGE_BYTES

    def __init__(self, sock: socket.socket) -> None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # Keepalive turns a silent peer loss (network partition, powered-
        # off host -- no FIN/RST ever arrives) into a detectable socket
        # error at the OS's probe cadence, instead of an indefinite recv.
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
        self._sock = sock

    def send_bytes(self, data: bytes) -> None:
        # The receive side refuses over-cap messages by dropping the
        # connection; reject here first so an oversized (but legitimate)
        # frame surfaces as a clear error instead of a phantom worker
        # death on the peer.
        if len(data) > MAX_MESSAGE_BYTES:
            raise ValidationError(
                f"refusing to send {len(data)}-byte message (cap "
                f"{MAX_MESSAGE_BYTES}); snapshot/restore in smaller pieces"
            )
        # sendall retries partial sends (a signal mid-transfer must not
        # truncate a frame).  Small frames ride in one syscall with the
        # prefix; large ones skip the copy that joining would cost.
        header = self._LEN.pack(len(data))
        if len(data) <= 1 << 16:
            self._sock.sendall(header + data)
        else:
            self._sock.sendall(header)
            self._sock.sendall(data)

    def send_frame(self, parts) -> None:
        """Vectored send: length prefix + every segment via ``sendmsg``,
        so array payloads go kernel-ward straight from the numpy buffers
        without ever being joined into one Python-side copy."""
        if parts.nbytes > MAX_MESSAGE_BYTES:
            raise ValidationError(
                f"refusing to send {parts.nbytes}-byte message (cap "
                f"{MAX_MESSAGE_BYTES}); snapshot/restore in smaller pieces"
            )
        buffers = [self._LEN.pack(parts.nbytes)]
        buffers += [s for s in parts.segments if len(s)]
        total = parts.nbytes + self._LEN.size
        sent = self._sock.sendmsg(buffers)
        while sent < total:
            # Partial send (signal, full socket buffer): drop whole
            # buffers already gone, slice the one cut mid-way, retry.
            while buffers and sent >= len(buffers[0]):
                sent -= len(buffers[0])
                del buffers[0]
            if sent:
                buffers[0] = memoryview(buffers[0])[sent:]
            total = sum(len(b) for b in buffers)
            sent = self._sock.sendmsg(buffers)

    def recv_bytes(self) -> bytes:
        (length,) = self._LEN.unpack(self._recv_exact(self._LEN.size))
        if length > MAX_MESSAGE_BYTES:
            # EOFError (not ProtocolError) so both sides treat the
            # connection as dead without allocating the claimed buffer.
            raise EOFError(
                f"refusing {length}-byte message (cap {MAX_MESSAGE_BYTES})"
            )
        # Hand the receive buffer to the decoder as-is: decode_frame
        # wraps it in a memoryview and copies each array out, so a
        # whole-frame bytes() duplicate here would be pure waste.
        return self._recv_exact(length)

    def _recv_exact(self, n: int) -> bytearray:
        buffer = bytearray(n)
        view = memoryview(buffer)
        received = 0
        while received < n:
            chunk = self._sock.recv_into(view[received:], n - received)
            if chunk == 0:
                raise EOFError("socket closed mid-message")
            received += chunk
        return buffer

    def set_timeout(self, timeout: float | None) -> None:
        self._sock.settimeout(timeout)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


_CHANNEL_ERRORS = (EOFError, BrokenPipeError, ConnectionError, OSError)


def _handle_hello(engine_factory, payload, metrics=None, tracer=None):
    """The one implementation of the hello handshake's worker side:
    build the engine, join it at the cluster's tick, wrap it in a
    servicer.  Shared by the byte-transport loop and the in-proc
    endpoint so hello semantics can never drift between transports."""
    engine = engine_factory()
    engine._tick = int(payload["initial_tick"])
    return WorkerServicer(engine, metrics=metrics, tracer=tracer)


def _try_send(channel, data: bytes) -> bool:
    """Send a reply, tolerating a peer that already went away.

    A client may disconnect at any instant (SIGKILLed parent, dropped
    probe); its RST must end *this connection*, never the worker's serve
    loop.  Returns whether the send went through.
    """
    try:
        channel.send_bytes(data)
        return True
    except _CHANNEL_ERRORS:
        return False


def send_channel_frame(channel, parts) -> None:
    """Send a :class:`FrameSegments` the best way ``channel`` supports:
    its vectored ``send_frame`` when present, else one joined
    ``send_bytes`` (the compatibility path for plain byte channels)."""
    send_frame = getattr(channel, "send_frame", None)
    if send_frame is not None:
        send_frame(parts)
    else:
        channel.send_bytes(parts.join())


def _try_send_frame(channel, parts) -> bool:
    """:func:`_try_send` for gather lists."""
    try:
        send_channel_frame(channel, parts)
        return True
    except _CHANNEL_ERRORS:
        return False


def serve_connection(
    channel,
    engine_factory: Callable,
    handshake_timeout: float | None = None,
    metrics=None,
    tracer=None,
) -> str:
    """Serve one cluster connection on a byte channel until close/EOF.

    Protocol: the parent's first request must be ``hello`` (carrying the
    cluster tick the engine joins at); the engine is built fresh per
    connection, so one long-lived worker process can serve successive
    clusters with clean state each time.  ``handshake_timeout`` bounds
    the wait for that first request -- a connection that never speaks (a
    port scanner, a health probe) is dropped instead of wedging the
    worker.

    Returns how the connection ended, so :func:`serve_worker` can count
    the right thing:

    * ``"stray"`` -- no handshake ever completed (scanner, probe, or a
      peer that vanished before saying hello);
    * ``"lost"`` -- a real cluster was being served but its connection
      died without an orderly ``close`` (client crash, network loss).
      The abandoned engine state is discarded; a failover reconnect
      will restore fresh state through the protocol;
    * ``"served"`` -- the session ended with an orderly ``close`` (or
      the hello was answered with an error: the cluster asked and got
      its definitive answer).

    With ``metrics`` attached (``serve-worker --metrics-port``) the
    servicer gets its own per-connection
    :class:`~repro.serving.observability.tracing.TickTracer` and every
    request's recv/decode/step/encode/send phases are timed; a request
    whose trace context asks for sampling gets those timings piggybacked
    on its reply's ``_telemetry`` meta.  A hello carrying ``_clock``
    is answered with this worker's monotonic clock so the cluster can
    rebase the piggybacked timestamps onto its own timeline.

    A request tagged with the reserved ``_tick`` meta key gets the tag
    echoed on its reply, so a windowed parent can pair replies with the
    requests it has in flight.  Untagged requests get untagged replies,
    byte-identical to a pre-windowing worker's.
    """
    try:
        channel.set_timeout(handshake_timeout)
        command, payload = decode_request(channel.recv_bytes())
        channel.set_timeout(None)
    except _CHANNEL_ERRORS:
        return "stray"  # peer went away (or stayed silent) pre-handshake
    except Exception as error:
        _try_send(
            channel,
            encode_reply("hello", ("error", type(error).__name__, str(error))),
        )
        return "stray"
    if command != "hello":
        _try_send(
            channel,
            encode_reply(
                command,
                ("error", "ClusterError", f"expected hello, got {command!r}"),
            ),
        )
        return "stray"
    if tracer is None and metrics is not None:
        from repro.serving.observability.tracing import TickTracer

        tracer = TickTracer()
    try:
        servicer = _handle_hello(
            engine_factory, payload, metrics=metrics, tracer=tracer
        )
    except Exception as error:  # surfaced by the parent's hello reply
        _try_send(
            channel,
            encode_reply("hello", ("error", type(error).__name__, str(error))),
        )
        return "served"  # a real cluster asked; it got its (error) answer
    hello_telemetry = (
        {"clock": time.perf_counter()} if payload.get("_clock") else None
    )
    if not _try_send(
        channel,
        encode_reply(
            "hello", ("ok", servicer.engine_shape()), telemetry=hello_telemetry
        ),
    ):
        return "lost"

    clock = time.perf_counter
    instrumented = tracer is not None or metrics is not None
    prev_encode = prev_send = 0.0
    while True:
        t_recv0 = clock()
        try:
            data = channel.recv_bytes()
        except _CHANNEL_ERRORS:  # parent went away; shut down quietly
            return "lost"
        t_recv1 = clock()
        try:
            command, payload, trace, tick = decode_request_full(data)
        except Exception as error:
            if not _try_send(
                channel,
                encode_reply(
                    "hello",
                    ("error", "ClusterError", f"undecodable request ({error})"),
                ),
            ):
                return "lost"
            continue
        t_decoded = clock()
        if command == "close":
            _try_send(channel, encode_reply("close", ("ok", None)))
            return "served"
        try:
            reply = ("ok", servicer.handle(command, payload))
        except Exception as error:
            reply = ("error", type(error).__name__, str(error))
        telemetry = None
        if reply[0] == "ok" and (trace is not None or instrumented):
            telemetry = servicer.note_request(
                trace, t_recv0, t_recv1, t_decoded, clock(),
                prev_encode, prev_send,
            )
        try:
            t_encode0 = clock()
            encoded = encode_reply_parts(
                command, reply, telemetry=telemetry, tick=tick
            )
            t_encode1 = clock()
            sent = _try_send_frame(channel, encoded)
            prev_encode = t_encode1 - t_encode0
            prev_send = clock() - t_encode1
        except ValidationError as error:
            # The reply would not fit the wire (e.g. an over-cap
            # snapshot); report that instead of dropping the connection.
            sent = _try_send(
                channel,
                encode_reply(command, ("error", "ClusterError", str(error))),
            )
        if not sent:
            return "lost"


# ---------------------------------------------------------------------------
# Endpoints
# ---------------------------------------------------------------------------

class WorkerEndpoint:
    """Parent-side handle of one shard worker (any transport).

    The protocol is strict request/reply per request, FIFO per
    connection: each :meth:`send` owes exactly one :meth:`recv`, and
    replies come back in send order (the worker serves one request at a
    time).  A windowed sender may therefore have several requests
    outstanding -- endpoints queue the per-request bookkeeping and pop
    it reply by reply.  Reply tuples are ``("ok", payload)`` or
    ``("error", name, message)``; ``alive`` turns False the moment the
    peer is observed dead or out of protocol.

    ``trace_context`` is a one-shot slot: set it before a send and that
    request carries the context in its reserved ``_trace`` meta (then
    the slot clears).  ``tick_tag`` is the same one-shot seam for the
    reserved ``_tick`` meta: the request is tagged with it, the worker
    echoes the tag, and the endpoint verifies the echo against the send
    order (``last_reply_tick`` exposes the echo after each recv).
    ``last_telemetry`` holds whatever the most recent reply piggybacked
    in ``_telemetry`` (``None`` otherwise) -- the attribute seams keep
    tracing and windowing out of every send/recv signature.
    """

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.alive = True
        self.trace_context = None
        self.tick_tag = None
        self.last_telemetry = None
        self.last_reply_tick = None

    def send(self, command: str, payload=None) -> None:
        raise NotImplementedError

    def recv(self) -> tuple:
        raise NotImplementedError

    def recv_value(self):
        reply = self.recv()
        if reply[0] != "ok":
            raise_worker_error(self.shard, reply[1], reply[2])
        return reply[1]

    def request(self, command: str, payload=None):
        self.send(command, payload)
        return self.recv_value()

    def prepare(self, command: str, payload=None):
        """Do the fallible encoding work of a send without transmitting.

        Broadcasts that must be all-or-nothing (restore) prepare every
        worker's message first, so an encode failure can never leave the
        cluster half-applied.  Returns an opaque token for
        :meth:`send_prepared`.
        """
        return (command, payload)

    def send_prepared(self, token) -> None:
        """Transmit a token from :meth:`prepare` (only transport-level
        failures remain possible)."""
        command, payload = token
        self.send(command, payload)

    def set_timeout(self, timeout: float | None) -> None:
        """Bound the next receives (handshakes); no-op by default."""

    def shutdown(self, timeout: float = 5.0) -> None:
        raise NotImplementedError


class InprocEndpoint(WorkerEndpoint):
    """Same-process loopback: commands dispatch directly, no encoding.

    ``send`` only enqueues; the command executes on ``recv``, mirroring
    the real transports' timing (the caller's send window never includes
    worker compute).  Replies travel as protocol tuples with exceptions
    degraded to ``(name, message)`` pairs, so error behavior is
    indistinguishable from the byte transports.

    Queued sends keep their one-shot ``trace_context``/``tick_tag``
    captured at send time, exactly as a byte transport encodes them into
    the outgoing frame -- a windowed sender's second request must not
    steal (or clear) the first one's context.
    """

    def __init__(self, shard: int, engine_factory: Callable) -> None:
        super().__init__(shard)
        self._engine_factory = engine_factory
        self._servicer: WorkerServicer | None = None
        self._pending: deque = deque()

    def send(self, command: str, payload=None) -> None:
        trace, self.trace_context = self.trace_context, None
        tick, self.tick_tag = self.tick_tag, None
        self._pending.append((command, payload, trace, tick))

    def recv(self) -> tuple:
        if not self._pending:
            return (
                "error",
                "ClusterError",
                "protocol violation: recv with no request in flight",
            )
        command, payload, trace, tick = self._pending.popleft()
        self.last_telemetry = None
        self.last_reply_tick = tick
        try:
            if command == "hello":
                self._servicer = _handle_hello(self._engine_factory, payload)
                return ("ok", self._servicer.engine_shape())
            if command == "close":
                return ("ok", None)
            if self._servicer is None:
                raise ClusterError("worker received a command before hello")
            if trace is not None and trace.get("sampled", True):
                # No wire, no recv/decode/encode phases -- but the same
                # telemetry shape as the byte transports, so a merged
                # timeline is structurally identical across transports.
                t0 = time.perf_counter()
                result = self._servicer.handle(command, payload)
                t1 = time.perf_counter()
                self.last_telemetry = {
                    "tick": trace.get("tick"),
                    "recv": [t0, t0],
                    "decoded": t0,
                    "stepped": t1,
                    "prev_encode": 0.0,
                    "prev_send": 0.0,
                }
                return ("ok", result)
            return ("ok", self._servicer.handle(command, payload))
        except Exception as error:
            return ("error", type(error).__name__, str(error))

    def shutdown(self, timeout: float = 5.0) -> None:
        self._servicer = None
        self.alive = False

    @property
    def engine(self):
        """The live worker engine (testing/introspection hook)."""
        return self._servicer.engine if self._servicer is not None else None


class ChannelEndpoint(WorkerEndpoint):
    """Endpoint speaking codec frames over a byte channel (pipe or TCP).

    Sends queue their ``(command, tick)`` bookkeeping FIFO, so a
    windowed sender can have several requests on the wire; each recv
    pops the oldest entry, decodes against that command, and verifies
    the worker's ``_tick`` echo against the tag the request carried
    (a mismatched echo is an out-of-protocol peer, same as a bad kind).
    """

    def __init__(self, shard: int, channel) -> None:
        super().__init__(shard)
        self._channel = channel
        self._pending: deque = deque()
        self._shut_down = False

    def send(self, command: str, payload=None) -> None:
        self.send_prepared(self.prepare(command, payload))

    def prepare(self, command: str, payload=None):
        trace, self.trace_context = self.trace_context, None
        tick, self.tick_tag = self.tick_tag, None
        parts = encode_request_parts(command, payload, trace=trace, tick=tick)
        limit = getattr(self._channel, "max_message_bytes", None)
        if limit is not None and parts.nbytes > limit:
            raise ValidationError(
                f"{command!r} message of {parts.nbytes} bytes exceeds the "
                f"transport cap ({limit}); split the payload"
            )
        return (command, tick, parts)

    def send_prepared(self, token) -> None:
        command, tick, parts = token
        try:
            send_channel_frame(self._channel, parts)
        except _CHANNEL_ERRORS as error:
            self.alive = False
            raise ClusterWorkerError(
                f"shard {self.shard} worker is gone ({error})", shard=self.shard
            ) from None
        self._pending.append((command, tick))

    def recv(self) -> tuple:
        command, expected_tick = (
            self._pending.popleft() if self._pending else (None, None)
        )
        self.last_telemetry = None
        self.last_reply_tick = None
        try:
            data = self._channel.recv_bytes()
        except _CHANNEL_ERRORS:
            self.alive = False
            return ("error", "ClusterWorkerError", "worker died mid-request")
        try:
            reply, self.last_telemetry, tick = decode_reply_full(
                data, command or ""
            )
        except Exception as error:  # out-of-protocol peer: poisoned channel
            self.alive = False
            return (
                "error",
                "ClusterWorkerError",
                f"out-of-protocol reply ({error})",
            )
        if (
            reply[0] == "ok"
            and expected_tick is not None
            and tick != expected_tick
        ):
            # The worker answered out of send order (or dropped the
            # echo): replies can no longer be paired with requests, so
            # the channel is as unusable as one speaking garbage.
            self.alive = False
            return (
                "error",
                "ClusterWorkerError",
                f"out-of-protocol reply (tick echo {tick!r} does not match "
                f"in-flight tick {expected_tick!r})",
            )
        self.last_reply_tick = tick
        return reply

    def set_timeout(self, timeout: float | None) -> None:
        self._channel.set_timeout(timeout)

    def shutdown(self, timeout: float = 5.0) -> None:
        # Idempotent: the controller's context manager, ShardedEngine's
        # close(), and __del__ may all race to tear a worker down; only
        # the first call does the goodbye + close work.
        if self._shut_down:
            return
        self._shut_down = True
        if self.alive:
            try:
                # Bound the goodbye: a wedged peer must not turn close()
                # into an indefinite hang (keepalive is far too slow).
                # Channel errors too: a connection severed behind our
                # back (fault injection, network loss) must not make
                # close() raise on the goodbye it can no longer deliver.
                self._channel.set_timeout(timeout)
                self.send("close")
                self.recv()
            except (ClusterError, *_CHANNEL_ERRORS):
                pass
        self._channel.close()
        self.alive = False


class PipeEndpoint(ChannelEndpoint):
    """Channel endpoint plus the child process it talks to."""

    def __init__(self, shard: int, channel, process) -> None:
        super().__init__(shard, channel)
        self.process = process

    def shutdown(self, timeout: float = 5.0) -> None:
        super().shutdown(timeout)
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout)


# ---------------------------------------------------------------------------
# Transports
# ---------------------------------------------------------------------------

class Transport:
    """Builds one :class:`WorkerEndpoint` per shard."""

    #: Short transport name, reported in CLI/benchmark artifacts.
    name: str = "abstract"

    #: True when payloads cross the wire codec, so stream ids must be
    #: JSON scalars; the cluster rejects exotic ids before fan-out.
    requires_wire_ids: bool = True

    #: Bound (seconds) the cluster puts on each worker's hello reply;
    #: None waits forever (in-proc and pipe workers are our own).
    handshake_timeout: float | None = None

    #: True when workers build their engines from their *own*
    #: configuration (TCP serve-worker processes) rather than from the
    #: cluster's factory; the cluster then fingerprints its local factory
    #: once and rejects workers whose engine config differs.
    workers_self_configured: bool = False

    def connect(self, shard: int, engine_factory: Callable) -> WorkerEndpoint:
        """Bring up (or reach) the worker for ``shard`` and return its
        endpoint.  The caller performs the hello handshake."""
        raise NotImplementedError

    def respawn(
        self, endpoint: WorkerEndpoint, shard: int, engine_factory: Callable
    ) -> WorkerEndpoint:
        """Replace a dead (or wedged) worker endpoint with a fresh one.

        The failover primitive: tear the old endpoint down -- reaping a
        corpse must never block its replacement, so shutdown failures
        are swallowed -- then bring up a new worker exactly as
        :meth:`connect` would.  For pipe workers that is a re-fork; for
        TCP it is a reconnect to the same ``serve-worker`` address
        (``connect`` already retries with backoff until
        ``connect_timeout``, covering a worker that a supervisor is
        still restarting).  The caller performs the hello handshake on
        the returned endpoint, as after any ``connect``.
        """
        try:
            endpoint.shutdown()
        except Exception:
            pass
        return self.connect(shard, engine_factory)

    def max_shards(self) -> int | None:
        """Upper bound on shards this transport can place (None = any)."""
        return None


class InprocTransport(Transport):
    """All shards live in the calling process.

    The fast path for 1-shard clusters and the hermetic path for tests:
    no fork, no sockets, no serialization -- but byte-for-byte the same
    results and error mapping as the real transports.
    """

    name = "inproc"
    requires_wire_ids = False

    def connect(self, shard: int, engine_factory: Callable) -> WorkerEndpoint:
        return InprocEndpoint(shard, engine_factory)


def _default_mp_context(start_method: str | None):
    """The multiprocessing context shared by process-spawning helpers:
    ``fork`` when the platform has it (closures over in-memory models
    need no pickling), else ``spawn``."""
    if start_method is None:
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else "spawn"
    return multiprocessing.get_context(start_method)


def _pipe_worker_main(conn, engine_factory) -> None:
    """Entry point of one pipe shard process."""
    channel = PipeChannel(conn, pool=BufferPool())
    try:
        serve_connection(channel, engine_factory)
    finally:
        conn.close()


class PipeTransport(Transport):
    """One child process per shard, codec frames over multiprocessing pipes.

    Defaults to the ``fork`` start method when the platform has it (the
    engine factory and its captured models need not be picklable); pass
    ``start_method="spawn"`` with a module-level factory elsewhere.

    Every shard's parent-side channel shares this transport's
    :class:`~repro.serving.protocol.BufferPool`, so the steady-state
    fan-out reuses a handful of send buffers across all shards and
    ``pool.stats()`` aggregates the whole cluster's codec copies.
    """

    name = "pipe"

    def __init__(self, start_method: str | None = None) -> None:
        self._context = _default_mp_context(start_method)
        self.pool = BufferPool()

    def connect(self, shard: int, engine_factory: Callable) -> WorkerEndpoint:
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_pipe_worker_main,
            args=(child_conn, engine_factory),
            daemon=True,
            name=f"repro-shard-{shard}",
        )
        process.start()
        child_conn.close()
        return PipeEndpoint(
            shard, PipeChannel(parent_conn, pool=self.pool), process
        )


def parse_address(address) -> tuple:
    """Normalize ``"host:port"`` strings (or ``(host, port)`` pairs)."""
    if isinstance(address, (tuple, list)) and len(address) == 2:
        return str(address[0]), int(address[1])
    host, sep, port = str(address).strip().rpartition(":")
    if not sep or not host:
        raise ValidationError(
            f"worker address {address!r} is not of the form HOST:PORT"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ValidationError(
            f"worker address {address!r} has a non-numeric port"
        ) from None


class TcpTransport(Transport):
    """Shards served by remote ``repro serve-worker`` processes over TCP.

    Parameters
    ----------
    addresses:
        One ``"host:port"`` (or ``(host, port)``) per shard, in shard
        order.  A cluster of N shards uses the first N addresses; growing
        past the list raises.
    connect_timeout:
        Seconds to keep retrying the initial connect -- covers workers
        still warming up (building models) when the cluster starts.  The
        same bound applies to each worker's hello reply, so a worker that
        accepts but never answers (e.g. the same address listed twice
        against a sequential worker) fails the constructor instead of
        deadlocking it.
    """

    name = "tcp"
    workers_self_configured = True

    def __init__(self, addresses: Sequence, connect_timeout: float = 30.0) -> None:
        self.addresses = [parse_address(a) for a in addresses]
        if not self.addresses:
            raise ValidationError("TcpTransport needs at least one worker address")
        self.connect_timeout = connect_timeout
        self.handshake_timeout = connect_timeout

    def max_shards(self) -> int | None:
        return len(self.addresses)

    def connect(self, shard: int, engine_factory: Callable) -> WorkerEndpoint:
        if shard >= len(self.addresses):
            raise ClusterError(
                f"tcp transport has {len(self.addresses)} worker address(es); "
                f"cannot place shard {shard} (pass more worker addresses)"
            )
        host, port = self.addresses[shard]
        deadline = time.monotonic() + self.connect_timeout
        while True:
            try:
                sock = socket.create_connection((host, port), timeout=5.0)
                break
            except socket.gaierror as error:
                # A name that does not resolve is a configuration error,
                # not a worker warming up -- fail immediately.
                raise ClusterWorkerError(
                    f"cannot resolve worker address {host}:{port} for "
                    f"shard {shard} ({error})",
                    shard=shard,
                ) from None
            except OSError as error:
                if time.monotonic() >= deadline:
                    raise ClusterWorkerError(
                        f"cannot reach worker for shard {shard} at "
                        f"{host}:{port} within {self.connect_timeout}s ({error})",
                        shard=shard,
                    ) from None
                time.sleep(0.05)
        sock.settimeout(None)
        return ChannelEndpoint(shard, SocketChannel(sock))


def resolve_transport(transport=None, start_method: str | None = None) -> Transport:
    """Normalize a transport argument into a :class:`Transport`.

    Accepts a :class:`Transport` instance, ``None``/``"pipe"`` (the
    single-host default), ``"inproc"``, ``"shm"`` (shared-memory rings),
    or ``"tcp:HOST:PORT[,HOST:PORT...]"``.  ``start_method`` applies to
    the process-spawning transports (pipe, shm) only.
    """
    if isinstance(transport, Transport):
        return transport
    if transport is None or transport == "pipe":
        return PipeTransport(start_method=start_method)
    if transport == "inproc":
        return InprocTransport()
    if transport == "shm":
        from repro.serving.shm import ShmTransport

        return ShmTransport(start_method=start_method)
    if isinstance(transport, str) and transport.startswith("tcp:"):
        return TcpTransport(transport[len("tcp:"):].split(","))
    raise ValidationError(
        f"unknown transport {transport!r}; expected 'inproc', 'pipe', "
        "'shm', 'tcp:HOST:PORT,...', or a Transport instance"
    )


# ---------------------------------------------------------------------------
# Worker-side TCP server
# ---------------------------------------------------------------------------

def serve_worker(
    engine_factory: Callable,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    max_connections: int = 0,
    ready_callback: Callable[[int], None] | None = None,
    handshake_timeout: float = 30.0,
    metrics=None,
) -> int:
    """Run one TCP shard worker: accept cluster connections, serve each.

    Connections are served sequentially -- a cluster holds its connection
    for its whole lifetime, and each new connection gets a fresh engine
    from the factory (state arrives via the restore/inject protocol, never
    lingers).  A connection that sends no ``hello`` within
    ``handshake_timeout`` seconds (port scanners, health probes) is
    dropped without wedging the worker or counting toward the limit.
    ``port=0`` binds an ephemeral port; ``ready_callback`` receives the
    bound port before the first accept (handy under port 0).
    ``max_connections > 0`` exits after that many *orderly-closed*
    sessions (lets CI scripts ``wait`` instead of killing workers): a
    session whose client dies mid-run without a ``close`` does not
    consume the budget, so the worker is still listening when the
    cluster's failover reconnects.  Returns the number of sessions
    served to an orderly close.

    ``metrics`` (an optional
    :class:`~repro.serving.observability.metrics.MetricsRegistry`,
    typically exposed over HTTP by the ``serve-worker --metrics-port``
    CLI path) makes every servicer publish per-command counters and
    gauges, plus a connection-outcome counter here.
    """
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    connections = None
    if metrics is not None:
        connections = metrics.counter(
            "repro_worker_connections_total",
            "Cluster connections accepted, by how each ended.",
            labels=("status",),
        )
    served = 0
    try:
        listener.bind((host, port))
        listener.listen(16)
        if ready_callback is not None:
            ready_callback(listener.getsockname()[1])
        while max_connections <= 0 or served < max_connections:
            sock, _ = listener.accept()
            channel = SocketChannel(sock)
            try:
                # A misbehaving connection (crafted frames, surprise
                # disconnects) must never take the listener down with it:
                # one client's failure ends one connection, nothing more.
                status = serve_connection(
                    channel,
                    engine_factory,
                    handshake_timeout=handshake_timeout,
                    metrics=metrics,
                )
            except Exception:
                status = "served"  # conservatively count the lost slot
            finally:
                channel.close()
            if connections is not None:
                connections.labels(status=status).inc()
            if status == "served":
                served += 1
    finally:
        listener.close()
    return served


def _local_worker_main(
    engine_factory, index, port_queue, host, max_connections, handshake_timeout
) -> None:
    serve_worker(
        engine_factory,
        host,
        0,
        max_connections=max_connections,
        ready_callback=lambda port: port_queue.put((index, port)),
        handshake_timeout=handshake_timeout,
    )


def launch_local_workers(
    engine_factory: Callable,
    n_workers: int,
    *,
    host: str = "127.0.0.1",
    max_connections: int = 0,
    start_method: str | None = None,
    handshake_timeout: float = 30.0,
) -> tuple:
    """Start ``n_workers`` loopback TCP workers as child processes.

    The in-test/benchmark convenience behind the multi-machine story:
    each child runs :func:`serve_worker` on an ephemeral port, and the
    returned ``(addresses, processes)`` plug straight into
    :class:`TcpTransport`.  Uses ``fork`` by default so closures over
    in-memory models work, exactly like :class:`PipeTransport`.  Reap
    with :func:`stop_local_workers`.
    """
    context = _default_mp_context(start_method)
    port_queue = context.Queue()
    processes = []
    try:
        for index in range(n_workers):
            process = context.Process(
                target=_local_worker_main,
                args=(
                    engine_factory,
                    index,
                    port_queue,
                    host,
                    max_connections,
                    handshake_timeout,
                ),
                daemon=True,
            )
            process.start()
            processes.append(process)
        # Readiness order is scheduler-dependent; report (index, port)
        # pairs so addresses[i] always belongs to processes[i].
        ports = dict(port_queue.get(timeout=30.0) for _ in processes)
        addresses = [(host, ports[index]) for index in range(n_workers)]
    except Exception:
        stop_local_workers(processes)
        raise
    return addresses, processes


def stop_local_workers(processes, timeout: float = 5.0) -> None:
    """Terminate and join workers started by :func:`launch_local_workers`."""
    for process in processes:
        if process.is_alive():
            process.terminate()
    for process in processes:
        process.join(timeout)
