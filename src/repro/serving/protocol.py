"""Versioned, pickle-free wire codec for the cluster worker protocol.

Every message between a :class:`~repro.serving.cluster.ShardedEngine`
parent and a shard worker -- step payloads, step results, snapshot /
restore / inject / discard, lifecycle handshakes, and error frames -- is
one self-describing binary *frame*, identical on every transport (pipe,
TCP, or the in-proc loopback when it opts into encoding):

```
+-------+---------+------------+----------------+------------------------+
| magic | version | header len |  JSON header   |  raw array segments    |
| RPWC  |  u16 BE |   u32 BE   |  (utf-8 JSON)  |  (C-order little/big   |
|  (4)  |   (2)   |    (4)     |                |   per declared dtype)  |
+-------+---------+------------+----------------+------------------------+
```

The JSON header carries the frame ``kind`` (request / reply tag), a
``meta`` object of JSON scalars (stream ids, ticks, monitor states, scope
factors), and an ``arrays`` manifest -- name, dtype string, and shape per
numpy payload -- in segment order.  Numeric payloads never round-trip
through JSON: they are appended as raw C-contiguous bytes with an
explicit-endianness dtype, so a decoded array is bitwise-identical to the
encoded one and results merged by the parent are bitwise-identical across
transports (and to the single-process engine).

Why not pickle?  Pickle couples both endpoints to identical class layouts,
executes arbitrary callables on load (unacceptable for a TCP listener),
and hides payload cost.  This codec is a closed vocabulary: JSON scalars
plus typed arrays, versioned (:data:`PROTOCOL_VERSION`) so incompatible
peers fail loudly at the first frame instead of corrupting registry state.

Layering: :func:`encode_frame` / :func:`decode_frame` know only the frame
format; :func:`encode_request` / :func:`decode_request` and
:func:`encode_reply` / :func:`decode_reply` map each worker command's
payload onto (meta, arrays) and back.  Transports move opaque ``bytes``.

Zero-copy path: :func:`encode_frame_parts` stops one step earlier than
:func:`encode_frame` -- it returns a :class:`FrameSegments` holding the
packed prefix + header plus a borrowed ``memoryview`` per C-contiguous
array segment, without materializing the joined frame.  Channels with a
vectored ``send_frame`` write those segments straight to the wire (TCP
``sendmsg``, shm ring slots), and :class:`BufferPool` assembles them into
reusable size-classed buffers for channels that need one contiguous
send -- either way each array's payload is copied exactly once.  The
joined bytes are identical to :func:`encode_frame` output byte-for-byte.
"""

from __future__ import annotations

import json
import math
import struct
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ProtocolError, ValidationError

__all__ = [
    "PROTOCOL_VERSION",
    "TELEMETRY_META_KEY",
    "TICK_META_KEY",
    "TRACE_META_KEY",
    "WIRE_MAGIC",
    "BufferPool",
    "Frame",
    "FrameSegments",
    "PooledFrame",
    "encode_frame",
    "encode_frame_parts",
    "decode_frame",
    "encode_request",
    "encode_request_parts",
    "decode_request",
    "decode_request_full",
    "decode_request_traced",
    "encode_reply",
    "encode_reply_parts",
    "decode_reply",
    "decode_reply_full",
    "decode_reply_telemetry",
    "require_wire_id",
    "sanitize_wire_scope",
]

#: Wire protocol version; bumped on any frame-format or vocabulary change.
PROTOCOL_VERSION = 1

#: Leading magic of every frame ("RePro Wire Codec").
WIRE_MAGIC = b"RPWC"

#: Reserved meta key carrying a request's trace context (tick id, parent
#: span, sampling flag).  Stripped before command decoders run, so
#: payloads never see it; workers that predate it ignore it entirely.
TRACE_META_KEY = "_trace"

#: Reserved meta key carrying a reply's piggybacked worker telemetry
#: (per-request phase timings, or the worker clock on ``hello``).
#: Stripped symmetrically on decode.
TELEMETRY_META_KEY = "_telemetry"

#: Reserved meta key tagging a frame with its tick number.  Under a
#: pipelined (windowed) tick loop more than one step request can be in
#: flight per shard; the parent tags each request with the tick it
#: belongs to and the worker echoes the tag on its reply, so the parent
#: can assert that replies pair up with requests in admitted order.
#: Stripped before command decoders run; absent frames encode
#: byte-identically to a pre-windowing peer's.
TICK_META_KEY = "_tick"

_PREFIX = struct.Struct(">4sHI")  # magic, version, header length

#: Stream ids (and all other meta values) must survive a JSON round trip.
WIRE_ID_TYPES = (str, int, float, bool, type(None))


def require_wire_id(stream_id) -> None:
    """Reject stream ids that cannot cross a wire transport.

    Pipe and TCP workers receive ids through the JSON frame header, so
    they must be JSON scalars -- the same restriction snapshots already
    impose.  (The in-proc transport never serializes and tolerates any
    hashable id, but such ids forfeit snapshots and wire transports.)
    """
    if not isinstance(stream_id, WIRE_ID_TYPES):
        raise ValidationError(
            f"stream id {stream_id!r} is not wire-serializable; pipe/TCP "
            "transports and snapshots support str/int/float/bool/None ids"
        )


def sanitize_wire_scope(scope_factors, stream_id) -> dict | None:
    """Make one frame's scope-factor dict safe for the JSON frame header.

    Numpy scalars are unwrapped to their exact Python equivalents (the
    single-process engine accepts them, so the wire must too); anything
    else non-JSON is rejected here -- *before* fan-out -- so a bad frame
    can never half-execute a tick across shards.
    """
    if scope_factors is None:
        return None
    sanitized = {}
    for name, value in scope_factors.items():
        if isinstance(value, np.generic):
            value = value.item()
        if not isinstance(value, WIRE_ID_TYPES):
            raise ValidationError(
                f"stream {stream_id!r}: scope factor {name!r} value "
                f"{value!r} is not wire-serializable; pipe/TCP transports "
                "support str/int/float/bool/None scope values"
            )
        sanitized[str(name)] = value
    return sanitized


@dataclass(frozen=True)
class Frame:
    """One decoded wire frame: kind tag, JSON meta, named numpy arrays."""

    kind: str
    meta: dict
    arrays: dict


# ---------------------------------------------------------------------------
# Frame layer
# ---------------------------------------------------------------------------

@dataclass
class FrameSegments:
    """One encoded frame as a gather list, pre-join.

    ``segments[0]`` is the owned ``bytes`` of prefix + JSON header;
    every following entry is a byte-``memoryview`` borrowed from a
    C-contiguous numpy array (or ``b""`` for empty arrays).  The views
    stay valid as long as ``_keepalive`` pins the backing arrays, so a
    ``FrameSegments`` must be consumed (sent / joined / copied into a
    pool buffer) before the tick's payload arrays are mutated.

    Joining the segments yields byte-for-byte the :func:`encode_frame`
    output for the same inputs.
    """

    segments: list
    nbytes: int
    _keepalive: tuple = field(default=(), repr=False)

    def join(self) -> bytes:
        """Materialize the frame as one owned ``bytes`` (single copy)."""
        if len(self.segments) == 1:
            return self.segments[0]
        return b"".join(self.segments)

    def copy_into(self, buffer, offset: int = 0) -> int:
        """Scatter-copy every segment into ``buffer`` at ``offset``.

        ``buffer`` is any writable bytes-like (pooled ``bytearray``, shm
        ring slot ``memoryview``).  Returns the number of bytes written;
        each segment is copied exactly once.
        """
        for segment in self.segments:
            n = len(segment)
            if n:
                buffer[offset : offset + n] = segment
                offset += n
        return self.nbytes


def encode_frame_parts(
    kind: str, meta: dict | None = None, arrays: dict | None = None
) -> FrameSegments:
    """Encode one frame into a :class:`FrameSegments` gather list.

    The zero-copy core of :func:`encode_frame`: C-contiguous arrays are
    *not* copied here -- their raw memory rides along as borrowed
    memoryviews for the channel (or pool) to copy exactly once at send
    time.  Non-contiguous inputs are made contiguous first (one
    unavoidable copy, as before).
    """
    arrays = arrays or {}
    manifest = []
    segments = [b""]  # placeholder for prefix + header
    keepalive = []
    nbytes = 0
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        manifest.append(
            {"name": name, "dtype": array.dtype.str, "shape": list(array.shape)}
        )
        if array.nbytes:
            # .cast("B") rejects zero-sized views, hence the guard; the
            # flat byte view over C-order memory is exactly .tobytes()
            # without the copy.
            segments.append(array.data.cast("B"))
            keepalive.append(array)
            nbytes += array.nbytes
    header = {"kind": kind, "meta": meta or {}, "arrays": manifest}
    try:
        header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise ValidationError(
            f"frame meta for {kind!r} is not wire-serializable ({error}); "
            "wire transports require JSON-serializable payloads "
            "(e.g. str/int/float/bool/None stream ids)"
        ) from None
    segments[0] = _PREFIX.pack(
        WIRE_MAGIC, PROTOCOL_VERSION, len(header_bytes)
    ) + header_bytes
    nbytes += len(segments[0])
    return FrameSegments(
        segments=segments, nbytes=nbytes, _keepalive=tuple(keepalive)
    )


def encode_frame(kind: str, meta: dict | None = None, arrays: dict | None = None) -> bytes:
    """Serialize one frame to bytes.

    ``meta`` must be JSON-serializable; ``arrays`` maps names to numpy
    arrays (any dtype/shape; forced C-contiguous with explicit byte
    order on the wire).  Each array's payload is copied exactly once,
    into the joined output.
    """
    return encode_frame_parts(kind, meta, arrays).join()


# ---------------------------------------------------------------------------
# Buffer pool: reusable send buffers for single-buffer channels
# ---------------------------------------------------------------------------

class PooledFrame:
    """One frame assembled into a pooled buffer, awaiting send.

    ``view`` is the frame's exact bytes as a memoryview into the pooled
    ``bytearray`` (pure-Python classes cannot implement the buffer
    protocol before 3.12, so channels consume the view).  Call
    :meth:`release` once the channel has handed the bytes to the kernel;
    the buffer then returns to the pool for reuse.  Anything decoded
    from the frame must own its memory by then (``decode_frame`` copies
    arrays out), because reuse overwrites the backing buffer.
    """

    __slots__ = ("_pool", "_buffer", "nbytes")

    def __init__(self, pool, buffer, nbytes):
        self._pool = pool
        self._buffer = buffer
        self.nbytes = nbytes

    @property
    def view(self) -> memoryview:
        return memoryview(self._buffer)[: self.nbytes]

    def release(self) -> None:
        buffer, self._buffer = self._buffer, None
        if buffer is not None:
            self._pool._release(buffer)


class BufferPool:
    """Size-classed free lists of reusable frame buffers.

    ``acquire`` hands out a ``bytearray`` at least as large as requested
    from power-of-two size classes, recycling released buffers instead
    of allocating fresh ones on every frame -- the steady-state tick
    loop reuses the same few buffers forever (``hits``) and only
    allocates when a frame outgrows everything seen so far (``misses``).
    ``bytes_copied`` counts payload bytes scatter-copied through
    :meth:`encode_into`, the codec's single copy per segment.
    """

    #: Smallest size class: small control frames (hello/stats/close)
    #: all share one class instead of fragmenting the pool.
    MIN_BUFFER_BYTES = 4096

    def __init__(self, *, max_buffers_per_class: int = 8):
        self._classes: dict[int, list[bytearray]] = {}
        self._max_per_class = max_buffers_per_class
        self.hits = 0
        self.misses = 0
        self.bytes_copied = 0

    @staticmethod
    def _class_for(nbytes: int) -> int:
        size = BufferPool.MIN_BUFFER_BYTES
        while size < nbytes:
            size <<= 1
        return size

    def acquire(self, nbytes: int) -> bytearray:
        """A buffer of at least ``nbytes``; callers use a prefix slice."""
        free = self._classes.get(self._class_for(nbytes))
        if free:
            self.hits += 1
            return free.pop()
        self.misses += 1
        return bytearray(self._class_for(nbytes))

    def _release(self, buffer: bytearray) -> None:
        free = self._classes.setdefault(len(buffer), [])
        if len(free) < self._max_per_class:
            free.append(buffer)

    def encode_into(self, parts: FrameSegments) -> PooledFrame:
        """Assemble a gather list into one pooled buffer (single copy)."""
        buffer = self.acquire(parts.nbytes)
        parts.copy_into(buffer)
        self.bytes_copied += parts.nbytes
        return PooledFrame(self, buffer, parts.nbytes)

    def stats(self) -> dict:
        """Counters for fanout stats / metrics: hits, misses, bytes."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bytes_copied": self.bytes_copied,
        }


def decode_frame(data) -> Frame:
    """Parse one frame; raises :class:`ProtocolError` on malformed input."""
    view = memoryview(data)
    if len(view) < _PREFIX.size:
        raise ProtocolError(
            f"truncated frame: {len(view)} bytes, need at least {_PREFIX.size}"
        )
    magic, version, header_len = _PREFIX.unpack_from(view, 0)
    if magic != WIRE_MAGIC:
        raise ProtocolError(f"bad frame magic {bytes(magic)!r}")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"peer speaks protocol version {version}; this build speaks "
            f"{PROTOCOL_VERSION}"
        )
    offset = _PREFIX.size
    if len(view) < offset + header_len:
        raise ProtocolError("truncated frame: header extends past the payload")
    try:
        header = json.loads(bytes(view[offset : offset + header_len]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable frame header ({error})") from None
    offset += header_len
    if (
        not isinstance(header, dict)
        or not isinstance(header.get("kind"), str)
        or not isinstance(header.get("meta"), dict)
        or not isinstance(header.get("arrays"), list)
    ):
        raise ProtocolError("malformed frame header")
    arrays = {}
    for entry in header["arrays"]:
        try:
            name, dtype, shape = entry["name"], np.dtype(entry["dtype"]), entry["shape"]
        except (KeyError, TypeError, ValueError) as error:
            raise ProtocolError(f"malformed array manifest entry ({error})") from None
        # Dimensions must be non-negative ints: a negative or non-int dim
        # would rewind the read offset (or escape as a raw ValueError),
        # letting a crafted frame decode header bytes as array payload.
        if not isinstance(shape, list) or not all(
            isinstance(dim, int) and not isinstance(dim, bool) and dim >= 0
            for dim in shape
        ):
            raise ProtocolError(
                f"malformed array manifest: shape {shape!r} of {name!r} is "
                "not a list of non-negative ints"
            )
        if dtype.hasobject or dtype.itemsize == 0:
            # Object dtypes would mean pickle-on-load (the exact thing
            # this codec exists to avoid); zero-itemsize dtypes crash
            # frombuffer with a raw ValueError.
            raise ProtocolError(
                f"malformed array manifest: dtype {entry['dtype']!r} of "
                f"{name!r} is not a fixed-size scalar dtype"
            )
        # math.prod on Python ints cannot overflow (np.prod in int64
        # silently wraps on huge crafted dims, which would bypass the
        # non-negative guard above via a wrapped-negative product).
        nbytes = int(dtype.itemsize) * math.prod(shape)
        if len(view) < offset + nbytes:
            raise ProtocolError(f"truncated frame: array {name!r} cut short")
        # Copy out of the receive buffer: decoded arrays are handed to
        # engine/registry state and must own their memory.
        arrays[name] = (
            np.frombuffer(view[offset : offset + nbytes], dtype=dtype)
            .reshape(shape)
            .copy()
        )
        offset += nbytes
    if offset != len(view):
        raise ProtocolError(
            f"frame has {len(view) - offset} trailing bytes past the manifest"
        )
    return Frame(kind=header["kind"], meta=header["meta"], arrays=arrays)


# ---------------------------------------------------------------------------
# Command vocabulary: payload <-> (meta, arrays) per worker command
# ---------------------------------------------------------------------------
#
# Requests travel as kind "req:<command>"; successful replies as
# "ok:<command>" (the command disambiguates the payload mapping); errors
# as the command-independent kind "err" carrying {name, message}.

def _snapshot_to_wire(snapshot):
    meta, arrays = snapshot.to_wire()
    return {"snapshot": meta}, arrays


def _snapshot_from_wire(meta, arrays):
    from repro.serving.state import RegistrySnapshot

    return RegistrySnapshot.from_wire(meta["snapshot"], arrays)


def _delta_to_wire(delta):
    meta, arrays = delta.to_wire()
    return {"delta": meta}, arrays


def _delta_from_wire(meta, arrays):
    from repro.serving.state import DeltaSnapshot

    return DeltaSnapshot.from_wire(meta["delta"], arrays)


def _encode_step_request(payload):
    if payload is None:  # frameless tick: time still passes on this shard
        return {"empty": True}, {}
    for stream_id in payload["ids"]:
        require_wire_id(stream_id)
    meta = {"ids": payload["ids"], "scope": payload["scope"]}
    arrays = {
        "X": payload["X"],
        "Q": payload["Q"],
        "new_series": payload["new_series"],
    }
    return meta, arrays


def _decode_step_request(meta, arrays):
    if meta.get("empty"):
        return None
    return {
        "ids": meta["ids"],
        "X": arrays["X"],
        "Q": arrays["Q"],
        "new_series": arrays["new_series"],
        "scope": meta["scope"],
    }


def _encode_step_reply(payload):
    if payload is None:
        return {"empty": True}, {}
    return {"empty": False}, payload  # the struct-of-arrays tick results


def _decode_step_reply(meta, arrays):
    return None if meta.get("empty") else arrays


def _encode_ids(ids):
    for stream_id in ids:
        require_wire_id(stream_id)
    return {"ids": list(ids)}, {}


_REQUEST_CODECS = {
    "hello": (lambda p: (p, {}), lambda m, a: m),
    "step": (_encode_step_request, _decode_step_request),
    "snapshot": (
        lambda p: ({"stream_ids": None if p is None else list(p)}, {}),
        lambda m, a: m["stream_ids"],
    ),
    "delta": (
        lambda p: ({"since_tick": int(p)}, {}),
        lambda m, a: m["since_tick"],
    ),
    "restore": (_snapshot_to_wire, _snapshot_from_wire),
    "inject": (_snapshot_to_wire, _snapshot_from_wire),
    "discard": (_encode_ids, lambda m, a: m["ids"]),
    "ids": (lambda p: ({}, {}), lambda m, a: None),
    "stats": (lambda p: ({}, {}), lambda m, a: None),
    "close": (lambda p: ({}, {}), lambda m, a: None),
}

_REPLY_CODECS = {
    "hello": (lambda p: (p, {}), lambda m, a: m),
    "step": (_encode_step_reply, _decode_step_reply),
    "snapshot": (_snapshot_to_wire, _snapshot_from_wire),
    "delta": (_delta_to_wire, _delta_from_wire),
    "restore": (lambda p: ({}, {}), lambda m, a: None),
    "inject": (lambda p: ({}, {}), lambda m, a: None),
    "discard": (lambda p: ({}, {}), lambda m, a: None),
    "ids": (_encode_ids, lambda m, a: m["ids"]),
    "stats": (lambda p: (p, {}), lambda m, a: m),
    "close": (lambda p: ({}, {}), lambda m, a: None),
}


def encode_request_parts(
    command: str, payload=None, *, trace=None, tick=None
) -> FrameSegments:
    """:func:`encode_request` stopped pre-join: a zero-copy gather list.

    Channels with a vectored ``send_frame`` (or a :class:`BufferPool`)
    consume this directly; ``.join()`` yields the exact
    :func:`encode_request` bytes.
    """
    try:
        encoder, _ = _REQUEST_CODECS[command]
    except KeyError:
        raise ProtocolError(f"unknown request command {command!r}") from None
    meta, arrays = encoder(payload)
    if trace is not None:
        meta = {**meta, TRACE_META_KEY: trace}
    if tick is not None:
        meta = {**meta, TICK_META_KEY: int(tick)}
    return encode_frame_parts(f"req:{command}", meta, arrays)


def encode_request(command: str, payload=None, *, trace=None, tick=None) -> bytes:
    """Encode one ``(command, payload)`` request into a wire frame.

    ``trace``, when given, rides in the reserved ``_trace`` meta key
    alongside the command's own meta -- invisible to command decoders on
    both ends, ignored by workers that predate it.  ``tick`` rides in
    the reserved ``_tick`` key the same way; workers echo it on the
    reply so a windowed parent can pair replies with requests.
    """
    return encode_request_parts(command, payload, trace=trace, tick=tick).join()


def decode_request_full(data) -> tuple:
    """Decode a request frame into ``(command, payload, trace, tick)``.

    The reserved ``_trace`` and ``_tick`` meta keys are popped *before*
    the command decoder runs, so payloads are byte-for-byte what an
    untagged sender would have produced; each is ``None`` when absent.
    """
    frame = decode_frame(data)
    if not frame.kind.startswith("req:"):
        raise ProtocolError(f"expected a request frame, got kind {frame.kind!r}")
    command = frame.kind[4:]
    try:
        _, decoder = _REQUEST_CODECS[command]
    except KeyError:
        raise ProtocolError(f"unknown request command {command!r}") from None
    trace = frame.meta.pop(TRACE_META_KEY, None)
    tick = frame.meta.pop(TICK_META_KEY, None)
    return command, decoder(frame.meta, frame.arrays), trace, tick


def decode_request_traced(data) -> tuple:
    """Decode a request frame into ``(command, payload, trace)``."""
    command, payload, trace, _ = decode_request_full(data)
    return command, payload, trace


def decode_request(data) -> tuple:
    """Decode a request frame back into ``(command, payload)``."""
    command, payload, _, _ = decode_request_full(data)
    return command, payload


def encode_reply_parts(
    command: str, reply: tuple, *, telemetry=None, tick=None
) -> FrameSegments:
    """:func:`encode_reply` stopped pre-join: a zero-copy gather list."""
    if reply[0] == "error":
        return encode_frame_parts("err", {"name": reply[1], "message": reply[2]})
    try:
        encoder, _ = _REPLY_CODECS[command]
    except KeyError:
        raise ProtocolError(f"unknown reply command {command!r}") from None
    meta, arrays = encoder(reply[1])
    if telemetry is not None:
        meta = {**meta, TELEMETRY_META_KEY: telemetry}
    if tick is not None:
        meta = {**meta, TICK_META_KEY: int(tick)}
    return encode_frame_parts(f"ok:{command}", meta, arrays)


def encode_reply(command: str, reply: tuple, *, telemetry=None, tick=None) -> bytes:
    """Encode a worker's protocol reply tuple for ``command``.

    ``reply`` is ``("ok", payload)`` or ``("error", name, message)``;
    error frames encode identically for every command (and carry no
    tick echo -- an error aborts the whole window, so pairing it with a
    specific tick buys nothing).  ``telemetry``, when given on an ok
    reply, rides in the reserved ``_telemetry`` meta key -- the worker's
    piggybacked phase timings (or its clock reading on ``hello``),
    stripped symmetrically by the decoders.  ``tick`` echoes the
    request's ``_tick`` tag in the reserved ``_tick`` key.
    """
    return encode_reply_parts(command, reply, telemetry=telemetry, tick=tick).join()


def decode_reply_full(data, command: str) -> tuple:
    """Decode a reply frame into ``(reply_tuple, telemetry, tick)``.

    The reserved ``_telemetry`` and ``_tick`` meta keys are popped
    before the command decoder runs (``None`` when absent), so reply
    payloads -- including the whole-meta ``hello`` shape -- never see
    them.  Error frames carry neither.
    """
    frame = decode_frame(data)
    if frame.kind == "err":
        return ("error", str(frame.meta.get("name", "ClusterError")),
                str(frame.meta.get("message", ""))), None, None
    if frame.kind != f"ok:{command}":
        raise ProtocolError(
            f"reply kind {frame.kind!r} does not match in-flight command "
            f"{command!r}"
        )
    telemetry = frame.meta.pop(TELEMETRY_META_KEY, None)
    tick = frame.meta.pop(TICK_META_KEY, None)
    _, decoder = _REPLY_CODECS[command]
    return ("ok", decoder(frame.meta, frame.arrays)), telemetry, tick


def decode_reply_telemetry(data, command: str) -> tuple:
    """Decode a reply frame into ``(reply_tuple, telemetry)``."""
    reply, telemetry, _ = decode_reply_full(data, command)
    return reply, telemetry


def decode_reply(data, command: str) -> tuple:
    """Decode a reply frame for the in-flight ``command``.

    Returns the protocol tuple the cluster front end consumes:
    ``("ok", payload)`` or ``("error", name, message)``.
    """
    reply, _ = decode_reply_telemetry(data, command)
    return reply
