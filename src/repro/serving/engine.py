"""Batched taUW inference over many concurrent object streams.

The paper's :class:`~repro.core.timeseries_wrapper.TimeseriesAwareUncertaintyWrapper`
serves exactly one physical object: one buffer, one fusion pass, one taQIM
lookup per frame.  A deployed perception stack tracks many objects per
camera frame and many clients at once, and serving N objects through N
wrapper ``step`` calls costs N sequential DDM inferences and N tree
lookups.

:class:`StreamingEngine` runs one whole tick -- one frame from each of N
streams -- as a single vectorized pass:

1. one batched ``ddm.predict`` over all N model inputs;
2. one batched stateless-QIM lookup for the momentaneous uncertainties;
3. per-stream ring-buffer appends (O(1) each) via the
   :class:`~repro.serving.registry.StreamRegistry`;
4. one vectorized information-fusion pass over all N buffers
   (:func:`repro.fusion.vectorized.fuse_segments`);
5. one batched taQF assembly + one batched taQIM lookup, combined with
   the per-frame scope-incompliance probability when a scope model is
   configured (the wrapper's full onion-shell estimate, not quality-only);
6. one vectorized simplex monitor pass over all N streams
   (:func:`repro.core.monitor.judge_many`).

Because steps 4-5 run the same segmented kernels the single-stream wrapper
uses, a stream served inside a 1000-stream batch produces bitwise-identical
outcomes and uncertainties to the same frames replayed through
``wrapper.step`` -- provided the DDM's ``predict`` is row-independent, as
every model in this codebase is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.combination import combine_uncertainties
from repro.core.monitor import MonitorVerdict, UncertaintyMonitor, judge_many
from repro.core.quality_factors import QualityFactorLayout
from repro.core.quality_impact import QualityImpactModel
from repro.core.ragged import RaggedBatch
from repro.core.scope import ScopeComplianceModel
from repro.core.timeseries_wrapper import TimeseriesWrappedOutcome
from repro.exceptions import NotCalibratedError, ValidationError
from repro.fusion.information import InformationFusion, MajorityVote
from repro.fusion.vectorized import fuse_segments
from repro.serving.registry import StreamRegistry
from repro.serving.state import RegistrySnapshot

__all__ = [
    "StreamFrame",
    "StreamStepResult",
    "StreamingEngine",
    "validate_tick_frames",
]


@dataclass(frozen=True)
class StreamFrame:
    """One frame of one object stream, as submitted to ``step_batch``.

    Attributes
    ----------
    stream_id:
        Caller-chosen identifier of the tracked object stream (hashable).
    model_input:
        One DDM input row for this frame.
    stateless_quality_values:
        The frame's stateless quality-factor values, ordered as
        ``layout.stateless_names``.
    new_series:
        True when the tracking component signals that the stream now shows
        a new physical object (clears the stream's buffer first).
    scope_factors:
        Named scope-factor values for this frame; required (per frame)
        when the engine was built with a scope model, ignored otherwise.
    priority:
        QoS priority class of this frame (smaller = more important).
        The engine itself ignores it -- outcomes never depend on
        priority -- but the control plane's
        :class:`~repro.serving.controller.AdmissionPolicy` admits
        lower-numbered classes first when a tick exceeds its budget.
    """

    stream_id: object
    model_input: object
    stateless_quality_values: object
    new_series: bool = False
    scope_factors: dict | None = None
    priority: int = 0


@dataclass(frozen=True)
class StreamStepResult:
    """Result of one stream's frame within a batched tick.

    Attributes
    ----------
    stream_id:
        The stream the result belongs to.
    outcome:
        The taUW outcome, identical in shape and semantics to what the
        single-stream wrapper's ``step`` returns.
    verdict:
        The stream monitor's accept/fallback decision, or ``None`` when
        the engine runs without monitors.
    """

    stream_id: object
    outcome: TimeseriesWrappedOutcome
    verdict: MonitorVerdict | None = None

    @property
    def accepted(self) -> bool:
        """Monitor decision as a flag (True when unmonitored)."""
        return self.verdict is None or self.verdict.accepted


def validate_tick_frames(
    frames: list[StreamFrame], n_stateless: int, has_scope_model: bool
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Whole-tick input validation, shared by the single-process engine
    and the sharded cluster's parent.

    Checks everything checkable without the models -- duplicate stream
    ids, one-row model inputs, stateless-quality width, scope-factor
    presence -- and raises :class:`ValidationError` before any state
    changes anywhere.  Sharing one implementation keeps the cluster's
    whole-tick atomic reject byte-identical (messages included) to the
    single engine's.

    Returns the converted ``(model_input_rows, quality_rows)`` as 1-D
    float arrays, ready for ``np.vstack``.
    """
    seen: set = set()
    rows, quality = [], []
    for frame in frames:
        if frame.stream_id in seen:
            raise ValidationError(
                f"duplicate stream {frame.stream_id!r} within one tick; "
                "submit at most one frame per stream per step_batch call"
            )
        seen.add(frame.stream_id)
        row = np.atleast_2d(np.asarray(frame.model_input, dtype=float))
        if row.shape[0] != 1:
            raise ValidationError(
                f"stream {frame.stream_id!r}: model_input must be one row, "
                f"got shape {row.shape}"
            )
        q = np.asarray(frame.stateless_quality_values, dtype=float).ravel()
        if q.size != n_stateless:
            raise ValidationError(
                f"stream {frame.stream_id!r}: expected {n_stateless} "
                f"stateless quality values, got {q.size}"
            )
        if has_scope_model and frame.scope_factors is None:
            raise ValidationError(
                f"stream {frame.stream_id!r}: this engine has a scope "
                "model; scope_factors are required"
            )
        rows.append(row[0])
        quality.append(q)
    return rows, quality


class StreamingEngine:
    """Batched taUW serving over a registry of concurrent object streams.

    Parameters
    ----------
    ddm:
        Black-box model with a row-independent batch ``predict``.
    stateless_qim / timeseries_qim:
        Calibrated quality impact models, as for the single-stream wrapper.
    layout:
        Feature layout shared with training.
    information_fusion:
        Fusion rule; the paper's majority vote (vectorized) when omitted.
    scope_model:
        Optional scope-compliance model; when set, every frame must carry
        ``scope_factors`` and the served uncertainty is the *combined*
        estimate ``1 - (1 - u_quality)(1 - u_scope)``, matching the
        single-stream wrapper.
    max_buffer_length:
        Sliding-window cap per stream buffer.
    monitor_factory:
        Builds one :class:`UncertaintyMonitor` per new stream (``None``
        serves without monitoring).
    idle_ttl:
        Evict streams after this many ticks without frames.
    """

    def __init__(
        self,
        ddm,
        stateless_qim: QualityImpactModel,
        timeseries_qim: QualityImpactModel,
        layout: QualityFactorLayout,
        information_fusion: InformationFusion | None = None,
        scope_model: ScopeComplianceModel | None = None,
        max_buffer_length: int | None = None,
        monitor_factory: Callable[[], UncertaintyMonitor] | None = None,
        idle_ttl: int | None = None,
    ) -> None:
        if not hasattr(ddm, "predict"):
            raise ValidationError("ddm must expose a predict() method")
        if not stateless_qim.is_calibrated:
            raise NotCalibratedError("stateless_qim must be calibrated")
        if not timeseries_qim.is_calibrated:
            raise NotCalibratedError("timeseries_qim must be calibrated")
        self.ddm = ddm
        self.stateless_qim = stateless_qim
        self.timeseries_qim = timeseries_qim
        self.layout = layout
        self.information_fusion = information_fusion or MajorityVote()
        self.scope_model = scope_model
        self.registry = StreamRegistry(
            max_buffer_length=max_buffer_length,
            monitor_factory=monitor_factory,
            idle_ttl=idle_ttl,
        )
        self._tick = 0

    @property
    def tick(self) -> int:
        """Number of completed ``step_batch`` calls."""
        return self._tick

    @property
    def n_streams(self) -> int:
        """Number of currently tracked streams."""
        return len(self.registry)

    # ------------------------------------------------------------------
    def step_batch(self, frames: Sequence[StreamFrame]) -> list[StreamStepResult]:
        """Process one tick: one frame from each of the given streams.

        Returns one :class:`StreamStepResult` per input frame, in input
        order.  Advances the engine tick and sweeps idle streams
        afterwards; an empty batch still counts as a tick (time passes
        without frames).  A *rejected* batch (validation error) advances
        nothing: no frames were recorded, so existing streams neither age
        toward eviction nor lose state.  If a downstream component fails
        *after* the frames were recorded (e.g. a misbehaving taQIM), the
        tick still advances -- the error message says so -- because the
        frames are committed and must not be resubmitted.
        """
        frames = list(frames)
        if not frames:
            self._finish_tick()
            return []
        prepared = self._prepare(frames)  # raises -> nothing committed
        self._commit(prepared)  # raise-free
        try:
            return self._evaluate(prepared)
        finally:
            self._finish_tick()

    def _finish_tick(self) -> None:
        # Sweep with the current tick, then advance: a stream seen at
        # tick t survives idle_ttl frameless ticks and is evicted at
        # the end of tick t + idle_ttl + 1.
        self.registry.evict_idle(self._tick)
        self._tick += 1

    def step_stream(
        self,
        stream_id: object,
        model_input,
        stateless_quality_values,
        new_series: bool = False,
        scope_factors: dict | None = None,
    ) -> StreamStepResult:
        """Convenience: one single-stream tick through the batched path."""
        return self.step_batch(
            [
                StreamFrame(
                    stream_id,
                    model_input,
                    stateless_quality_values,
                    new_series,
                    scope_factors,
                )
            ]
        )[0]

    # ------------------------------------------------------------------
    # Snapshot / restore (serving restarts, shard migration)
    # ------------------------------------------------------------------
    def snapshot(self) -> RegistrySnapshot:
        """Capture all per-stream state plus the tick counter."""
        return RegistrySnapshot.capture(self.registry, tick=self._tick)

    def snapshot_delta(self, since_tick: int):
        """Capture only streams touched since ``since_tick``.

        Returns a :class:`~repro.serving.state.DeltaSnapshot` carrying
        the dirty streams' full state plus the live membership/order, so
        :func:`~repro.serving.state.compose_snapshot` over a base at
        ``since_tick`` reproduces :meth:`snapshot` exactly.
        """
        from repro.serving.state import DeltaSnapshot

        return DeltaSnapshot.capture(
            self.registry, tick=self._tick, since_tick=since_tick
        )

    def restore(self, snapshot: RegistrySnapshot) -> None:
        """Replace the engine's streams and tick with a snapshot's.

        After restoring, ``step_batch`` continues bitwise-identically to
        an engine that never stopped: buffers, absolute step counters,
        monitor budgets/hysteresis, and the TTL clocks all resume exactly
        where the snapshot froze them.
        """
        snapshot.restore_into(self.registry)
        self._tick = snapshot.tick

    # ------------------------------------------------------------------
    def _prepare(self, frames: list[StreamFrame]):
        """Everything fallible before state changes: validation, the DDM
        pass, the stateless-QIM pass, and (atomic) state acquisition."""
        rows, quality = validate_tick_frames(
            frames,
            n_stateless=len(self.layout.stateless_names),
            has_scope_model=self.scope_model is not None,
        )
        X = np.vstack(rows)
        Q = np.vstack(quality)
        predictions = np.asarray(self.ddm.predict(X)).ravel()
        if predictions.size != len(frames):
            raise ValidationError(
                f"ddm.predict returned {predictions.size} labels for "
                f"{len(frames)} inputs"
            )
        if not np.issubdtype(predictions.dtype, np.integer):
            if not np.all(np.isfinite(predictions)):
                raise ValidationError("ddm.predict returned non-finite labels")
        labels = predictions.astype(np.int64)
        u_isolated = np.asarray(
            self.stateless_qim.estimate_uncertainty(Q), dtype=float
        ).ravel()
        if u_isolated.size != len(frames):
            raise ValidationError(
                f"stateless_qim returned {u_isolated.size} estimates for "
                f"{len(frames)} frames"
            )
        if not np.all((u_isolated >= 0.0) & (u_isolated <= 1.0)):  # NaN-rejecting
            raise ValidationError("stateless uncertainties must lie in [0, 1]")

        # Scope compliance runs before any state changes too (factor
        # presence was already validated): a raising scope model rejects
        # the whole tick, exactly like the single-stream wrapper rejects
        # the step before mutating its buffer.
        if self.scope_model is not None:
            u_scope = np.empty(len(frames), dtype=float)
            for i, frame in enumerate(frames):
                u_scope[i] = self.scope_model.incompliance_probability(
                    frame.scope_factors
                )
        else:
            u_scope = np.zeros(len(frames), dtype=float)

        # Acquire all stream states atomically (the monitor factory may
        # raise for a new stream): all input validation has now run, so a
        # rejected tick never leaves half-applied frames or phantom
        # registry entries.
        states = self.registry.get_or_create_many(
            [frame.stream_id for frame in frames], self._tick
        )
        return frames, states, Q, labels, u_isolated, u_scope

    def _commit(self, prepared) -> None:
        """Record every frame into its stream; raise-free by construction
        (all inputs were validated in ``_prepare``)."""
        frames, states, _, labels, u_isolated, _ = prepared
        labels_list = labels.tolist()
        u_isolated_list = u_isolated.tolist()
        for frame, state, label, u in zip(
            frames, states, labels_list, u_isolated_list
        ):
            if frame.new_series and state.step_count > 0:
                state.begin_series()
                self.registry.statistics.series_started += 1
            state.buffer.append(label, u)
            state.step_count += 1

    def _evaluate(self, prepared) -> list[StreamStepResult]:
        """The batched fusion/taQF/taQIM/monitor pass over committed
        frames.  A failure here (broken fusion rule or taQIM) happens
        after the tick was recorded; errors say so."""
        frames, states, Q, labels, u_isolated, u_scope = prepared
        batch = RaggedBatch.from_buffers([s.buffer for s in states])
        fused, vote = fuse_segments(self.information_fusion, batch)
        features = self.layout.assemble_batch(Q, batch, fused, vote)
        u_quality = np.asarray(
            self.timeseries_qim.estimate_uncertainty(features), dtype=float
        ).ravel()
        if u_quality.size != len(frames):
            raise ValidationError(
                f"timeseries_qim returned {u_quality.size} estimates for "
                f"{len(frames)} frames (tick already recorded)"
            )
        if not np.all((u_quality >= 0.0) & (u_quality <= 1.0)):  # NaN-rejecting
            raise ValidationError(
                "timeseries_qim produced uncertainties outside [0, 1] "
                "(tick already recorded)"
            )
        u_fused = combine_uncertainties(u_quality, u_scope)

        # Monitors are judged in one vectorized pass (all-or-nothing, so a
        # failure above leaves no half-judged monitors), then the results
        # are assembled from plain-Python scalars: ``tolist`` converts the
        # whole batch at C speed instead of one numpy scalar per field per
        # frame, which kept this loop from dominating at 10k+ streams.
        verdicts: list[MonitorVerdict | None] = [None] * len(frames)
        monitored = [i for i, s in enumerate(states) if s.monitor is not None]
        if monitored:
            judged = judge_many(
                [states[i].monitor for i in monitored], u_fused[monitored]
            )
            for i, verdict in zip(monitored, judged):
                verdicts[i] = verdict

        rows = zip(
            frames,
            states,
            verdicts,
            fused.tolist(),
            u_fused.tolist(),
            labels.tolist(),
            u_isolated.tolist(),
            u_scope.tolist(),
        )
        return [
            StreamStepResult(
                stream_id=frame.stream_id,
                outcome=TimeseriesWrappedOutcome(
                    fused_outcome=fused_i,
                    fused_uncertainty=fused_u_i,
                    isolated_outcome=label_i,
                    isolated_uncertainty=u_isolated_i,
                    timestep=state.step_count - 1,
                    scope_incompliance=u_scope_i,
                ),
                verdict=verdict,
            )
            for frame, state, verdict, fused_i, fused_u_i, label_i, u_isolated_i, u_scope_i in rows
        ]
