"""Control plane: the one tick loop that drives every serving engine.

Before this module, the per-tick serving loop -- feed one tick of frames
to ``step_batch``, collect results, write periodic snapshots -- was
re-implemented independently by :func:`repro.serving.simulate.replay_engine`,
both serving CLI commands, and the benchmarks.  None of those loops could
host the ROADMAP's two promoted runtime policies (latency-driven
autoscaling and QoS admission control) without copying the logic a fifth
time.  :class:`ServingController` extracts that loop once, for *both*
:class:`~repro.serving.engine.StreamingEngine` and
:class:`~repro.serving.cluster.ShardedEngine`:

    frame intake -> admission -> ``step_batch`` -> telemetry
                 -> policy hooks (autoscale) -> snapshot cadence

and layers two pluggable policies on top:

* :class:`AutoscalePolicy` -- derives the shard count from an EWMA of the
  measured tick latency against a budget, with hysteresis: grow one shard
  after ``grow_after`` consecutive budget misses, shrink one after
  ``shrink_after`` consecutive idle ticks, clamped to
  ``[min_shards, max_shards]``, with a cooldown between actions.  Each
  decision calls ``engine.rebalance(n)``, which migrates only the streams
  whose ring arc changed owner (cheap by construction since PR 2/3).
* :class:`AdmissionPolicy` -- per-stream priority classes with a per-tick
  frame budget.  When a tick's batch would exceed the latency budget,
  frames are admitted in deterministic *priority-then-arrival* order up
  to the budget; overflow frames are deferred to a bounded per-stream
  FIFO queue and resubmitted on later ticks.  A frame that would overflow
  its stream's queue is dropped and counted in the loud
  ``admission_overflow`` statistic.

**The disabled-policy invariant.**  A controller with both policies
disabled runs ``engine.step_batch(frames)`` on the unmodified frame list
-- no reordering, no queues, no extra engine calls -- so its results,
TTL evictions, and statistics are bitwise-identical to the hand-rolled
loops it replaced.  Policies change *scheduling* only; every admitted
frame's outcome is still produced by the same engines.

**Determinism and durability.**  All policy decisions are pure functions
of (policy config, measured latencies, frame arrival order).  Latencies
come from an injectable ``clock`` (default ``time.perf_counter``), so
tests script them exactly.  The controller's full mutable state -- the
latency EWMAs, autoscale streaks and cooldown, the admission sequence
counter, and the deferred frame queues (payloads included) -- rides
inside :class:`~repro.serving.state.RegistrySnapshot` via
:meth:`ServingController.snapshot`, so restore-then-step reproduces a
controlled run exactly, mid-autoscale included.

**Self-healing.**  With a
:class:`~repro.serving.failover.FailoverPolicy` attached, a worker that
dies mid-run no longer ends the run: the controller keeps an in-memory
*recovery snapshot* plus a bounded *tick journal* of every admitted
batch since, and on :class:`~repro.exceptions.ClusterWorkerError` it
respawns the dead shard(s) (``revive_shard``), restores the cluster from
the recovery snapshot, replays the journal, and retries the interrupted
operation -- step, snapshot, or rebalance alike.  Deterministic engines
make the recovered run bitwise-identical to an uninterrupted one; only
the ``failovers`` / ``replay_depth`` / ``recovery_seconds`` telemetry
records that a worker was lost.  Without the policy (the default),
worker loss fails fast exactly as before.

**Observability.**  The controller is the publication point of the
:mod:`repro.serving.observability` seam: attach a
:class:`~repro.serving.observability.metrics.MetricsRegistry` and every
:class:`ControllerStats` counter is mirrored into Prometheus-style
metric families after each tick (deltas of the same numbers, so a scrape
can never disagree with ``stats``), tick latency and phase durations
land in histograms, and a
:class:`~repro.serving.observability.tracing.TickTracer` records
span-level timings of each tick's phases (intake -> admission -> step ->
snapshot, plus the engine's fan-out sub-phases and failover recovery).
With neither attached -- the default -- the tick loop runs the exact
pre-observability code path: no extra clock reads, no allocations, no
registry traffic.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.exceptions import ClusterWorkerError, ValidationError
from repro.serving.engine import (
    StreamFrame,
    StreamStepResult,
    validate_tick_frames,
)
from repro.serving.failover import FailoverPolicy
from repro.serving.observability.tracing import null_span
from repro.serving.state import (
    RegistrySnapshot,
    frame_from_state,
    frame_to_state,
)

__all__ = [
    "AutoscalePolicy",
    "AdmissionPolicy",
    "FailoverPolicy",
    "TickTelemetry",
    "ControllerStats",
    "ServingController",
]


#: Version tag of the controller-state dict embedded in snapshots.
CONTROLLER_STATE_VERSION = 1

#: Per-tick telemetry records retained by a controller.  Cumulative
#: counters live in :class:`ControllerStats` forever; the per-tick
#: window is bounded so a long-lived serving loop cannot grow without
#: limit (benchmarks and tests consume far fewer ticks than this).
TELEMETRY_WINDOW = 4096

#: Snapshot path strings retained in ``snapshots_written`` (FIFO).  The
#: total count lives in ``ControllerStats.snapshots_written`` forever;
#: the path list is bounded so a long-running server's snapshot cadence
#: cannot grow controller memory without limit.
SNAPSHOTS_WRITTEN_KEEP = 64


# ---------------------------------------------------------------------------
# Policies (configuration is frozen; mutable state lives in the controller)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AutoscalePolicy:
    """Latency-driven shard-count policy with hysteresis.

    Parameters
    ----------
    latency_budget:
        Per-tick latency budget in seconds; the EWMA of measured tick
        latencies is compared against it.
    min_shards / max_shards:
        Inclusive shard-count clamp for scaling decisions.
    ewma_alpha:
        Smoothing factor of the latency EWMA (1.0 = raw latest tick).
    grow_after:
        Grow one shard after this many *consecutive* ticks whose EWMA
        exceeds the budget.
    shrink_after:
        Shrink one shard after this many consecutive idle ticks (EWMA
        below ``shrink_fraction * latency_budget``).
    shrink_fraction:
        Idle threshold as a fraction of the budget; keeping it well below
        1.0 gives the grow/shrink thresholds a hysteresis band so the
        policy cannot oscillate around the budget.
    cooldown_ticks:
        Ticks to wait after a rebalance before acting again, so each
        decision is judged on latencies measured at the new shard count.
    """

    latency_budget: float
    min_shards: int = 1
    max_shards: int = 4
    ewma_alpha: float = 0.3
    grow_after: int = 3
    shrink_after: int = 8
    shrink_fraction: float = 0.5
    cooldown_ticks: int = 5

    def __post_init__(self) -> None:
        if not self.latency_budget > 0.0:
            raise ValidationError(
                f"latency_budget must be > 0, got {self.latency_budget}"
            )
        if self.min_shards < 1:
            raise ValidationError(
                f"min_shards must be >= 1, got {self.min_shards}"
            )
        if self.max_shards < self.min_shards:
            raise ValidationError(
                f"max_shards ({self.max_shards}) must be >= min_shards "
                f"({self.min_shards})"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValidationError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if self.grow_after < 1 or self.shrink_after < 1:
            raise ValidationError(
                "grow_after and shrink_after must be >= 1, got "
                f"{self.grow_after}/{self.shrink_after}"
            )
        if not 0.0 < self.shrink_fraction < 1.0:
            raise ValidationError(
                f"shrink_fraction must be in (0, 1), got {self.shrink_fraction}"
            )
        if self.cooldown_ticks < 0:
            raise ValidationError(
                f"cooldown_ticks must be >= 0, got {self.cooldown_ticks}"
            )


@dataclass(frozen=True)
class AdmissionPolicy:
    """Priority-class admission control with a per-tick frame budget.

    The frame budget is the minimum of a static cap
    (``max_frames_per_tick``) and a dynamic one derived from the latency
    budget: ``latency_budget / EWMA(per-admitted-frame seconds)``.  Until
    a per-frame estimate exists (the first non-empty tick), the dynamic
    bound admits everything -- the policy has measured nothing yet.

    Parameters
    ----------
    latency_budget:
        Per-tick latency budget in seconds driving the dynamic frame
        budget; ``None`` disables the dynamic bound.
    max_frames_per_tick:
        Static per-tick frame cap; ``None`` disables the static bound.
        At least one of the two bounds must be set.
    priority_field:
        Name of the :class:`~repro.serving.engine.StreamFrame` attribute
        holding the frame's priority class (smaller = more important;
        missing attribute = class 0).
    max_deferred_per_stream:
        Bound of each stream's deferred-frame FIFO; a frame arriving at a
        full queue is dropped and counted as ``admission_overflow``.
    ewma_alpha:
        Smoothing factor of the per-frame latency EWMA.
    """

    latency_budget: float | None = None
    max_frames_per_tick: int | None = None
    priority_field: str = "priority"
    max_deferred_per_stream: int = 16
    ewma_alpha: float = 0.3

    def __post_init__(self) -> None:
        if self.latency_budget is None and self.max_frames_per_tick is None:
            raise ValidationError(
                "AdmissionPolicy needs latency_budget and/or max_frames_per_tick"
            )
        if self.latency_budget is not None and not self.latency_budget > 0.0:
            raise ValidationError(
                f"latency_budget must be > 0, got {self.latency_budget}"
            )
        if self.max_frames_per_tick is not None and self.max_frames_per_tick < 1:
            raise ValidationError(
                f"max_frames_per_tick must be >= 1, got {self.max_frames_per_tick}"
            )
        if self.max_deferred_per_stream < 1:
            raise ValidationError(
                "max_deferred_per_stream must be >= 1, got "
                f"{self.max_deferred_per_stream}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValidationError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )


# ---------------------------------------------------------------------------
# Telemetry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TickTelemetry:
    """One tick's controller-level measurements (results are separate)."""

    tick: int                       # engine tick the measurements belong to
    submitted: int                  # frames handed to the controller
    admitted: int                   # frames the engine actually stepped
    resumed: int                    # admitted frames that came from queues
    deferred: int                   # frames (re)queued this tick
    dropped: int                    # frames lost to queue overflow this tick
    backlog: int                    # total queued frames after the tick
    frame_budget: int | None        # admission budget in force (None = all)
    latency_seconds: float          # measured step_batch wall time
    latency_ewma: float             # controller-level latency EWMA
    n_shards: int                   # shard count after any rebalance
    rebalanced_to: int | None       # autoscale action this tick, if any
    failovers: int = 0              # worker recoveries performed this tick
    replay_depth: int = 0           # journal ticks replayed recovering
    recovery_seconds: float = 0.0   # wall time spent in recovery this tick
    slo_breaches: int = 0           # objectives this tick's latency breached
    slo_burn_rate: float = 0.0      # worst short-window burn rate observed
    inflight_depth: int = 0         # ticks still in the window after this one


@dataclass
class ControllerStats:
    """Cumulative counters over a controller's lifetime."""

    ticks: int = 0
    frames_submitted: int = 0
    frames_admitted: int = 0
    frames_resumed: int = 0
    frames_deferred: int = 0
    admission_overflow: int = 0
    rebalances: int = 0
    snapshots_written: int = 0
    snapshots_dropped: int = 0
    failovers: int = 0
    shard_recoveries: int = 0
    shards_respawned: int = 0
    replayed_ticks: int = 0
    recovery_seconds: float = 0.0
    telemetry_window: int = TELEMETRY_WINDOW
    slo_breaches: int = 0
    slo_alerts: int = 0
    backpressure_throttles: int = 0
    max_inflight_depth: int = 0
    deferred_by_priority: dict = field(default_factory=dict)
    dropped_by_priority: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "ticks": self.ticks,
            "frames_submitted": self.frames_submitted,
            "frames_admitted": self.frames_admitted,
            "frames_resumed": self.frames_resumed,
            "frames_deferred": self.frames_deferred,
            "admission_overflow": self.admission_overflow,
            "rebalances": self.rebalances,
            "snapshots_written": self.snapshots_written,
            "snapshots_dropped": self.snapshots_dropped,
            "failovers": self.failovers,
            "shard_recoveries": self.shard_recoveries,
            "shards_respawned": self.shards_respawned,
            "replayed_ticks": self.replayed_ticks,
            "recovery_seconds": self.recovery_seconds,
            "telemetry_window": self.telemetry_window,
            "slo_breaches": self.slo_breaches,
            "slo_alerts": self.slo_alerts,
            "backpressure_throttles": self.backpressure_throttles,
            "max_inflight_depth": self.max_inflight_depth,
            "deferred_by_priority": dict(self.deferred_by_priority),
            "dropped_by_priority": dict(self.dropped_by_priority),
        }


class _QueuedFrame:
    """A deferred frame plus the admission metadata frozen at intake."""

    __slots__ = ("seq", "priority", "frame")

    def __init__(self, seq: int, priority: int, frame: StreamFrame) -> None:
        self.seq = seq
        self.priority = priority
        self.frame = frame


class _RecoveryLog:
    """What failover recovery did during one controller operation."""

    __slots__ = ("failovers", "respawned", "replayed", "seconds")

    def __init__(self) -> None:
        self.failovers = 0
        self.respawned = 0
        self.replayed = 0
        self.seconds = 0.0


class _PendingTick:
    """One admitted-but-uncollected tick of a pipelined run.

    Holds everything the collect half needs to finish the tick's
    bookkeeping -- the admitted batch (also the failover re-submit
    payload), the staged admission outcome (committed only once the
    engine accepted the tick's replies), and the submit timestamp the
    latency measurement and backpressure age read.
    """

    __slots__ = ("batch", "submitted", "deferral", "before", "recovery")

    def __init__(self, batch, submitted, deferral, before) -> None:
        self.batch = batch
        self.submitted = submitted
        self.deferral = deferral
        self.before = before
        self.recovery = _RecoveryLog()


# ---------------------------------------------------------------------------
# The controller
# ---------------------------------------------------------------------------

class ServingController:
    """Owns the serving tick loop for one engine (single or sharded).

    Parameters
    ----------
    engine:
        Any object with the ``step_batch`` contract -- a
        :class:`~repro.serving.engine.StreamingEngine` or a
        :class:`~repro.serving.cluster.ShardedEngine` on any transport.
        Autoscaling additionally requires ``rebalance``.
    autoscale / admission:
        The two scheduling policies; ``None`` disables each.  With both
        disabled a controller tick is bitwise-identical to calling
        ``engine.step_batch`` directly.
    failover:
        Optional :class:`~repro.serving.failover.FailoverPolicy`
        enabling automatic worker respawn + snapshot replay on
        :class:`~repro.exceptions.ClusterWorkerError`.  Requires an
        engine with ``revive_shard`` (a
        :class:`~repro.serving.cluster.ShardedEngine`); ``None`` (the
        default) keeps the fail-fast behavior.
    snapshot_every / snapshot_dir:
        Write ``engine`` + controller state to
        ``snapshot_dir/tick_NNNNNN`` every K completed ticks (0 = never).
    snapshot_mode:
        ``"sync"`` (default) serializes and writes each due snapshot on
        the tick path, as always.  ``"bg"`` captures the consistent copy
        on the tick path but hands serialization + disk I/O to a single
        background writer thread with a bounded queue
        (:class:`~repro.serving.durability.SnapshotWriter`): a slow disk
        back-pressures into *dropped snapshots* (the loud
        ``snapshots_dropped`` stat / ``repro_snapshot_dropped_total``
        counter), never into tick latency; :meth:`close` drains every
        accepted write.
    snapshot_deltas:
        0 (default) keeps the classic one-full-snapshot-per-cadence
        ``tick_NNNNNN`` layout.  K > 0 switches ``snapshot_dir`` to the
        incremental :class:`~repro.serving.durability.SnapshotStore`
        layout: a full ``base_NNNNNN`` followed by up to K
        ``delta_NNNNNN`` chains (each delta carries only streams dirty
        since the previous write), composed through an atomic
        ``manifest.json`` -- load with
        :func:`~repro.serving.durability.load_snapshot`, bitwise what a
        full snapshot at the same tick would restore.
    snapshot_retain:
        With ``snapshot_deltas > 0``: superseded base+delta generations
        kept on disk after each compaction (0 = keep everything).
    owns_engine:
        When True, leaving the controller's context (or calling
        :meth:`close`) also closes the engine -- the lifecycle guarantee
        the CLI paths rely on so worker processes cannot leak on a
        mid-run exception.
    clock:
        Monotonic time source for latency measurement (injectable so
        policy tests are deterministic).
    on_tick:
        Optional callback receiving each tick's :class:`TickTelemetry`.
    telemetry_window:
        Per-tick :class:`TickTelemetry` records retained (FIFO); default
        :data:`TELEMETRY_WINDOW`.  Surfaced in :class:`ControllerStats`
        so a stats consumer knows how much history :attr:`telemetry`
        covers.
    metrics:
        Optional
        :class:`~repro.serving.observability.metrics.MetricsRegistry`;
        when given, every tick publishes the controller's counters,
        gauges, and latency/phase histograms into it.
    tracer:
        Optional
        :class:`~repro.serving.observability.tracing.TickTracer`
        recording per-phase spans.  When ``metrics`` is given without a
        tracer, one is created automatically (wall-clock) so the phase
        histograms have a source; pass an explicit tracer to control its
        clock or window, or attach one alone for traces without metrics.
    slo:
        Optional
        :class:`~repro.serving.observability.distributed.SLOTracker`; when
        given, every tick's latency is fed through its objectives and the
        verdicts surface in :class:`TickTelemetry` (``slo_breaches``,
        ``slo_burn_rate``), :class:`ControllerStats`, and -- with
        ``metrics`` attached -- the ``repro_slo_*`` metric families.
    """

    def __init__(
        self,
        engine,
        autoscale: AutoscalePolicy | None = None,
        admission: AdmissionPolicy | None = None,
        failover: FailoverPolicy | None = None,
        snapshot_every: int = 0,
        snapshot_dir=None,
        snapshot_mode: str = "sync",
        snapshot_deltas: int = 0,
        snapshot_retain: int = 0,
        owns_engine: bool = False,
        clock: Callable[[], float] = time.perf_counter,
        on_tick: Callable[[TickTelemetry], None] | None = None,
        telemetry_window: int = TELEMETRY_WINDOW,
        metrics=None,
        tracer=None,
        slo=None,
    ) -> None:
        if not hasattr(engine, "step_batch"):
            raise ValidationError("engine must expose a step_batch() method")
        if autoscale is not None and not hasattr(engine, "rebalance"):
            raise ValidationError(
                "AutoscalePolicy requires an engine with rebalance() "
                "(a ShardedEngine); the single-process engine cannot scale"
            )
        if failover is not None and not hasattr(engine, "revive_shard"):
            raise ValidationError(
                "FailoverPolicy requires an engine with revive_shard() "
                "(a ShardedEngine); a single-process engine has no workers "
                "to respawn"
            )
        if snapshot_every < 0:
            raise ValidationError(
                f"snapshot_every must be >= 0, got {snapshot_every}"
            )
        if snapshot_every and snapshot_dir is None:
            raise ValidationError("snapshot_every > 0 requires snapshot_dir")
        if snapshot_mode not in ("sync", "bg"):
            raise ValidationError(
                f"snapshot_mode must be 'sync' or 'bg', got {snapshot_mode!r}"
            )
        if snapshot_deltas < 0:
            raise ValidationError(
                f"snapshot_deltas must be >= 0, got {snapshot_deltas}"
            )
        if snapshot_retain < 0:
            raise ValidationError(
                f"snapshot_retain must be >= 0, got {snapshot_retain}"
            )
        if telemetry_window < 1:
            raise ValidationError(
                f"telemetry_window must be >= 1, got {telemetry_window}"
            )
        self.engine = engine
        self.autoscale = autoscale
        self.admission = admission
        self.failover = failover
        self.snapshot_every = snapshot_every
        self.snapshot_dir = snapshot_dir
        self.snapshot_mode = snapshot_mode
        self.snapshot_deltas = snapshot_deltas
        self.snapshot_retain = snapshot_retain
        self.owns_engine = owns_engine
        self.clock = clock
        self.on_tick = on_tick
        self.telemetry_window = telemetry_window
        self.metrics = metrics
        if metrics is not None and tracer is None:
            # Metrics without a tracer would leave the phase histograms
            # empty; a default wall-clock tracer fills them.  Never tied
            # to the controller's ``clock``: a scripted-latency test
            # must not have its clock sequence consumed by spans.
            from repro.serving.observability.tracing import TickTracer

            tracer = TickTracer(window=telemetry_window)
        self.tracer = tracer
        if tracer is not None and hasattr(engine, "tracer"):
            # The sharded engine contributes fan-out/shard-step/merge
            # spans of the same ticks through this attribute.
            engine.tracer = tracer
        self.slo = slo
        self.stats = ControllerStats(telemetry_window=telemetry_window)
        #: The last :attr:`telemetry_window` ticks' telemetry records.
        self.telemetry: deque[TickTelemetry] = deque(maxlen=telemetry_window)
        self.snapshots_written: deque[str] = deque(
            maxlen=SNAPSHOTS_WRITTEN_KEEP
        )
        self._closed = False
        # Durability state: the background writer ("bg" mode), the
        # incremental base+delta store (snapshot_deltas > 0), the tick
        # of the last accepted write (None forces a full base), how many
        # deltas the current chain holds, and sync-path write timings
        # awaiting metric publication.
        self._snapshot_writer = None
        self._snapshot_store = None
        self._delta_epoch: int | None = None
        self._deltas_since_base = 0
        self._sync_write_timings: list[float] = []
        if snapshot_every and snapshot_mode == "bg":
            from repro.serving.durability import SnapshotWriter

            self._snapshot_writer = SnapshotWriter()
        if snapshot_every and snapshot_deltas > 0:
            from repro.serving.durability import SnapshotStore

            self._snapshot_store = SnapshotStore(
                snapshot_dir, retain=snapshot_retain
            )
        # Controller-level latency EWMA (telemetry + autoscale input).
        self._latency_ewma: float | None = None
        # Autoscale state.
        self._miss_streak = 0
        self._idle_streak = 0
        self._cooldown = 0
        # Admission state.
        self._seq = 0
        self._frame_seconds_ewma: float | None = None
        self._queues: dict[object, deque[_QueuedFrame]] = {}
        # Pipelined-run state: the controller-side mirror of the
        # engine's in-flight window (one _PendingTick per submitted,
        # uncollected tick).  Nonempty only inside a windowed run();
        # lockstep tick() never touches it, so the backpressure check
        # it feeds is inert there.
        self._pending_ticks: deque[_PendingTick] = deque()
        # Failover state: the in-memory recovery snapshot (refreshed
        # every journal_depth ticks and at every controller snapshot)
        # plus the journal of admitted batches since it.
        self._recovery_snapshot: RegistrySnapshot | None = None
        #: Per-shard recovery checkpoints: each shard's slice of the
        #: recovery snapshot, with its worker-local lifecycle counters.
        #: Captured in the same fan-out as the merged snapshot (see
        #: ``ShardedEngine.snapshot_shards``); None when the engine has
        #: no shard surface or the baseline is stale.
        self._shard_checkpoints: dict[int, RegistrySnapshot] | None = None
        self._journal: deque[list[StreamFrame]] = deque()
        if failover is not None:
            # Captured eagerly so a worker death during the very first
            # controlled operation has a baseline to restore -- one that
            # includes any state the engine already held when this
            # controller attached to it.
            self._rearm_checkpoint()
        # Observability publication state: metric families plus the last
        # published value of each cumulative counter (publication is by
        # delta against ``stats``, so scrape and stats always agree).
        self._metric: dict = {}
        self._published: dict = {}
        if metrics is not None:
            self._bind_metrics()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Idempotently release the controller (and the engine if owned)."""
        if self._closed:
            return
        self._closed = True
        if self._snapshot_writer is not None:
            # Drain-before-shutdown: every accepted snapshot write lands
            # on disk (and must, before an owned engine's workers go
            # away) -- only queue-refused writes are ever lost, loudly.
            self._snapshot_writer.close()
        if self.owns_engine and hasattr(self.engine, "close"):
            self.engine.close()

    def __enter__(self) -> "ServingController":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        """Current shard count (1 for a single-process engine)."""
        return getattr(self.engine, "n_shards", 1)

    @property
    def backlog(self) -> int:
        """Total deferred frames across all stream queues."""
        return sum(len(queue) for queue in self._queues.values())

    @property
    def latency_ewma(self) -> float | None:
        """Controller-level EWMA of tick latency (None before any tick)."""
        return self._latency_ewma

    # ------------------------------------------------------------------
    # The tick loop
    # ------------------------------------------------------------------
    def tick(self, frames: Sequence[StreamFrame]) -> list[StreamStepResult]:
        """Run one controlled tick; returns the admitted frames' results.

        With admission disabled the input frames pass through unmodified
        (bitwise-identical to ``engine.step_batch(frames)``).  With it
        enabled the engine receives the admitted subset in deterministic
        priority-then-arrival order, and results cover only those frames
        -- deferred frames surface on the tick that admits them.

        A tick the engine *rejects* (validation error) propagates with no
        controller state change: nothing was admitted, no telemetry is
        recorded, and with admission enabled the rejected tick's frames
        are not queued (they were never accepted into the control plane).
        """
        tracer = self.tracer
        span = tracer.span if tracer is not None else null_span
        try:
            with span("intake"):
                frames = list(frames)
                submitted = len(frames)
                if self.admission is not None:
                    self._validate_intake(frames)
            if self.admission is not None:
                with span("admission"):
                    admitted_q, deferral = self._admit(frames)
                batch = [queued.frame for queued in admitted_q]
            else:
                admitted_q, deferral = None, None
                batch = frames

            recovery = _RecoveryLog()
            before = self.clock()
            try:
                with span("step", frames=len(batch)):
                    results = self._attempt(
                        lambda: self.engine.step_batch(batch),
                        recovery,
                        kind="step",
                    )
            except Exception:
                if deferral is not None:
                    deferral.rollback()
                    # The engine rejected the tick atomically; the
                    # sequence counter must match a run where it never
                    # happened, or a later snapshot would diverge from
                    # the uninterrupted run.
                    self._seq = deferral.seq_before
                raise
            latency = self.clock() - before
            if self.failover is not None:
                # Journal the admitted batch, then checkpoint once the
                # journal is full: the recovery snapshot advances to the
                # current state and the replay window restarts empty.
                self._journal.append(batch)
                if len(self._journal) >= self.failover.journal_depth:
                    self._refresh_recovery_point(recovery)
            if deferral is not None:
                deferral.commit(self.admission.max_deferred_per_stream)
                self.stats.frames_resumed += deferral.resumed
                for queued in deferral.deferred_frames:
                    self._note_deferred(queued)
                for queued in deferral.dropped_frames:
                    self._note_dropped(queued)

            alpha = (
                self.autoscale.ewma_alpha if self.autoscale is not None else 0.3
            )
            if self._latency_ewma is None:
                self._latency_ewma = latency
            else:
                self._latency_ewma += alpha * (latency - self._latency_ewma)
            if self.admission is not None and batch:
                per_frame = latency / len(batch)
                if self._frame_seconds_ewma is None:
                    self._frame_seconds_ewma = per_frame
                else:
                    self._frame_seconds_ewma += self.admission.ewma_alpha * (
                        per_frame - self._frame_seconds_ewma
                    )

            rebalanced_to = self._autoscale_step(recovery)
            if (
                self.snapshot_every
                and self.engine.tick % self.snapshot_every == 0
            ):
                with span("snapshot"):
                    self._write_snapshot(recovery)

            slo_breaches = 0
            slo_burn = 0.0
            if self.slo is not None:
                verdicts = self.slo.observe(latency)
                slo_breaches = sum(1 for v in verdicts if v.breached)
                slo_burn = max(
                    (v.burn_short for v in verdicts), default=0.0
                )
                self.stats.slo_breaches += slo_breaches
                self.stats.slo_alerts += sum(
                    1 for v in verdicts if v.alerting
                )

            self.stats.ticks += 1
            self.stats.frames_submitted += submitted
            self.stats.frames_admitted += len(batch)
            record = TickTelemetry(
                tick=self.engine.tick,
                submitted=submitted,
                admitted=len(batch),
                resumed=deferral.resumed if deferral is not None else 0,
                deferred=(
                    len(deferral.deferred_frames) if deferral is not None else 0
                ),
                dropped=(
                    len(deferral.dropped_frames) if deferral is not None else 0
                ),
                backlog=self.backlog,
                frame_budget=deferral.budget if deferral is not None else None,
                latency_seconds=latency,
                latency_ewma=self._latency_ewma,
                n_shards=self.n_shards,
                rebalanced_to=rebalanced_to,
                failovers=recovery.failovers,
                replay_depth=recovery.replayed,
                recovery_seconds=recovery.seconds,
                slo_breaches=slo_breaches,
                slo_burn_rate=slo_burn,
            )
            self.telemetry.append(record)
        except Exception:
            # Whatever failed, the open spans belong to a tick that never
            # completed; they must not leak into the next trace.
            if tracer is not None:
                tracer.abort_tick()
            raise
        trace = tracer.end_tick(self.engine.tick) if tracer is not None else None
        if self.metrics is not None:
            # Published BEFORE on_tick so a callback (or a concurrent
            # scrape it triggers) already sees this tick's counters.
            self._publish_tick(record, trace)
        if self.on_tick is not None:
            self.on_tick(record)
        return results

    def run(self, ticks) -> dict[object, list[StreamStepResult]]:
        """Drive one :meth:`tick` per element of ``ticks``; results are
        grouped per stream (the shape every replay/CLI/bench consumer
        wants).  Frames still deferred when the schedule ends stay queued
        -- :attr:`backlog` reports them.

        On an engine with a bounded in-flight window
        (:class:`~repro.serving.cluster.ShardedEngine` built with
        ``inflight_window > 1``) the loop *pipelines*: tick t+1's frames
        are admitted and fanned out while tick t's replies are still on
        the wire, and each tick's bookkeeping runs when its replies land
        -- always in submission order, so results, journals, and
        snapshots are those of the lockstep loop.  Autoscale forces
        lockstep (a rebalance needs a drained pipeline); ``window == 1``
        *is* the lockstep loop, bit for bit.
        """
        if (
            self._pipeline_window() > 1
            and hasattr(self.engine, "submit_batch")
            and self.autoscale is None
        ):
            return self._run_pipelined(ticks)
        per_stream: dict[object, list[StreamStepResult]] = {}
        for frames in ticks:
            for result in self.tick(frames):
                per_stream.setdefault(result.stream_id, []).append(result)
        return per_stream

    # ------------------------------------------------------------------
    # Pipelined run (bounded in-flight window)
    # ------------------------------------------------------------------
    def _pipeline_window(self) -> int:
        """The engine's in-flight window bound (1 = lockstep)."""
        return getattr(self.engine, "inflight_window", 1)

    def _run_pipelined(self, ticks) -> dict[object, list[StreamStepResult]]:
        """The windowed tick loop: keep up to ``window`` ticks in flight.

        Each incoming tick is admitted and submitted as soon as a window
        slot frees up; the oldest in-flight tick is collected (replies
        merged, telemetry recorded, journal appended) whenever the
        window is full -- so the engine's shards are stepping tick t+1
        while the parent merges tick t.  Operations that need a drained
        engine (periodic snapshots, journal checkpoints) drain the
        window first, at exactly the tick cadence the lockstep loop
        would have used.

        Any failure settles the engine's window (every owed reply is
        drained) before propagating, so the controller and engine stay
        usable; with failover enabled a worker death additionally
        re-submits every admitted-but-uncollected tick after recovery,
        preserving exactly-once admission order.
        """
        per_stream: dict[object, list[StreamStepResult]] = {}
        window = self._pipeline_window()
        pending = self._pending_ticks
        if self.failover is not None and self._recovery_snapshot is None:
            # Same re-arm as _attempt's, hoisted to the window-empty
            # moment (a capture mid-window would be refused).
            self._rearm_checkpoint()
        try:
            for frames in ticks:
                while pending and (
                    len(pending) >= window or self._must_drain()
                ):
                    self._collect_one(per_stream)
                self._submit_one(frames)
            while pending:
                self._collect_one(per_stream)
        except Exception:
            # The open spans belong to ticks that never completed, and
            # the engine may still owe replies for them; settle both so
            # the controller (and a caller's cleanup) stay usable.
            if self.tracer is not None:
                self.tracer.abort_tick()
            self._settle_window()
            pending.clear()
            raise
        return per_stream

    def _must_drain(self) -> bool:
        """Does the *newest* submitted tick, once collected, need a
        drained engine?  Checked before every submit, so a snapshot-due
        or checkpoint-due tick is always the last one in the window and
        the drained-engine operation runs at its exact lockstep tick."""
        pending = self._pending_ticks
        if not pending:
            return False
        newest = self.engine.tick + len(pending)
        if self.snapshot_every and newest % self.snapshot_every == 0:
            return True
        return (
            self.failover is not None
            and len(self._journal) + len(pending)
            >= self.failover.journal_depth
        )

    def _submit_one(self, frames: Sequence[StreamFrame]) -> None:
        """The submit half of a pipelined tick: intake -> admission ->
        ``engine.submit_batch`` -> pending record.  Mirrors the front of
        :meth:`tick`, with one deliberate difference: the admission
        outcome commits *here*, once the engine accepted the submit --
        not at collect.  The next tick's intake runs before this tick's
        replies land, and it must see this tick's deferrals at the queue
        heads, or a stream's deferred frame and its next frame would be
        admitted out of order.  Rollback still covers a rejected submit,
        and failover replays the committed batches verbatim, so the
        admission schedule is decided exactly once either way."""
        tracer = self.tracer
        span = tracer.span if tracer is not None else null_span
        with span("intake"):
            frames = list(frames)
            submitted = len(frames)
            if self.admission is not None:
                self._validate_intake(frames)
        if self.admission is not None:
            with span("admission"):
                admitted_q, deferral = self._admit(frames)
            batch = [queued.frame for queued in admitted_q]
        else:
            deferral = None
            batch = frames
        record = _PendingTick(batch, submitted, deferral, self.clock())
        try:
            self._pipelined_attempt(
                lambda: self.engine.submit_batch(batch), record.recovery
            )
        except Exception:
            if deferral is not None:
                deferral.rollback()
                self._seq = deferral.seq_before
            raise
        if deferral is not None:
            deferral.commit(self.admission.max_deferred_per_stream)
            self.stats.frames_resumed += deferral.resumed
            for queued in deferral.deferred_frames:
                self._note_deferred(queued)
            for queued in deferral.dropped_frames:
                self._note_dropped(queued)
        self._pending_ticks.append(record)
        depth = len(self._pending_ticks)
        if depth > self.stats.max_inflight_depth:
            self.stats.max_inflight_depth = depth

    def _collect_one(self, per_stream: dict) -> None:
        """The collect half: finish the oldest in-flight tick.

        Merged results join ``per_stream`` and every piece of per-tick
        bookkeeping the lockstep :meth:`tick` does -- journal, EWMAs,
        periodic snapshot, SLO verdicts, telemetry, metrics, ``on_tick``
        -- runs here, in submission order.  (Admission already committed
        at submit; see :meth:`_submit_one`.)
        """
        tracer = self.tracer
        span = tracer.span if tracer is not None else null_span
        record = self._pending_ticks[0]
        recovery = record.recovery
        deferral = record.deferral
        with span("step", frames=len(record.batch)):
            results = self._pipelined_attempt(
                self.engine.collect_batch, recovery
            )
        self._pending_ticks.popleft()
        latency = self.clock() - record.before
        if self.failover is not None:
            self._journal.append(record.batch)
            if (
                len(self._journal) >= self.failover.journal_depth
                and not self._pending_ticks
            ):
                self._refresh_recovery_point(recovery)

        alpha = 0.3
        if self._latency_ewma is None:
            self._latency_ewma = latency
        else:
            self._latency_ewma += alpha * (latency - self._latency_ewma)
        if self.admission is not None and record.batch:
            per_frame = latency / len(record.batch)
            if self._frame_seconds_ewma is None:
                self._frame_seconds_ewma = per_frame
            else:
                self._frame_seconds_ewma += self.admission.ewma_alpha * (
                    per_frame - self._frame_seconds_ewma
                )

        if (
            self.snapshot_every
            and self.engine.tick % self.snapshot_every == 0
            and not self._pending_ticks
        ):
            with span("snapshot"):
                self._write_snapshot(recovery)

        slo_breaches = 0
        slo_burn = 0.0
        if self.slo is not None:
            verdicts = self.slo.observe(latency)
            slo_breaches = sum(1 for v in verdicts if v.breached)
            slo_burn = max((v.burn_short for v in verdicts), default=0.0)
            self.stats.slo_breaches += slo_breaches
            self.stats.slo_alerts += sum(1 for v in verdicts if v.alerting)

        self.stats.ticks += 1
        self.stats.frames_submitted += record.submitted
        self.stats.frames_admitted += len(record.batch)
        telemetry = TickTelemetry(
            tick=self.engine.tick,
            submitted=record.submitted,
            admitted=len(record.batch),
            resumed=deferral.resumed if deferral is not None else 0,
            deferred=(
                len(deferral.deferred_frames) if deferral is not None else 0
            ),
            dropped=(
                len(deferral.dropped_frames) if deferral is not None else 0
            ),
            backlog=self.backlog,
            frame_budget=deferral.budget if deferral is not None else None,
            latency_seconds=latency,
            latency_ewma=self._latency_ewma,
            n_shards=self.n_shards,
            rebalanced_to=None,
            failovers=recovery.failovers,
            replay_depth=recovery.replayed,
            recovery_seconds=recovery.seconds,
            slo_breaches=slo_breaches,
            slo_burn_rate=slo_burn,
            inflight_depth=len(self._pending_ticks),
        )
        self.telemetry.append(telemetry)
        trace = (
            tracer.end_tick(self.engine.tick) if tracer is not None else None
        )
        if self.metrics is not None:
            self._publish_tick(telemetry, trace)
        if self.on_tick is not None:
            self.on_tick(telemetry)
        for result in results:
            per_stream.setdefault(result.stream_id, []).append(result)

    def _pipelined_attempt(self, operation: Callable, recovery: _RecoveryLog):
        """Failover wrapper for windowed submit/collect operations.

        Like :meth:`_attempt`, but a worker death additionally settles
        the engine's window (every in-flight tick's owed replies are
        drained -- recovery's restore/replay needs a drained engine) and,
        after the journal replay, *re-submits* every
        admitted-but-uncollected tick in order, so the retried operation
        resumes against an identical pipeline.  Deterministic engines
        make the re-fanned-out ticks bitwise what the lost ones were.
        """
        while True:
            try:
                return operation()
            except ClusterWorkerError as error:
                self._settle_window()
                if self.failover is None:
                    raise
                while True:
                    if self.stats.failovers >= self.failover.max_failovers:
                        raise error
                    try:
                        self._recover(error, recovery)
                        for record in self._pending_ticks:
                            self.engine.submit_batch(record.batch)
                        break
                    except ClusterWorkerError as again:
                        error = again
                        self._settle_window()

    def _settle_window(self) -> None:
        """Drain every reply the engine's in-flight window still owes.

        Best-effort by design: the replies are discarded either way, and
        a transport so broken that even the drain fails must not mask
        the original error being handled.
        """
        abort = getattr(self.engine, "abort_window", None)
        if abort is None:
            return
        try:
            abort()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Failover (recovery snapshot + tick journal + respawn/replay loop)
    # ------------------------------------------------------------------
    def _attempt(
        self,
        operation: Callable,
        recovery: _RecoveryLog,
        kind: str = "generic",
    ):
        """Run one engine operation, recovering dead workers per the policy.

        Without a :class:`FailoverPolicy` this is a plain call -- zero
        extra engine traffic, preserving the disabled-policy invariant.
        With one, every :class:`ClusterWorkerError` -- from the operation
        or from a recovery attempt itself -- triggers one budgeted
        recovery before the operation is retried.  Exhausting
        ``max_failovers`` re-raises the latest error, with the failing
        shard attached, exactly as a failover-free controller would have.

        ``kind`` tells recovery what the interrupted operation was, so
        the shard-local path knows what is safe: ``"step"`` (a lockstep
        ``step_batch`` whose survivors' replies may be salvaged --
        recovery then *completes* the tick and returns its results
        instead of retrying), ``"snapshot"`` (read-only fan-out: a
        shard-local revive + replay suffices before the retry), or
        ``"generic"`` (anything else: always whole-cluster recovery).
        """
        if self.failover is None:
            return operation()
        while True:
            if self._recovery_snapshot is None:
                # Re-arm the checkpoint (only needed after a bare
                # ``load_state_dict``; the constructor and ``restore``
                # both leave one in place).  Deliberately OUTSIDE the
                # recovery path: with no checkpoint there is nothing to
                # restore a dead shard's streams from, so a worker death
                # during this capture must fail fast rather than
                # blank-revive the shard and silently diverge.
                self._rearm_checkpoint()
            try:
                return operation()
            except ClusterWorkerError as error:
                # Recovery itself may hit another worker death (the
                # respawned worker dies again, a TCP replacement is not
                # up yet, a second shard fails during the replay); each
                # such failure consumes budget and is retried, with the
                # backoff growing per attempt -- never aborted while
                # budget remains.
                while True:
                    if self.stats.failovers >= self.failover.max_failovers:
                        raise error
                    try:
                        salvaged = self._recover(error, recovery, kind)
                        if salvaged is not None:
                            # Shard-local recovery already completed the
                            # interrupted step from the survivors' kept
                            # replies; retrying the operation would
                            # double-step the tick.
                            return salvaged[0]
                        break
                    except ClusterWorkerError as again:
                        error = again

    def _shard_local_possible(self, dead: set, kind: str) -> bool:
        """May this recovery touch only the dead shard(s)?

        Requires: the policy allows it, the operation kind is one whose
        survivors are known un-advanced (a read-only snapshot fan-out)
        or salvageable (a lockstep step whose ok replies were kept), no
        pipelined window is open (window ticks interleave shards beyond
        per-shard reconstruction), per-shard checkpoints exist for every
        dead shard, and no dead shard is a mid-spawn index past the
        worker list.
        """
        if not self.failover.shard_local or not dead:
            return False
        if kind not in ("step", "snapshot"):
            return False
        if self._pending_ticks:
            return False
        checkpoints = self._shard_checkpoints
        if checkpoints is None:
            return False
        n_shards = self.engine.n_shards
        if any(
            shard >= n_shards or shard not in checkpoints for shard in dead
        ):
            return False
        if kind == "step" and not getattr(
            self.engine, "salvage_pending", False
        ):
            return False
        return True

    def _recover_shard_local(
        self, dead: list, kind: str, recovery: _RecoveryLog
    ):
        """Revive + replay ONLY the dead shard(s); salvage a failed step.

        Each dead shard is restored from its own checkpoint part (with
        its worker-local lifecycle counters, so cluster statistics stay
        exact) and re-stepped through its slice of the journal alone --
        O(dead shard); every surviving shard keeps serving state
        untouched.  For ``kind == "step"`` the interrupted tick is then
        completed from the survivors' kept replies plus a resend to the
        revived shard(s), and its results are returned in a 1-tuple;
        snapshot kinds return None (the caller retries the fan-out).
        """
        for shard in dead:
            part = self._shard_checkpoints[shard]
            self.engine.revive_shard(
                shard, snapshot=part, statistics=part.statistics
            )
            self.stats.shards_respawned += 1
            recovery.respawned += 1
            replayed = self.engine.replay_shard(shard, self._journal)
            self.stats.replayed_ticks += replayed
            recovery.replayed += replayed
        if kind == "step":
            return (self.engine.salvage_step(),)
        return None

    def _recover(
        self,
        error: ClusterWorkerError,
        recovery: _RecoveryLog,
        kind: str = "generic",
    ):
        """One recovery pass: respawn dead shards, restore, replay.

        Shard-local when possible (see :meth:`_shard_local_possible`),
        whole-cluster otherwise.  Returns a 1-tuple of step results when
        shard-local recovery salvaged the interrupted tick (the caller
        must NOT retry the operation), else None.

        The caller enforces the ``max_failovers`` budget.  Recovery wall
        time is measured with ``time.perf_counter`` directly (not the
        injectable ``clock``) so scripted-latency policy tests are not
        perturbed; the *tick latency* the caller observes still spans the
        recovery, by design -- the stall is real and telemetry reports it.
        """
        policy = self.failover
        self.stats.failovers += 1
        recovery.failovers += 1
        if recovery.failovers > 1 and policy.respawn_backoff > 0.0:
            # Linear backoff between consecutive attempts on the same
            # operation: a TCP worker being restarted by a supervisor
            # needs a moment beyond the transport's own connect retries.
            time.sleep(policy.respawn_backoff * (recovery.failovers - 1))
        started = time.perf_counter()
        try:
            dead = set(self.engine.dead_shards)
            if error.shard is not None:
                dead.add(error.shard)
            if self._shard_local_possible(dead, kind):
                salvaged = self._recover_shard_local(
                    sorted(dead), kind, recovery
                )
                self.stats.shard_recoveries += 1
                return salvaged
            for shard in sorted(dead):
                # A shard index past the worker list names a worker that
                # never finished spawning (mid-grow failure); there is
                # no endpoint to revive -- retrying the rebalance will
                # spawn it.
                if shard < self.engine.n_shards:
                    self.engine.revive_shard(shard)
                    self.stats.shards_respawned += 1
                    recovery.respawned += 1
            # Fallback: roll the WHOLE cluster back to the checkpoint
            # and replay the journaled batches: survivors that already
            # stepped the interrupted tick rewind with everyone else, so
            # the retry cannot double-step them, and the cluster-wide
            # statistics stay exact (the dead worker's counters died
            # with it; without a per-shard checkpoint they cannot be
            # reconstructed shard-locally).  The checkpoint always
            # exists here -- the constructor captures one eagerly and
            # _attempt re-arms it outside this path.
            self.engine.restore(self._recovery_snapshot)
            for batch in self._journal:
                self.engine.step_batch(batch)
            self.stats.replayed_ticks += len(self._journal)
            recovery.replayed += len(self._journal)
            return None
        finally:
            seconds = time.perf_counter() - started
            self.stats.recovery_seconds += seconds
            recovery.seconds += seconds
            if self.tracer is not None:
                # Self-measured span (see above re: clocks); lands in the
                # interrupted tick's trace, where the stall happened.
                self.tracer.record(
                    "recovery",
                    seconds,
                    respawned=recovery.respawned,
                    replayed=recovery.replayed,
                )

    def _rearm_checkpoint(self) -> None:
        """(Re)capture the recovery baseline from the engine as it
        stands: the merged snapshot plus -- on a sharded engine -- the
        per-shard checkpoint parts, all from one fan-out.  Unprotected
        by design (see the callers' comments): with no baseline in hand
        a worker death here must fail fast."""
        shards_fn = getattr(self.engine, "snapshot_shards", None)
        if shards_fn is not None:
            merged, parts = shards_fn()
        else:
            merged, parts = self.engine.snapshot(), None
        self._recovery_snapshot = merged
        self._shard_checkpoints = parts
        self._journal.clear()

    def _refresh_recovery_point(self, recovery: _RecoveryLog) -> None:
        """Advance the recovery snapshot (and the per-shard checkpoint
        parts, on a sharded engine) to the current state and clear the
        journal.  Itself failover-protected: a worker lost during the
        checkpoint capture is recovered from the previous checkpoint."""
        shards_fn = getattr(self.engine, "snapshot_shards", None)
        if shards_fn is not None:
            merged, parts = self._attempt(
                shards_fn, recovery, kind="snapshot"
            )
        else:
            merged, parts = (
                self._attempt(
                    self.engine.snapshot, recovery, kind="snapshot"
                ),
                None,
            )
        self._recovery_snapshot = merged
        self._shard_checkpoints = parts
        self._journal.clear()

    def _rebalance_engine(self, target: int, recovery: _RecoveryLog) -> dict:
        """``engine.rebalance`` with failover protection.

        A worker lost mid-migration leaves half-moved state; recovery
        restores the checkpoint, replays the journal, and retries the
        rebalance (which is resumable by construction: migration is
        computed against the *target* ring, wherever streams currently
        live).  After success the recovery point is refreshed so no
        journaled batch ever straddles a topology change.
        """
        summary = self._attempt(lambda: self.engine.rebalance(target), recovery)
        if self.failover is not None:
            self._refresh_recovery_point(recovery)
        return summary

    def rebalance(self, n_shards: int) -> dict:
        """Manually rescale a sharded engine through the controller.

        Unlike calling ``engine.rebalance`` directly, this routes through
        the failover recovery loop (a worker killed mid-rebalance is
        respawned and the rebalance retried) and keeps the controller's
        recovery checkpoint consistent with the new topology.  Counts as
        a rebalance in :attr:`stats`; returns the engine's migration
        summary.
        """
        if not hasattr(self.engine, "rebalance"):
            raise ValidationError(
                "engine has no rebalance(); only a sharded engine can rescale"
            )
        summary = self._rebalance_engine(n_shards, _RecoveryLog())
        self.stats.rebalances += 1
        return summary

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _frame_budget(self) -> int | None:
        """The per-tick frame budget in force (None = unlimited).

        In a pipelined run the budget additionally answers to
        *backpressure*: when the window is saturated and the oldest
        in-flight tick has already outlived the latency budget, the
        engine is not keeping up -- the budget is halved (floor 1) so
        intake throttles *now*, before overflow starts dropping frames
        from full deferral queues.  Lockstep runs never trip this (the
        window mirror is empty there).
        """
        policy = self.admission
        budget = policy.max_frames_per_tick
        if policy.latency_budget is not None and self._frame_seconds_ewma:
            dynamic = max(
                1, int(policy.latency_budget / self._frame_seconds_ewma)
            )
            budget = dynamic if budget is None else min(budget, dynamic)
        if budget is not None and self._backpressure():
            budget = max(1, budget // 2)
            self.stats.backpressure_throttles += 1
        return budget

    def _backpressure(self) -> bool:
        """Is the pipeline window saturated *and* visibly behind?

        Age is measured on the controller's injectable ``clock`` (the
        same one that timestamps submits), so backpressure tests script
        it deterministically.
        """
        policy = self.admission
        pending = self._pending_ticks
        if policy is None or policy.latency_budget is None or not pending:
            return False
        if len(pending) + 1 < self._pipeline_window():
            return False
        return self.clock() - pending[0].before > policy.latency_budget

    def _intake_shape(self) -> tuple[int, bool] | None:
        """``(n_stateless, has_scope_model)`` of the served engine, when
        introspectable (StreamingEngine layout or ShardedEngine's probed
        worker shape); None disables intake shape validation."""
        shape = getattr(self.engine, "_engine_shape", None)
        if shape is not None:
            return shape["n_stateless"], shape["has_scope_model"]
        layout = getattr(self.engine, "layout", None)
        if layout is not None:
            return (
                len(layout.stateless_names),
                getattr(self.engine, "scope_model", None) is not None,
            )
        return None

    def _priority_of(self, frame: StreamFrame) -> int:
        value = getattr(frame, self.admission.priority_field, 0)
        try:
            return int(value)
        except (TypeError, ValueError):
            raise ValidationError(
                f"stream {frame.stream_id!r}: priority field "
                f"{self.admission.priority_field!r} value {value!r} is not "
                "an integer priority class"
            ) from None

    def _validate_intake(self, frames: list[StreamFrame]) -> None:
        """Intake validation (the ``intake`` phase of an admission tick).

        A deferred frame skips the engine's whole-tick validation until
        the tick that admits it, so a malformed frame must be rejected
        *here* -- with the engine's canonical checks and messages --
        before it can hide in a queue.  Nothing (seq counter included)
        changes on reject.
        """
        shape = self._intake_shape()
        if shape is not None:
            validate_tick_frames(
                frames, n_stateless=shape[0], has_scope_model=shape[1]
            )
        else:  # engines without introspectable shape: duplicates only
            seen_ids = set()
            for frame in frames:
                if frame.stream_id in seen_ids:
                    raise ValidationError(
                        f"duplicate stream {frame.stream_id!r} within one "
                        "tick; submit at most one frame per stream per "
                        "step_batch call"
                    )
                seen_ids.add(frame.stream_id)

    def _admit(self, frames: list[StreamFrame]):
        """Pick this tick's batch: one candidate per stream, sorted by
        (priority class, arrival sequence), admitted up to the budget.

        The caller has already run :meth:`_validate_intake` on these
        frames.  Queue mutations are staged in a
        :class:`_AdmissionOutcome` and applied only after the engine
        accepted the tick (``commit``); a rejected tick rolls back to
        the pre-tick queues, so controller state matches the engine's
        nothing-happened semantics.
        """
        outcome = _AdmissionOutcome(self._queues, seq_before=self._seq)
        candidates: list[_QueuedFrame] = []
        backed_up: set = set()
        # Existing backlog goes first: each backed-up stream's oldest
        # queued frame is its candidate (per-stream FIFO order).
        for stream_id, queue in self._queues.items():
            candidates.append(queue[0])
            backed_up.add(stream_id)
        for frame in frames:
            queued = _QueuedFrame(self._seq, self._priority_of(frame), frame)
            self._seq += 1
            if frame.stream_id in backed_up:
                # The stream already has older work pending; this frame
                # joins the back of its queue (FIFO per stream).
                outcome.enqueue(frame.stream_id, queued)
            else:
                candidates.append(queued)

        candidates.sort(key=lambda q: (q.priority, q.seq))
        budget = self._frame_budget()
        outcome.budget = budget
        if budget is None or len(candidates) <= budget:
            admitted, overflow = candidates, []
        else:
            admitted, overflow = candidates[:budget], candidates[budget:]

        for queued in admitted:
            if queued.frame.stream_id in backed_up:
                outcome.pop_front(queued.frame.stream_id)
                outcome.resumed += 1
        for queued in overflow:
            if queued.frame.stream_id in backed_up:
                continue  # already queued; stays at its stream's front
            outcome.enqueue(queued.frame.stream_id, queued)
        return admitted, outcome

    def _note_deferred(self, queued: _QueuedFrame) -> None:
        self.stats.frames_deferred += 1
        by = self.stats.deferred_by_priority
        by[queued.priority] = by.get(queued.priority, 0) + 1

    def _note_dropped(self, queued: _QueuedFrame) -> None:
        self.stats.admission_overflow += 1
        by = self.stats.dropped_by_priority
        by[queued.priority] = by.get(queued.priority, 0) + 1

    # ------------------------------------------------------------------
    # Observability publication (metrics mirror ControllerStats)
    # ------------------------------------------------------------------
    def _bind_metrics(self) -> None:
        """Register this controller's metric families (get-or-create, so
        several controllers may share one registry)."""
        m = self.metrics
        f = self._metric
        f["ticks"] = m.counter(
            "repro_controller_ticks_total", "Controlled ticks completed."
        )
        f["submitted"] = m.counter(
            "repro_controller_frames_submitted_total",
            "Frames handed to the controller.",
        )
        f["admitted"] = m.counter(
            "repro_controller_frames_admitted_total",
            "Frames the engine actually stepped.",
        )
        f["resumed"] = m.counter(
            "repro_controller_frames_resumed_total",
            "Admitted frames that came from deferral queues.",
        )
        f["deferred"] = m.counter(
            "repro_controller_frames_deferred_total",
            "Frames (re)queued by admission control, by priority class.",
            labels=("priority",),
        )
        f["dropped"] = m.counter(
            "repro_controller_frames_dropped_total",
            "Frames lost to deferral-queue overflow, by priority class.",
            labels=("priority",),
        )
        f["rebalances"] = m.counter(
            "repro_controller_rebalances_total",
            "Shard-count changes (autoscale decisions + manual rebalances).",
        )
        f["snapshots"] = m.counter(
            "repro_controller_snapshots_total",
            "Periodic snapshots written to disk.",
        )
        f["snapshots_dropped"] = m.counter(
            "repro_snapshot_dropped_total",
            "Snapshot writes refused by the full background writer queue.",
        )
        f["snapshot_queue"] = m.gauge(
            "repro_snapshot_queue_depth",
            "Snapshot writes accepted but not yet on disk.",
        )
        f["snapshot_write"] = m.histogram(
            "repro_snapshot_write_seconds",
            "Serialization + disk time per snapshot write (background "
            "writer thread or synchronous tick path).",
        )
        f["shard_recoveries"] = m.counter(
            "repro_controller_shard_recoveries_total",
            "Recoveries that restored/replayed only the dead shard(s).",
        )
        f["failovers"] = m.counter(
            "repro_controller_failovers_total",
            "Worker-failure recoveries performed.",
        )
        f["respawned"] = m.counter(
            "repro_controller_shards_respawned_total",
            "Dead shard workers respawned during recovery.",
        )
        f["replayed"] = m.counter(
            "repro_controller_replayed_ticks_total",
            "Journaled ticks replayed during recovery.",
        )
        f["recovery_total"] = m.counter(
            "repro_controller_recovery_seconds_total",
            "Wall time spent in failover recovery.",
        )
        f["fanout_ticks"] = m.counter(
            "repro_fanout_ticks_total",
            "Multi-shard fan-out ticks executed by the sharded engine.",
        )
        f["fanout_encode"] = m.counter(
            "repro_fanout_encode_seconds_total",
            "Wall time encoding fan-out requests (the serial prefix).",
        )
        f["fanout_overlap"] = m.counter(
            "repro_fanout_overlap_seconds_total",
            "Wall time of the overlapped send window during fan-out.",
        )
        f["pool_hits"] = m.counter(
            "repro_codec_pool_hits_total",
            "Frame sends served from a recycled buffer-pool buffer.",
        )
        f["pool_misses"] = m.counter(
            "repro_codec_pool_misses_total",
            "Frame sends that had to allocate a fresh pool buffer.",
        )
        f["pool_bytes"] = m.counter(
            "repro_codec_pool_bytes_copied_total",
            "Payload bytes scatter-copied through the send-side codec "
            "(the pooled encoder's single copy per segment).",
        )
        f["backpressure"] = m.counter(
            "repro_cluster_backpressure_throttles_total",
            "Admission frame-budget halvings forced by a saturated, "
            "behind-schedule in-flight window.",
        )
        f["inflight_depth"] = m.gauge(
            "repro_cluster_inflight_depth",
            "Submitted-but-uncollected ticks currently in the "
            "pipeline window.",
        )
        f["backlog"] = m.gauge(
            "repro_controller_backlog_frames",
            "Deferred frames currently queued across all streams.",
        )
        f["shards"] = m.gauge(
            "repro_controller_shards", "Current shard count."
        )
        f["ewma"] = m.gauge(
            "repro_controller_latency_ewma_seconds",
            "Controller-level EWMA of tick latency.",
        )
        window = m.gauge(
            "repro_controller_telemetry_window_ticks",
            "Per-tick telemetry records the controller retains.",
        )
        window.set(self.telemetry_window)
        f["latency"] = m.histogram(
            "repro_tick_latency_seconds",
            "Measured step_batch wall time per controlled tick.",
        )
        f["phase"] = m.histogram(
            "repro_tick_phase_seconds",
            "Traced duration of each tick phase.",
            labels=("phase",),
        )
        f["recovery_hist"] = m.histogram(
            "repro_recovery_seconds",
            "Failover recovery wall time, per tick that recovered.",
        )
        f["worker_phase"] = m.counter(
            "repro_cluster_worker_phase_seconds_total",
            "Worker-side wall time per pipeline phase, per shard "
            "(piggybacked telemetry; traced ticks only).",
            labels=("shard", "phase"),
        )
        if self.slo is not None:
            f["slo_burn"] = m.gauge(
                "repro_slo_burn_rate",
                "Error-budget burn rate per objective and window.",
                labels=("slo", "window"),
            )
            f["slo_breaches"] = m.counter(
                "repro_slo_breaches_total",
                "Ticks whose latency breached the objective's budget.",
                labels=("slo",),
            )
            f["slo_alerts"] = m.counter(
                "repro_slo_alerts_total",
                "Multi-window burn-rate alerts raised, by severity.",
                labels=("slo", "severity"),
            )

    def _advance(self, key, value, counter, **labels) -> None:
        """Publish a cumulative stat as a counter delta.  Counters only
        move forward; a restored (rolled-back) stats object simply stops
        publishing until it passes the high-water mark again."""
        previous = self._published.get(key, 0)
        if value > previous:
            series = counter.labels(**labels) if labels else counter
            series.inc(value - previous)
            self._published[key] = value

    def _publish_tick(self, record: TickTelemetry, trace) -> None:
        """Mirror this tick into the metrics registry.

        Cumulative families are published as deltas of the very same
        :class:`ControllerStats` fields a caller reads, so a scrape and
        ``stats.as_dict()`` can never disagree about totals.
        """
        f = self._metric
        stats = self.stats
        self._advance("ticks", stats.ticks, f["ticks"])
        self._advance("frames_submitted", stats.frames_submitted, f["submitted"])
        self._advance("frames_admitted", stats.frames_admitted, f["admitted"])
        self._advance("frames_resumed", stats.frames_resumed, f["resumed"])
        self._advance("rebalances", stats.rebalances, f["rebalances"])
        self._advance("snapshots", stats.snapshots_written, f["snapshots"])
        self._advance(
            "snapshots_dropped",
            stats.snapshots_dropped,
            f["snapshots_dropped"],
        )
        self._advance(
            "shard_recoveries",
            stats.shard_recoveries,
            f["shard_recoveries"],
        )
        writer = self._snapshot_writer
        if writer is not None:
            f["snapshot_queue"].set(writer.queue_depth)
            for seconds in writer.drain_timings():
                f["snapshot_write"].observe(seconds)
        if self._sync_write_timings:
            for seconds in self._sync_write_timings:
                f["snapshot_write"].observe(seconds)
            self._sync_write_timings.clear()
        self._advance("failovers", stats.failovers, f["failovers"])
        self._advance("respawned", stats.shards_respawned, f["respawned"])
        self._advance("replayed", stats.replayed_ticks, f["replayed"])
        self._advance(
            "recovery_seconds", stats.recovery_seconds, f["recovery_total"]
        )
        self._advance(
            "backpressure", stats.backpressure_throttles, f["backpressure"]
        )
        f["inflight_depth"].set(record.inflight_depth)
        for priority, count in stats.deferred_by_priority.items():
            self._advance(
                ("deferred", priority), count, f["deferred"], priority=priority
            )
        for priority, count in stats.dropped_by_priority.items():
            self._advance(
                ("dropped", priority), count, f["dropped"], priority=priority
            )
        fanout_stats = getattr(self.engine, "fanout_stats", None)
        if fanout_stats is not None:
            fanout = fanout_stats()
            self._advance("fanout_ticks", fanout["ticks"], f["fanout_ticks"])
            self._advance(
                "fanout_encode", fanout["encode_seconds"], f["fanout_encode"]
            )
            self._advance(
                "fanout_overlap", fanout["overlap_seconds"], f["fanout_overlap"]
            )
            pool = fanout.get("pool")
            if pool is not None:
                self._advance("pool_hits", pool["hits"], f["pool_hits"])
                self._advance("pool_misses", pool["misses"], f["pool_misses"])
                self._advance(
                    "pool_bytes", pool["bytes_copied"], f["pool_bytes"]
                )
            for shard, phases in fanout.get(
                "worker_phase_seconds", {}
            ).items():
                for phase_name, seconds in phases.items():
                    self._advance(
                        ("worker_phase", shard, phase_name),
                        seconds,
                        f["worker_phase"],
                        shard=str(shard),
                        phase=phase_name,
                    )
        if self.slo is not None:
            slo_burn = f["slo_burn"]
            for objective in self.slo.objectives:
                rates = self.slo.burn_rates(objective.name)
                slo_burn.labels(slo=objective.name, window="short").set(
                    rates["short"]
                )
                slo_burn.labels(slo=objective.name, window="long").set(
                    rates["long"]
                )
                self._advance(
                    ("slo_breaches", objective.name),
                    self.slo.breaches(objective.name),
                    f["slo_breaches"],
                    slo=objective.name,
                )
                for severity, count in self.slo.alerts(
                    objective.name
                ).items():
                    self._advance(
                        ("slo_alerts", objective.name, severity),
                        count,
                        f["slo_alerts"],
                        slo=objective.name,
                        severity=severity,
                    )
        f["backlog"].set(record.backlog)
        f["shards"].set(record.n_shards)
        f["ewma"].set(record.latency_ewma)
        f["latency"].observe(record.latency_seconds)
        if record.recovery_seconds > 0.0:
            f["recovery_hist"].observe(record.recovery_seconds)
        if trace is not None:
            phase = f["phase"]
            for span_record in trace.spans:
                phase.labels(phase=span_record.name).observe(
                    span_record.seconds
                )

    # ------------------------------------------------------------------
    # Autoscale
    # ------------------------------------------------------------------
    def _autoscale_step(self, recovery: _RecoveryLog) -> int | None:
        """Update streaks from the latency EWMA; rebalance when due."""
        policy = self.autoscale
        if policy is None:
            return None
        ewma = self._latency_ewma
        if ewma > policy.latency_budget:
            self._miss_streak += 1
            self._idle_streak = 0
        elif ewma < policy.shrink_fraction * policy.latency_budget:
            self._idle_streak += 1
            self._miss_streak = 0
        else:
            self._miss_streak = 0
            self._idle_streak = 0
        if self._cooldown > 0:
            self._cooldown -= 1
            return None
        current = self.n_shards
        target = None
        if self._miss_streak >= policy.grow_after and current < policy.max_shards:
            target = current + 1
        elif (
            self._idle_streak >= policy.shrink_after
            and current > policy.min_shards
        ):
            target = current - 1
        if target is None:
            return None
        self._rebalance_engine(target, recovery)
        self.stats.rebalances += 1
        self._miss_streak = 0
        self._idle_streak = 0
        self._cooldown = policy.cooldown_ticks
        return target

    # ------------------------------------------------------------------
    # Snapshot / restore (controller state rides inside the registry
    # snapshot so restore-then-step reproduces the controlled run)
    # ------------------------------------------------------------------
    def snapshot(self) -> RegistrySnapshot:
        """The engine's snapshot with the controller's state attached.

        With failover enabled the capture doubles as a recovery
        checkpoint (the freshest possible baseline is free here), and a
        worker lost *during* the capture is recovered and the capture
        retried.
        """
        return self._snapshot(_RecoveryLog())

    def _snapshot(self, recovery: _RecoveryLog) -> RegistrySnapshot:
        shards_fn = getattr(self.engine, "snapshot_shards", None)
        if self.failover is not None and shards_fn is not None:
            # One fan-out yields the snapshot AND the per-shard recovery
            # checkpoints (the parts carry live worker statistics, so
            # shard-local recovery resumes counters exactly).
            snapshot, parts = self._attempt(
                shards_fn, recovery, kind="snapshot"
            )
        else:
            snapshot = self._attempt(
                self.engine.snapshot, recovery, kind="snapshot"
            )
            parts = None
        snapshot.controller = self.state_dict()
        if self.failover is not None:
            # Engine restore ignores the attached controller state, so
            # the returned object can serve directly as the baseline.
            self._recovery_snapshot = snapshot
            self._shard_checkpoints = parts
            self._journal.clear()
        return snapshot

    def restore(self, snapshot: RegistrySnapshot) -> None:
        """Restore engine *and* controller state from a snapshot.

        A snapshot without controller state (pre-controller, or taken
        straight off the engine) resets the policies to a cold start.
        When this controller autoscales and the snapshot records a
        different shard count than the engine currently runs
        (mid-autoscale capture), the topology is restored too, so the
        continuation is identical to the uninterrupted controlled run;
        without an autoscale policy the caller's chosen topology is
        respected (results do not depend on it).
        """
        self._check_state_compatible(snapshot.controller)
        self.engine.restore(snapshot)
        self.load_state_dict(snapshot.controller)
        if self.failover is not None:
            # Rebase recovery on the restored state: the snapshot already
            # contains every journaled tick's effects, so the replay
            # window restarts empty (any journal the controller state
            # carried was bookkeeping for the *capturing* run).  The
            # per-shard parts are re-derived by ring split with empty
            # statistics -- exact, because engine.restore just zeroed
            # every worker's lifecycle counters into the cluster base.
            self._recovery_snapshot = snapshot
            self._shard_checkpoints = self._derive_shard_checkpoints(snapshot)
            self._journal.clear()
        # Whatever delta chain was being written described the previous
        # timeline; the next cadence starts a fresh base.
        self._delta_epoch = None
        self._deltas_since_base = 0
        if self.autoscale is not None and snapshot.controller is not None:
            recorded = snapshot.controller.get("n_shards")
            if recorded is not None and recorded != self.n_shards:
                self._rebalance_engine(int(recorded), _RecoveryLog())

    def state_dict(self) -> dict:
        """JSON-safe controller state (policy EWMAs, streaks, queues).

        Deferred and journaled frame payloads are stored as plain float
        lists (:func:`~repro.serving.state.frame_to_state`); JSON
        round-trips Python floats exactly (shortest-repr), so restored
        frames step to bitwise-identical results.
        """
        deferred = []
        for stream_id, queue in self._queues.items():
            for queued in queue:
                entry = frame_to_state(queued.frame)
                entry["seq"] = queued.seq
                deferred.append(entry)
        return {
            "version": CONTROLLER_STATE_VERSION,
            "n_shards": self.n_shards,
            "seq": self._seq,
            "latency_ewma": self._latency_ewma,
            "autoscale": (
                {
                    "miss_streak": self._miss_streak,
                    "idle_streak": self._idle_streak,
                    "cooldown": self._cooldown,
                }
                if self.autoscale is not None
                else None
            ),
            "admission": (
                {"frame_seconds_ewma": self._frame_seconds_ewma}
                if self.admission is not None
                else None
            ),
            "deferred": deferred,
            # The failover journal: the admitted batches a recovery at
            # capture time would have replayed.  Serialized so a snapshot
            # is a complete audit of the control plane; a *restored*
            # controller rebases recovery on the restored state (which
            # already includes these ticks' effects), so the window
            # restarts empty there.
            "failover": (
                {
                    "journal": [
                        [frame_to_state(frame) for frame in batch]
                        for batch in self._journal
                    ]
                }
                if self.failover is not None
                else None
            ),
        }

    def _check_state_compatible(self, state: dict | None) -> None:
        """Everything that can make :meth:`load_state_dict` refuse,
        checked up front so a restore never half-applies."""
        if state is None:
            return
        version = state.get("version")
        if version != CONTROLLER_STATE_VERSION:
            raise ValidationError(
                f"snapshot carries controller state version {version}; this "
                f"build reads version {CONTROLLER_STATE_VERSION}"
            )
        deferred = state.get("deferred") or []
        if deferred and self.admission is None:
            # Without an admission policy the tick loop never drains the
            # queues; silently adopting them would lose the frames.
            raise ValidationError(
                f"snapshot carries {len(deferred)} deferred frame(s) but "
                "this controller has no AdmissionPolicy to serve them; "
                "restore with admission enabled (e.g. --latency-budget-ms) "
                "or take a drained snapshot"
            )

    def load_state_dict(self, state: dict | None) -> None:
        """Adopt controller state captured by :meth:`state_dict`.

        ``None`` resets to a cold start (policies keep their config but
        forget all measurements and queues).
        """
        self._check_state_compatible(state)
        self._latency_ewma = None
        self._miss_streak = self._idle_streak = self._cooldown = 0
        self._seq = 0
        self._frame_seconds_ewma = None
        self._queues = {}
        self._journal.clear()
        # Whatever recovery baseline existed belongs to the previous
        # state; the next protected operation captures a fresh one from
        # the engine as it then stands.  Same for the delta chain.
        self._recovery_snapshot = None
        self._shard_checkpoints = None
        self._delta_epoch = None
        self._deltas_since_base = 0
        if state is None:
            return
        self._seq = int(state.get("seq", 0))
        self._latency_ewma = state.get("latency_ewma")
        autoscale = state.get("autoscale")
        if autoscale is not None and self.autoscale is not None:
            self._miss_streak = int(autoscale.get("miss_streak", 0))
            self._idle_streak = int(autoscale.get("idle_streak", 0))
            self._cooldown = int(autoscale.get("cooldown", 0))
        admission = state.get("admission")
        if admission is not None and self.admission is not None:
            self._frame_seconds_ewma = admission.get("frame_seconds_ewma")
        for entry in state.get("deferred") or []:
            queue = self._queues.setdefault(entry["stream_id"], deque())
            queue.append(
                _QueuedFrame(
                    int(entry["seq"]),
                    int(entry["priority"]),
                    frame_from_state(entry),
                )
            )
        failover = state.get("failover")
        if failover is not None and self.failover is not None:
            # Faithful round trip of the serialized journal; note it is
            # only usable against the baseline it was journaled from, so
            # the next checkpoint capture (or ServingController.restore)
            # supersedes it.
            for batch in failover.get("journal") or []:
                self._journal.append(
                    [frame_from_state(entry) for entry in batch]
                )

    def _derive_shard_checkpoints(
        self, snapshot: RegistrySnapshot
    ) -> dict[int, RegistrySnapshot] | None:
        """Split a freshly-restored merged snapshot into per-shard parts."""
        shard_for = getattr(self.engine, "shard_for", None)
        if shard_for is None:
            return None
        n_shards = self.engine.n_shards
        split: dict[int, list] = {shard: [] for shard in range(n_shards)}
        for stream in snapshot.streams:
            shard = shard_for(stream.stream_id)
            if shard in split:
                split[shard].append(stream)
        return {
            shard: RegistrySnapshot(
                tick=snapshot.tick,
                max_buffer_length=snapshot.max_buffer_length,
                idle_ttl=snapshot.idle_ttl,
                statistics={},  # engine.restore zeroed them into the base
                streams=streams,
            )
            for shard, streams in split.items()
        }

    def _record_written(self, label: str) -> None:
        self.stats.snapshots_written += 1
        self.snapshots_written.append(label)

    def _write_one(self, label: str, write: Callable[[], object]) -> bool:
        """Route one accepted-capture write through the configured path:
        the background writer ("bg" mode; False = queue full, dropped
        loudly) or a timed synchronous write."""
        if self._snapshot_writer is not None:
            if not self._snapshot_writer.submit(label, write):
                self.stats.snapshots_dropped += 1
                return False
            return True
        started = time.perf_counter()
        write()
        if self.metrics is not None:  # pending histogram observations
            self._sync_write_timings.append(time.perf_counter() - started)
        return True

    def _write_snapshot(self, recovery: _RecoveryLog) -> None:
        import pathlib

        if self._snapshot_store is not None:
            self._write_incremental(recovery)
            return
        stem = pathlib.Path(self.snapshot_dir) / f"tick_{self.engine.tick:06d}"
        snapshot = self._snapshot(recovery)
        if self._write_one(str(stem), lambda: snapshot.save(stem)):
            self._record_written(str(stem))

    def _write_incremental(self, recovery: _RecoveryLog) -> None:
        """One cadence write in the base+delta store layout.

        A full base opens each chain (and whenever no accepted epoch
        exists); the next K cadences write deltas of only the streams
        dirty since the *last accepted* write.  The epoch advances only
        on accepted writes, so a queue-dropped delta simply widens the
        next delta's dirty window -- the on-disk chain stays contiguous.
        """
        store = self._snapshot_store
        tick = self.engine.tick
        if (
            self._delta_epoch is None
            or self._deltas_since_base >= self.snapshot_deltas
        ):
            snapshot = self._snapshot(recovery)
            label = str(store.base_stem(tick))
            accepted = self._write_one(
                label, lambda: store.commit_base(snapshot)
            )
            next_chain_length = 0
        else:
            since = self._delta_epoch
            delta = self._attempt(
                lambda: self.engine.snapshot_delta(since),
                recovery,
                kind="snapshot",
            )
            delta.controller = self.state_dict()
            label = str(store.delta_stem(tick))
            accepted = self._write_one(
                label, lambda: store.commit_delta(delta)
            )
            next_chain_length = self._deltas_since_base + 1
        if accepted:
            self._record_written(label)
            self._delta_epoch = tick
            self._deltas_since_base = next_chain_length


class _AdmissionOutcome:
    """Staged queue mutations of one tick's admission decision.

    The engine may reject the admitted batch (validation error); the
    controller's queues must then look exactly as before the tick, so
    every mutation is recorded here and applied on :meth:`commit` (or
    discarded on :meth:`rollback`).
    """

    def __init__(self, queues: dict, seq_before: int = 0) -> None:
        self._queues = queues
        self._pops: list = []            # stream ids whose front was admitted
        self._pushes: list[tuple[object, _QueuedFrame]] = []
        self.seq_before = seq_before
        self.resumed = 0
        self.deferred_frames: list[_QueuedFrame] = []
        self.dropped_frames: list[_QueuedFrame] = []
        self.budget: int | None = None

    def pop_front(self, stream_id) -> None:
        self._pops.append(stream_id)

    def enqueue(self, stream_id, queued: _QueuedFrame) -> None:
        self._pushes.append((stream_id, queued))

    def rollback(self) -> None:
        """Forget everything staged; the queues were never touched."""
        self._pops.clear()
        self._pushes.clear()
        self.resumed = 0

    def commit(self, max_deferred_per_stream: int) -> None:
        """Apply the staged mutations to the live queues.

        The per-stream bound is enforced here: a push that would grow a
        queue past ``max_deferred_per_stream`` drops the frame instead
        (the loud ``admission_overflow`` statistic).
        """
        for stream_id in self._pops:
            queue = self._queues[stream_id]
            queue.popleft()
            if not queue:
                del self._queues[stream_id]
        for stream_id, queued in self._pushes:
            queue = self._queues.setdefault(stream_id, deque())
            if len(queue) >= max_deferred_per_stream:
                self.dropped_frames.append(queued)
                continue
            queue.append(queued)
            self.deferred_frames.append(queued)
