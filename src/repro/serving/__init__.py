"""Serving: batched taUW inference over many concurrent object streams.

The runtime-facing layer above the core wrapper: a
:class:`~repro.serving.registry.StreamRegistry` owning per-stream buffers,
monitors, and TTL-based eviction, and a
:class:`~repro.serving.engine.StreamingEngine` whose ``step_batch`` runs a
whole tick of N streams as one vectorized pass -- bitwise identical to N
single-stream wrapper ``step`` calls, at a fraction of the cost.
"""

from repro.serving.engine import StreamFrame, StreamStepResult, StreamingEngine
from repro.serving.registry import RegistryStatistics, StreamRegistry, StreamState
from repro.serving.simulate import (
    StreamWorkload,
    build_stream_workload,
    replay_engine,
    replay_naive,
)

__all__ = [
    "StreamFrame",
    "StreamStepResult",
    "StreamingEngine",
    "RegistryStatistics",
    "StreamRegistry",
    "StreamState",
    "StreamWorkload",
    "build_stream_workload",
    "replay_engine",
    "replay_naive",
]
