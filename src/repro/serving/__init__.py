"""Serving: batched taUW inference over many concurrent object streams.

The runtime-facing layer above the core wrapper, in three tiers:

* a :class:`~repro.serving.registry.StreamRegistry` owning per-stream
  buffers, monitors, and TTL-based eviction;
* a :class:`~repro.serving.engine.StreamingEngine` whose ``step_batch``
  runs a whole tick of N streams as one vectorized pass -- bitwise
  identical to N single-stream wrapper ``step`` calls, at a fraction of
  the cost;
* a :class:`~repro.serving.cluster.ShardedEngine` that partitions streams
  across shard workers by consistent hashing and merges each tick back in
  input order.  Workers are reached through a pluggable transport
  (:mod:`repro.serving.transport`: in-proc loopback, forked pipe workers,
  zero-copy shared-memory rings (:mod:`repro.serving.shm`), or TCP to
  ``repro serve-worker`` processes on other machines), all speaking the
  versioned pickle-free wire codec of :mod:`repro.serving.protocol` --
  encoded through a reusable
  :class:`~repro.serving.protocol.BufferPool` so steady-state ticks
  copy each array payload exactly once and allocate nothing; :mod:`repro.serving.state`
  snapshot/restore makes the whole registry durable across restarts,
  shard rebalances, and transport changes;
* a :class:`~repro.serving.controller.ServingController` control plane
  that owns the tick loop for either engine -- frame intake, admission,
  ``step_batch``, telemetry, policy hooks, snapshot cadence -- with two
  pluggable policies: latency-driven
  :class:`~repro.serving.controller.AutoscalePolicy` (EWMA vs. budget
  with hysteresis, driving ``rebalance``) and QoS
  :class:`~repro.serving.controller.AdmissionPolicy` (priority classes,
  per-tick frame budget, bounded deferred queues), plus a
  :class:`~repro.serving.failover.FailoverPolicy` that makes the cluster
  self-healing: on worker death the controller respawns the shard,
  restores its recovery snapshot, replays the buffered tick journal, and
  retries -- bitwise-identical to an uninterrupted run.  With all
  policies disabled a controlled run is bitwise-identical to driving the
  engine directly;
* a :mod:`~repro.serving.observability` subsystem -- a dependency-free
  metrics registry with Prometheus text exposition over HTTP, span-style
  tracing of the tick phases, and a wire-frame flight recorder whose
  logs ``repro replay-flight`` re-drives bitwise-identically.
  Distributed tracing extends the spans across process boundaries:
  workers time their own recv/decode/step/encode/send phases and
  piggyback the timings on reply frames, the cluster rebases them onto
  the controller clock via an NTP-style offset handshake, and the
  merged per-tick timelines export as Chrome trace-event JSON for
  Perfetto.  An :class:`~repro.serving.observability.SLOTracker` scores
  every tick's latency against latency objectives with multi-window
  error-budget burn-rate alerting.  All opt-in: nothing attached means
  the exact uninstrumented code paths.
"""

from repro.serving.cluster import HashRing, ShardedEngine, stable_stream_hash
from repro.serving.controller import (
    AdmissionPolicy,
    AutoscalePolicy,
    ControllerStats,
    ServingController,
    TickTelemetry,
)
from repro.serving.durability import (
    SnapshotStore,
    SnapshotWriter,
    load_snapshot,
)
from repro.serving.engine import StreamFrame, StreamStepResult, StreamingEngine
from repro.serving.failover import FailoverPolicy
from repro.serving.observability import (
    SLO,
    FlightRecorder,
    FlightRecordingTransport,
    MetricsRegistry,
    MetricsServer,
    SLOTracker,
    TickTracer,
    TraceExporter,
    assemble_tick_timeline,
    estimate_clock_offset,
    replay_flight,
    timeline_from_flight,
    write_trace_events,
)
from repro.serving.protocol import PROTOCOL_VERSION, BufferPool
from repro.serving.registry import RegistryStatistics, StreamRegistry, StreamState
from repro.serving.simulate import (
    StreamWorkload,
    build_stream_workload,
    replay_engine,
    replay_naive,
    replay_results,
)
from repro.serving.state import (
    SNAPSHOT_VERSION,
    DeltaSnapshot,
    RegistrySnapshot,
    StreamStateSnapshot,
    compose_snapshot,
)
from repro.serving.shm import ShmTransport
from repro.serving.transport import (
    InprocTransport,
    PipeTransport,
    TcpTransport,
    Transport,
    launch_local_workers,
    serve_worker,
    stop_local_workers,
)

__all__ = [
    "StreamFrame",
    "StreamStepResult",
    "StreamingEngine",
    "RegistryStatistics",
    "StreamRegistry",
    "StreamState",
    "StreamWorkload",
    "build_stream_workload",
    "replay_engine",
    "replay_naive",
    "replay_results",
    "HashRing",
    "ShardedEngine",
    "stable_stream_hash",
    "ServingController",
    "AutoscalePolicy",
    "AdmissionPolicy",
    "FailoverPolicy",
    "ControllerStats",
    "TickTelemetry",
    "PROTOCOL_VERSION",
    "BufferPool",
    "SNAPSHOT_VERSION",
    "RegistrySnapshot",
    "DeltaSnapshot",
    "StreamStateSnapshot",
    "compose_snapshot",
    "SnapshotStore",
    "SnapshotWriter",
    "load_snapshot",
    "Transport",
    "InprocTransport",
    "PipeTransport",
    "ShmTransport",
    "TcpTransport",
    "serve_worker",
    "launch_local_workers",
    "stop_local_workers",
    "MetricsRegistry",
    "MetricsServer",
    "TickTracer",
    "FlightRecorder",
    "FlightRecordingTransport",
    "replay_flight",
    "SLO",
    "SLOTracker",
    "TraceExporter",
    "assemble_tick_timeline",
    "estimate_clock_offset",
    "timeline_from_flight",
    "write_trace_events",
]
