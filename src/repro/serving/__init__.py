"""Serving: batched taUW inference over many concurrent object streams.

The runtime-facing layer above the core wrapper, in three tiers:

* a :class:`~repro.serving.registry.StreamRegistry` owning per-stream
  buffers, monitors, and TTL-based eviction;
* a :class:`~repro.serving.engine.StreamingEngine` whose ``step_batch``
  runs a whole tick of N streams as one vectorized pass -- bitwise
  identical to N single-stream wrapper ``step`` calls, at a fraction of
  the cost;
* a :class:`~repro.serving.cluster.ShardedEngine` that partitions streams
  across worker processes by consistent hashing and merges each tick back
  in input order, with :mod:`repro.serving.state` snapshot/restore making
  the whole registry durable across restarts and shard rebalances.
"""

from repro.serving.cluster import HashRing, ShardedEngine, stable_stream_hash
from repro.serving.engine import StreamFrame, StreamStepResult, StreamingEngine
from repro.serving.registry import RegistryStatistics, StreamRegistry, StreamState
from repro.serving.simulate import (
    StreamWorkload,
    build_stream_workload,
    replay_engine,
    replay_naive,
)
from repro.serving.state import (
    SNAPSHOT_VERSION,
    RegistrySnapshot,
    StreamStateSnapshot,
)

__all__ = [
    "StreamFrame",
    "StreamStepResult",
    "StreamingEngine",
    "RegistryStatistics",
    "StreamRegistry",
    "StreamState",
    "StreamWorkload",
    "build_stream_workload",
    "replay_engine",
    "replay_naive",
    "HashRing",
    "ShardedEngine",
    "stable_stream_hash",
    "SNAPSHOT_VERSION",
    "RegistrySnapshot",
    "StreamStateSnapshot",
]
