"""Non-blocking, incremental durability for serving snapshots.

Until this module, durability sat *on* the hot path: every
``snapshot_every`` cadence the controller serialized the whole registry
with ``np.savez_compressed`` inside the tick -- an O(all streams) stall
for every stream, every time -- and the ``.json``/``.npz`` pair hit disk
non-atomically, so a crash mid-write could leave a sidecar silently
paired with stale arrays.  This module supplies the two missing pieces
(:mod:`repro.serving.state` supplies the third, atomic digested file
writes):

* :class:`SnapshotWriter` -- a single background thread with a bounded
  queue.  The tick path pays only the consistent *capture* (the
  already-detached array copies a snapshot is made of); serialization
  and disk I/O happen off-thread.  A full queue drops the newest job
  loudly (``dropped`` counter -- the controller surfaces it as
  ``snapshots_dropped`` / ``repro_snapshot_dropped_total``) instead of
  blocking the tick, and :meth:`SnapshotWriter.close` drains everything
  queued before shutdown so no accepted snapshot is ever lost silently.

* :class:`SnapshotStore` -- the incremental on-disk layout: full
  ``base_NNNNNN`` snapshots plus ``delta_NNNNNN`` chains
  (:class:`~repro.serving.state.DeltaSnapshot`), committed through an
  atomically-replaced ``manifest.json`` that names the live chain with a
  content digest per component.  ``load`` verifies every digest, then
  composes base + deltas back into one
  :class:`~repro.serving.state.RegistrySnapshot`
  (:func:`~repro.serving.state.compose_snapshot`) -- bitwise what a full
  synchronous snapshot at the same tick would hold.  Superseded
  generations are optionally garbage-collected after compaction
  (``retain``).

* :func:`load_snapshot` -- one loader for both layouts: a store
  directory (or its ``manifest.json``) composes the chain; a legacy
  ``tick_NNNNNN`` stem loads the classic pair.

Single-writer by construction: exactly one thread ever mutates a store
(the background writer in ``bg`` mode, the tick thread in ``sync``
mode), so the store needs no locking -- the writer's bounded queue *is*
the serialization point.
"""

from __future__ import annotations

import json
import pathlib
import queue
import threading
import time

from repro.exceptions import ValidationError
from repro.serving.state import (
    DeltaSnapshot,
    RegistrySnapshot,
    arrays_digest,  # noqa: F401  (re-exported: the store's digest primitive)
    compose_snapshot,
)

__all__ = [
    "SnapshotWriter",
    "SnapshotStore",
    "load_snapshot",
    "MANIFEST_NAME",
]

#: The store's commit record, atomically replaced on every commit.
MANIFEST_NAME = "manifest.json"

_MANIFEST_FORMAT = "repro-snapshot-manifest"
_MANIFEST_VERSION = 1


class SnapshotWriter:
    """One daemon thread draining a bounded queue of snapshot writes.

    ``submit`` never blocks: a full queue refuses the job (returns
    ``False``, counts it in ``dropped``) so a slow disk back-pressures
    into *skipped snapshots*, never into tick latency.  Jobs that raise
    are counted (``errors`` / ``last_error``) and do not kill the
    thread.  Per-write wall times accumulate for the controller's
    ``repro_snapshot_write_seconds`` histogram
    (:meth:`drain_timings`).
    """

    def __init__(self, capacity: int = 4) -> None:
        if capacity < 1:
            raise ValidationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._queue: queue.Queue = queue.Queue(capacity)
        self._lock = threading.Lock()
        self._written = 0
        self._dropped = 0
        self._errors = 0
        self._timings: list[float] = []
        self.last_error: tuple[str, Exception] | None = None
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="repro-snapshot-writer", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while True:
            job = self._queue.get()
            try:
                if job is None:
                    return
                label, write = job
                started = time.perf_counter()
                try:
                    write()
                except Exception as error:
                    with self._lock:
                        self._errors += 1
                        self.last_error = (label, error)
                else:
                    seconds = time.perf_counter() - started
                    with self._lock:
                        self._written += 1
                        self._timings.append(seconds)
                        # Bounded even when nobody drains (metrics off).
                        if len(self._timings) > 256:
                            del self._timings[0]
            finally:
                self._queue.task_done()

    def submit(self, label: str, write) -> bool:
        """Enqueue one write job; ``False`` = queue full, job dropped."""
        if self._closed:
            raise ValidationError("snapshot writer is closed")
        try:
            self._queue.put_nowait((label, write))
        except queue.Full:
            with self._lock:
                self._dropped += 1
            return False
        return True

    def drain(self) -> None:
        """Block until every accepted job has been executed."""
        self._queue.join()

    def close(self) -> None:
        """Drain the queue, then stop the thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)  # blocks only until the drain frees a slot
        self._thread.join()

    @property
    def queue_depth(self) -> int:
        """Writes accepted but not yet on disk (approximate)."""
        return self._queue.qsize()

    def stats(self) -> dict:
        with self._lock:
            return {
                "written": self._written,
                "dropped": self._dropped,
                "errors": self._errors,
                "queue_depth": self.queue_depth,
            }

    def drain_timings(self) -> list[float]:
        """Pop the per-write durations accumulated since the last call."""
        with self._lock:
            timings, self._timings = self._timings, []
        return timings


class SnapshotStore:
    """Base + delta snapshot chains behind an atomic manifest.

    Layout (all inside ``directory``)::

        manifest.json            <- the commit record (atomic replace)
        base_000008.{json,npz}   <- newest full snapshot
        delta_000010.{json,npz}  <- dirty-since-8 streams
        delta_000012.{json,npz}  <- dirty-since-10 streams

    The manifest names the live chain; each entry carries a blake2b
    digest of its sidecar bytes (which themselves commit to the arrays'
    digest), so ``load`` refuses any component that does not match what
    the manifest was written against.  Commit order makes crashes safe:
    component files land (atomically) *before* the manifest that names
    them, so the on-disk manifest always describes a complete,
    restorable chain -- a crash mid-commit merely loses the newest
    generation, never corrupts the previous one.

    ``retain`` bounds the superseded generations kept on disk after a
    compaction (a new base supersedes the previous base + deltas):
    ``0`` keeps everything, ``N`` unlinks all but the newest ``N``
    superseded generations.
    """

    def __init__(self, directory, retain: int = 0) -> None:
        if retain < 0:
            raise ValidationError(f"retain must be >= 0, got {retain}")
        self.directory = pathlib.Path(directory)
        self.retain = retain
        self._manifest: dict | None = None
        self._history: list[dict] = []  # superseded generations, oldest first

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------
    def base_stem(self, tick: int) -> pathlib.Path:
        return self.directory / f"base_{tick:06d}"

    def delta_stem(self, tick: int) -> pathlib.Path:
        return self.directory / f"delta_{tick:06d}"

    def commit_base(self, snapshot: RegistrySnapshot) -> pathlib.Path:
        """Write a full snapshot and point the manifest at it (alone)."""
        stem = self.base_stem(snapshot.tick)
        json_path, _ = snapshot.save(stem)
        previous = self._manifest
        self._manifest = {
            "format": _MANIFEST_FORMAT,
            "version": _MANIFEST_VERSION,
            "tick": snapshot.tick,
            "base": self._entry(stem, snapshot.tick, json_path),
            "deltas": [],
        }
        self._write_manifest()
        if previous is not None:
            self._history.append(previous)
            self._gc()
        return stem

    def commit_delta(self, delta: DeltaSnapshot) -> pathlib.Path:
        """Append one delta to the live chain."""
        if self._manifest is None:
            raise ValidationError(
                "cannot commit a delta before any base snapshot"
            )
        stem = self.delta_stem(delta.tick)
        json_path, _ = delta.save(stem)
        entry = self._entry(stem, delta.tick, json_path)
        entry["base_tick"] = delta.base_tick
        self._manifest["deltas"].append(entry)
        self._manifest["tick"] = delta.tick
        self._write_manifest()
        return stem

    @staticmethod
    def _entry(stem: pathlib.Path, tick: int, json_path: pathlib.Path) -> dict:
        import hashlib

        digest = hashlib.blake2b(json_path.read_bytes(), digest_size=16)
        return {
            "stem": stem.name,
            "tick": int(tick),
            "sidecar_digest": digest.hexdigest(),
        }

    def _write_manifest(self) -> None:
        from repro.serving.state import _atomic_write

        payload = json.dumps(self._manifest, indent=2).encode()
        _atomic_write(
            self.directory / MANIFEST_NAME, lambda fh: fh.write(payload)
        )

    def _gc(self) -> None:
        if not self.retain:
            return
        while len(self._history) > self.retain:
            old = self._history.pop(0)
            for entry in [old["base"], *old["deltas"]]:
                for suffix in (".json", ".npz"):
                    path = self.directory / (entry["stem"] + suffix)
                    try:
                        path.unlink()
                    except FileNotFoundError:
                        pass

    # ------------------------------------------------------------------
    # Load
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, directory) -> RegistrySnapshot:
        """Compose the manifest's live chain back into a full snapshot."""
        directory = pathlib.Path(directory)
        manifest_path = directory / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text())
        except FileNotFoundError:
            raise ValidationError(
                f"snapshot manifest {manifest_path} not found"
            ) from None
        if (
            not isinstance(manifest, dict)
            or manifest.get("format") != _MANIFEST_FORMAT
        ):
            raise ValidationError(
                f"{manifest_path} is not a {_MANIFEST_FORMAT} manifest"
            )
        if manifest.get("version") != _MANIFEST_VERSION:
            raise ValidationError(
                f"manifest {manifest_path} has version "
                f"{manifest.get('version')}; this build reads version "
                f"{_MANIFEST_VERSION}"
            )
        cls._check_entry(directory, manifest["base"], manifest_path)
        base = RegistrySnapshot.load(directory / manifest["base"]["stem"])
        deltas = []
        for entry in manifest.get("deltas", []):
            cls._check_entry(directory, entry, manifest_path)
            deltas.append(DeltaSnapshot.load(directory / entry["stem"]))
        return compose_snapshot(base, deltas)

    @staticmethod
    def _check_entry(directory, entry: dict, manifest_path) -> None:
        import hashlib

        sidecar = directory / (entry["stem"] + ".json")
        try:
            payload = sidecar.read_bytes()
        except FileNotFoundError:
            raise ValidationError(
                f"manifest {manifest_path} names {sidecar}, which is missing"
            ) from None
        actual = hashlib.blake2b(payload, digest_size=16).hexdigest()
        if actual != entry.get("sidecar_digest"):
            raise ValidationError(
                f"{sidecar} does not match manifest {manifest_path}: "
                f"sidecar digest {actual} != recorded "
                f"{entry.get('sidecar_digest')}"
            )


def load_snapshot(path) -> RegistrySnapshot:
    """Load a snapshot from either on-disk layout.

    * a :class:`SnapshotStore` directory (or its ``manifest.json``)
      composes the manifest's base + delta chain;
    * anything else is treated as a legacy ``<stem>.json``/``.npz`` pair.
    """
    path = pathlib.Path(path)
    if path.name == MANIFEST_NAME:
        return SnapshotStore.load(path.parent)
    if path.is_dir():
        return SnapshotStore.load(path)
    return RegistrySnapshot.load(path)
