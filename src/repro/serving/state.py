"""Versioned snapshot/restore of serving state (``.npz`` + JSON).

The timeseries-aware wrapper is *stateful*: per-stream ring buffers,
absolute timestep counters, monitor risk budgets and hysteresis latches,
and the TTL clocks that drive idle eviction.  Losing that state on a
worker restart silently degrades every in-flight stream to a cold start --
the fused outcome and its dependable uncertainty both change.  This module
makes the whole :class:`~repro.serving.registry.StreamRegistry` durable:

* :class:`RegistrySnapshot` captures every stream's state plus the engine
  tick into plain numpy arrays and JSON-serializable metadata;
* :meth:`RegistrySnapshot.save` persists it as a ``<stem>.json`` sidecar
  (format version, tick, registry configuration, per-stream metadata,
  monitor states) next to a ``<stem>.npz`` holding the concatenated buffer
  arrays;
* :meth:`RegistrySnapshot.restore_into` rebuilds a registry so that
  restore-then-step is bitwise-identical to never having stopped;
* :meth:`RegistrySnapshot.subset` / :meth:`RegistrySnapshot.inject_into`
  carve out and graft individual streams -- the migration primitive the
  sharded cluster uses when streams move between workers on rebalance.

Snapshots are versioned (:data:`SNAPSHOT_VERSION`); loading a snapshot
written by an incompatible future format fails loudly instead of silently
misreading state.  Stream ids must be JSON-serializable scalars (str, int,
float, bool, None) so they survive the sidecar round trip; richer id
types are rejected at capture time.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.buffer import TimeseriesBuffer
from repro.core.monitor import UncertaintyMonitor
from repro.exceptions import ValidationError
from repro.serving.registry import RegistryStatistics, StreamRegistry, StreamState

__all__ = [
    "SNAPSHOT_VERSION",
    "StreamStateSnapshot",
    "RegistrySnapshot",
    "DeltaSnapshot",
    "compose_snapshot",
    "arrays_digest",
    "frame_to_state",
    "frame_from_state",
]

#: Format version written into every snapshot sidecar and checked on load.
SNAPSHOT_VERSION = 1

_FORMAT_NAME = "repro-registry-snapshot"
_DELTA_FORMAT_NAME = "repro-registry-delta"
_JSON_ID_TYPES = (str, int, float, bool, type(None))


# ---------------------------------------------------------------------------
# Durable writes: content digests + atomic two-file commit
# ---------------------------------------------------------------------------

def arrays_digest(arrays: dict) -> str:
    """Content digest of a snapshot's array dict (names, shapes, bytes).

    blake2b over the canonically ordered (name, dtype, shape, bytes)
    tuples, so the sidecar can commit to exactly the ``.npz`` it was
    written with: a crash that leaves a sidecar next to stale arrays --
    or an operator pairing files from different snapshots -- is caught
    at load time instead of silently restoring mismatched state.
    """
    digest = hashlib.blake2b(digest_size=16)
    for name in sorted(arrays):
        value = np.ascontiguousarray(arrays[name])
        digest.update(name.encode())
        digest.update(str(value.dtype).encode())
        digest.update(repr(value.shape).encode())
        digest.update(value.tobytes())
    return digest.hexdigest()


def _atomic_write(path: pathlib.Path, write) -> None:
    """Write ``path`` via tmp-file + fsync + ``os.replace``.

    The temp file lives in the target directory (``os.replace`` must not
    cross filesystems), so readers only ever see the old complete file
    or the new complete file -- never a torn one.
    """
    tmp = path.parent / f".{path.name}.tmp"
    with open(tmp, "wb") as handle:
        write(handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _fsync_directory(directory: pathlib.Path) -> None:
    """Best-effort directory fsync so the renames themselves are durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystem refuses dir fsync
        pass
    finally:
        os.close(fd)


def _save_snapshot_files(stem, meta: dict, arrays: dict):
    """Shared atomic persistence of one (meta, arrays) snapshot pair.

    The ``.npz`` is committed first and the sidecar last: the sidecar is
    the snapshot's commit record (it names the digest of the arrays), so
    it must only appear once the arrays it commits to are durably in
    place.  A crash between the two leaves at worst a fresh ``.npz``
    next to the *previous* sidecar -- which the digest check then
    refuses loudly instead of pairing silently.
    """
    json_path, npz_path = _snapshot_paths(stem)
    meta = dict(meta)
    meta["digest"] = arrays_digest(arrays)
    json_path.parent.mkdir(parents=True, exist_ok=True)
    _atomic_write(npz_path, lambda fh: np.savez_compressed(fh, **arrays))
    # Compact separators keep the encoding on CPython's C serializer
    # (indented output falls back to the pure-Python encoder -- an
    # order of magnitude slower, and GIL-bound: a 10k-stream sidecar
    # serialized on the background writer would stall live ticks).
    payload = json.dumps(meta, separators=(",", ":")).encode()
    _atomic_write(json_path, lambda fh: fh.write(payload))
    _fsync_directory(json_path.parent)
    return json_path, npz_path


def _load_snapshot_files(stem, format_name: str) -> tuple[dict, dict]:
    """Read + cross-check one sidecar/arrays pair written by
    :func:`_save_snapshot_files` (digest-less legacy sidecars still load)."""
    json_path, npz_path = _snapshot_paths(stem)
    try:
        sidecar = json.loads(json_path.read_text())
    except FileNotFoundError:
        raise ValidationError(f"snapshot sidecar {json_path} not found") from None
    if not isinstance(sidecar, dict) or sidecar.get("format") != format_name:
        raise ValidationError(f"{json_path} is not a {format_name} sidecar")
    try:
        with np.load(npz_path) as archive:
            arrays = {
                "lengths": archive["lengths"],
                "outcomes": archive["outcomes"],
                "uncertainties": archive["uncertainties"],
            }
    except FileNotFoundError:
        raise ValidationError(f"snapshot arrays {npz_path} not found") from None
    recorded = sidecar.get("digest")
    if recorded is not None:
        actual = arrays_digest(arrays)
        if actual != recorded:
            raise ValidationError(
                f"snapshot arrays {npz_path} do not belong to sidecar "
                f"{json_path}: content digest {actual} != recorded "
                f"{recorded} (torn write or mismatched files)"
            )
    return sidecar, arrays


# ---------------------------------------------------------------------------
# Frame state: JSON-safe round trip of one submitted StreamFrame
# ---------------------------------------------------------------------------
#
# The control plane needs to persist *unprocessed* frames too -- admission
# queues full of deferred frames, and the failover tick journal that
# replays admitted batches after a worker respawn.  One canonical codec
# keeps both bitwise-exact: JSON round-trips Python floats exactly
# (shortest repr), so a frame rebuilt from this state steps to the same
# results as the original.  StreamFrame is imported lazily -- engine.py
# imports this module at import time.

def frame_to_state(frame) -> dict:
    """JSON-safe dict capturing one :class:`StreamFrame` exactly."""
    from repro.serving.protocol import sanitize_wire_scope

    return {
        "stream_id": frame.stream_id,
        "priority": int(frame.priority),
        "new_series": bool(frame.new_series),
        "scope": sanitize_wire_scope(frame.scope_factors, frame.stream_id),
        "x": np.asarray(frame.model_input, dtype=float).ravel().tolist(),
        "q": np.asarray(frame.stateless_quality_values, dtype=float)
        .ravel()
        .tolist(),
    }


def frame_from_state(entry: dict):
    """Rebuild the :class:`StreamFrame` captured by :func:`frame_to_state`."""
    from repro.serving.engine import StreamFrame

    return StreamFrame(
        stream_id=entry["stream_id"],
        model_input=np.asarray(entry["x"], dtype=float),
        stateless_quality_values=np.asarray(entry["q"], dtype=float),
        new_series=bool(entry["new_series"]),
        scope_factors=entry["scope"],
        priority=int(entry["priority"]),
    )


@dataclass(frozen=True)
class StreamStateSnapshot:
    """Frozen copy of one stream's full serving state.

    Attributes
    ----------
    stream_id:
        The stream's identifier (JSON-serializable scalar).
    outcomes / uncertainties:
        The buffer's live window at capture time, oldest first.
    step_count:
        Absolute frames since the current series' onset.
    last_tick:
        Engine tick of the stream's most recent frame (TTL clock).
    monitor:
        The monitor's :meth:`~repro.core.monitor.UncertaintyMonitor.state_dict`,
        or ``None`` for unmonitored streams.
    """

    stream_id: object
    outcomes: np.ndarray
    uncertainties: np.ndarray
    step_count: int
    last_tick: int
    monitor: dict | None

    @classmethod
    def capture(cls, state: StreamState) -> "StreamStateSnapshot":
        """Copy one live :class:`StreamState` into a detached snapshot."""
        if not isinstance(state.stream_id, _JSON_ID_TYPES):
            raise ValidationError(
                f"stream id {state.stream_id!r} is not JSON-serializable; "
                "snapshots support str/int/float/bool/None ids"
            )
        buffer_state = state.buffer.export_state()
        return cls(
            stream_id=state.stream_id,
            outcomes=buffer_state["outcomes"],
            uncertainties=buffer_state["uncertainties"],
            step_count=int(state.step_count),
            last_tick=int(state.last_tick),
            monitor=state.monitor.state_dict() if state.monitor else None,
        )

    def to_state(self, max_buffer_length: int | None) -> StreamState:
        """Rebuild a live :class:`StreamState` from this snapshot."""
        return StreamState(
            stream_id=self.stream_id,
            buffer=TimeseriesBuffer.from_state(
                self.outcomes, self.uncertainties, max_length=max_buffer_length
            ),
            monitor=(
                UncertaintyMonitor.from_state_dict(self.monitor)
                if self.monitor is not None
                else None
            ),
            step_count=self.step_count,
            last_tick=self.last_tick,
        )


@dataclass
class RegistrySnapshot:
    """A whole registry (plus the engine tick) at one point in time.

    Attributes
    ----------
    tick:
        The engine's tick counter when the snapshot was taken.
    max_buffer_length / idle_ttl:
        The registry configuration in force; restoring applies these (the
        snapshot is authoritative over however the restored-into registry
        was constructed).
    statistics:
        Lifecycle counters (``created`` / ``evicted`` / ``series_started``).
    streams:
        One :class:`StreamStateSnapshot` per tracked stream.
    version:
        Snapshot format version (:data:`SNAPSHOT_VERSION`).
    controller:
        Optional control-plane state
        (:meth:`~repro.serving.controller.ServingController.state_dict`:
        policy EWMAs, autoscale streaks, deferred frame queues), attached
        by :meth:`ServingController.snapshot` so a restored controller
        continues the controlled run exactly.  ``None`` for snapshots
        taken straight off an engine; engines ignore it on restore.
    """

    tick: int
    max_buffer_length: int | None
    idle_ttl: int | None
    statistics: dict = field(default_factory=dict)
    streams: list[StreamStateSnapshot] = field(default_factory=list)
    version: int = SNAPSHOT_VERSION
    controller: dict | None = None

    # ------------------------------------------------------------------
    # Capture / restore
    # ------------------------------------------------------------------
    @classmethod
    def capture(
        cls,
        registry: StreamRegistry,
        tick: int,
        stream_ids=None,
    ) -> "RegistrySnapshot":
        """Snapshot a registry (or the subset named by ``stream_ids``)."""
        if stream_ids is None:
            states = registry.states
        else:
            states = [registry.get(stream_id) for stream_id in stream_ids]
        return cls(
            tick=int(tick),
            max_buffer_length=registry.max_buffer_length,
            idle_ttl=registry.idle_ttl,
            statistics={
                "created": registry.statistics.created,
                "evicted": registry.statistics.evicted,
                "series_started": registry.statistics.series_started,
            },
            streams=[StreamStateSnapshot.capture(state) for state in states],
        )

    def restore_into(self, registry: StreamRegistry) -> None:
        """Replace a registry's entire state with this snapshot's.

        Configuration (window cap, TTL), statistics, and every stream are
        taken from the snapshot; whatever the registry held before is
        dropped.  The monitor factory is left untouched -- it only shapes
        streams created *after* the restore.
        """
        states = [s.to_state(self.max_buffer_length) for s in self.streams]
        registry.reset()
        registry.max_buffer_length = self.max_buffer_length
        registry.idle_ttl = self.idle_ttl
        registry.statistics = RegistryStatistics(
            created=int(self.statistics.get("created", 0)),
            evicted=int(self.statistics.get("evicted", 0)),
            series_started=int(self.statistics.get("series_started", 0)),
        )
        for state in states:
            registry.adopt(state)

    def inject_into(self, registry: StreamRegistry) -> None:
        """Graft this snapshot's streams into a registry (migration).

        Unlike :meth:`restore_into` the registry's configuration,
        statistics, and existing streams are preserved; only the
        snapshot's streams are added (duplicate ids raise, leaving the
        already-adopted subset in place -- callers migrate between
        registries they control, so collisions are programming errors).
        """
        for snapshot in self.streams:
            registry.adopt(snapshot.to_state(self.max_buffer_length))

    def subset(self, stream_ids) -> "RegistrySnapshot":
        """A snapshot containing only the named streams (for migration)."""
        wanted = set(stream_ids)
        return RegistrySnapshot(
            tick=self.tick,
            max_buffer_length=self.max_buffer_length,
            idle_ttl=self.idle_ttl,
            statistics=dict(self.statistics),
            streams=[s for s in self.streams if s.stream_id in wanted],
            version=self.version,
        )

    @property
    def n_streams(self) -> int:
        return len(self.streams)

    # ------------------------------------------------------------------
    # Wire framing: JSON-safe metadata + named numpy arrays
    # ------------------------------------------------------------------
    #
    # One canonical split of a snapshot into (meta, arrays), shared by the
    # on-disk format (meta -> .json sidecar, arrays -> .npz) and by the
    # cluster wire codec (meta -> frame header, arrays -> raw segments).
    # Buffers never round-trip through JSON either way, so a transferred
    # snapshot is bitwise-identical to the captured one.

    def to_wire(self) -> tuple[dict, dict]:
        """Split this snapshot into JSON-safe metadata + numpy arrays.

        Returns ``(meta, arrays)`` where ``meta`` is the sidecar dict
        (format name, version, tick, configuration, per-stream metadata,
        monitor states) and ``arrays`` holds the concatenated buffer
        arrays plus per-stream lengths, so a million short buffers cost
        three arrays rather than a million segments.
        """
        meta = {
            "format": _FORMAT_NAME,
            "version": self.version,
            "tick": self.tick,
            "max_buffer_length": self.max_buffer_length,
            "idle_ttl": self.idle_ttl,
            "statistics": self.statistics,
            "controller": self.controller,
            "streams": [
                {
                    "id": s.stream_id,
                    "step_count": s.step_count,
                    "last_tick": s.last_tick,
                    "monitor": s.monitor,
                }
                for s in self.streams
            ],
        }
        arrays = {
            "lengths": np.array(
                [s.outcomes.size for s in self.streams], dtype=np.int64
            ),
            "outcomes": (
                np.concatenate([s.outcomes for s in self.streams])
                if self.streams
                else np.empty(0, dtype=np.int64)
            ),
            "uncertainties": (
                np.concatenate([s.uncertainties for s in self.streams])
                if self.streams
                else np.empty(0, dtype=float)
            ),
        }
        return meta, arrays

    @classmethod
    def from_wire(cls, meta: dict, arrays: dict, source="wire frame") -> "RegistrySnapshot":
        """Rebuild a snapshot from :meth:`to_wire` output, with validation.

        Checks the format name, version, and buffer-length bookkeeping;
        ``source`` names the origin (a file path or "wire frame") in
        error messages.
        """
        if meta.get("format") != _FORMAT_NAME:
            raise ValidationError(f"{source} is not a {_FORMAT_NAME} snapshot")
        version = meta.get("version")
        if version != SNAPSHOT_VERSION:
            raise ValidationError(
                f"snapshot {source} has format version {version}; "
                f"this build reads version {SNAPSHOT_VERSION}"
            )
        lengths = np.asarray(arrays["lengths"], dtype=np.int64)
        outcomes = np.asarray(arrays["outcomes"])
        uncertainties = np.asarray(arrays["uncertainties"])
        entries = meta["streams"]
        if lengths.size != len(entries):
            raise ValidationError(
                f"snapshot corrupt: {len(entries)} streams in the metadata "
                f"but {lengths.size} buffer lengths in {source}"
            )
        if int(lengths.sum()) != outcomes.size or outcomes.size != uncertainties.size:
            raise ValidationError(
                f"snapshot corrupt: buffer lengths do not add up in {source}"
            )
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        streams = [
            StreamStateSnapshot(
                stream_id=entry["id"],
                outcomes=outcomes[offsets[i] : offsets[i + 1]].astype(
                    np.int64, copy=True
                ),
                uncertainties=uncertainties[offsets[i] : offsets[i + 1]].astype(
                    float, copy=True
                ),
                step_count=int(entry["step_count"]),
                last_tick=int(entry["last_tick"]),
                monitor=entry["monitor"],
            )
            for i, entry in enumerate(entries)
        ]
        return cls(
            tick=int(meta["tick"]),
            max_buffer_length=meta["max_buffer_length"],
            idle_ttl=meta["idle_ttl"],
            statistics=dict(meta.get("statistics", {})),
            streams=streams,
            version=int(version),
            controller=meta.get("controller"),
        )

    # ------------------------------------------------------------------
    # Persistence: <stem>.json sidecar + <stem>.npz arrays
    # ------------------------------------------------------------------
    def save(self, stem) -> tuple[pathlib.Path, pathlib.Path]:
        """Write ``<stem>.json`` + ``<stem>.npz`` atomically; returns both.

        The sidecar holds everything human-auditable (version, tick,
        configuration, per-stream metadata, monitor states) plus a
        content digest of the arrays; the ``.npz`` holds the wire arrays
        (:meth:`to_wire`).  Both files are committed via tmp-write +
        fsync + rename (arrays first, sidecar last), so a crash mid-save
        can never leave a readable-but-wrong snapshot behind.
        """
        meta, arrays = self.to_wire()
        return _save_snapshot_files(stem, meta, arrays)

    @classmethod
    def load(cls, stem) -> "RegistrySnapshot":
        """Read a snapshot written by :meth:`save`.

        Checks the format version and, when the sidecar records one, the
        arrays' content digest -- a ``.npz`` that does not belong to its
        sidecar (torn write, mismatched files) is refused with both
        paths named instead of silently restoring stale state.
        """
        sidecar, arrays = _load_snapshot_files(stem, _FORMAT_NAME)
        json_path, _ = _snapshot_paths(stem)
        return cls.from_wire(sidecar, arrays, source=str(json_path))


@dataclass
class DeltaSnapshot:
    """The streams dirty since a base epoch, plus an eviction record.

    The incremental half of durability: a full
    :class:`RegistrySnapshot` of a large registry costs O(all streams)
    to capture and serialize, every time, even though between two
    snapshot cadences only the streams that received frames changed.  A
    delta captures exactly those -- a stream's serving state mutates
    only on frame receipt, which stamps ``last_tick``, so
    ``last_tick >= base_tick`` is a complete dirtiness test -- plus
    ``live_ids``, the full id list at capture time, so evictions (and
    the registry's stream *order*, which ids re-created after an
    eviction would otherwise scramble) survive composition.

    Attributes
    ----------
    tick / base_tick:
        The capture tick and the epoch this delta is dirty-since.  A
        chain composes only when each delta's ``base_tick`` equals its
        predecessor's ``tick``.
    max_buffer_length / idle_ttl / statistics / controller:
        Absolute values at capture time (not diffs); composition takes
        them from the newest delta.
    streams:
        The dirty streams' full state (replacing their base entries).
    live_ids:
        Every stream alive at ``tick``, in registry order -- the
        authoritative membership and ordering of the composed snapshot.
    """

    tick: int
    base_tick: int
    max_buffer_length: int | None
    idle_ttl: int | None
    statistics: dict = field(default_factory=dict)
    streams: list[StreamStateSnapshot] = field(default_factory=list)
    live_ids: list = field(default_factory=list)
    version: int = SNAPSHOT_VERSION
    controller: dict | None = None

    @classmethod
    def capture(
        cls, registry: StreamRegistry, tick: int, since_tick: int
    ) -> "DeltaSnapshot":
        """Snapshot the streams dirty since the tick-``since_tick`` capture.

        A snapshot taken at tick ``N`` (post-step) holds streams whose
        ``last_tick`` is at most ``N - 1``; the first step *after* it
        stamps ``last_tick = N``.  Dirty relative to that snapshot is
        therefore ``last_tick >= since_tick`` -- ``>`` would silently
        drop every stream last touched on the step immediately
        following the predecessor capture.
        """
        states = registry.states
        for state in states:
            # Every live id rides the sidecar (not just the dirty ones),
            # so the same JSON-scalar contract applies to all of them.
            if not isinstance(state.stream_id, _JSON_ID_TYPES):
                raise ValidationError(
                    f"stream id {state.stream_id!r} is not JSON-serializable; "
                    "snapshots support str/int/float/bool/None ids"
                )
        return cls(
            tick=int(tick),
            base_tick=int(since_tick),
            max_buffer_length=registry.max_buffer_length,
            idle_ttl=registry.idle_ttl,
            statistics={
                "created": registry.statistics.created,
                "evicted": registry.statistics.evicted,
                "series_started": registry.statistics.series_started,
            },
            streams=[
                StreamStateSnapshot.capture(state)
                for state in states
                if state.last_tick >= since_tick
            ],
            live_ids=[state.stream_id for state in states],
        )

    @property
    def n_streams(self) -> int:
        return len(self.streams)

    def to_wire(self) -> tuple[dict, dict]:
        """(meta, arrays) split, same array layout as a full snapshot."""
        meta = {
            "format": _DELTA_FORMAT_NAME,
            "version": self.version,
            "tick": self.tick,
            "base_tick": self.base_tick,
            "max_buffer_length": self.max_buffer_length,
            "idle_ttl": self.idle_ttl,
            "statistics": self.statistics,
            "controller": self.controller,
            "live_ids": list(self.live_ids),
            "streams": [
                {
                    "id": s.stream_id,
                    "step_count": s.step_count,
                    "last_tick": s.last_tick,
                    "monitor": s.monitor,
                }
                for s in self.streams
            ],
        }
        arrays = {
            "lengths": np.array(
                [s.outcomes.size for s in self.streams], dtype=np.int64
            ),
            "outcomes": (
                np.concatenate([s.outcomes for s in self.streams])
                if self.streams
                else np.empty(0, dtype=np.int64)
            ),
            "uncertainties": (
                np.concatenate([s.uncertainties for s in self.streams])
                if self.streams
                else np.empty(0, dtype=float)
            ),
        }
        return meta, arrays

    @classmethod
    def from_wire(cls, meta: dict, arrays: dict, source="wire frame") -> "DeltaSnapshot":
        """Rebuild a delta from :meth:`to_wire` output, with validation."""
        if meta.get("format") != _DELTA_FORMAT_NAME:
            raise ValidationError(
                f"{source} is not a {_DELTA_FORMAT_NAME} snapshot"
            )
        version = meta.get("version")
        if version != SNAPSHOT_VERSION:
            raise ValidationError(
                f"delta snapshot {source} has format version {version}; "
                f"this build reads version {SNAPSHOT_VERSION}"
            )
        # The array layout is the full snapshot's; borrow its decoder by
        # round-tripping through a RegistrySnapshot-shaped meta dict.
        full = RegistrySnapshot.from_wire(
            {**meta, "format": _FORMAT_NAME}, arrays, source=source
        )
        return cls(
            tick=full.tick,
            base_tick=int(meta["base_tick"]),
            max_buffer_length=full.max_buffer_length,
            idle_ttl=full.idle_ttl,
            statistics=full.statistics,
            streams=full.streams,
            live_ids=list(meta["live_ids"]),
            version=full.version,
            controller=full.controller,
        )

    def save(self, stem) -> tuple[pathlib.Path, pathlib.Path]:
        """Atomically write ``<stem>.json`` + ``<stem>.npz`` (digested)."""
        meta, arrays = self.to_wire()
        return _save_snapshot_files(stem, meta, arrays)

    @classmethod
    def load(cls, stem) -> "DeltaSnapshot":
        """Read a delta written by :meth:`save`; digest-checked."""
        sidecar, arrays = _load_snapshot_files(stem, _DELTA_FORMAT_NAME)
        json_path, _ = _snapshot_paths(stem)
        return cls.from_wire(sidecar, arrays, source=str(json_path))


def compose_snapshot(
    base: RegistrySnapshot, deltas: Sequence["DeltaSnapshot"]
) -> RegistrySnapshot:
    """Rebuild the full snapshot a base + delta chain describes.

    Deltas apply in order: each one's dirty streams replace (or add to)
    the accumulated state, and the *newest* delta's ``live_ids`` decide
    final membership and order -- so evictions, re-creations, and the
    registry's insertion order all land exactly where a full snapshot
    captured at the newest tick would put them.  Chain continuity is
    enforced (each delta must extend the previous tick) and a live id
    with no captured state anywhere in the chain is a hard error.
    """
    if not deltas:
        return base
    merged = {s.stream_id: s for s in base.streams}
    tick = base.tick
    for delta in deltas:
        if delta.base_tick != tick:
            raise ValidationError(
                f"delta at tick {delta.tick} chains from tick "
                f"{delta.base_tick}, expected {tick}; the chain is not "
                "contiguous"
            )
        for stream in delta.streams:
            merged[stream.stream_id] = stream
        tick = delta.tick
    newest = deltas[-1]
    missing = [i for i in newest.live_ids if i not in merged]
    if missing:
        raise ValidationError(
            f"delta chain is incomplete: {len(missing)} live stream(s) "
            f"(first: {missing[0]!r}) have no captured state in the base "
            "or any delta"
        )
    return RegistrySnapshot(
        tick=newest.tick,
        max_buffer_length=newest.max_buffer_length,
        idle_ttl=newest.idle_ttl,
        statistics=dict(newest.statistics),
        streams=[merged[i] for i in newest.live_ids],
        version=base.version,
        controller=newest.controller,
    )


def _snapshot_paths(stem) -> tuple[pathlib.Path, pathlib.Path]:
    """Map a path stem (a literal ``.json``/``.npz`` suffix tolerated) to
    both files.

    The suffixes are *appended*, never substituted via ``with_suffix``:
    a dotted stem like ``run.2026-07-29T10:30:00.123`` must not lose its
    tail and silently collide with a sibling snapshot's files.
    """
    stem = pathlib.Path(stem)
    if stem.suffix in (".json", ".npz"):
        stem = stem.with_suffix("")
    return (
        stem.parent / (stem.name + ".json"),
        stem.parent / (stem.name + ".npz"),
    )
