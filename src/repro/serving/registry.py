"""Per-stream state for the streaming serving engine.

Each tracked physical object (one ``stream_id``) owns exactly the state the
paper's taUW keeps for a single timeseries: the ring-buffer-backed outcome/
uncertainty buffer, the absolute step counter within the current series,
and optionally a per-stream :class:`~repro.core.monitor.UncertaintyMonitor`
implementing the simplex accept/fallback policy for that object.

The :class:`StreamRegistry` owns the stream table: it creates state lazily
on first sight of a stream id, stamps every touch with the engine's tick
counter, and evicts streams that have not produced a frame for
``idle_ttl`` ticks -- the serving-side replacement for the single-stream
wrapper's explicit ``reset`` when objects simply disappear from view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.buffer import TimeseriesBuffer
from repro.core.monitor import UncertaintyMonitor
from repro.exceptions import ValidationError

__all__ = ["StreamState", "RegistryStatistics", "StreamRegistry"]


@dataclass
class StreamState:
    """Everything the engine keeps per tracked object stream.

    Attributes
    ----------
    stream_id:
        The caller-chosen identifier of the object stream.
    buffer:
        The stream's timeseries buffer (sliding window when the registry
        was built with ``max_buffer_length``).
    monitor:
        Per-stream simplex monitor, or ``None`` when the registry has no
        monitor factory.
    step_count:
        Absolute frames processed since the current series' onset (keeps
        counting past a sliding buffer window).
    last_tick:
        Engine tick at which the stream last received a frame.
    """

    stream_id: object
    buffer: TimeseriesBuffer
    monitor: UncertaintyMonitor | None
    step_count: int = 0
    last_tick: int = 0

    def begin_series(self) -> None:
        """Start a new timeseries: clear the buffer and the step counter.

        The monitor deliberately survives: its risk budget and hysteresis
        are properties of the stream's *lifetime*, not of one physical
        object.  That lifetime ends when the registry evicts the stream --
        all state, the monitor included, is dropped then (a later frame
        under the same id is a brand-new stream with a fresh budget; keep
        ``idle_ttl=None`` or monitor risk outside the registry when a
        budget must outlive idle gaps).
        """
        self.buffer.reset()
        self.step_count = 0


@dataclass
class RegistryStatistics:
    """Running counters of a registry's stream lifecycle."""

    created: int = 0
    evicted: int = 0
    series_started: int = 0


class StreamRegistry:
    """Owns the per-stream state of a :class:`StreamingEngine`.

    Parameters
    ----------
    max_buffer_length:
        Sliding-window cap applied to every stream's buffer (``None``
        keeps whole series, as the paper's study does).
    monitor_factory:
        Zero-argument callable building one fresh
        :class:`UncertaintyMonitor` per new stream; ``None`` disables
        monitoring.
    idle_ttl:
        Evict a stream after this many ticks without a frame (``None``
        never evicts).  A stream seen at tick ``t`` survives through tick
        ``t + idle_ttl`` and is dropped at the next sweep after that.
        Eviction frees *all* per-stream state including the monitor and
        its remaining risk budget -- see :meth:`StreamState.begin_series`.
    """

    def __init__(
        self,
        max_buffer_length: int | None = None,
        monitor_factory: Callable[[], UncertaintyMonitor] | None = None,
        idle_ttl: int | None = None,
    ) -> None:
        if idle_ttl is not None and idle_ttl < 1:
            raise ValidationError(f"idle_ttl must be >= 1 or None, got {idle_ttl}")
        self.max_buffer_length = max_buffer_length
        self.monitor_factory = monitor_factory
        self.idle_ttl = idle_ttl
        self.statistics = RegistryStatistics()
        self._streams: dict[object, StreamState] = {}

    def __len__(self) -> int:
        return len(self._streams)

    def __contains__(self, stream_id: object) -> bool:
        return stream_id in self._streams

    @property
    def stream_ids(self) -> list:
        """Identifiers of the currently tracked streams."""
        return list(self._streams)

    @property
    def states(self) -> list[StreamState]:
        """The tracked streams' states, in insertion order."""
        return list(self._streams.values())

    def get(self, stream_id: object) -> StreamState:
        """Look up an existing stream; raises when unknown."""
        try:
            return self._streams[stream_id]
        except KeyError:
            raise ValidationError(f"unknown stream {stream_id!r}") from None

    def get_or_create(self, stream_id: object, tick: int) -> StreamState:
        """Return the stream's state, creating fresh state on first sight."""
        return self.get_or_create_many([stream_id], tick)[0]

    def get_or_create_many(self, stream_ids, tick: int) -> list[StreamState]:
        """Bulk :meth:`get_or_create`, atomic over the whole id list.

        All new states (including their monitors, whose factory may
        raise) are built *before* any of them is registered: a failure
        for one id leaves the registry exactly as it was, with no
        phantom streams and unchanged statistics.  Ids must be unique
        within one call (enforced).  Existing streams are touched: their
        ``last_tick`` is refreshed so lookups count against idle
        eviction.
        """
        states = []
        created = []
        pending = {}
        for stream_id in stream_ids:
            if stream_id in pending:
                raise ValidationError(
                    f"duplicate stream {stream_id!r} in one get_or_create_many call"
                )
            pending[stream_id] = True
            state = self._streams.get(stream_id)
            if state is None:
                monitor = self.monitor_factory() if self.monitor_factory else None
                state = StreamState(
                    stream_id=stream_id,
                    buffer=TimeseriesBuffer(max_length=self.max_buffer_length),
                    monitor=monitor,
                    last_tick=tick,
                )
                created.append(state)
            states.append(state)
        # Commit only after every state was built: register the new ones,
        # then touch the existing ones.
        for state in created:
            self._streams[state.stream_id] = state
        for state in states:
            state.last_tick = tick
        self.statistics.created += len(created)
        self.statistics.series_started += len(created)
        return states

    def adopt(self, state: StreamState) -> None:
        """Insert externally built stream state (snapshot restore, shard
        migration).

        Unlike :meth:`get_or_create_many` this neither consults the
        monitor factory nor bumps the ``created``/``series_started``
        statistics: the stream's lifecycle already happened elsewhere and
        its counters travelled with the snapshot.
        """
        if state.stream_id in self._streams:
            raise ValidationError(
                f"cannot adopt stream {state.stream_id!r}: id already tracked"
            )
        self._streams[state.stream_id] = state

    def discard(self, stream_id: object) -> bool:
        """Drop a stream's state; returns whether it existed."""
        return self._streams.pop(stream_id, None) is not None

    def evict_idle(self, tick: int) -> list:
        """Drop streams idle for more than ``idle_ttl`` ticks.

        Returns the evicted stream ids (empty without a TTL).
        """
        if self.idle_ttl is None:
            return []
        expired = [
            stream_id
            for stream_id, state in self._streams.items()
            if tick - state.last_tick > self.idle_ttl
        ]
        for stream_id in expired:
            del self._streams[stream_id]
        self.statistics.evicted += len(expired)
        return expired

    def reset(self) -> None:
        """Forget every stream (statistics survive)."""
        self._streams.clear()
