"""Failover policy: automatic worker respawn + snapshot replay.

Until this module, a dead shard worker was terminal: the cluster front
end mapped the loss to :class:`~repro.exceptions.ClusterWorkerError`,
marked the shard in :attr:`~repro.serving.cluster.ShardedEngine.dead_shards`,
and every further serving call failed fast until the caller manually
restored the latest snapshot into a *fresh* cluster.  For a serving
system meant to hold millions of long-lived streams, "one worker died"
must not mean "the run is over" -- the paper's uncertainty wrappers are
a dependability mechanism, and the machinery serving them should be at
least as dependable as the estimates it produces.

:class:`FailoverPolicy` configures the recovery loop the
:class:`~repro.serving.controller.ServingController` runs when a tick
(or snapshot, or rebalance) raises :class:`ClusterWorkerError`:

1. **Respawn** every shard observed dead --
   :meth:`~repro.serving.cluster.ShardedEngine.revive_shard` tears down
   the dead endpoint and brings up a replacement through the transport
   (pipe: re-fork; TCP: reconnect to the same ``serve-worker`` address,
   whose connect loop already retries with backoff while an operator or
   supervisor restarts the process).
2. **Restore** -- shard-locally when possible (``shard_local``): the
   controller keeps *per-shard* checkpoints alongside the merged
   recovery snapshot (one ``snapshot_shards`` fan-out captures both),
   so a lone dead shard is revived with only *its* part --
   ``revive_shard(shard, snapshot=part, statistics=part.statistics)``
   -- while every surviving shard keeps serving state untouched.  The
   whole-cluster restore from the merged in-memory snapshot (via the
   same ``to_wire``/``from_wire`` path snapshots always travel) remains
   the fallback for everything else: pipelined windows, send-phase
   losses, missing checkpoints.
3. **Replay** -- again shard-locally when possible: the bounded *tick
   journal* (the admitted frame batches of every tick since the
   checkpoint) is filtered to the dead shard's frames and resent to it
   alone (``replay_shard``), O(dead shard) instead of O(cluster); the
   fallback replays every batch through ``step_batch``.
4. **Retry** the interrupted operation -- or, for a lockstep step whose
   surviving shards already answered, *salvage* it: the kept ok replies
   merge with a resend to just the failed shard
   (:meth:`~repro.serving.cluster.ShardedEngine.salvage_step`), so the
   survivors never re-step the tick.

Because every engine in this codebase is deterministic, restore + replay
+ retry reproduces the uninterrupted run bit for bit: the caller sees
the same results, statistics, TTL evictions, and monitor verdicts it
would have seen had no worker died -- only the failover telemetry
(``failovers``, ``replay_depth``, ``recovery_seconds``) records that
anything happened.  The deterministic fault-injection harness in
``tests/serving/chaos.py`` exists to prove exactly this property, for
kills injected during step, snapshot, and rebalance traffic on every
transport.

Recovery is bounded: once ``max_failovers`` recoveries have been spent,
the next :class:`ClusterWorkerError` is re-raised to the caller with the
failing shard attached -- the pre-failover fail-fast contract, restored
when the environment is clearly beyond saving.

Observability: a metrics-enabled controller exports every recovery as
the ``repro_controller_failovers_total`` /
``repro_controller_shards_respawned_total`` /
``repro_controller_replayed_ticks_total`` counter families plus the
``repro_recovery_seconds`` histogram, and its tracer records each
recovery as a ``recovery`` span in the interrupted tick's trace (see
:mod:`repro.serving.observability`).  The exactness claim itself is
checkable after the fact: record a run through
:class:`~repro.serving.observability.flight.FlightRecordingTransport`
and ``repro replay-flight`` re-drives the log -- the failover's hello,
restore, and replayed ticks included -- asserting every reply byte
identical.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ValidationError

__all__ = ["FailoverPolicy"]


@dataclass(frozen=True)
class FailoverPolicy:
    """Automatic worker respawn/failover with snapshot replay.

    Parameters
    ----------
    max_failovers:
        Total recoveries the controller may perform over its lifetime.
        When the budget is exhausted, the next worker loss re-raises
        :class:`~repro.exceptions.ClusterWorkerError` (with the failing
        shard attached) exactly as a failover-free controller would.
    journal_depth:
        Ticks buffered between recovery checkpoints, i.e. the maximum
        replay depth of one recovery.  Every ``journal_depth`` completed
        ticks the controller refreshes its in-memory recovery snapshot
        and clears the journal; smaller values make recovery cheaper
        (fewer ticks to replay) at the cost of more frequent snapshot
        captures in steady state.
    respawn_backoff:
        Base delay in seconds between *consecutive* recovery attempts
        within one operation (linear backoff: attempt ``k`` waits
        ``(k - 1) * respawn_backoff``).  Covers a TCP worker that is
        still being restarted when the first reconnect fires; the first
        recovery attempt never waits.
    shard_local:
        When True (the default) and exactly the failed shard(s) can be
        pinpointed with per-shard checkpoints available, recovery
        restores and replays *only* the dead shard(s) -- O(dead shard)
        -- and salvages the interrupted step from the survivors' kept
        replies.  Whole-cluster restore + replay remains the fallback
        (and the only path when False), bitwise-identical either way.
    """

    max_failovers: int = 8
    journal_depth: int = 16
    respawn_backoff: float = 0.05
    shard_local: bool = True

    def __post_init__(self) -> None:
        if self.max_failovers < 1:
            raise ValidationError(
                f"max_failovers must be >= 1, got {self.max_failovers}"
            )
        if self.journal_depth < 1:
            raise ValidationError(
                f"journal_depth must be >= 1, got {self.journal_depth}"
            )
        if self.respawn_backoff < 0.0:
            raise ValidationError(
                f"respawn_backoff must be >= 0, got {self.respawn_backoff}"
            )
