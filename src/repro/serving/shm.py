"""Shared-memory ring transport: the zero-copy single-host backend.

The pipe transport moves every frame through the kernel twice (write
into the pipe, read back out).  This transport keeps frame payloads in
:mod:`multiprocessing.shared_memory` instead: each shard worker gets a
*request ring* (parent writes, worker reads) and a *reply ring* (worker
writes, parent reads), and the codec's :class:`~repro.serving.protocol.
FrameSegments` gather lists are scatter-copied straight into a ring slot
-- the single copy the codec owes per segment.  The receiver decodes
in place out of the slot (``decode_frame`` already takes memoryviews and
copies arrays out), so a frame crosses processes with exactly one copy
on the send side and zero joins, allocations, or kernel payload
traversals anywhere.

Ring layout (all fields u64, little-endian host order, 8-aligned)::

    +-------------------+-----------------------------------------+
    | header (128 B)    | magic+version | slots | slot_size       |
    |                   | writer_seq (@24) ... consumed (@64)     |
    +-------------------+-----------------------------------------+
    | slot 0            | generation u64 | flags<<32|length u64   |
    | (16 B + slot_size)| payload bytes ...                       |
    +-------------------+-----------------------------------------+
    | slot 1 ...        |                                         |

``writer_seq`` counts published slots; ``consumed`` is the reader's
progress, published for backpressure (they live on separate cache lines
so the two sides never false-share).  A slot for sequence ``s`` lives at
index ``s % slots`` and is published seqlock-style: payload first, then
the flags/length word, then ``generation = s + 1`` -- a reader that sees
the expected generation is guaranteed a complete slot, and a slot being
recycled on a later lap shows a stale generation, never a torn frame.
Frames larger than one slot span consecutive slots chained by the MORE
flag (snapshot/restore traffic); the reader reassembles those with one
extra copy, which only the cold path pays.

Wakeup is a doorbell pipe, not payload transfer: after publishing, the
writer sends one byte on a tiny duplex pipe shared by both directions,
and a reader that misses the brief opportunistic spin blocks in
``poll()`` on it.  The doorbell doubles as death detection -- a peer
that vanishes closes its end, and both sides also cross-check process
liveness (``Process.is_alive`` / a changed ``getppid``) so a SIGKILLed
peer surfaces as a channel error, never a hang.

Lifecycle: the parent creates both rings with unique names and unlinks
them when the endpoint shuts down; the worker attaches by name (spawn
start method safe) and deregisters itself from the resource tracker so
the segments are unlinked exactly once.  ``Transport.respawn`` is
shutdown + connect, so failover replaces a dead worker's rings with
fresh ones automatically.
"""

from __future__ import annotations

import os
import secrets
import time
from multiprocessing import resource_tracker, shared_memory
from typing import Callable

from repro.exceptions import ProtocolError
from repro.serving.protocol import BufferPool
from repro.serving.transport import (
    ChannelEndpoint,
    Transport,
    WorkerEndpoint,
    _default_mp_context,
    serve_connection,
)

__all__ = [
    "ShmChannel",
    "ShmEndpoint",
    "ShmRing",
    "ShmTransport",
]

#: Payload bytes per ring slot.  Comfortably holds a whole step
#: request/reply for thousands of streams per shard; larger frames
#: (snapshots) chain slots with the MORE flag.
DEFAULT_SLOT_BYTES = 1 << 18

#: Slots per ring.  A windowed parent keeps up to ``inflight_window``
#: request frames outstanding per direction (plus chunked-frame
#: continuation slots); replies decode inside ``recv`` -- their slots
#: free immediately -- and a writer that does fill the ring simply
#: blocks in ``_wait_space`` until the worker drains a slot, so any
#: window size is *correct*; 8 slots keep the default windows (<= 4)
#: wait-free for single-slot frames.
DEFAULT_SLOTS = 8

#: Iterations of opportunistic generation-checking before a reader
#: falls back to blocking on the doorbell.
_SPIN_CHECKS = 100

#: Doorbell poll granularity: how often a blocked side rechecks peer
#: liveness and its deadline.
_POLL_SECONDS = 0.05


class ShmRing:
    """One single-producer/single-consumer ring in a shm segment."""

    MAGIC = 0x5250_5753_484D_0001  # "RPWSHM" + layout version 1

    HEADER_BYTES = 128
    SLOT_HEADER_BYTES = 16
    FLAG_MORE = 1

    # u64 indices of the header fields.
    _F_MAGIC, _F_SLOTS, _F_SLOT_SIZE, _F_WRITER = 0, 1, 2, 3
    _F_CONSUMED = 8  # byte offset 64: its own cache line

    def __init__(self, shm, *, created: bool) -> None:
        self._shm = shm
        self._created = created
        self._u64 = shm.buf.cast("Q")
        if created:
            pass  # create() fills the header before handing the ring out
        elif self._u64[self._F_MAGIC] != self.MAGIC:
            name = shm.name
            self._u64.release()  # unpin the buffer so shm can unmap
            shm.close()
            raise ProtocolError(
                f"shm segment {name!r} is not a ring of this layout"
            )
        self.slots = int(self._u64[self._F_SLOTS]) if not created else 0
        self.slot_size = int(self._u64[self._F_SLOT_SIZE]) if not created else 0
        self._stride = self.SLOT_HEADER_BYTES + self.slot_size

    @classmethod
    def create(cls, slots: int, slot_size: int) -> "ShmRing":
        if slot_size % 8:
            raise ValueError("slot_size must be a multiple of 8")
        size = cls.HEADER_BYTES + slots * (cls.SLOT_HEADER_BYTES + slot_size)
        name = f"repro_ring_{os.getpid()}_{secrets.token_hex(4)}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=size)
        cls._untrack(shm)
        shm.buf[: cls.HEADER_BYTES] = bytes(cls.HEADER_BYTES)
        ring = cls(shm, created=True)
        ring._u64[cls._F_SLOTS] = slots
        ring._u64[cls._F_SLOT_SIZE] = slot_size
        # Magic last: an attacher that wins a race sees no-magic, not a
        # half-written geometry.
        ring._u64[cls._F_MAGIC] = cls.MAGIC
        ring.slots, ring.slot_size = slots, slot_size
        ring._stride = cls.SLOT_HEADER_BYTES + slot_size
        return ring

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        shm = shared_memory.SharedMemory(name=name)
        cls._untrack(shm)
        return cls(shm, created=False)

    @staticmethod
    def _untrack(shm) -> None:
        """Opt this segment out of the resource tracker.

        Python registers shared memory with the tracker on *both* create
        and attach; with forked workers both sides talk to the same
        tracker process, so paired register/unregister calls would
        double-remove (tracker KeyError spam), and with spawned workers
        the worker's own tracker would unlink the segment when the
        worker exits.  Ring lifetime is owned deterministically by
        :meth:`ShmEndpoint.shutdown` instead, which always unlinks --
        the tracker's crash safety net is traded for correct unlink
        ordering (a hard-killed *parent* may leak segments in /dev/shm).
        """
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals moved
            pass

    @property
    def name(self) -> str:
        return self._shm.name

    # -- field accessors ----------------------------------------------
    @property
    def writer_seq(self) -> int:
        return self._u64[self._F_WRITER]

    @writer_seq.setter
    def writer_seq(self, value: int) -> None:
        self._u64[self._F_WRITER] = value

    @property
    def consumed(self) -> int:
        return self._u64[self._F_CONSUMED]

    @consumed.setter
    def consumed(self, value: int) -> None:
        self._u64[self._F_CONSUMED] = value

    def generation(self, seq: int) -> int:
        base = self.HEADER_BYTES + (seq % self.slots) * self._stride
        return self._u64[base // 8]

    def meta(self, seq: int) -> tuple[int, int]:
        """(flags, length) of the published slot for ``seq``."""
        base = self.HEADER_BYTES + (seq % self.slots) * self._stride
        word = self._u64[base // 8 + 1]
        return word >> 32, word & 0xFFFF_FFFF

    def payload(self, seq: int, length: int) -> memoryview:
        base = (
            self.HEADER_BYTES
            + (seq % self.slots) * self._stride
            + self.SLOT_HEADER_BYTES
        )
        return self._shm.buf[base : base + length]

    def publish(self, seq: int, flags: int, length: int) -> None:
        """Seqlock publish: meta word, then generation, then writer_seq.

        The payload must already be in the slot.  CPython's eval loop
        orders these stores as written; on strongly-ordered hosts (the
        x86 targets this single-host transport serves) the reader
        observing ``generation == seq + 1`` therefore observes the
        complete slot.
        """
        base = self.HEADER_BYTES + (seq % self.slots) * self._stride
        self._u64[base // 8 + 1] = (flags << 32) | length
        self._u64[base // 8] = seq + 1
        self._u64[self._F_WRITER] = seq + 1

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        self._u64.release()
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - stray exported view
            pass  # the mapping goes when the last view is collected

    def unlink(self) -> None:
        # SharedMemory.unlink unregisters from the resource tracker, so
        # balance the books for the registration _untrack removed --
        # otherwise the tracker process logs a KeyError per ring.
        try:
            resource_tracker.register(self._shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals moved
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink
            pass


class ShmChannel:
    """Byte-channel over a send ring + recv ring + doorbell pipe.

    Speaks the same ``send_bytes``/``send_frame``/``recv_bytes`` surface
    as :class:`~repro.serving.transport.PipeChannel`, so
    :func:`~repro.serving.transport.serve_connection` and
    :class:`~repro.serving.transport.ChannelEndpoint` run on it
    unchanged.  ``recv_bytes`` returns a memoryview *into the ring slot*
    for single-slot frames -- zero-copy -- and defers releasing the slot
    until the next channel operation, by which point the strict
    request/reply protocol guarantees the frame has been decoded (and
    its arrays copied out).
    """

    def __init__(
        self,
        send_ring: ShmRing,
        recv_ring: ShmRing,
        doorbell,
        *,
        peer_alive: Callable[[], bool],
        pool: BufferPool | None = None,
    ) -> None:
        self._send_ring = send_ring
        self._recv_ring = recv_ring
        self._doorbell = doorbell
        self._peer_alive = peer_alive
        self.pool = pool
        self._timeout: float | None = None
        self._write_seq = send_ring.writer_seq
        self._read_seq = recv_ring.consumed
        self._pending_view: memoryview | None = None
        self._pending_release: int | None = None
        self._doorbell_eof = False
        self._closed = False

    # -- sending -------------------------------------------------------
    def send_frame(self, parts) -> None:
        """Scatter-copy a gather list straight into a ring slot."""
        self._release_pending()
        if parts.nbytes <= self._send_ring.slot_size:
            seq = self._wait_space()
            parts.copy_into(self._send_ring.payload(seq, parts.nbytes))
            if self.pool is not None:
                self.pool.bytes_copied += parts.nbytes
            self._publish(seq, 0, parts.nbytes)
            self._ring_doorbell()
            return
        # Oversized frame (snapshot/restore): assemble once in a pooled
        # buffer, then chain slot-sized chunks with the MORE flag.
        pool = self.pool or BufferPool()
        frame = pool.encode_into(parts)
        try:
            self._send_chunked(frame.view)
        finally:
            frame.release()

    def send_bytes(self, data) -> None:
        self._release_pending()
        view = memoryview(data)
        if view.nbytes <= self._send_ring.slot_size:
            seq = self._wait_space()
            self._send_ring.payload(seq, view.nbytes)[:] = view
            if self.pool is not None:
                self.pool.bytes_copied += view.nbytes
            self._publish(seq, 0, view.nbytes)
            self._ring_doorbell()
            return
        self._send_chunked(view)

    def _send_chunked(self, view: memoryview) -> None:
        slot_size = self._send_ring.slot_size
        offset, total = 0, view.nbytes
        while offset < total:
            length = min(slot_size, total - offset)
            seq = self._wait_space()
            self._send_ring.payload(seq, length)[:] = view[
                offset : offset + length
            ]
            offset += length
            flags = ShmRing.FLAG_MORE if offset < total else 0
            self._publish(seq, flags, length)
            self._ring_doorbell()
        if self.pool is not None:
            self.pool.bytes_copied += total

    def _publish(self, seq: int, flags: int, length: int) -> None:
        self._send_ring.publish(seq, flags, length)
        self._write_seq = seq + 1

    def _wait_space(self) -> int:
        """Block until the next write slot is free; returns its seq."""
        ring, seq = self._send_ring, self._write_seq
        deadline = (
            None if self._timeout is None else time.monotonic() + self._timeout
        )
        pause = 0.0
        while ring.consumed + ring.slots <= seq:
            # Rare: only chunked frames ever outrun the reader.  The
            # reader publishes ``consumed`` per chunk, so plain sleep
            # polling converges without a reverse doorbell.
            self._check_peer(deadline)
            time.sleep(pause)
            pause = min(pause + 0.0002, 0.002)
        return seq

    def _ring_doorbell(self) -> None:
        try:
            self._doorbell.send_bytes(b"\0")
        except (BrokenPipeError, ConnectionError, EOFError, OSError):
            # Peer already gone: the published frame will never be read,
            # and the next wait/recv surfaces the death.  Swallowing here
            # keeps publish-then-notify atomic from the caller's view.
            self._doorbell_eof = True

    # -- receiving -----------------------------------------------------
    def recv_bytes(self):
        self._release_pending()
        # Drain doorbell bytes even when the frame is already published
        # (the spin fast path) -- otherwise one byte per frame would
        # accumulate until the writer's doorbell pipe filled.
        self._drain_doorbell()
        ring, seq = self._recv_ring, self._read_seq
        deadline = (
            None if self._timeout is None else time.monotonic() + self._timeout
        )
        self._wait_frame(seq, deadline)
        flags, length = ring.meta(seq)
        if not flags & ShmRing.FLAG_MORE:
            # Zero-copy path: hand out a view into the slot; the slot is
            # recycled (consumed advanced) at the next channel op, after
            # the strictly-sequenced decode has copied the arrays out.
            view = ring.payload(seq, length)
            self._read_seq = seq + 1
            self._pending_view = view
            self._pending_release = seq + 1
            return view
        # Chunked frame: reassemble, releasing each chunk as it is
        # copied so the writer can stream ahead of us.
        chunks = bytearray()
        while True:
            chunks += ring.payload(seq, length)
            seq += 1
            ring.consumed = seq
            self._read_seq = seq
            if not flags & ShmRing.FLAG_MORE:
                return chunks
            self._wait_frame(seq, deadline)
            flags, length = ring.meta(seq)

    def _wait_frame(self, seq: int, deadline) -> None:
        ring = self._recv_ring
        expected = seq + 1
        while True:
            for _ in range(_SPIN_CHECKS):
                if ring.generation(seq) == expected:
                    return
            self._drain_doorbell()
            if ring.generation(seq) == expected:
                return
            self._check_peer(deadline)
            if self._doorbell_eof:
                time.sleep(0.0002)
            else:
                self._doorbell.poll(_POLL_SECONDS)

    def _drain_doorbell(self) -> None:
        if self._doorbell_eof:
            return
        try:
            while self._doorbell.poll(0):
                self._doorbell.recv_bytes()
        except (EOFError, ConnectionError, BrokenPipeError, OSError):
            # EOF means the peer is done sending forever -- but frames
            # it published before dying are still in the ring, so this
            # is a mode switch (to sleep polling), not yet an error.
            self._doorbell_eof = True

    def _check_peer(self, deadline) -> None:
        if not self._peer_alive():
            # One last look: a peer may die after publishing; its writes
            # are durable in the segment, so drain before declaring EOF.
            ring, seq = self._recv_ring, self._read_seq
            if ring.generation(seq) != seq + 1:
                raise BrokenPipeError("shm peer process is gone")
        if deadline is not None and time.monotonic() >= deadline:
            raise TimeoutError(
                f"shm channel operation timed out after {self._timeout}s"
            )

    def _release_pending(self) -> None:
        if self._pending_view is not None:
            self._pending_view.release()
            self._pending_view = None
        if self._pending_release is not None:
            self._recv_ring.consumed = self._pending_release
            self._pending_release = None

    # -- channel surface ----------------------------------------------
    def set_timeout(self, timeout: float | None) -> None:
        self._timeout = timeout

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._release_pending()
        self._send_ring.close()
        self._recv_ring.close()
        try:
            self._doorbell.close()
        except OSError:  # pragma: no cover - already closed
            pass


class ShmEndpoint(ChannelEndpoint):
    """Parent-side shm endpoint: channel + worker process + ring owner."""

    def __init__(self, shard, channel, process, rings) -> None:
        super().__init__(shard, channel)
        self.process = process
        self._rings = rings

    def shutdown(self, timeout: float = 5.0) -> None:
        already = self._shut_down
        super().shutdown(timeout)  # goodbye handshake + channel close
        if already:
            return
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout)
        for ring in self._rings:
            ring.unlink()


def _shm_worker_main(doorbell, req_name, rep_name, engine_factory) -> None:
    """Entry point of one shm shard process."""
    parent_pid = os.getppid()
    request_ring = ShmRing.attach(req_name)
    reply_ring = ShmRing.attach(rep_name)
    channel = ShmChannel(
        send_ring=reply_ring,
        recv_ring=request_ring,
        doorbell=doorbell,
        peer_alive=lambda: os.getppid() == parent_pid,
        pool=BufferPool(),
    )
    try:
        serve_connection(channel, engine_factory)
    finally:
        channel.close()
        try:
            doorbell.close()
        except OSError:
            pass


class ShmTransport(Transport):
    """One child process per shard, frames through shared-memory rings.

    The zero-copy single-host backend: request and reply payloads live
    in :mod:`multiprocessing.shared_memory` rings (see the module
    docstring for the layout), with a byte-sized doorbell pipe for
    blocking wakeup.  Same fork-by-default process model as
    :class:`~repro.serving.transport.PipeTransport`; the parent-side
    codec shares this transport's :class:`BufferPool` across shards.
    """

    name = "shm"

    def __init__(
        self,
        start_method: str | None = None,
        *,
        slots: int = DEFAULT_SLOTS,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
    ) -> None:
        self._context = _default_mp_context(start_method)
        self._slots = slots
        self._slot_bytes = slot_bytes
        self.pool = BufferPool()

    def connect(self, shard: int, engine_factory: Callable) -> WorkerEndpoint:
        request_ring = ShmRing.create(self._slots, self._slot_bytes)
        reply_ring = ShmRing.create(self._slots, self._slot_bytes)
        parent_bell, child_bell = self._context.Pipe()
        process = self._context.Process(
            target=_shm_worker_main,
            args=(child_bell, request_ring.name, reply_ring.name, engine_factory),
            daemon=True,
            name=f"repro-shm-shard-{shard}",
        )
        try:
            process.start()
        except BaseException:
            for ring in (request_ring, reply_ring):
                ring.close()
                ring.unlink()
            raise
        child_bell.close()
        channel = ShmChannel(
            send_ring=request_ring,
            recv_ring=reply_ring,
            doorbell=parent_bell,
            peer_alive=process.is_alive,
            pool=self.pool,
        )
        return ShmEndpoint(
            shard, channel, process, rings=(request_ring, reply_ring)
        )
