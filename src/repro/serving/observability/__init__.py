"""Production observability for the serving stack.

Three seams, one package:

* :mod:`~repro.serving.observability.metrics` -- a dependency-free
  registry of counters/gauges/histograms with Prometheus text
  exposition over HTTP (:class:`MetricsServer`).
* :mod:`~repro.serving.observability.tracing` -- span-style tick-phase
  instrumentation with an injectable clock (:class:`TickTracer`).
* :mod:`~repro.serving.observability.flight` -- a transport tap that
  journals wire frames to disk (:class:`FlightRecorder`) and replays
  them bitwise (:func:`replay_flight`).
* :mod:`~repro.serving.observability.distributed` -- cross-process
  trace assembly (clock-offset rebasing, per-tick timelines, Chrome
  trace-event/Perfetto export) and the SLO/error-budget engine
  (:class:`SLOTracker`, multi-window burn-rate alerts).

Everything here is opt-in: a controller or cluster without a registry,
tracer, or recorder attached runs the exact pre-observability code path.
"""

from repro.serving.observability.distributed import (
    SLO,
    SLOTracker,
    SLOVerdict,
    TickTimeline,
    TimelineSpan,
    TraceExporter,
    assemble_tick_timeline,
    burn_rate,
    estimate_clock_offset,
    recompute_burn_rates,
    timeline_from_flight,
    trace_events,
    validate_trace_events,
    write_trace_events,
)
from repro.serving.observability.flight import (
    FlightRecord,
    FlightRecorder,
    FlightRecordingTransport,
    FlightReplayReport,
    probe_engine_shape,
    read_flight_log,
    replay_flight,
)
from repro.serving.observability.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsServer,
    parse_prometheus,
)
from repro.serving.observability.tracing import (
    PHASES,
    SpanRecord,
    TickTrace,
    TickTracer,
    null_span,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "FlightRecord",
    "FlightRecorder",
    "FlightRecordingTransport",
    "FlightReplayReport",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "PHASES",
    "SLO",
    "SLOTracker",
    "SLOVerdict",
    "SpanRecord",
    "TickTimeline",
    "TickTrace",
    "TickTracer",
    "TimelineSpan",
    "TraceExporter",
    "assemble_tick_timeline",
    "burn_rate",
    "estimate_clock_offset",
    "null_span",
    "parse_prometheus",
    "probe_engine_shape",
    "read_flight_log",
    "recompute_burn_rates",
    "replay_flight",
    "timeline_from_flight",
    "trace_events",
    "validate_trace_events",
    "write_trace_events",
]
