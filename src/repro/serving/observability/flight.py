"""Flight recorder: journal a cluster's wire traffic, replay it exactly.

A production incident ("shard 2 diverged around tick 40 000") is only
debuggable if the run can be *reproduced*, and the serving stack's
determinism makes that possible at the transport seam: every byte a
cluster exchanges with its workers goes through
:class:`~repro.serving.transport.WorkerEndpoint`, so a transparent tap
there captures the complete causal record of a run -- requests in fan-out
order, replies as observed, worker deaths included.

* :class:`FlightRecorder` owns the on-disk log: a length-prefixed
  ``frames.bin`` of canonical codec frames plus a ``manifest.json``
  (transport, shard count, engine config fingerprint, record counts).
* :class:`FlightRecordingTransport` wraps any transport -- the same
  proxy seam the chaos harness uses, and the two compose:
  ``FlightRecordingTransport(ChaosTransport(...), recorder)`` records a
  fault-injected run, failover respawns included (the inherited
  ``respawn`` re-wraps replacement endpoints).
* :func:`replay_flight` re-drives a recorded log through fresh worker
  servicers -- no cluster, no processes, no timing -- and compares every
  reply **bitwise** against the recording.  Identity proves the recorded
  run is reproducible from its inputs alone; a mismatch pinpoints the
  first diverging reply by shard, command, and byte offset.

What is and is not replayed: requests that never reached a live worker
(send failed) and replies from a dying worker (transport errors, chaos
verdicts) carry no engine semantics -- the recorded run discarded them
and recovered through a fresh hello + restore, which the log also
contains -- so replay skips them and re-drives everything else.  Frames
are journaled as their *canonical re-encoding*
(:func:`~repro.serving.protocol.encode_request` /
:func:`~repro.serving.protocol.encode_reply`), which makes the log
transport-independent: an inproc run (no real wire) records the same
bytes a pipe run would, and "bitwise-identical" is well-defined for
both.
"""

from __future__ import annotations

import json
import pathlib
import struct
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.exceptions import ValidationError
from repro.serving.protocol import (
    PROTOCOL_VERSION,
    decode_request,
    encode_reply,
    encode_request,
)
from repro.serving.transport import (
    Transport,
    WorkerEndpoint,
    _handle_hello,
    resolve_transport,
)

__all__ = [
    "FLIGHT_FORMAT",
    "FLIGHT_VERSION",
    "FlightRecord",
    "FlightRecorder",
    "FlightRecordingTransport",
    "FlightReplayReport",
    "probe_engine_shape",
    "read_flight_log",
    "replay_flight",
]

FLIGHT_FORMAT = "repro-flight"
FLIGHT_VERSION = 1

_MAGIC = b"RPFR"
_VERSION_STRUCT = struct.Struct(">H")
_RECORD_STRUCT = struct.Struct(">II")  # (header_len, data_len)

#: Request statuses: the frame reached the worker ("sent") or the send
#: itself raised ("failed" -- the worker never saw it).
#: Reply statuses: a worker-computed reply ("ok"/"error" -- both
#: deterministic engine semantics, both replayed) or a transport-level
#: verdict from a dead/poisoned peer ("transport" -- not replayable,
#: skipped).
_REQ_STATUSES = ("sent", "failed")
_REP_STATUSES = ("ok", "error", "transport")


@dataclass(frozen=True)
class FlightRecord:
    """One journaled wire frame."""

    seq: int
    shard: int
    kind: str       # "req" | "rep"
    command: str
    status: str
    data: bytes
    ts: float | None = None  # monotonic journal time; None in old logs


class FlightRecorder:
    """Owns one flight log directory; endpoints journal through it.

    Opens ``<directory>/frames.bin`` eagerly (records stream to disk as
    the run progresses; an OOM-killed run still leaves its log) and
    writes ``manifest.json`` on :meth:`close`.  Thread-safe: one lock
    serializes record writes, so a recorder could outlive a single
    cluster or be scraped concurrently.
    """

    def __init__(self, directory) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.frames_path = self.directory / "frames.bin"
        self.manifest_path = self.directory / "manifest.json"
        self._file = open(self.frames_path, "wb")
        self._file.write(_MAGIC + _VERSION_STRUCT.pack(FLIGHT_VERSION))
        self._lock = threading.Lock()
        self._closed = False
        self._seq = 0
        self.transport_name: str | None = None
        self.engine_shape: dict | None = None
        self.n_shards = 0
        self.counts = {
            "requests": 0,
            "replies": 0,
            "undelivered": 0,
            "transport_errors": 0,
            "helloes": 0,
        }

    # -- notes from the transport/endpoints ----------------------------
    def note_transport(self, name: str) -> None:
        self.transport_name = name

    def note_shard(self, shard: int) -> None:
        self.n_shards = max(self.n_shards, shard + 1)

    def note_engine_shape(self, shape: dict) -> None:
        if self.engine_shape is None:
            self.engine_shape = shape

    # -- journaling ----------------------------------------------------
    def journal(
        self, shard: int, kind: str, command: str, status: str, data: bytes
    ) -> None:
        """Append one record; called by the recording endpoints."""
        header = json.dumps(
            {
                "seq": self._seq,
                "shard": shard,
                "kind": kind,
                "command": command,
                "status": status,
                # Monotonic journal time: lets export-trace rebuild a
                # per-shard RPC timeline from the log alone.  Additive --
                # readers ignore unknown header keys, replay compares
                # frame bytes, never headers.
                "ts": time.perf_counter(),
            },
            separators=(",", ":"),
        ).encode("utf-8")
        with self._lock:
            if self._closed:
                raise ValidationError(
                    f"flight recorder {self.frames_path} is closed"
                )
            self._file.write(_RECORD_STRUCT.pack(len(header), len(data)))
            self._file.write(header)
            self._file.write(data)
            self._seq += 1
            if kind == "req":
                self.counts["requests"] += 1
                if status == "failed":
                    self.counts["undelivered"] += 1
            else:
                self.counts["replies"] += 1
                if status == "transport":
                    self.counts["transport_errors"] += 1
                elif command == "hello" and status == "ok":
                    self.counts["helloes"] += 1

    @property
    def records(self) -> int:
        """Records journaled so far."""
        return self._seq

    # -- lifecycle -----------------------------------------------------
    def close(self) -> pathlib.Path:
        """Flush the frame log and write the manifest (idempotent)."""
        with self._lock:
            if self._closed:
                return self.manifest_path
            self._closed = True
            self._file.close()
        manifest = {
            "format": FLIGHT_FORMAT,
            "version": FLIGHT_VERSION,
            "protocol_version": PROTOCOL_VERSION,
            "transport": self.transport_name,
            "n_shards": self.n_shards,
            "engine_shape": self.engine_shape,
            "records": self._seq,
            "counts": dict(self.counts),
        }
        self.manifest_path.write_text(json.dumps(manifest, indent=2) + "\n")
        return self.manifest_path

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class FlightRecordingEndpoint(WorkerEndpoint):
    """Transparent :class:`WorkerEndpoint` proxy journaling all traffic."""

    def __init__(self, recorder: FlightRecorder, inner: WorkerEndpoint) -> None:
        # No super().__init__: `alive` is a property here, mirroring the
        # inner endpoint instead of the plain attribute the base sets.
        self.shard = inner.shard
        self._recorder = recorder
        self._inner = inner
        # FIFO of in-flight commands: a windowed sender journals several
        # requests before the first reply, and each reply pairs with the
        # oldest one (per-connection reply order is FIFO).
        self._pending: deque = deque()

    @property
    def alive(self) -> bool:
        return self._inner.alive

    # The trace/tick seams pass straight through to the inner endpoint.
    # The journal deliberately does NOT: `prepare`/`recv` below re-encode
    # the canonical untagged frames, so trace context, tick tags, and
    # piggybacked worker telemetry never enter a flight log and replay
    # stays bitwise whether or not the recorded run was traced/windowed.
    @property
    def trace_context(self):
        return self._inner.trace_context

    @trace_context.setter
    def trace_context(self, value) -> None:
        self._inner.trace_context = value

    @property
    def tick_tag(self):
        return self._inner.tick_tag

    @tick_tag.setter
    def tick_tag(self, value) -> None:
        self._inner.tick_tag = value

    @property
    def last_telemetry(self):
        return self._inner.last_telemetry

    @property
    def last_reply_tick(self):
        return self._inner.last_reply_tick

    # -- sends ---------------------------------------------------------
    def prepare(self, command: str, payload=None):
        # Canonical encoding happens here, so an unencodable payload
        # fails at prepare time for every transport (the cluster's
        # all-or-nothing broadcasts depend on that) -- recording an
        # inproc cluster enforces the same wire discipline a pipe/TCP
        # cluster always had.
        return (command, encode_request(command, payload), self._inner.prepare(command, payload))

    def send_prepared(self, token) -> None:
        command, data, inner_token = token
        try:
            self._inner.send_prepared(inner_token)
        except Exception:
            self._recorder.journal(self.shard, "req", command, "failed", data)
            raise
        self._recorder.journal(self.shard, "req", command, "sent", data)
        self._pending.append(command)

    def send(self, command: str, payload=None) -> None:
        self.send_prepared(self.prepare(command, payload))

    # -- receives ------------------------------------------------------
    def recv(self) -> tuple:
        command = self._pending.popleft() if self._pending else ""
        reply = self._inner.recv()
        if reply[0] == "ok":
            status = "ok"
            if command == "hello":
                self._recorder.note_engine_shape(reply[1])
        elif self._inner.alive:
            # The worker computed this error (validation, a raising
            # monitor factory): deterministic engine semantics, replayed.
            status = "error"
        else:
            # The peer died or went out of protocol mid-request; the
            # recorded run discarded this reply's semantics and failed
            # over, so replay skips it.
            status = "transport"
        self._recorder.journal(
            self.shard, "rep", command, status, encode_reply(command, reply)
        )
        return reply

    # -- passthrough ---------------------------------------------------
    def set_timeout(self, timeout: float | None) -> None:
        self._inner.set_timeout(timeout)

    def shutdown(self, timeout: float = 5.0) -> None:
        # The inner endpoint's goodbye ("close" on byte transports) is
        # deliberately not journaled: it carries no engine semantics and
        # may race teardown; the log ends at the last serving frame.
        self._inner.shutdown(timeout)


class FlightRecordingTransport(Transport):
    """Wrap any transport so every endpoint journals into a recorder.

    The base :meth:`Transport.respawn` (teardown + ``connect``) is
    inherited unchanged: a respawned worker's replacement endpoint comes
    from :meth:`connect` and is therefore wrapped again, so failover
    traffic -- the fresh hello, the restore, the replayed ticks -- lands
    in the same log.
    """

    def __init__(self, inner, recorder: FlightRecorder) -> None:
        self._inner = resolve_transport(inner)
        self.recorder = recorder
        self.name = self._inner.name
        #: Always True: every payload is re-encoded into the log, so ids
        #: must be wire-safe even on transports (inproc) that would not
        #: otherwise require it.  The cluster then validates/sanitizes
        #: up front, exactly as it would on pipe/TCP.
        self.requires_wire_ids = True
        self.handshake_timeout = self._inner.handshake_timeout
        self.workers_self_configured = self._inner.workers_self_configured
        recorder.note_transport(self._inner.name)

    def connect(self, shard: int, engine_factory) -> WorkerEndpoint:
        self.recorder.note_shard(shard)
        return FlightRecordingEndpoint(
            self.recorder, self._inner.connect(shard, engine_factory)
        )

    def max_shards(self) -> int | None:
        return self._inner.max_shards()


# ---------------------------------------------------------------------------
# Reading + replay
# ---------------------------------------------------------------------------

def read_flight_log(directory) -> tuple[dict, list[FlightRecord]]:
    """Load and validate a flight log: ``(manifest, records)``."""
    directory = pathlib.Path(directory)
    manifest_path = directory / "manifest.json"
    frames_path = directory / "frames.bin"
    if not manifest_path.exists():
        raise ValidationError(
            f"{directory} has no manifest.json; not a flight log (was the "
            "recorder closed?)"
        )
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format") != FLIGHT_FORMAT:
        raise ValidationError(
            f"{manifest_path} format {manifest.get('format')!r} is not "
            f"{FLIGHT_FORMAT!r}"
        )
    if manifest.get("version") != FLIGHT_VERSION:
        raise ValidationError(
            f"flight log version {manifest.get('version')}; this build "
            f"reads version {FLIGHT_VERSION}"
        )
    data = frames_path.read_bytes()
    if data[: len(_MAGIC)] != _MAGIC:
        raise ValidationError(f"{frames_path} does not start with {_MAGIC!r}")
    (version,) = _VERSION_STRUCT.unpack_from(data, len(_MAGIC))
    if version != FLIGHT_VERSION:
        raise ValidationError(
            f"{frames_path} is flight-frame version {version}; this build "
            f"reads version {FLIGHT_VERSION}"
        )
    records: list[FlightRecord] = []
    offset = len(_MAGIC) + _VERSION_STRUCT.size
    while offset < len(data):
        if offset + _RECORD_STRUCT.size > len(data):
            raise ValidationError(f"{frames_path}: truncated record prefix")
        header_len, data_len = _RECORD_STRUCT.unpack_from(data, offset)
        offset += _RECORD_STRUCT.size
        end = offset + header_len + data_len
        if end > len(data):
            raise ValidationError(f"{frames_path}: truncated record body")
        header = json.loads(data[offset:offset + header_len].decode("utf-8"))
        frame = bytes(data[offset + header_len:end])
        offset = end
        kind = header["kind"]
        status = header["status"]
        if kind not in ("req", "rep") or status not in (
            _REQ_STATUSES if kind == "req" else _REP_STATUSES
        ):
            raise ValidationError(
                f"{frames_path}: record {header['seq']} has invalid "
                f"kind/status {kind!r}/{status!r}"
            )
        ts = header.get("ts")
        records.append(
            FlightRecord(
                seq=int(header["seq"]),
                shard=int(header["shard"]),
                kind=kind,
                command=str(header["command"]),
                status=status,
                data=frame,
                ts=float(ts) if ts is not None else None,
            )
        )
    if manifest.get("records") != len(records):
        raise ValidationError(
            f"manifest says {manifest.get('records')} records, frames.bin "
            f"holds {len(records)}"
        )
    return manifest, records


@dataclass
class FlightReplayReport:
    """What :func:`replay_flight` did and found."""

    records: int = 0
    requests: int = 0
    replies: int = 0
    compared: int = 0       # replies recomputed and checked bitwise
    skipped: int = 0        # undelivered requests + transport-error replies
    unmatched: int = 0      # requests left without a reply (truncated run)
    helloes: int = 0        # engines built (initial handshakes + failovers)
    shards: tuple = ()
    mismatches: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Bitwise identity: every replayable reply matched, and there
        was at least one to check."""
        return not self.mismatches and self.compared > 0

    def as_dict(self) -> dict:
        return {
            "records": self.records,
            "requests": self.requests,
            "replies": self.replies,
            "compared": self.compared,
            "skipped": self.skipped,
            "unmatched": self.unmatched,
            "helloes": self.helloes,
            "shards": list(self.shards),
            "mismatches": list(self.mismatches),
            "ok": self.ok,
        }

    def summary(self) -> str:
        verdict = (
            "bitwise-identical"
            if self.ok
            else f"{len(self.mismatches)} MISMATCHED repl(ies)"
        )
        return (
            f"replayed {self.compared}/{self.replies} replies over "
            f"{len(self.shards)} shard(s) ({self.helloes} engine "
            f"handshake(s), {self.skipped} transport record(s) skipped): "
            f"{verdict}"
        )


def _first_difference(a: bytes, b: bytes) -> int:
    for index, (x, y) in enumerate(zip(a, b)):
        if x != y:
            return index
    return min(len(a), len(b))


def probe_engine_shape(engine_factory) -> dict:
    """The config fingerprint an engine factory would announce at hello
    (what a flight log's manifest records)."""
    from repro.serving.transport import WorkerServicer

    return WorkerServicer(engine_factory()).engine_shape()


def replay_flight(directory, engine_factory) -> FlightReplayReport:
    """Re-drive a flight log through fresh engines; compare bitwise.

    One :class:`~repro.serving.transport.WorkerServicer` per shard,
    rebuilt at every recorded hello exactly as the live worker was
    (initial handshakes and failover respawns alike), each request
    decoded from its canonical frame and re-executed in recorded order.
    The computed reply is re-encoded and compared byte-for-byte against
    the recorded one -- results, statistics, error messages, everything
    that crossed the wire.

    The caller must supply an ``engine_factory`` configured identically
    to the recorded run's; :func:`probe_engine_shape` against the
    manifest's ``engine_shape`` catches a mismatch up front with a clear
    message (the hello replies would also catch it, as byte mismatches).
    """
    manifest, records = read_flight_log(directory)
    report = FlightReplayReport(records=len(records))
    servicers: dict[int, object] = {}
    # Per-shard FIFO of in-flight requests: a windowed cluster journals
    # several requests before the first reply; each reply pairs with the
    # oldest outstanding one, exactly as the live connection did.
    pending: dict[int, deque] = {}
    shards = set()

    for record in records:
        shards.add(record.shard)
        if record.kind == "req":
            report.requests += 1
            if record.status == "failed":
                report.skipped += 1  # never reached a worker; no semantics
                continue
            pending.setdefault(record.shard, deque()).append(record)
            continue

        report.replies += 1
        queue = pending.get(record.shard)
        request = queue.popleft() if queue else None
        if request is None:
            raise ValidationError(
                f"flight log record {record.seq}: reply on shard "
                f"{record.shard} without a request in flight (corrupt log)"
            )
        if record.status == "transport":
            report.skipped += 1  # dead-peer verdict; nothing to recompute
            continue

        command, payload = decode_request(request.data)
        if command != record.command:
            raise ValidationError(
                f"flight log record {record.seq}: reply command "
                f"{record.command!r} does not match request {command!r}"
            )
        if command == "hello":
            servicer = _handle_hello(engine_factory, payload)
            servicers[record.shard] = servicer
            report.helloes += 1
            computed = ("ok", servicer.engine_shape())
        elif command == "close":
            computed = ("ok", None)
        else:
            servicer = servicers.get(record.shard)
            if servicer is None:
                raise ValidationError(
                    f"flight log record {record.seq}: {command!r} on shard "
                    f"{record.shard} before any hello (corrupt log)"
                )
            try:
                computed = ("ok", servicer.handle(command, payload))
            except Exception as error:
                computed = ("error", type(error).__name__, str(error))
        encoded = encode_reply(command, computed)
        report.compared += 1
        if encoded != record.data:
            report.mismatches.append(
                {
                    "seq": record.seq,
                    "shard": record.shard,
                    "command": command,
                    "recorded_bytes": len(record.data),
                    "replayed_bytes": len(encoded),
                    "first_difference": _first_difference(
                        record.data, encoded
                    ),
                }
            )

    report.unmatched = sum(len(queue) for queue in pending.values())
    report.shards = tuple(sorted(shards))
    return report
