"""Span-style tracing of the serving tick phases.

One controller tick passes through a fixed pipeline -- intake ->
admission -> fan-out -> per-shard step -> merge -> snapshot (-> failover
recovery when a worker died) -- and this module measures each phase as a
*span*: a named duration with JSON-safe metadata.  The
:class:`~repro.serving.controller.ServingController` opens a trace per
tick and closes it into a :class:`TickTrace`;
:class:`~repro.serving.cluster.ShardedEngine` contributes the fan-out /
shard-step / merge spans of the same tick through its ``tracer``
attribute, so one record shows where a tick's wall time went across both
layers.

Determinism: the tracer's clock is injectable, exactly like the
controller's -- a test scripting ``clock=[0.0, 0.5, ...]`` gets
bit-exact span durations.  The tracer holds the last ``window`` traces
in a bounded deque (same rationale as the controller's telemetry
window), and a :class:`~repro.serving.observability.metrics.Histogram`
of phase durations is published by the controller from these spans, so
metrics and traces can never disagree.

Spans are *flat* within a tick: the ``step`` span covers the whole
``step_batch`` call and the engine's ``fanout``/``shard_step``/``merge``
spans appear alongside it (their sum is a lower bound of ``step``).
Recovery work replayed during a failover lands in the interrupted tick's
trace -- the stall is real and the trace shows it.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

from repro.exceptions import ValidationError

__all__ = ["PHASES", "SpanRecord", "TickTrace", "TickTracer", "null_span"]

#: The tick phases the serving stack instruments, in pipeline order.
#: ``step`` is the controller-level envelope around the engine call;
#: ``fanout``/``shard_step``/``merge`` are the cluster's sub-phases of
#: it; ``recovery`` appears only on ticks that performed a failover.
#: Pipelined (windowed) serving replaces ``shard_step``/``merge`` with
#: ``await_window`` (blocking on the oldest in-flight tick's replies --
#: the true pipeline stall, which shrinks as submits overlap it) and
#: ``merge_ready`` (merging a tick whose replies have all landed); a
#: Perfetto export shows tick t+1's ``fanout`` starting before tick t's
#: ``await_window`` closes, which is the overlap made visible.
PHASES = (
    "intake",
    "admission",
    "fanout",
    "shard_step",
    "await_window",
    "merge",
    "merge_ready",
    "step",
    "snapshot",
    "recovery",
)


@dataclass(frozen=True)
class SpanRecord:
    """One measured phase: name, duration, JSON-safe metadata.

    ``start`` is the span's absolute begin time on the tracer's clock
    (``None`` for externally measured durations).  It exists for timeline
    assembly (:mod:`repro.serving.observability.distributed`) and is
    deliberately left out of :meth:`as_dict`, which stays a pure
    duration record.
    """

    name: str
    seconds: float
    meta: dict = field(default_factory=dict)
    start: float | None = None

    def as_dict(self) -> dict:
        return {"name": self.name, "seconds": self.seconds, "meta": dict(self.meta)}


@dataclass(frozen=True)
class TickTrace:
    """All spans recorded during one controller tick."""

    tick: int
    spans: tuple[SpanRecord, ...]

    def seconds(self, name: str) -> float:
        """Total duration of every span called ``name`` in this trace."""
        return sum(span.seconds for span in self.spans if span.name == name)

    def as_dict(self) -> dict:
        """The structured per-tick record (JSON-safe)."""
        return {
            "tick": self.tick,
            "spans": [span.as_dict() for span in self.spans],
        }


class _Span:
    """Context manager measuring one span; records even on exception
    (a phase that raised still spent its time)."""

    __slots__ = ("_tracer", "_name", "_meta", "_start")

    def __init__(self, tracer: "TickTracer", name: str, meta: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._meta = meta

    def __enter__(self) -> "_Span":
        self._start = self._tracer.clock()
        return self

    def __exit__(self, *exc_info) -> None:
        self._tracer.record(
            self._name,
            self._tracer.clock() - self._start,
            start=self._start,
            **self._meta,
        )


class _NullSpan:
    """The do-nothing span: no clock reads, no allocation per use."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()


def null_span(name: str, **meta) -> _NullSpan:
    """Drop-in for ``tracer.span`` when no tracer is attached.

    Instrumented code does ``span = tracer.span if tracer else null_span``
    once per tick and wraps phases unconditionally; the disabled path
    costs one shared no-op context manager per phase -- zero clock reads,
    zero allocations.
    """
    return _NULL_SPAN


class TickTracer:
    """Collects spans tick by tick into a bounded trace window.

    Parameters
    ----------
    clock:
        Monotonic time source for span measurement (injectable so tests
        script exact durations).  Deliberately separate from the
        controller's clock: a controller with scripted latencies can
        still attach a wall-clock tracer, and vice versa.
    window:
        Completed :class:`TickTrace` records retained (FIFO), bounding a
        long-lived serving loop's memory exactly like the controller's
        telemetry window.
    """

    def __init__(self, clock=time.perf_counter, window: int = 4096) -> None:
        if window < 1:
            raise ValidationError(f"window must be >= 1, got {window}")
        self.clock = clock
        self.traces: deque[TickTrace] = deque(maxlen=window)
        self._spans: list[SpanRecord] = []

    def span(self, name: str, **meta) -> _Span:
        """Measure one phase: ``with tracer.span("fanout", shards=4): ...``"""
        return _Span(self, name, meta)

    def record(self, name: str, seconds: float, *, start=None, **meta) -> None:
        """Append an externally measured span (e.g. failover recovery,
        which times itself with ``time.perf_counter`` regardless of the
        tracer clock).  ``start``, when known, anchors the span on the
        tracer's timeline for distributed-trace export."""
        self._spans.append(SpanRecord(name, float(seconds), meta, start))

    @property
    def open_spans(self) -> list[SpanRecord]:
        """Spans recorded since the last :meth:`end_tick`/:meth:`abort_tick`."""
        return list(self._spans)

    def end_tick(self, tick: int) -> TickTrace:
        """Close the current tick's spans into a :class:`TickTrace`."""
        trace = TickTrace(tick=int(tick), spans=tuple(self._spans))
        self._spans = []
        self.traces.append(trace)
        return trace

    def abort_tick(self) -> None:
        """Discard the open spans (the tick was rejected atomically; its
        partial measurements must not leak into the next tick's trace)."""
        self._spans = []

    @property
    def last(self) -> TickTrace | None:
        """The most recently completed trace (None before any tick)."""
        return self.traces[-1] if self.traces else None
