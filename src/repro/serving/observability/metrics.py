"""Dependency-free metrics: labeled families + Prometheus text exposition.

The serving stack's measurement substrate.  A :class:`MetricsRegistry`
holds counter/gauge/histogram *families*; each family owns labeled
*series* created on first use (``family.labels(priority="2").inc()``).
:meth:`MetricsRegistry.render_prometheus` emits the standard text
exposition format (``# HELP``/``# TYPE`` lines, escaped label values,
cumulative ``le`` histogram buckets with ``_sum``/``_count``), and
:class:`MetricsServer` serves it over plain stdlib HTTP so any
Prometheus-compatible scraper can watch a controller or ``serve-worker``
process -- no client library, no third-party dependency.

Design constraints, in order:

* **Zero cost when absent.**  Nothing in the serving stack imports this
  module unless a registry was explicitly attached; a controller without
  ``metrics=`` performs no registry operation at all.
* **Get-or-create registration.**  ``registry.counter(name, ...)``
  returns the existing family when one with the same type/labels is
  already registered (a long-lived ``serve-worker`` builds one servicer
  per cluster connection; each re-registers the same families) and
  raises :class:`~repro.exceptions.ValidationError` on a conflicting
  redefinition.
* **One lock.**  All mutation and rendering synchronize on a single
  registry lock, so a scrape observes a consistent cut across families
  -- counters published together are read together.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.exceptions import ValidationError

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
]

#: Default histogram buckets, tuned for tick/phase latencies: serving
#: ticks run tens of microseconds (inproc fast path) to seconds
#: (recovery replay), so the grid spans both with ~2-2.5x steps.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def format_number(value) -> str:
    """Canonical exposition rendering of one sample value.

    Integral values print without a fractional part (``17``, not
    ``17.0``), non-finite values use the spec spellings (``+Inf``,
    ``-Inf``, ``NaN``), and everything else uses Python's shortest
    round-trip ``repr`` -- which the strict parser in the tests (and any
    float parser) reads back to the same double.
    """
    value = float(value)
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _render_labels(label_names, label_values, extra=()) -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(label_names, label_values)
    ]
    pairs.extend(f'{name}="{_escape_label_value(value)}"' for name, value in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


class _CounterSeries:
    """One monotonically non-decreasing sample."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock) -> None:
        self._lock = lock
        self.value = 0.0

    def inc(self, amount=1) -> None:
        if amount < 0:
            raise ValidationError(
                f"counters only go up; cannot inc by {amount}"
            )
        with self._lock:
            self.value += amount


class _GaugeSeries:
    """One freely settable sample."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock) -> None:
        self._lock = lock
        self.value = 0.0

    def set(self, value) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount=1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount=1) -> None:
        self.inc(-amount)


class _HistogramSeries:
    """Bucketed observations plus their running sum and count."""

    __slots__ = ("_lock", "bounds", "counts", "sum", "count")

    def __init__(self, lock, bounds) -> None:
        self._lock = lock
        self.bounds = bounds  # sorted finite upper bounds (le)
        self.counts = [0] * (len(bounds) + 1)  # last slot = +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value) -> None:
        value = float(value)
        with self._lock:
            self.counts[bisect_left(self.bounds, value)] += 1
            self.sum += value
            self.count += 1

    def cumulative(self) -> list[int]:
        """Per-bucket cumulative counts, ``+Inf`` last (== count)."""
        out, total = [], 0
        for c in self.counts:
            total += c
            out.append(total)
        return out


class _Family:
    """Base of the three metric families: named, labeled, typed."""

    kind = "untyped"

    def __init__(self, registry, name: str, help: str, label_names) -> None:
        self._registry = registry
        self._lock = registry._lock
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._series: dict[tuple, object] = {}

    def _signature(self) -> tuple:
        return (type(self), self.label_names)

    def labels(self, **labels):
        """The series for one label-value combination (created on first
        use).  Label values are coerced to ``str``, the exposition's
        value domain."""
        if set(labels) != set(self.label_names):
            raise ValidationError(
                f"metric {self.name!r} takes labels {list(self.label_names)}, "
                f"got {sorted(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = self._make_series()
        return series

    def _unlabeled(self):
        if self.label_names:
            raise ValidationError(
                f"metric {self.name!r} is labeled by {list(self.label_names)}; "
                "address a series via .labels(...)"
            )
        return self.labels()

    def _make_series(self):
        raise NotImplementedError

    def _sorted_series(self):
        return sorted(self._series.items())


class Counter(_Family):
    """A family of monotonically increasing counters."""

    kind = "counter"

    def _make_series(self):
        return _CounterSeries(self._lock)

    def inc(self, amount=1) -> None:
        """Increment the unlabeled series (label-less families only)."""
        self._unlabeled().inc(amount)

    @property
    def value(self) -> float:
        return self._unlabeled().value

    def _render_into(self, lines) -> None:
        for key, series in self._sorted_series():
            labels = _render_labels(self.label_names, key)
            lines.append(
                f"{self.name}{labels} {format_number(series.value)}"
            )

    def _snapshot(self) -> list:
        return [
            {"labels": dict(zip(self.label_names, key)), "value": series.value}
            for key, series in self._sorted_series()
        ]


class Gauge(_Family):
    """A family of instantaneous values."""

    kind = "gauge"

    def _make_series(self):
        return _GaugeSeries(self._lock)

    def set(self, value) -> None:
        self._unlabeled().set(value)

    def inc(self, amount=1) -> None:
        self._unlabeled().inc(amount)

    def dec(self, amount=1) -> None:
        self._unlabeled().dec(amount)

    @property
    def value(self) -> float:
        return self._unlabeled().value

    _render_into = Counter._render_into
    _snapshot = Counter._snapshot


class Histogram(_Family):
    """A family of cumulative-bucket histograms."""

    kind = "histogram"

    def __init__(self, registry, name, help, label_names, buckets) -> None:
        super().__init__(registry, name, help, label_names)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValidationError(f"histogram {name!r} needs >= 1 bucket")
        if len(set(bounds)) != len(bounds):
            raise ValidationError(f"histogram {name!r} has duplicate buckets")
        if bounds[-1] == float("inf"):
            bounds = bounds[:-1]  # +Inf is implicit
        self.buckets = tuple(bounds)

    def _signature(self) -> tuple:
        return (type(self), self.label_names, self.buckets)

    def _make_series(self):
        return _HistogramSeries(self._lock, self.buckets)

    def observe(self, value) -> None:
        self._unlabeled().observe(value)

    def _render_into(self, lines) -> None:
        for key, series in self._sorted_series():
            cumulative = series.cumulative()
            for bound, total in zip(self.buckets, cumulative):
                labels = _render_labels(
                    self.label_names, key, extra=(("le", format_number(bound)),)
                )
                lines.append(f"{self.name}_bucket{labels} {total}")
            labels = _render_labels(self.label_names, key, extra=(("le", "+Inf"),))
            lines.append(f"{self.name}_bucket{labels} {cumulative[-1]}")
            labels = _render_labels(self.label_names, key)
            lines.append(f"{self.name}_sum{labels} {format_number(series.sum)}")
            lines.append(f"{self.name}_count{labels} {series.count}")

    def _snapshot(self) -> list:
        return [
            {
                "labels": dict(zip(self.label_names, key)),
                "count": series.count,
                "sum": series.sum,
                "buckets": {
                    format_number(bound): total
                    for bound, total in zip(
                        list(self.buckets) + [float("inf")],
                        series.cumulative(),
                    )
                },
            }
            for key, series in self._sorted_series()
        ]


class MetricsRegistry:
    """A named collection of metric families behind one lock."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: dict[str, _Family] = {}

    # -- registration (get-or-create) ----------------------------------
    def counter(self, name: str, help: str = "", labels=()) -> Counter:
        return self._register(Counter(self, name, help, labels))

    def gauge(self, name: str, help: str = "", labels=()) -> Gauge:
        return self._register(Gauge(self, name, help, labels))

    def histogram(
        self, name: str, help: str = "", labels=(), buckets=DEFAULT_BUCKETS
    ) -> Histogram:
        return self._register(Histogram(self, name, help, labels, buckets))

    def _register(self, family: _Family) -> _Family:
        if not _METRIC_NAME.match(family.name):
            raise ValidationError(f"invalid metric name {family.name!r}")
        for label in family.label_names:
            if not _LABEL_NAME.match(label) or label.startswith("__"):
                raise ValidationError(
                    f"metric {family.name!r}: invalid label name {label!r}"
                )
            if isinstance(family, Histogram) and label == "le":
                raise ValidationError(
                    f"histogram {family.name!r} reserves the 'le' label"
                )
        with self._lock:
            existing = self._families.get(family.name)
            if existing is None:
                self._families[family.name] = family
                return family
            if existing._signature() != family._signature():
                raise ValidationError(
                    f"metric {family.name!r} is already registered as a "
                    f"{existing.kind} with labels {list(existing.label_names)}; "
                    "cannot redefine it"
                )
            return existing

    def get(self, name: str) -> _Family | None:
        """The registered family called ``name`` (None when absent)."""
        with self._lock:
            return self._families.get(name)

    # -- export --------------------------------------------------------
    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (0.0.4).

        Families render in registration order, each introduced by its
        ``# HELP`` and ``# TYPE`` lines; the whole render happens under
        the registry lock, so the scrape is a consistent cut across
        every family.
        """
        lines: list[str] = []
        with self._lock:
            for family in self._families.values():
                lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
                lines.append(f"# TYPE {family.name} {family.kind}")
                family._render_into(lines)
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """JSON-safe dump of every family (the ``BENCH_*.json`` shape)."""
        with self._lock:
            return {
                name: {
                    "type": family.kind,
                    "help": family.help,
                    "series": family._snapshot(),
                }
                for name, family in self._families.items()
            }


# ---------------------------------------------------------------------------
# HTTP exposition
# ---------------------------------------------------------------------------

class _MetricsHandler(BaseHTTPRequestHandler):
    registry: MetricsRegistry  # bound by MetricsServer via subclassing

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler contract)
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            body = self.registry.render_prometheus().encode("utf-8")
            self._respond(
                200, body, "text/plain; version=0.0.4; charset=utf-8"
            )
        elif path == "/healthz":
            self._respond(200, b"ok\n", "text/plain; charset=utf-8")
        else:
            self._respond(404, b"not found\n", "text/plain; charset=utf-8")

    def _respond(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionError):  # scraper went away
            pass

    def log_message(self, *args) -> None:  # silence per-request stderr
        pass


class MetricsServer:
    """Serve a registry's ``/metrics`` endpoint from a daemon thread.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`);
    the listener thread is a daemon, so a crashing serving process never
    hangs on its own metrics endpoint.  Also answers ``/healthz`` so
    supervisors can probe liveness without parsing the exposition.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        port: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        handler = type("_BoundHandler", (_MetricsHandler,), {"registry": registry})
        self.registry = registry
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics",
            daemon=True,
        )
        self._thread.start()

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(5.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def parse_prometheus(text: str) -> dict:
    """Strict parser of the text exposition format (test/CI validation).

    Returns ``{family: {"type": ..., "help": ..., "samples": {(name,
    (label, value) pairs): float}}}`` and raises :class:`ValidationError`
    on anything out of spec: samples before their ``# TYPE``, sample
    names that do not belong to the family, malformed label syntax,
    non-monotonic histogram buckets, or a missing trailing newline.
    Lives here (not in the tests) so the CI smoke job can validate a
    live scrape with the same rigor.
    """
    if not text.endswith("\n"):
        raise ValidationError("exposition must end with a newline")
    families: dict = {}
    current: str | None = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            if name in families:
                raise ValidationError(f"line {lineno}: duplicate HELP for {name}")
            families[name] = {"type": None, "help": help_text, "samples": {}}
            current = name
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if name not in families or name != current:
                raise ValidationError(
                    f"line {lineno}: TYPE for {name} without preceding HELP"
                )
            if kind not in ("counter", "gauge", "histogram", "untyped"):
                raise ValidationError(f"line {lineno}: unknown type {kind!r}")
            if families[name]["type"] is not None:
                raise ValidationError(f"line {lineno}: duplicate TYPE for {name}")
            families[name]["type"] = kind
            continue
        if line.startswith("#"):
            continue  # comment
        sample_name, labels, value = _parse_sample(line, lineno)
        if current is None or families[current]["type"] is None:
            raise ValidationError(
                f"line {lineno}: sample before any HELP/TYPE header"
            )
        allowed = {current}
        if families[current]["type"] == "histogram":
            allowed = {current + s for s in ("_bucket", "_sum", "_count")}
        if sample_name not in allowed:
            raise ValidationError(
                f"line {lineno}: sample {sample_name!r} does not belong to "
                f"family {current!r}"
            )
        key = (sample_name, labels)
        if key in families[current]["samples"]:
            raise ValidationError(f"line {lineno}: duplicate sample {key}")
        families[current]["samples"][key] = value
    _check_histograms(families)
    return families


def _parse_sample(line: str, lineno: int) -> tuple:
    """One sample line -> (name, sorted label tuple, float value)."""
    match = re.match(
        r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})? (\S+)$", line
    )
    if not match:
        raise ValidationError(f"line {lineno}: malformed sample {line!r}")
    name, _, label_blob, value_text = match.groups()
    labels = []
    if label_blob:
        for part in _split_labels(label_blob, lineno):
            label_match = re.match(r'^([a-zA-Z_][a-zA-Z0-9_]*)="(.*)"$', part)
            if not label_match:
                raise ValidationError(
                    f"line {lineno}: malformed label {part!r}"
                )
            raw = label_match.group(2)
            value = (
                raw.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
            )
            labels.append((label_match.group(1), value))
    try:
        if value_text == "+Inf":
            value = float("inf")
        elif value_text == "-Inf":
            value = float("-inf")
        else:
            value = float(value_text)
    except ValueError:
        raise ValidationError(
            f"line {lineno}: bad sample value {value_text!r}"
        ) from None
    return name, tuple(sorted(labels)), value


def _split_labels(blob: str, lineno: int) -> list[str]:
    """Split ``a="x",b="y"`` on commas outside quoted values."""
    parts, current, in_quotes, escaped = [], [], False, False
    for ch in blob:
        if escaped:
            current.append(ch)
            escaped = False
            continue
        if ch == "\\" and in_quotes:
            current.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_quotes = not in_quotes
        if ch == "," and not in_quotes:
            parts.append("".join(current))
            current = []
            continue
        current.append(ch)
    if in_quotes:
        raise ValidationError(f"line {lineno}: unterminated label value")
    if current:
        parts.append("".join(current))
    return parts


def _check_histograms(families: dict) -> None:
    """Bucket sanity: cumulative counts monotone, +Inf present == _count."""
    for name, family in families.items():
        if family["type"] != "histogram":
            continue
        per_series: dict = {}
        for (sample, labels), value in family["samples"].items():
            if sample != name + "_bucket":
                continue
            le = dict(labels).get("le")
            if le is None:
                raise ValidationError(f"{name}: bucket sample without le")
            rest = tuple(kv for kv in labels if kv[0] != "le")
            per_series.setdefault(rest, []).append((float(le), value))
        for rest, buckets in per_series.items():
            buckets.sort()
            counts = [count for _, count in buckets]
            if counts != sorted(counts):
                raise ValidationError(
                    f"{name}{dict(rest)}: bucket counts are not cumulative"
                )
            if buckets[-1][0] != float("inf"):
                raise ValidationError(f"{name}{dict(rest)}: missing +Inf bucket")
            total = family["samples"].get((name + "_count", rest))
            if total is not None and total != buckets[-1][1]:
                raise ValidationError(
                    f"{name}{dict(rest)}: +Inf bucket {buckets[-1][1]} != "
                    f"_count {total}"
                )
